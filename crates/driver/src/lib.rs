//! # paragram-driver — batched compilation with shared plans
//!
//! The paper's Figure-6 experiment compiles *one* tree: the parser
//! decomposes it, ships regions to evaluator machines, and the string
//! librarian assembles the result. A production compilation service
//! faces a different shape of load — a **stream** of trees (many
//! compilation units, many requests) — where the dominant overheads are
//! things the single-tree pipeline re-pays per compilation:
//!
//! * **grammar analysis** (induced dependencies, attribute partitions,
//!   visit sequences — Kastens' fixpoint, §2.3),
//! * **plan-derived lookup tables** (per-rule priority flags, per-symbol
//!   attribute sets, split-candidate minimum sizes),
//! * **worker spin-up** (OS threads, channels, the librarian process),
//! * **buffer growth** (dependency-CSR pair lists, argument gather
//!   scratch).
//!
//! This crate splits compilation state into the two halves those
//! overheads suggest:
//!
//! * [`CompilationPlan`] — the **plan half**: immutable, computed once
//!   per grammar, shared (`Arc`) by every tree, thread and driver. It
//!   wraps [`paragram_core::eval::EvalPlan`] (grammar + analysis +
//!   tables) plus the driver configuration.
//! * [`BatchDriver`] — the **instance half**: a persistent
//!   [`WorkerPool`] (evaluator threads + librarian spawned once) plus
//!   per-tree state created and recycled as trees flow through
//!   ([`paragram_core::eval::MachineScratch`] buffers survive from tree
//!   to tree inside each worker).
//!
//! # Relation to the paper's §4.2 pipelining
//!
//! The librarian protocol separates *registration* (segments stream to
//! the librarian while evaluation runs) from *resolution* (the parser's
//! final read). The pool implements that split per **ticket**: every
//! tree's registrations are tagged with its ticket and stream in while
//! evaluation runs (even the next tree's), and resolution happens once
//! per ticket at the parser's final read. Because the two phases are
//! decoupled, [`BatchDriver::compile_batch`] keeps a small window of
//! trees in flight ([`DriverConfig::pipeline_depth`], default 2):
//! tree N+1's region jobs fill workers idling behind tree N's
//! stragglers, and tree N's result assembly overlaps tree N+1's
//! evaluation. Depth 1 restores the strict one-tree-per-epoch barrier.
//!
//! # Region-granular scheduling
//!
//! The pool's unit of work is the *region job* — a `(ticket, region)`
//! pair — not the tree. By default each tree is carved into at most
//! `workers` regions (the paper's decomposition);
//! [`DriverConfig::with_adaptive_budget`] switches to cost-driven
//! decomposition where regions are sized by a work budget, so one huge
//! tree becomes many region jobs that fill the pipeline exactly like a
//! batch of small trees (no head-of-line blocking behind a big
//! compilation unit). [`BatchReport::max_regions_in_flight`] reports
//! the region-level concurrency the batch actually reached.
//!
//! # Serving, not just batching
//!
//! [`BatchDriver::compile_batch`] assumes the whole batch is known up
//! front. A compilation *service* faces an **open arrival** stream —
//! requests show up while earlier ones are still evaluating, and
//! nobody may block. [`ServiceQueue`] (the [`service`] module) wraps
//! the same pool with a bounded waiting room (admission control with
//! shed accounting), a pluggable
//! [`DispatchPolicy`](paragram_core::parallel::policy::DispatchPolicy)
//! — FIFO, shortest-job-first keyed by
//! [`EvalPlan::tree_work`](paragram_core::eval::EvalPlan::tree_work),
//! or per-tenant deficit fair queueing — and per-request timestamps
//! (enqueue → admit → first region dispatched → assembled). Policy
//! rankings are reproducible on one core:
//! `paragram_core::parallel::sim::run_sim_service` replays the same
//! policies (literally the same `PolicyQueue` code) on the simulated
//! machine park.
//!
//! # Example
//!
//! ```
//! use paragram_core::grammar::GrammarBuilder;
//! use paragram_core::tree::TreeBuilder;
//! use paragram_driver::{BatchDriver, CompilationPlan, DriverConfig};
//! use std::sync::Arc;
//!
//! let mut g = GrammarBuilder::<i64>::new();
//! let t = g.nonterminal("T");
//! let size = g.synthesized(t, "size");
//! let leaf = g.production("leaf", t, []);
//! g.rule(leaf, (0, size), [], |_| 1);
//! let fork = g.production("fork", t, [t, t]);
//! g.rule(fork, (0, size), [(1, size), (2, size)], |a| a[0] + a[1] + 1);
//! let grammar = Arc::new(g.build(t).unwrap());
//!
//! // Plan once ...
//! let plan = CompilationPlan::analyze(&grammar, DriverConfig::workers(2));
//! let mut driver = BatchDriver::new(&plan);
//!
//! // ... compile many trees.
//! let trees: Vec<_> = (0..3)
//!     .map(|_| {
//!         let mut tb = TreeBuilder::new(&grammar);
//!         let (a, b) = (tb.leaf(leaf), tb.leaf(leaf));
//!         let root = tb.node(fork, [a, b]);
//!         Arc::new(tb.finish(root).unwrap())
//!     })
//!     .collect();
//! let report = driver.compile_batch(trees.iter().cloned()).unwrap();
//! assert_eq!(report.outputs.len(), 3);
//! assert_eq!(report.outputs[0].root_values[0].1, 3);
//! ```

pub mod service;

pub use service::{
    Admission, FailedRequest, FailureReason, RequestTimes, ServiceConfig, ServiceOutput,
    ServiceQueue, ServiceStats,
};

use paragram_core::eval::{EvalError, EvalPlan, MachineMode};
use paragram_core::grammar::{AttrId, Grammar};
use paragram_core::memo::{InstallPolicy, MemoCounters};
use paragram_core::parallel::pool::{
    FaultCounters, PoolConfig, PoolReport, SchedCounters, SchedulerMode, WorkerPool,
};
use paragram_core::parallel::ResultPropagation;
use paragram_core::split::RegionGranularity;
use paragram_core::stats::EvalStats;
use paragram_core::tree::{AttrStore, ParseTree};
use paragram_core::value::AttrValue;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Driver configuration: pool shape and evaluation strategy.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Number of persistent evaluator threads.
    pub workers: usize,
    /// Machine mode override; `None` picks the best the plan supports
    /// (combined when the grammar is l-ordered, dynamic otherwise).
    pub mode: Option<MachineMode>,
    /// Result propagation strategy.
    pub result: ResultPropagation,
    /// Split-granularity scale (the paper's runtime argument).
    pub min_size_scale: f64,
    /// Trees kept in flight on the pool at once (see
    /// [`paragram_core::parallel::pool::PoolConfig::pipeline_depth`]).
    /// Depth 1 is the strict per-tree barrier; the default of 2
    /// pipelines each tree behind its predecessor's stragglers.
    pub pipeline_depth: usize,
    /// Region granularity override; `None` (the default) carves each
    /// tree into at most `workers` regions (whole-tree ticketing, the
    /// paper's decomposition). [`RegionGranularity::Adaptive`] sizes
    /// regions by a work budget instead, so a huge tree becomes many
    /// region jobs that pipeline through the pool like many small
    /// trees.
    pub granularity: Option<RegionGranularity>,
    /// Cross-request attribute memo cache budget in bytes; 0 (the
    /// default) disables memoization entirely, reproducing the paper's
    /// Figure-7 behaviour where every region is evaluated from scratch.
    /// See [`paragram_core::memo`] for the signature contract.
    pub memo_capacity: usize,
    /// Memo install policy (only meaningful with a non-zero
    /// `memo_capacity`): [`InstallPolicy::Always`] (the default) or the
    /// scan-resistant [`InstallPolicy::SecondTouch`].
    pub memo_install: InstallPolicy,
    /// Region-job placement: the paper's fixed modular function
    /// ([`SchedulerMode::Fixed`], the default — Fig-7 schedules and all
    /// prior benches unchanged) or the locality-aware work-stealing
    /// scheduler ([`SchedulerMode::Stealing`]).
    pub scheduler: SchedulerMode,
}

impl DriverConfig {
    /// Librarian propagation, best available mode, `n` workers, default
    /// pipeline window.
    pub fn workers(n: usize) -> Self {
        DriverConfig {
            workers: n.max(1),
            mode: None,
            result: ResultPropagation::Librarian,
            min_size_scale: 1.0,
            pipeline_depth: 2,
            granularity: None,
            memo_capacity: 0,
            memo_install: InstallPolicy::Always,
            scheduler: SchedulerMode::Fixed,
        }
    }

    /// Same as [`DriverConfig::workers`] with the strict one-tree
    /// barrier (no cross-tree pipelining).
    pub fn barrier(n: usize) -> Self {
        DriverConfig {
            pipeline_depth: 1,
            ..DriverConfig::workers(n)
        }
    }

    /// Returns the configuration with the given in-flight window depth.
    pub fn with_pipeline_depth(self, depth: usize) -> Self {
        DriverConfig {
            pipeline_depth: depth.max(1),
            ..self
        }
    }

    /// Returns the configuration with cost-driven region-granular
    /// scheduling: trees are carved into regions of ≈`budget` work
    /// units (rule-cost units; see
    /// [`paragram_core::split::decompose_adaptive`]), independent of
    /// the worker count.
    pub fn with_adaptive_budget(self, budget: u64) -> Self {
        DriverConfig {
            granularity: Some(RegionGranularity::Adaptive { budget }),
            ..self
        }
    }

    /// Returns the configuration with a cross-request memo cache of the
    /// given byte budget (0 turns memoization back off).
    pub fn with_memo_capacity(self, bytes: usize) -> Self {
        DriverConfig {
            memo_capacity: bytes,
            ..self
        }
    }

    /// Returns the configuration with the given memo install policy.
    pub fn with_memo_install(self, policy: InstallPolicy) -> Self {
        DriverConfig {
            memo_install: policy,
            ..self
        }
    }

    /// Returns the configuration with the given region-job scheduler.
    pub fn with_scheduler(self, scheduler: SchedulerMode) -> Self {
        DriverConfig { scheduler, ..self }
    }

    /// The effective granularity: the override, or one region per
    /// worker.
    pub fn effective_granularity(&self) -> RegionGranularity {
        self.granularity
            .unwrap_or(RegionGranularity::Machines(self.workers))
    }
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig::workers(4)
    }
}

/// The shared, immutable plan half of a batched compilation: grammar
/// analysis artifacts plus driver configuration. Compute once, share
/// with every [`BatchDriver`] (and across threads) via clone — all
/// heavy state is behind `Arc`s.
#[derive(Clone)]
pub struct CompilationPlan<V: AttrValue> {
    plan: Arc<EvalPlan<V>>,
    config: DriverConfig,
}

impl<V: AttrValue> CompilationPlan<V> {
    /// Runs the full grammar analysis (the expensive step) and captures
    /// the configuration.
    pub fn analyze(grammar: &Arc<Grammar<V>>, config: DriverConfig) -> Self {
        CompilationPlan {
            plan: Arc::new(EvalPlan::analyze(grammar)),
            config,
        }
    }

    /// Wraps an already-analyzed [`EvalPlan`] (e.g. the one inside
    /// `paragram_core::eval::Evaluators`) — no re-analysis.
    pub fn from_plan(plan: &Arc<EvalPlan<V>>, config: DriverConfig) -> Self {
        CompilationPlan {
            plan: Arc::clone(plan),
            config,
        }
    }

    /// The underlying evaluation plan.
    pub fn eval_plan(&self) -> &Arc<EvalPlan<V>> {
        &self.plan
    }

    /// The driver configuration.
    pub fn config(&self) -> DriverConfig {
        self.config
    }

    /// The machine mode the driver will run: the configured override,
    /// or the best the plan supports.
    pub fn mode(&self) -> MachineMode {
        self.config.mode.unwrap_or_else(|| self.plan.best_mode())
    }
}

impl<V: AttrValue> fmt::Debug for CompilationPlan<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CompilationPlan({:?}, {} workers)",
            self.plan, self.config.workers
        )
    }
}

/// Result of compiling one tree through the driver.
pub struct TreeOutput<V: AttrValue> {
    /// Root attribute values, librarian-resolved.
    pub root_values: Vec<(AttrId, V)>,
    /// The merged, librarian-resolved attribute store (independent of
    /// how the tree was decomposed).
    pub store: AttrStore<V>,
    /// Evaluation statistics aggregated over all regions.
    pub stats: EvalStats,
    /// Wall-clock evaluation time for this tree.
    pub elapsed: Duration,
    /// Regions (machines) this tree was decomposed into.
    pub regions: usize,
}

impl<V: AttrValue> TreeOutput<V> {
    /// The root value of an attribute, if it was produced.
    pub fn root_value(&self, attr: AttrId) -> Option<&V> {
        self.root_values
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, v)| v)
    }

    pub(crate) fn from_report(report: PoolReport<V>) -> Self {
        TreeOutput {
            root_values: report.root_values,
            store: report.store,
            stats: report.stats,
            elapsed: report.elapsed,
            regions: report.regions,
        }
    }
}

/// A batch failure that does not discard finished work: the first
/// [`EvalError`] any tree raised, together with every tree that was
/// fully compiled and assembled.
///
/// Failures are **ticket-scoped**: a failing tree takes down only its
/// own ticket, so the batch runs to completion and every healthy tree
/// — before *or after* the failing one — comes back in `completed`. A
/// caller (a service shedding one bad request, a build system
/// reporting per-unit results) never redoes finished work, and the
/// driver stays usable for the next batch.
pub struct BatchError<V: AttrValue> {
    /// The first evaluation error any tree raised.
    pub error: EvalError,
    /// Outputs of the trees that compiled successfully, in input
    /// order (failed trees are simply absent).
    pub completed: Vec<TreeOutput<V>>,
}

impl<V: AttrValue> fmt::Debug for BatchError<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchError")
            .field("error", &self.error)
            .field("completed", &self.completed.len())
            .finish()
    }
}

impl<V: AttrValue> fmt::Display for BatchError<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} earlier trees completed)",
            self.error,
            self.completed.len()
        )
    }
}

impl<V: AttrValue> std::error::Error for BatchError<V> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Result of a whole batch.
pub struct BatchReport<V: AttrValue> {
    /// Per-tree outputs, in input order.
    pub outputs: Vec<TreeOutput<V>>,
    /// Wall-clock time for the whole batch (including decomposition,
    /// excluding plan construction and pool spin-up).
    pub elapsed: Duration,
    /// The configured in-flight window depth the batch ran with.
    pub pipeline_depth: usize,
    /// The largest number of trees actually in flight at once during
    /// this batch (≤ `pipeline_depth`; 1 means the batch degenerated to
    /// the barrier schedule, e.g. a single-tree batch).
    pub max_in_flight: usize,
    /// The largest number of region jobs in flight at once — the
    /// region-granular view of `max_in_flight`: under adaptive
    /// granularity a single huge tree alone can keep many more region
    /// jobs live than the tree window suggests.
    pub max_regions_in_flight: usize,
    /// Memo cache activity attributable to *this* batch (the pool's
    /// counters are cumulative; this is the delta over the batch).
    /// `None` when [`DriverConfig::memo_capacity`] is 0.
    pub memo: Option<MemoCounters>,
    /// Steal-scheduler telemetry for this batch
    /// ([`WorkerPool::reset_high_water`] zeroes the counters at batch
    /// start); all zeros under [`SchedulerMode::Fixed`].
    pub sched: SchedCounters,
    /// Fault and recovery telemetry for this batch (zeroed at batch
    /// start alongside the scheduler counters): worker crashes
    /// injected, regions re-executed from their input logs, duplicate
    /// sends suppressed by idempotent delivery, and semantic-rule
    /// panics contained to their tickets. All zeros on a fault-free
    /// run.
    pub faults: FaultCounters,
}

impl<V: AttrValue> BatchReport<V> {
    /// Throughput over the batch's wall-clock time.
    pub fn trees_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            f64::INFINITY
        } else {
            self.outputs.len() as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// The instance half of a batched compilation: a persistent worker
/// pool fed a stream of parse trees, all evaluated against one shared
/// [`CompilationPlan`].
pub struct BatchDriver<V: AttrValue> {
    pool: WorkerPool<V>,
    trees_compiled: usize,
}

impl<V: AttrValue> BatchDriver<V> {
    /// Spawns the worker pool (threads + librarian) for `plan`.
    pub fn new(plan: &CompilationPlan<V>) -> Self {
        let cfg = plan.config();
        let pool = WorkerPool::new(
            plan.eval_plan(),
            PoolConfig {
                workers: cfg.workers,
                mode: plan.mode(),
                result: cfg.result,
                min_size_scale: cfg.min_size_scale,
                pipeline_depth: cfg.pipeline_depth,
                granularity: cfg.effective_granularity(),
                memo_capacity: cfg.memo_capacity,
                memo_install: cfg.memo_install,
                scheduler: cfg.scheduler,
            },
        );
        BatchDriver {
            pool,
            trees_compiled: 0,
        }
    }

    /// Number of persistent workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The configured in-flight window depth.
    pub fn pipeline_depth(&self) -> usize {
        self.pool.pipeline_depth()
    }

    /// Trees compiled by this driver so far.
    pub fn trees_compiled(&self) -> usize {
        self.trees_compiled
    }

    /// Cumulative memo cache counters since the pool was spawned;
    /// `None` when memoization is off.
    pub fn memo_counters(&self) -> Option<MemoCounters> {
        self.pool.memo_counters()
    }

    /// Compiles one tree on the pool, start to finish (no overlap with
    /// other trees — stream trees through [`BatchDriver::compile_batch`]
    /// to pipeline them).
    ///
    /// # Errors
    ///
    /// Propagates the first [`EvalError`] raised by any machine.
    pub fn compile_tree(&mut self, tree: &Arc<ParseTree<V>>) -> Result<TreeOutput<V>, EvalError> {
        let report = self.pool.eval(tree)?;
        self.trees_compiled += 1;
        Ok(TreeOutput::from_report(report))
    }

    /// Injects a worker crash into the pool: the victim's region jobs
    /// are re-executed from their input logs on the surviving workers
    /// (see [`WorkerPool::kill_worker`]). Requires
    /// [`SchedulerMode::Stealing`]; returns `false` when the scheduler
    /// cannot recover (fixed placement, last survivor, already dead).
    pub fn kill_worker(&mut self, victim: usize) -> bool {
        self.pool.kill_worker(victim)
    }

    /// Cumulative fault and recovery telemetry since the pool was
    /// spawned (or since the last batch started — batches zero it).
    pub fn fault_counters(&self) -> FaultCounters {
        self.pool.fault_counters()
    }

    /// Compiles a stream of trees on the same pool, keeping up to
    /// [`DriverConfig::pipeline_depth`] trees in flight so each tree's
    /// region jobs fill workers idling behind its predecessor's
    /// stragglers. Outputs come back in input order regardless of the
    /// overlap.
    ///
    /// # Errors
    ///
    /// Failures are ticket-scoped: a failing tree cancels only its own
    /// ticket, the rest of the batch still compiles, and the first
    /// error comes back in a [`BatchError`] together with every
    /// successful output. The driver remains usable afterwards.
    pub fn compile_batch(
        &mut self,
        trees: impl IntoIterator<Item = Arc<ParseTree<V>>>,
    ) -> Result<BatchReport<V>, BatchError<V>> {
        let start = Instant::now();
        // Per-batch maxima from a long-lived pool: the pool tracks the
        // exact high-water marks at every dispatch (a driver sampling
        // only at submit boundaries would miss peaks reached while it
        // was blocked inside `submit`'s backpressure).
        self.pool.reset_high_water();
        let memo_start = self.pool.memo_counters();
        let mut outputs = Vec::new();
        let mut failed = None;
        for tree in trees {
            self.pool.submit(&tree);
            while let Some(result) = self.pool.take_ready() {
                match result {
                    Ok(report) => {
                        self.trees_compiled += 1;
                        outputs.push(TreeOutput::from_report(report));
                    }
                    Err(f) => {
                        failed.get_or_insert(f.error);
                    }
                }
            }
        }
        while let Some(result) = self.pool.collect() {
            match result {
                Ok(report) => {
                    self.trees_compiled += 1;
                    outputs.push(TreeOutput::from_report(report));
                }
                Err(f) => {
                    failed.get_or_insert(f.error);
                }
            }
        }
        if let Some(error) = failed {
            return Err(BatchError {
                error,
                completed: outputs,
            });
        }
        Ok(BatchReport {
            outputs,
            elapsed: start.elapsed(),
            pipeline_depth: self.pool.pipeline_depth(),
            max_in_flight: self.pool.max_in_flight(),
            max_regions_in_flight: self.pool.max_regions_in_flight(),
            memo: self
                .pool
                .memo_counters()
                .map(|c| c.since(&memo_start.unwrap_or_default())),
            // `reset_high_water` above zeroed the steal counters, so
            // the cumulative read is this batch's delta.
            sched: self.pool.sched_counters(),
            faults: self.pool.fault_counters(),
        })
    }
}

impl<V: AttrValue> fmt::Debug for BatchDriver<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BatchDriver({:?}, {} trees compiled)",
            self.pool, self.trees_compiled
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragram_core::eval::dynamic_eval;
    use paragram_core::grammar::GrammarBuilder;
    use paragram_core::tree::TreeBuilder;
    use paragram_core::value::Value;
    use paragram_rope::Rope;

    /// Splittable code-generating grammar over `Value` (ropes cross
    /// region boundaries, exercising the librarian epochs). Mirrors the
    /// fixture in `paragram_core::parallel::pool`'s tests — crate
    /// boundaries keep `#[cfg(test)]` fixtures from being shared, and
    /// the two test suites pin independent layers, so they need not
    /// stay in lockstep.
    fn grammar() -> (
        Arc<Grammar<Value>>,
        paragram_core::grammar::ProdId,
        paragram_core::grammar::ProdId,
        paragram_core::grammar::ProdId,
        AttrId,
    ) {
        let mut g = GrammarBuilder::<Value>::new();
        let s = g.nonterminal("S");
        let l = g.nonterminal("stmts");
        let out = g.synthesized(s, "code");
        let decls = g.synthesized(l, "decls");
        let env = g.inherited(l, "env");
        let code = g.synthesized(l, "code");
        g.mark_split(l, 4);
        let top = g.production("top", s, [l]);
        g.rule(top, (1, env), [(1, decls)], |a| a[0].clone());
        g.rule(top, (0, out), [(1, code)], |a| a[0].clone());
        let cons = g.production("cons", l, [l]);
        g.rule(cons, (0, decls), [(1, decls)], |a| {
            Value::Int(a[0].as_int().unwrap() + 1)
        });
        g.rule(cons, (1, env), [(0, env)], |a| a[0].clone());
        g.rule(cons, (0, code), [(1, code), (0, env)], |a| {
            let line = format!("op {}\n", a[1].as_int().unwrap());
            Value::Rope(Rope::from(line).concat(a[0].as_rope().unwrap()))
        });
        let nil = g.production("nil", l, []);
        g.rule(nil, (0, decls), [], |_| Value::Int(0));
        g.rule(nil, (0, code), [], |_| Value::Rope(Rope::new()));
        (Arc::new(g.build(s).unwrap()), top, cons, nil, out)
    }

    fn chain(
        grammar: &Arc<Grammar<Value>>,
        top: paragram_core::grammar::ProdId,
        cons: paragram_core::grammar::ProdId,
        nil: paragram_core::grammar::ProdId,
        n: usize,
    ) -> Arc<ParseTree<Value>> {
        let mut tb = TreeBuilder::new(grammar);
        let mut tail = tb.leaf(nil);
        for _ in 0..n {
            tail = tb.node(cons, [tail]);
        }
        let root = tb.node(top, [tail]);
        Arc::new(tb.finish(root).unwrap())
    }

    #[test]
    fn batch_of_differently_sized_trees_matches_sequential() {
        let (gr, top, cons, nil, out) = grammar();
        let plan = CompilationPlan::analyze(&gr, DriverConfig::workers(3));
        let mut driver = BatchDriver::new(&plan);
        let sizes = [5usize, 40, 12, 64, 1, 23];
        let trees: Vec<_> = sizes
            .iter()
            .map(|&n| chain(&gr, top, cons, nil, n))
            .collect();
        let report = driver.compile_batch(trees.iter().cloned()).unwrap();
        assert_eq!(report.outputs.len(), sizes.len());
        assert_eq!(driver.trees_compiled(), sizes.len());
        for (tree, output) in trees.iter().zip(&report.outputs) {
            let (dstore, _) = dynamic_eval(tree).unwrap();
            assert_eq!(
                output.root_value(out),
                dstore.get(tree.root(), out),
                "tree of {} nodes",
                tree.len()
            );
            assert_eq!(output.store.filled(), output.store.len());
        }
        assert!(report.trees_per_sec() > 0.0);
    }

    #[test]
    fn driver_uses_best_mode_and_reports_regions() {
        let (gr, top, cons, nil, _) = grammar();
        let plan = CompilationPlan::analyze(&gr, DriverConfig::workers(4));
        assert_eq!(plan.mode(), MachineMode::Combined);
        let mut driver = BatchDriver::new(&plan);
        let output = driver
            .compile_tree(&chain(&gr, top, cons, nil, 64))
            .unwrap();
        assert!(output.regions > 1, "large tree should be split");
        assert!(output.stats.static_applied > 0, "combined mode ran plans");
    }

    #[test]
    fn adaptive_granularity_reports_region_level_stats() {
        let (gr, top, cons, nil, out) = grammar();
        let tree = chain(&gr, top, cons, nil, 96);
        let base = CompilationPlan::analyze(&gr, DriverConfig::workers(2));
        let budget = (base.eval_plan().tree_work(&tree) / 8).max(1);
        let plan = CompilationPlan::from_plan(
            base.eval_plan(),
            DriverConfig::workers(2).with_adaptive_budget(budget),
        );
        let mut driver = BatchDriver::new(&plan);
        let report = driver
            .compile_batch([Arc::clone(&tree), Arc::clone(&tree)])
            .unwrap();
        // A single huge tree keeps more region jobs in flight than the
        // tree window suggests.
        assert!(
            report.max_regions_in_flight > report.max_in_flight,
            "regions {} vs trees {}",
            report.max_regions_in_flight,
            report.max_in_flight
        );
        assert!(report.outputs[0].regions > driver.workers());
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        for output in &report.outputs {
            assert_eq!(output.root_value(out), dstore.get(tree.root(), out));
            assert_eq!(output.store.filled(), output.store.len());
        }
    }

    #[test]
    fn failed_batch_returns_earlier_completed_trees_with_the_error() {
        // Grammar with a benign production and a self-dependent one:
        // trees of `ok` leaves evaluate, a tree containing `knot`
        // raises a cycle error mid-batch.
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let b = g.nonterminal("B");
        let out = g.synthesized(s, "out");
        let bi = g.inherited(b, "i");
        let bo = g.synthesized(b, "o");
        let top = g.production("top", s, [b]);
        g.rule(top, (1, bi), [], |_| 1);
        g.rule(top, (0, out), [(1, bo)], |a| a[0] + 100);
        let ok = g.production("ok", b, []);
        g.rule(ok, (0, bo), [(0, bi)], |a| a[0]);
        let knot = g.production("knot", b, []);
        g.rule(knot, (0, bo), [(0, bo)], |a| a[0]);
        let gr = Arc::new(g.build(s).unwrap());
        let mk = |prod| {
            let mut tb = TreeBuilder::new(&gr);
            let leaf = tb.leaf(prod);
            let root = tb.node(top, [leaf]);
            Arc::new(tb.finish(root).unwrap())
        };
        let plan = CompilationPlan::analyze(&gr, DriverConfig::barrier(2));
        assert_eq!(plan.mode(), MachineMode::Dynamic, "cyclic grammar");
        let mut driver = BatchDriver::new(&plan);
        let batch = [mk(ok), mk(ok), mk(ok), mk(knot), mk(ok)];
        let err = driver.compile_batch(batch).map(|_| ()).unwrap_err();
        assert!(matches!(err.error, EvalError::Cycle { .. }), "{err}");
        // The knot fails only its own ticket: every healthy tree —
        // including the one submitted after it — still compiles.
        assert_eq!(err.completed.len(), 4);
        for output in &err.completed {
            assert_eq!(output.root_value(out), Some(&101));
        }
        assert_eq!(driver.trees_compiled(), 4);
        // The driver is not poisoned: the next batch runs normally.
        let report = driver.compile_batch([mk(ok), mk(ok)]).unwrap();
        assert_eq!(report.outputs.len(), 2);
        assert_eq!(
            report.faults,
            paragram_core::parallel::pool::FaultCounters::default()
        );
    }

    #[test]
    fn dynamic_mode_override_is_respected() {
        let (gr, top, cons, nil, out) = grammar();
        let config = DriverConfig {
            mode: Some(MachineMode::Dynamic),
            ..DriverConfig::workers(2)
        };
        let plan = CompilationPlan::analyze(&gr, config);
        let mut driver = BatchDriver::new(&plan);
        let tree = chain(&gr, top, cons, nil, 20);
        let output = driver.compile_tree(&tree).unwrap();
        assert_eq!(output.stats.static_applied, 0);
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        assert_eq!(output.root_value(out), dstore.get(tree.root(), out));
    }
}
