//! Open-arrival service front end over the region pool.
//!
//! [`super::BatchDriver::compile_batch`] is a *closed* model: the whole
//! batch is known up front and the driver may block. A compilation
//! service faces an **open arrival** stream — requests arrive while
//! earlier ones are still evaluating — and needs three things the batch
//! driver does not provide:
//!
//! * **Bounded admission.** A waiting room of at most
//!   [`ServiceConfig::capacity`] requests; an arrival that finds it
//!   full is [shed](Admission::Shed) instead of growing an unbounded
//!   queue. Shed decisions are a pure function of the waiting-queue
//!   length, never of wall-clock timing, so they are reproducible.
//! * **Policy-ordered dispatch.** The waiting room drains through a
//!   [`PolicyQueue`] — FIFO, shortest-job-first keyed by
//!   [`EvalPlan::tree_work`](paragram_core::eval::EvalPlan::tree_work)
//!   (an admission-time estimate, no evaluation needed), or per-tenant
//!   deficit fair queueing. The pool retires trees FIFO in *dispatch*
//!   order, so the policy's entire lever is choosing what enters the
//!   pipeline window next — exactly the lever the simulated service
//!   (`paragram_core::parallel::sim::run_sim_service`) models with the
//!   same `PolicyQueue` code.
//! * **Non-blocking progress.** [`ServiceQueue::offer`] never blocks
//!   and performs no pool work; [`ServiceQueue::pump`] drains worker
//!   completions ([`WorkerPool::poll`]), tops up the pipeline window,
//!   and harvests finished requests. A serving loop interleaves the two
//!   however its arrival source dictates.
//!
//! Every request carries [`RequestTimes`]: enqueue → admit → first
//! region dispatched → assembled, the measurement points
//! `bench_latency` turns into per-size-class percentiles.

use crate::{CompilationPlan, TreeOutput};
use paragram_core::eval::EvalError;
use paragram_core::memo::MemoCounters;
use paragram_core::parallel::policy::{DispatchPolicy, PolicyQueue, QueuedJob};
use paragram_core::parallel::pool::{FaultCounters, PoolConfig, SchedCounters, WorkerPool};
use paragram_core::tree::ParseTree;
use paragram_core::value::AttrValue;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Service shape: how many requests may wait, in what order they leave
/// the waiting room, and how deadlines and failures are handled.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Dispatch policy for the waiting room.
    pub policy: DispatchPolicy,
    /// Waiting-room bound (clamped ≥ 1): an [`ServiceQueue::offer`]
    /// that finds this many requests *waiting* (not yet dispatched) is
    /// shed.
    pub capacity: usize,
    /// Default completion deadline applied to every offer (overridable
    /// per request via [`ServiceQueue::offer_with_deadline`]). `None`
    /// disables deadline handling entirely.
    pub deadline: Option<Duration>,
    /// Calibration constant for admission-time deadline shedding:
    /// estimated wall-clock microseconds per plan work unit
    /// ([`paragram_core::eval::EvalPlan::tree_work`]). When non-zero
    /// and a request carries a deadline, an offer whose *predicted*
    /// completion (pending work ahead of it + its own work, scaled by
    /// this constant) already exceeds the deadline is shed at the door
    /// ([`Admission::DeadlineShed`]) instead of occupying a waiting
    /// slot it cannot use. 0 disables prediction; expiry then happens
    /// lazily at dispatch time.
    pub work_unit_us: f64,
    /// How many times a request whose ticket failed is re-dispatched
    /// before the failure is surfaced via
    /// [`ServiceQueue::take_failed`]. 0 (the default) fails fast.
    pub max_retries: u32,
    /// Base backoff before the first retry; attempt *n* waits
    /// `retry_backoff * 2^(n-1)`. Retries park outside the policy
    /// queue and re-dispatch directly once their backoff elapses.
    pub retry_backoff: Duration,
}

impl ServiceConfig {
    /// FIFO dispatch with the given waiting-room bound; no deadlines,
    /// no retries.
    pub fn fifo(capacity: usize) -> Self {
        ServiceConfig {
            policy: DispatchPolicy::Fifo,
            capacity,
            deadline: None,
            work_unit_us: 0.0,
            max_retries: 0,
            retry_backoff: Duration::ZERO,
        }
    }

    /// The configuration with a different dispatch policy.
    pub fn with_policy(self, policy: DispatchPolicy) -> Self {
        ServiceConfig { policy, ..self }
    }

    /// The configuration with a default completion deadline.
    pub fn with_deadline(self, deadline: Duration) -> Self {
        ServiceConfig {
            deadline: Some(deadline),
            ..self
        }
    }

    /// The configuration with the given predicted-wait calibration
    /// (microseconds per work unit) for admission-time shedding.
    pub fn with_work_unit_us(self, work_unit_us: f64) -> Self {
        ServiceConfig {
            work_unit_us,
            ..self
        }
    }

    /// The configuration with bounded retry-with-backoff for failed
    /// tickets.
    pub fn with_retries(self, max_retries: u32, retry_backoff: Duration) -> Self {
        ServiceConfig {
            max_retries,
            retry_backoff,
            ..self
        }
    }
}

/// Outcome of offering one request to the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request entered the waiting room; its output will carry this
    /// id.
    Admitted {
        /// Monotonic per-queue request id (also the key for
        /// [`ServiceQueue::times`]).
        id: u64,
    },
    /// The waiting room was full; the request was dropped. The caller
    /// owns retry/backoff.
    Shed,
    /// The request carried a deadline its predicted completion time
    /// already exceeds; admitting it would waste a waiting slot on
    /// work that gets thrown away. Counted in
    /// [`FaultCounters::deadline_sheds`].
    DeadlineShed,
}

/// Wall-clock milestones of one admitted request.
#[derive(Debug, Clone, Copy)]
pub struct RequestTimes {
    /// When the request was offered.
    pub enqueued: Instant,
    /// When admission accepted it (same instant as `enqueued` here —
    /// admission is synchronous; the simulated service separates the
    /// two by the parse cost).
    pub admitted: Instant,
    /// When its first region job was dispatched to a worker.
    pub dispatched: Option<Instant>,
    /// When its assembled output became available.
    pub assembled: Option<Instant>,
}

impl RequestTimes {
    /// Enqueue-to-assembled latency, if the request completed.
    pub fn latency(&self) -> Option<std::time::Duration> {
        self.assembled.map(|a| a - self.enqueued)
    }

    /// Time spent waiting for dispatch (enqueue → first region job).
    pub fn queueing(&self) -> Option<std::time::Duration> {
        self.dispatched.map(|d| d - self.enqueued)
    }
}

/// A finished request: its id, tenant, and compiled output.
pub struct ServiceOutput<V: AttrValue> {
    /// The id [`ServiceQueue::offer`] returned for this request.
    pub id: u64,
    /// The tenant it was billed to.
    pub tenant: u32,
    /// The compiled tree.
    pub output: TreeOutput<V>,
}

/// Why a request could not be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureReason {
    /// Its ticket failed this many times (the configured retry budget
    /// plus the first attempt) with this error last.
    Eval(EvalError),
    /// Its deadline passed while it waited for dispatch; the work was
    /// never started. Counted in [`FaultCounters::deadline_expired`].
    DeadlineExpired,
}

/// A request the service gave up on, surfaced via
/// [`ServiceQueue::take_failed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedRequest {
    /// The id [`ServiceQueue::offer`] returned for this request.
    pub id: u64,
    /// The tenant it was billed to.
    pub tenant: u32,
    /// Re-dispatch attempts consumed before giving up.
    pub retries: u32,
    /// Why it failed.
    pub reason: FailureReason,
}

/// Admission / completion accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests offered, admitted or not.
    pub offered: usize,
    /// Requests admitted to the waiting room.
    pub admitted: usize,
    /// Requests shed by the full waiting room (deadline sheds are
    /// counted separately, in `faults`).
    pub shed: usize,
    /// Requests fully compiled and assembled.
    pub completed: usize,
    /// Requests the service gave up on (retries exhausted or deadline
    /// expired before dispatch); claimable via
    /// [`ServiceQueue::take_failed`].
    pub failed: usize,
    /// Largest number of requests ever waiting at once.
    pub max_waiting: usize,
    /// Cumulative memo cache activity (all zeros when
    /// [`DriverConfig::memo_capacity`](crate::DriverConfig::memo_capacity)
    /// is 0 — the cache is off and nothing ever probes it).
    pub memo: MemoCounters,
    /// Cumulative steal-scheduler telemetry (all zeros under
    /// [`SchedulerMode::Fixed`](paragram_core::parallel::pool::SchedulerMode::Fixed)).
    pub sched: SchedCounters,
    /// Fault and recovery telemetry: the pool's counters (crashes,
    /// regions re-executed, duplicates suppressed, panics contained)
    /// merged with the service's own deadline-shed, deadline-expiry
    /// and retry counts.
    pub faults: FaultCounters,
}

/// An open-arrival compilation service over one persistent
/// [`WorkerPool`]: bounded admission, policy-ordered dispatch,
/// non-blocking progress. See the [module docs](self).
pub struct ServiceQueue<V: AttrValue> {
    pool: WorkerPool<V>,
    queue: PolicyQueue,
    /// Trees of live (admitted, not yet finished/failed) requests, by
    /// request id. Kept through dispatch so a failed ticket can be
    /// re-dispatched.
    trees: HashMap<u64, Arc<ParseTree<V>>>,
    /// Tenants of admitted requests, by request id.
    tenants: HashMap<u64, u32>,
    /// Plan work estimates of live requests, by request id.
    work: HashMap<u64, u64>,
    /// Absolute completion deadlines, by request id.
    deadlines: HashMap<u64, Instant>,
    /// Re-dispatch attempts consumed, by request id (absent = 0).
    retries: HashMap<u64, u32>,
    /// Failed tickets waiting out their retry backoff; re-dispatched
    /// directly (bypassing the policy queue) once `not_before` passes.
    parked_retries: Vec<ParkedRetry>,
    /// Dispatched, uncompleted request ids in dispatch order — the pool
    /// retires FIFO in dispatch order, so results match this front to
    /// back.
    dispatched: VecDeque<u64>,
    completed: VecDeque<ServiceOutput<V>>,
    failed: VecDeque<FailedRequest>,
    times: HashMap<u64, RequestTimes>,
    capacity: usize,
    next_id: u64,
    /// Sum of `work` over requests waiting for dispatch.
    queued_work: u64,
    /// Sum of `work` over dispatched, uncompleted requests.
    in_service_work: u64,
    deadline: Option<Duration>,
    work_unit_us: f64,
    max_retries: u32,
    retry_backoff: Duration,
    deadline_sheds: u64,
    deadline_expired: u64,
    retry_count: u64,
    stats: ServiceStats,
}

struct ParkedRetry {
    id: u64,
    not_before: Instant,
}

impl<V: AttrValue> ServiceQueue<V> {
    /// Spawns the worker pool (threads + librarian) and an empty
    /// waiting room.
    pub fn new(plan: &CompilationPlan<V>, service: ServiceConfig) -> Self {
        let cfg = plan.config();
        let pool = WorkerPool::new(
            plan.eval_plan(),
            PoolConfig {
                workers: cfg.workers,
                mode: plan.mode(),
                result: cfg.result,
                min_size_scale: cfg.min_size_scale,
                pipeline_depth: cfg.pipeline_depth,
                granularity: cfg.effective_granularity(),
                memo_capacity: cfg.memo_capacity,
                memo_install: cfg.memo_install,
                scheduler: cfg.scheduler,
            },
        );
        ServiceQueue {
            pool,
            queue: PolicyQueue::new(service.policy),
            trees: HashMap::new(),
            tenants: HashMap::new(),
            work: HashMap::new(),
            deadlines: HashMap::new(),
            retries: HashMap::new(),
            parked_retries: Vec::new(),
            dispatched: VecDeque::new(),
            completed: VecDeque::new(),
            failed: VecDeque::new(),
            times: HashMap::new(),
            capacity: service.capacity.max(1),
            next_id: 0,
            queued_work: 0,
            in_service_work: 0,
            deadline: service.deadline,
            work_unit_us: service.work_unit_us,
            max_retries: service.max_retries,
            retry_backoff: service.retry_backoff,
            deadline_sheds: 0,
            deadline_expired: 0,
            retry_count: 0,
            stats: ServiceStats::default(),
        }
    }

    /// The dispatch policy in force.
    pub fn policy(&self) -> DispatchPolicy {
        self.queue.policy()
    }

    /// Admission / completion accounting so far, including the pool's
    /// cumulative memo cache, scheduler and fault counters (the
    /// service's own deadline and retry counts are merged into
    /// `faults`).
    pub fn stats(&self) -> ServiceStats {
        let mut faults = self.pool.fault_counters();
        faults.deadline_sheds = self.deadline_sheds;
        faults.deadline_expired = self.deadline_expired;
        faults.retries = self.retry_count;
        ServiceStats {
            memo: self.pool.memo_counters().unwrap_or_default(),
            sched: self.pool.sched_counters(),
            faults,
            ..self.stats
        }
    }

    /// Requests admitted but not yet dispatched.
    pub fn waiting(&self) -> usize {
        self.queue.len()
    }

    /// Requests dispatched but not yet completed.
    pub fn in_service(&self) -> usize {
        self.dispatched.len()
    }

    /// Milestones of request `id` (admitted requests only).
    pub fn times(&self, id: u64) -> Option<&RequestTimes> {
        self.times.get(&id)
    }

    /// Offers one request with the configured default deadline. Never
    /// blocks and never performs pool work — the admission decision is
    /// a pure function of the waiting-queue length (and, with a
    /// deadline plus a non-zero `work_unit_us`, of the pending work
    /// total), so a given arrival sequence always sheds the same
    /// requests regardless of wall-clock timing. Call
    /// [`ServiceQueue::pump`] to make progress.
    pub fn offer(&mut self, tree: &Arc<ParseTree<V>>, tenant: u32) -> Admission {
        self.offer_with_deadline(tree, tenant, self.deadline)
    }

    /// Offers one request with an explicit completion deadline
    /// (overriding the configured default; `None` means no deadline).
    pub fn offer_with_deadline(
        &mut self,
        tree: &Arc<ParseTree<V>>,
        tenant: u32,
        deadline: Option<Duration>,
    ) -> Admission {
        self.stats.offered += 1;
        if self.queue.len() >= self.capacity {
            self.stats.shed += 1;
            return Admission::Shed;
        }
        let work = self.pool.plan().tree_work(tree);
        if let Some(d) = deadline {
            // Predicted completion: everything already pending (waiting
            // + in service) runs before this request finishes, plus its
            // own work — all scaled by the calibration constant.
            if self.work_unit_us > 0.0 {
                let pending = self.queued_work + self.in_service_work + work;
                let predicted_us = pending as f64 * self.work_unit_us;
                if predicted_us > d.as_micros() as f64 {
                    self.deadline_sheds += 1;
                    return Admission::DeadlineShed;
                }
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push(QueuedJob {
            seq: id,
            tenant,
            work,
        });
        self.trees.insert(id, Arc::clone(tree));
        self.tenants.insert(id, tenant);
        self.work.insert(id, work);
        self.queued_work += work;
        let now = Instant::now();
        if let Some(d) = deadline {
            self.deadlines.insert(id, now + d);
        }
        self.times.insert(
            id,
            RequestTimes {
                enqueued: now,
                admitted: now,
                dispatched: None,
                assembled: None,
            },
        );
        self.stats.admitted += 1;
        self.stats.max_waiting = self.stats.max_waiting.max(self.queue.len());
        Admission::Admitted { id }
    }

    /// Makes all currently possible progress without blocking: drains
    /// worker completions, re-dispatches retries whose backoff has
    /// elapsed, tops up the pipeline window from the waiting room in
    /// policy order (expiring requests whose deadline already passed),
    /// and moves finished requests to
    /// [`ServiceQueue::take_completed`]. Returns how many requests
    /// completed during this call.
    pub fn pump(&mut self) -> usize {
        self.pool.poll();
        let mut done = self.harvest();
        while self.pool.in_flight() < self.pool.pipeline_depth() {
            let now = Instant::now();
            // Parked retries first: they already held a window slot
            // once and bypass the policy queue on re-dispatch.
            if let Some(pos) = self.parked_retries.iter().position(|p| p.not_before <= now) {
                let ParkedRetry { id, .. } = self.parked_retries.swap_remove(pos);
                let tree = Arc::clone(self.trees.get(&id).expect("retried tree kept"));
                self.pool.submit(&tree);
                self.in_service_work += self.work.get(&id).copied().unwrap_or(0);
                self.dispatched.push_back(id);
                continue;
            }
            let Some(job) = self.queue.pop() else { break };
            self.queued_work = self.queued_work.saturating_sub(job.work);
            // Lazy expiry: a request whose deadline passed while it
            // waited is dropped at the door of the pool — its output
            // could only be thrown away.
            if self.deadlines.get(&job.seq).is_some_and(|dl| now > *dl) {
                self.deadline_expired += 1;
                self.give_up(job.seq, FailureReason::DeadlineExpired);
                continue;
            }
            let tree = Arc::clone(self.trees.get(&job.seq).expect("queued tree kept"));
            // The window has room, so submit dispatches without
            // blocking on retirement.
            self.pool.submit(&tree);
            self.times.get_mut(&job.seq).expect("admitted").dispatched = Some(Instant::now());
            self.in_service_work += job.work;
            self.dispatched.push_back(job.seq);
        }
        self.pool.poll();
        done += self.harvest();
        done
    }

    /// Runs the service to completion: blocks until every admitted
    /// request has been compiled and assembled, failed its retry
    /// budget, or expired (use between arrival bursts, or at
    /// shutdown).
    pub fn drain(&mut self) {
        loop {
            self.pump();
            if self.queue.is_empty() && self.dispatched.is_empty() && self.parked_retries.is_empty()
            {
                return;
            }
            match self.pool.collect() {
                Some(Ok(report)) => self.finish(crate::TreeOutput::from_report(report)),
                Some(Err(failure)) => self.handle_failure(failure.error),
                // Nothing in flight: parked retries are waiting out
                // their backoff.
                None => {
                    let now = Instant::now();
                    if let Some(wait) = self
                        .parked_retries
                        .iter()
                        .map(|p| p.not_before.saturating_duration_since(now))
                        .min()
                    {
                        std::thread::sleep(wait);
                    }
                }
            }
        }
    }

    /// Pops the oldest finished request (completion order).
    pub fn take_completed(&mut self) -> Option<ServiceOutput<V>> {
        self.completed.pop_front()
    }

    /// Pops the oldest given-up request (failure order): retry budget
    /// exhausted or deadline expired before dispatch.
    pub fn take_failed(&mut self) -> Option<FailedRequest> {
        self.failed.pop_front()
    }

    fn harvest(&mut self) -> usize {
        let mut n = 0;
        while let Some(result) = self.pool.take_ready() {
            match result {
                Ok(report) => {
                    self.finish(crate::TreeOutput::from_report(report));
                    n += 1;
                }
                Err(failure) => self.handle_failure(failure.error),
            }
        }
        n
    }

    fn finish(&mut self, output: TreeOutput<V>) {
        let id = self
            .dispatched
            .pop_front()
            .expect("results match dispatched requests FIFO");
        self.times.get_mut(&id).expect("admitted").assembled = Some(Instant::now());
        let tenant = self.tenants[&id];
        self.in_service_work = self
            .in_service_work
            .saturating_sub(self.work.get(&id).copied().unwrap_or(0));
        self.forget(id);
        self.stats.completed += 1;
        self.completed
            .push_back(ServiceOutput { id, tenant, output });
    }

    /// A dispatched ticket failed: park it for a backed-off retry, or
    /// surface the failure once the budget is exhausted. Ticket
    /// failures arrive in dispatch order exactly like successes, so
    /// the FIFO id mapping holds.
    fn handle_failure(&mut self, error: EvalError) {
        let id = self
            .dispatched
            .pop_front()
            .expect("results match dispatched requests FIFO");
        self.in_service_work = self
            .in_service_work
            .saturating_sub(self.work.get(&id).copied().unwrap_or(0));
        let attempts = self.retries.entry(id).or_insert(0);
        if *attempts < self.max_retries {
            *attempts += 1;
            self.retry_count += 1;
            let backoff = self.retry_backoff * 2u32.saturating_pow(*attempts - 1);
            self.parked_retries.push(ParkedRetry {
                id,
                not_before: Instant::now() + backoff,
            });
        } else {
            self.give_up(id, FailureReason::Eval(error));
        }
    }

    /// Drops a live request and records it as failed.
    fn give_up(&mut self, id: u64, reason: FailureReason) {
        let tenant = self.tenants[&id];
        let retries = self.retries.get(&id).copied().unwrap_or(0);
        self.forget(id);
        self.stats.failed += 1;
        self.failed.push_back(FailedRequest {
            id,
            tenant,
            retries,
            reason,
        });
    }

    /// Releases per-request bookkeeping (timestamps are kept for the
    /// caller).
    fn forget(&mut self, id: u64) {
        self.trees.remove(&id);
        self.work.remove(&id);
        self.deadlines.remove(&id);
        self.retries.remove(&id);
    }
}

impl<V: AttrValue> fmt::Debug for ServiceQueue<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ServiceQueue({}, {} waiting, {} in service, {:?})",
            self.policy().name(),
            self.waiting(),
            self.in_service(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompilationPlan, DriverConfig};
    use paragram_core::eval::dynamic_eval;
    use paragram_core::grammar::{AttrId, Grammar, GrammarBuilder, ProdId};
    use paragram_core::tree::TreeBuilder;

    /// Integer chain grammar: cheap, deterministic, splittable.
    fn grammar() -> (Arc<Grammar<i64>>, ProdId, ProdId, ProdId, AttrId) {
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let l = g.nonterminal("list");
        let out = g.synthesized(s, "sum");
        let total = g.synthesized(l, "total");
        g.mark_split(l, 4);
        let top = g.production("top", s, [l]);
        g.rule(top, (0, out), [(1, total)], |a| a[0] + 100);
        let cons = g.production("cons", l, [l]);
        g.rule(cons, (0, total), [(1, total)], |a| a[0] + 1);
        let nil = g.production("nil", l, []);
        g.rule(nil, (0, total), [], |_| 0);
        (Arc::new(g.build(s).unwrap()), top, cons, nil, out)
    }

    fn chain(
        grammar: &Arc<Grammar<i64>>,
        top: ProdId,
        cons: ProdId,
        nil: ProdId,
        n: usize,
    ) -> Arc<ParseTree<i64>> {
        let mut tb = TreeBuilder::new(grammar);
        let mut tail = tb.leaf(nil);
        for _ in 0..n {
            tail = tb.node(cons, [tail]);
        }
        let root = tb.node(top, [tail]);
        Arc::new(tb.finish(root).unwrap())
    }

    #[test]
    fn service_compiles_an_open_stream_correctly() {
        let (gr, top, cons, nil, out) = grammar();
        let plan = CompilationPlan::analyze(&gr, DriverConfig::workers(2));
        let mut q = ServiceQueue::new(&plan, ServiceConfig::fifo(64));
        let sizes = [5usize, 40, 12, 64, 1, 23];
        let mut ids = Vec::new();
        for (i, &n) in sizes.iter().enumerate() {
            let tree = chain(&gr, top, cons, nil, n);
            match q.offer(&tree, (i % 2) as u32) {
                Admission::Admitted { id } => ids.push((id, n)),
                other => panic!("roomy queue must not shed: {other:?}"),
            }
            // Interleave progress with arrivals, as a serving loop does.
            q.pump();
        }
        q.drain();
        let mut seen = 0;
        while let Some(done) = q.take_completed() {
            let (_, n) = ids.iter().find(|&&(id, _)| id == done.id).unwrap();
            let tree = chain(&gr, top, cons, nil, *n);
            let (dstore, _) = dynamic_eval(&tree).unwrap();
            assert_eq!(done.output.root_value(out), dstore.get(tree.root(), out));
            let t = q.times(done.id).unwrap();
            assert!(t.dispatched.is_some() && t.assembled.is_some());
            assert!(t.latency().unwrap() >= t.queueing().unwrap());
            seen += 1;
        }
        assert_eq!(seen, sizes.len());
        let stats = q.stats();
        assert_eq!(stats.offered, sizes.len());
        assert_eq!(stats.admitted, sizes.len());
        assert_eq!(stats.completed, sizes.len());
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn admission_sheds_deterministically_at_capacity() {
        let (gr, top, cons, nil, _) = grammar();
        let plan = CompilationPlan::analyze(&gr, DriverConfig::workers(2).with_pipeline_depth(1));
        let mut q = ServiceQueue::new(&plan, ServiceConfig::fifo(2));
        let tree = chain(&gr, top, cons, nil, 16);
        // No pump between offers: the waiting room fills at exactly
        // capacity and sheds everything after, independent of timing.
        let admissions: Vec<bool> = (0..5)
            .map(|_| matches!(q.offer(&tree, 0), Admission::Admitted { .. }))
            .collect();
        assert_eq!(admissions, vec![true, true, false, false, false]);
        let stats = q.stats();
        assert_eq!((stats.offered, stats.admitted, stats.shed), (5, 2, 3));
        assert_eq!(stats.max_waiting, 2);
        q.drain();
        assert_eq!(q.stats().completed, 2);
        // The drained queue has room again.
        assert!(matches!(q.offer(&tree, 0), Admission::Admitted { .. }));
        q.drain();
        assert_eq!(q.stats().completed, 3);
    }

    #[test]
    fn sjf_dispatches_small_requests_past_a_queued_huge_one() {
        let (gr, top, cons, nil, _) = grammar();
        let plan = CompilationPlan::analyze(&gr, DriverConfig::workers(2).with_pipeline_depth(1));
        let mut q = ServiceQueue::new(
            &plan,
            ServiceConfig::fifo(16).with_policy(DispatchPolicy::ShortestJobFirst),
        );
        // All four queue while nothing pumps; the depth-1 window then
        // admits them strictly in SJF order, and FIFO retirement means
        // completion order equals dispatch order.
        let sizes = [300usize, 8, 150, 4];
        for &n in &sizes {
            q.offer(&chain(&gr, top, cons, nil, n), 0);
        }
        q.drain();
        let order: Vec<u64> = std::iter::from_fn(|| q.take_completed())
            .map(|d| d.id)
            .collect();
        assert_eq!(order, vec![3, 1, 2, 0], "smallest work first");
        // Dispatch preserved the policy order in the timestamps too.
        let dispatch_times: Vec<_> = order
            .iter()
            .map(|&id| q.times(id).unwrap().dispatched.unwrap())
            .collect();
        assert!(dispatch_times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn fair_queueing_alternates_tenants_under_flood() {
        let (gr, top, cons, nil, _) = grammar();
        let plan = CompilationPlan::analyze(&gr, DriverConfig::workers(2).with_pipeline_depth(1));
        let tree = chain(&gr, top, cons, nil, 16);
        let quantum = plan.eval_plan().tree_work(&tree);
        let mut q = ServiceQueue::new(
            &plan,
            ServiceConfig::fifo(16).with_policy(DispatchPolicy::FairQueue { quantum }),
        );
        // Tenant 0 floods four requests before tenant 1's one arrives.
        for _ in 0..4 {
            q.offer(&tree, 0);
        }
        q.offer(&tree, 1);
        q.drain();
        let order: Vec<u64> = std::iter::from_fn(|| q.take_completed())
            .map(|d| d.id)
            .collect();
        assert_eq!(
            order,
            vec![0, 4, 1, 2, 3],
            "tenant 1 is served after one of tenant 0's, not after the flood"
        );
    }

    #[test]
    fn deadline_shedding_at_admission_is_predicted_from_work() {
        let (gr, top, cons, nil, _) = grammar();
        let plan = CompilationPlan::analyze(&gr, DriverConfig::workers(2).with_pipeline_depth(1));
        let tree = chain(&gr, top, cons, nil, 32);
        let work = plan.eval_plan().tree_work(&tree);
        // Calibrate so one request's predicted completion fits inside
        // the deadline but two pending requests' total does not.
        let deadline = Duration::from_secs(1);
        let unit_us = 0.6e6 / work as f64;
        let mut q = ServiceQueue::new(
            &plan,
            ServiceConfig::fifo(64)
                .with_deadline(deadline)
                .with_work_unit_us(unit_us),
        );
        // No pump between offers: the decision is a pure function of
        // pending work, reproducible regardless of timing.
        assert!(matches!(q.offer(&tree, 0), Admission::Admitted { .. }));
        assert_eq!(q.offer(&tree, 0), Admission::DeadlineShed);
        // A deadline-free offer of the same tree passes.
        assert!(matches!(
            q.offer_with_deadline(&tree, 0, None),
            Admission::Admitted { .. }
        ));
        q.drain();
        let stats = q.stats();
        assert_eq!(stats.faults.deadline_sheds, 1);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.shed, 0, "capacity sheds counted separately");
    }

    #[test]
    fn queued_requests_past_their_deadline_expire_at_dispatch() {
        let (gr, top, cons, nil, _) = grammar();
        let plan = CompilationPlan::analyze(&gr, DriverConfig::workers(2).with_pipeline_depth(1));
        let tree = chain(&gr, top, cons, nil, 16);
        // Zero deadline, no predicted-wait calibration: everything is
        // admitted, then found expired when it reaches the pool door.
        let mut q = ServiceQueue::new(&plan, ServiceConfig::fifo(64).with_deadline(Duration::ZERO));
        let mut ids = Vec::new();
        for _ in 0..3 {
            match q.offer(&tree, 7) {
                Admission::Admitted { id } => ids.push(id),
                other => panic!("unexpected admission {other:?}"),
            }
        }
        std::thread::sleep(Duration::from_millis(1));
        q.drain();
        let stats = q.stats();
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.failed, 3);
        assert_eq!(stats.faults.deadline_expired, 3);
        for &id in &ids {
            let f = q.take_failed().expect("expired request surfaces");
            assert_eq!(f.id, id, "failure order follows dispatch order");
            assert_eq!(f.tenant, 7);
            assert_eq!(f.reason, FailureReason::DeadlineExpired);
        }
        assert!(q.take_failed().is_none());
        // The queue still serves fresh deadline-free work.
        assert!(matches!(
            q.offer_with_deadline(&tree, 7, None),
            Admission::Admitted { .. }
        ));
        q.drain();
        assert_eq!(q.stats().completed, 1);
    }

    #[test]
    fn failed_tickets_retry_with_backoff_then_surface() {
        // A self-dependent production fails deterministically on every
        // attempt: the retry budget is consumed, then the failure
        // surfaces with the final error. Healthy requests sharing the
        // service are unaffected.
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let b = g.nonterminal("B");
        let out = g.synthesized(s, "out");
        let bi = g.inherited(b, "i");
        let bo = g.synthesized(b, "o");
        let top = g.production("top", s, [b]);
        g.rule(top, (1, bi), [], |_| 1);
        g.rule(top, (0, out), [(1, bo)], |a| a[0] + 100);
        let ok = g.production("ok", b, []);
        g.rule(ok, (0, bo), [(0, bi)], |a| a[0]);
        let knot = g.production("knot", b, []);
        g.rule(knot, (0, bo), [(0, bo)], |a| a[0]);
        let gr = Arc::new(g.build(s).unwrap());
        let mk = |prod| {
            let mut tb = TreeBuilder::new(&gr);
            let leaf = tb.leaf(prod);
            let root = tb.node(top, [leaf]);
            Arc::new(tb.finish(root).unwrap())
        };
        let plan = CompilationPlan::analyze(&gr, DriverConfig::barrier(2));
        let mut q = ServiceQueue::new(
            &plan,
            ServiceConfig::fifo(16).with_retries(2, Duration::from_micros(50)),
        );
        let good = mk(ok);
        let Admission::Admitted { id: good_a } = q.offer(&good, 0) else {
            panic!("admitted")
        };
        let Admission::Admitted { id: bad } = q.offer(&mk(knot), 1) else {
            panic!("admitted")
        };
        let Admission::Admitted { id: good_b } = q.offer(&good, 0) else {
            panic!("admitted")
        };
        q.drain();
        let stats = q.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.faults.retries, 2, "retry budget consumed");
        let f = q.take_failed().expect("exhausted request surfaces");
        assert_eq!(f.id, bad);
        assert_eq!(f.tenant, 1);
        assert_eq!(f.retries, 2);
        assert!(
            matches!(f.reason, FailureReason::Eval(EvalError::Cycle { .. })),
            "{f:?}"
        );
        let done: Vec<u64> = std::iter::from_fn(|| q.take_completed())
            .map(|d| d.output.root_value(out).copied().map(|v| (d.id, v)))
            .map(|o| {
                let (id, v) = o.unwrap();
                assert_eq!(v, 101);
                id
            })
            .collect();
        assert_eq!(done, vec![good_a, good_b]);
    }
}
