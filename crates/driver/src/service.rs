//! Open-arrival service front end over the region pool.
//!
//! [`super::BatchDriver::compile_batch`] is a *closed* model: the whole
//! batch is known up front and the driver may block. A compilation
//! service faces an **open arrival** stream — requests arrive while
//! earlier ones are still evaluating — and needs three things the batch
//! driver does not provide:
//!
//! * **Bounded admission.** A waiting room of at most
//!   [`ServiceConfig::capacity`] requests; an arrival that finds it
//!   full is [shed](Admission::Shed) instead of growing an unbounded
//!   queue. Shed decisions are a pure function of the waiting-queue
//!   length, never of wall-clock timing, so they are reproducible.
//! * **Policy-ordered dispatch.** The waiting room drains through a
//!   [`PolicyQueue`] — FIFO, shortest-job-first keyed by
//!   [`EvalPlan::tree_work`](paragram_core::eval::EvalPlan::tree_work)
//!   (an admission-time estimate, no evaluation needed), or per-tenant
//!   deficit fair queueing. The pool retires trees FIFO in *dispatch*
//!   order, so the policy's entire lever is choosing what enters the
//!   pipeline window next — exactly the lever the simulated service
//!   (`paragram_core::parallel::sim::run_sim_service`) models with the
//!   same `PolicyQueue` code.
//! * **Non-blocking progress.** [`ServiceQueue::offer`] never blocks
//!   and performs no pool work; [`ServiceQueue::pump`] drains worker
//!   completions ([`WorkerPool::poll`]), tops up the pipeline window,
//!   and harvests finished requests. A serving loop interleaves the two
//!   however its arrival source dictates.
//!
//! Every request carries [`RequestTimes`]: enqueue → admit → first
//! region dispatched → assembled, the measurement points
//! `bench_latency` turns into per-size-class percentiles.

use crate::{CompilationPlan, TreeOutput};
use paragram_core::eval::EvalError;
use paragram_core::memo::MemoCounters;
use paragram_core::parallel::policy::{DispatchPolicy, PolicyQueue, QueuedJob};
use paragram_core::parallel::pool::{PoolConfig, SchedCounters, WorkerPool};
use paragram_core::tree::ParseTree;
use paragram_core::value::AttrValue;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Service shape: how many requests may wait, and in what order they
/// leave the waiting room.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Dispatch policy for the waiting room.
    pub policy: DispatchPolicy,
    /// Waiting-room bound (clamped ≥ 1): an [`ServiceQueue::offer`]
    /// that finds this many requests *waiting* (not yet dispatched) is
    /// shed.
    pub capacity: usize,
}

impl ServiceConfig {
    /// FIFO dispatch with the given waiting-room bound.
    pub fn fifo(capacity: usize) -> Self {
        ServiceConfig {
            policy: DispatchPolicy::Fifo,
            capacity,
        }
    }

    /// The configuration with a different dispatch policy.
    pub fn with_policy(self, policy: DispatchPolicy) -> Self {
        ServiceConfig { policy, ..self }
    }
}

/// Outcome of offering one request to the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request entered the waiting room; its output will carry this
    /// id.
    Admitted {
        /// Monotonic per-queue request id (also the key for
        /// [`ServiceQueue::times`]).
        id: u64,
    },
    /// The waiting room was full; the request was dropped. The caller
    /// owns retry/backoff.
    Shed,
}

/// Wall-clock milestones of one admitted request.
#[derive(Debug, Clone, Copy)]
pub struct RequestTimes {
    /// When the request was offered.
    pub enqueued: Instant,
    /// When admission accepted it (same instant as `enqueued` here —
    /// admission is synchronous; the simulated service separates the
    /// two by the parse cost).
    pub admitted: Instant,
    /// When its first region job was dispatched to a worker.
    pub dispatched: Option<Instant>,
    /// When its assembled output became available.
    pub assembled: Option<Instant>,
}

impl RequestTimes {
    /// Enqueue-to-assembled latency, if the request completed.
    pub fn latency(&self) -> Option<std::time::Duration> {
        self.assembled.map(|a| a - self.enqueued)
    }

    /// Time spent waiting for dispatch (enqueue → first region job).
    pub fn queueing(&self) -> Option<std::time::Duration> {
        self.dispatched.map(|d| d - self.enqueued)
    }
}

/// A finished request: its id, tenant, and compiled output.
pub struct ServiceOutput<V: AttrValue> {
    /// The id [`ServiceQueue::offer`] returned for this request.
    pub id: u64,
    /// The tenant it was billed to.
    pub tenant: u32,
    /// The compiled tree.
    pub output: TreeOutput<V>,
}

/// Admission / completion accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests offered, admitted or not.
    pub offered: usize,
    /// Requests admitted to the waiting room.
    pub admitted: usize,
    /// Requests shed by the full waiting room.
    pub shed: usize,
    /// Requests fully compiled and assembled.
    pub completed: usize,
    /// Largest number of requests ever waiting at once.
    pub max_waiting: usize,
    /// Cumulative memo cache activity (all zeros when
    /// [`DriverConfig::memo_capacity`](crate::DriverConfig::memo_capacity)
    /// is 0 — the cache is off and nothing ever probes it).
    pub memo: MemoCounters,
    /// Cumulative steal-scheduler telemetry (all zeros under
    /// [`SchedulerMode::Fixed`](paragram_core::parallel::pool::SchedulerMode::Fixed)).
    pub sched: SchedCounters,
}

/// An open-arrival compilation service over one persistent
/// [`WorkerPool`]: bounded admission, policy-ordered dispatch,
/// non-blocking progress. See the [module docs](self).
pub struct ServiceQueue<V: AttrValue> {
    pool: WorkerPool<V>,
    queue: PolicyQueue,
    /// Trees admitted but not yet dispatched, by request id.
    waiting: HashMap<u64, Arc<ParseTree<V>>>,
    /// Tenants of admitted requests, by request id.
    tenants: HashMap<u64, u32>,
    /// Dispatched, uncompleted request ids in dispatch order — the pool
    /// retires FIFO in dispatch order, so completed reports match this
    /// front to back.
    dispatched: VecDeque<u64>,
    completed: VecDeque<ServiceOutput<V>>,
    times: HashMap<u64, RequestTimes>,
    capacity: usize,
    next_id: u64,
    stats: ServiceStats,
}

impl<V: AttrValue> ServiceQueue<V> {
    /// Spawns the worker pool (threads + librarian) and an empty
    /// waiting room.
    pub fn new(plan: &CompilationPlan<V>, service: ServiceConfig) -> Self {
        let cfg = plan.config();
        let pool = WorkerPool::new(
            plan.eval_plan(),
            PoolConfig {
                workers: cfg.workers,
                mode: plan.mode(),
                result: cfg.result,
                min_size_scale: cfg.min_size_scale,
                pipeline_depth: cfg.pipeline_depth,
                granularity: cfg.effective_granularity(),
                memo_capacity: cfg.memo_capacity,
                memo_install: cfg.memo_install,
                scheduler: cfg.scheduler,
            },
        );
        ServiceQueue {
            pool,
            queue: PolicyQueue::new(service.policy),
            waiting: HashMap::new(),
            tenants: HashMap::new(),
            dispatched: VecDeque::new(),
            completed: VecDeque::new(),
            times: HashMap::new(),
            capacity: service.capacity.max(1),
            next_id: 0,
            stats: ServiceStats::default(),
        }
    }

    /// The dispatch policy in force.
    pub fn policy(&self) -> DispatchPolicy {
        self.queue.policy()
    }

    /// Admission / completion accounting so far, including the pool's
    /// cumulative memo cache counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            memo: self.pool.memo_counters().unwrap_or_default(),
            sched: self.pool.sched_counters(),
            ..self.stats
        }
    }

    /// Requests admitted but not yet dispatched.
    pub fn waiting(&self) -> usize {
        self.queue.len()
    }

    /// Requests dispatched but not yet completed.
    pub fn in_service(&self) -> usize {
        self.dispatched.len()
    }

    /// Milestones of request `id` (admitted requests only).
    pub fn times(&self, id: u64) -> Option<&RequestTimes> {
        self.times.get(&id)
    }

    /// Offers one request. Never blocks and never performs pool work —
    /// the admission decision is a pure function of the waiting-queue
    /// length, so a given arrival sequence always sheds the same
    /// requests regardless of wall-clock timing. Call
    /// [`ServiceQueue::pump`] to make progress.
    pub fn offer(&mut self, tree: &Arc<ParseTree<V>>, tenant: u32) -> Admission {
        self.stats.offered += 1;
        if self.queue.len() >= self.capacity {
            self.stats.shed += 1;
            return Admission::Shed;
        }
        let id = self.next_id;
        self.next_id += 1;
        let work = self.pool.plan().tree_work(tree);
        self.queue.push(QueuedJob {
            seq: id,
            tenant,
            work,
        });
        self.waiting.insert(id, Arc::clone(tree));
        self.tenants.insert(id, tenant);
        let now = Instant::now();
        self.times.insert(
            id,
            RequestTimes {
                enqueued: now,
                admitted: now,
                dispatched: None,
                assembled: None,
            },
        );
        self.stats.admitted += 1;
        self.stats.max_waiting = self.stats.max_waiting.max(self.queue.len());
        Admission::Admitted { id }
    }

    /// Makes all currently possible progress without blocking: drains
    /// worker completions, tops up the pipeline window from the waiting
    /// room in policy order, and moves finished requests to
    /// [`ServiceQueue::take_completed`]. Returns how many requests
    /// completed during this call.
    ///
    /// # Errors
    ///
    /// Returns the first [`EvalError`] any machine raised. The pool is
    /// poisoned afterwards, but requests completed *before* the failure
    /// remain claimable via [`ServiceQueue::take_completed`].
    pub fn pump(&mut self) -> Result<usize, EvalError> {
        self.pool.poll()?;
        while self.pool.in_flight() < self.pool.pipeline_depth() {
            let Some(job) = self.queue.pop() else { break };
            let tree = self.waiting.remove(&job.seq).expect("queued tree kept");
            // The window has room, so submit dispatches without
            // blocking on retirement.
            self.pool.submit(&tree)?;
            self.times.get_mut(&job.seq).expect("admitted").dispatched = Some(Instant::now());
            self.dispatched.push_back(job.seq);
        }
        self.pool.poll()?;
        Ok(self.harvest())
    }

    /// Runs the service to completion: blocks until every admitted
    /// request has been compiled and assembled (use between arrival
    /// bursts, or at shutdown).
    ///
    /// # Errors
    ///
    /// As [`ServiceQueue::pump`].
    pub fn drain(&mut self) -> Result<(), EvalError> {
        loop {
            self.pump()?;
            if self.queue.is_empty() && self.dispatched.is_empty() {
                return Ok(());
            }
            if let Some(report) = self.pool.collect()? {
                self.finish(crate::TreeOutput::from_report(report));
            }
        }
    }

    /// Pops the oldest finished request (completion order).
    pub fn take_completed(&mut self) -> Option<ServiceOutput<V>> {
        self.completed.pop_front()
    }

    fn harvest(&mut self) -> usize {
        let mut n = 0;
        while let Some(report) = self.pool.take_ready() {
            self.finish(crate::TreeOutput::from_report(report));
            n += 1;
        }
        n
    }

    fn finish(&mut self, output: TreeOutput<V>) {
        let id = self
            .dispatched
            .pop_front()
            .expect("reports match dispatched requests FIFO");
        self.times.get_mut(&id).expect("admitted").assembled = Some(Instant::now());
        let tenant = self.tenants[&id];
        self.stats.completed += 1;
        self.completed
            .push_back(ServiceOutput { id, tenant, output });
    }
}

impl<V: AttrValue> fmt::Debug for ServiceQueue<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ServiceQueue({}, {} waiting, {} in service, {:?})",
            self.policy().name(),
            self.waiting(),
            self.in_service(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompilationPlan, DriverConfig};
    use paragram_core::eval::dynamic_eval;
    use paragram_core::grammar::{AttrId, Grammar, GrammarBuilder, ProdId};
    use paragram_core::tree::TreeBuilder;

    /// Integer chain grammar: cheap, deterministic, splittable.
    fn grammar() -> (Arc<Grammar<i64>>, ProdId, ProdId, ProdId, AttrId) {
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let l = g.nonterminal("list");
        let out = g.synthesized(s, "sum");
        let total = g.synthesized(l, "total");
        g.mark_split(l, 4);
        let top = g.production("top", s, [l]);
        g.rule(top, (0, out), [(1, total)], |a| a[0] + 100);
        let cons = g.production("cons", l, [l]);
        g.rule(cons, (0, total), [(1, total)], |a| a[0] + 1);
        let nil = g.production("nil", l, []);
        g.rule(nil, (0, total), [], |_| 0);
        (Arc::new(g.build(s).unwrap()), top, cons, nil, out)
    }

    fn chain(
        grammar: &Arc<Grammar<i64>>,
        top: ProdId,
        cons: ProdId,
        nil: ProdId,
        n: usize,
    ) -> Arc<ParseTree<i64>> {
        let mut tb = TreeBuilder::new(grammar);
        let mut tail = tb.leaf(nil);
        for _ in 0..n {
            tail = tb.node(cons, [tail]);
        }
        let root = tb.node(top, [tail]);
        Arc::new(tb.finish(root).unwrap())
    }

    #[test]
    fn service_compiles_an_open_stream_correctly() {
        let (gr, top, cons, nil, out) = grammar();
        let plan = CompilationPlan::analyze(&gr, DriverConfig::workers(2));
        let mut q = ServiceQueue::new(&plan, ServiceConfig::fifo(64));
        let sizes = [5usize, 40, 12, 64, 1, 23];
        let mut ids = Vec::new();
        for (i, &n) in sizes.iter().enumerate() {
            let tree = chain(&gr, top, cons, nil, n);
            match q.offer(&tree, (i % 2) as u32) {
                Admission::Admitted { id } => ids.push((id, n)),
                Admission::Shed => panic!("roomy queue must not shed"),
            }
            // Interleave progress with arrivals, as a serving loop does.
            q.pump().unwrap();
        }
        q.drain().unwrap();
        let mut seen = 0;
        while let Some(done) = q.take_completed() {
            let (_, n) = ids.iter().find(|&&(id, _)| id == done.id).unwrap();
            let tree = chain(&gr, top, cons, nil, *n);
            let (dstore, _) = dynamic_eval(&tree).unwrap();
            assert_eq!(done.output.root_value(out), dstore.get(tree.root(), out));
            let t = q.times(done.id).unwrap();
            assert!(t.dispatched.is_some() && t.assembled.is_some());
            assert!(t.latency().unwrap() >= t.queueing().unwrap());
            seen += 1;
        }
        assert_eq!(seen, sizes.len());
        let stats = q.stats();
        assert_eq!(stats.offered, sizes.len());
        assert_eq!(stats.admitted, sizes.len());
        assert_eq!(stats.completed, sizes.len());
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn admission_sheds_deterministically_at_capacity() {
        let (gr, top, cons, nil, _) = grammar();
        let plan = CompilationPlan::analyze(&gr, DriverConfig::workers(2).with_pipeline_depth(1));
        let mut q = ServiceQueue::new(&plan, ServiceConfig::fifo(2));
        let tree = chain(&gr, top, cons, nil, 16);
        // No pump between offers: the waiting room fills at exactly
        // capacity and sheds everything after, independent of timing.
        let admissions: Vec<bool> = (0..5)
            .map(|_| matches!(q.offer(&tree, 0), Admission::Admitted { .. }))
            .collect();
        assert_eq!(admissions, vec![true, true, false, false, false]);
        let stats = q.stats();
        assert_eq!((stats.offered, stats.admitted, stats.shed), (5, 2, 3));
        assert_eq!(stats.max_waiting, 2);
        q.drain().unwrap();
        assert_eq!(q.stats().completed, 2);
        // The drained queue has room again.
        assert!(matches!(q.offer(&tree, 0), Admission::Admitted { .. }));
        q.drain().unwrap();
        assert_eq!(q.stats().completed, 3);
    }

    #[test]
    fn sjf_dispatches_small_requests_past_a_queued_huge_one() {
        let (gr, top, cons, nil, _) = grammar();
        let plan = CompilationPlan::analyze(&gr, DriverConfig::workers(2).with_pipeline_depth(1));
        let mut q = ServiceQueue::new(
            &plan,
            ServiceConfig::fifo(16).with_policy(DispatchPolicy::ShortestJobFirst),
        );
        // All four queue while nothing pumps; the depth-1 window then
        // admits them strictly in SJF order, and FIFO retirement means
        // completion order equals dispatch order.
        let sizes = [300usize, 8, 150, 4];
        for &n in &sizes {
            q.offer(&chain(&gr, top, cons, nil, n), 0);
        }
        q.drain().unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.take_completed())
            .map(|d| d.id)
            .collect();
        assert_eq!(order, vec![3, 1, 2, 0], "smallest work first");
        // Dispatch preserved the policy order in the timestamps too.
        let dispatch_times: Vec<_> = order
            .iter()
            .map(|&id| q.times(id).unwrap().dispatched.unwrap())
            .collect();
        assert!(dispatch_times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn fair_queueing_alternates_tenants_under_flood() {
        let (gr, top, cons, nil, _) = grammar();
        let plan = CompilationPlan::analyze(&gr, DriverConfig::workers(2).with_pipeline_depth(1));
        let tree = chain(&gr, top, cons, nil, 16);
        let quantum = plan.eval_plan().tree_work(&tree);
        let mut q = ServiceQueue::new(
            &plan,
            ServiceConfig::fifo(16).with_policy(DispatchPolicy::FairQueue { quantum }),
        );
        // Tenant 0 floods four requests before tenant 1's one arrives.
        for _ in 0..4 {
            q.offer(&tree, 0);
        }
        q.offer(&tree, 1);
        q.drain().unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.take_completed())
            .map(|d| d.id)
            .collect();
        assert_eq!(
            order,
            vec![0, 4, 1, 2, 3],
            "tenant 1 is served after one of tenant 0's, not after the flood"
        );
    }
}
