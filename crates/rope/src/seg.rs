//! Segment-reference support inside ropes.
//!
//! The paper's string-librarian optimization needs *no grammar or
//! evaluator changes*: "All that needs to be changed is the
//! implementation of the standard string data type used for code
//! attributes" (§4.2). This module is that change: a rope may contain
//! [`SegmentId`] references to text stored at the librarian. Evaluators
//! concatenate such ropes exactly like ordinary ones; the librarian
//! [`Rope::resolve`]s the final rope against its [`SegmentStore`].

use crate::{RNode, Rope, SegmentId, SegmentStore, UnknownSegment};
use std::sync::Arc;

/// A flattened view element of a rope: either owned text or a segment
/// reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piece {
    /// Literal text carried by the rope itself.
    Text(String),
    /// Reference to librarian-stored text with its logical length.
    Seg(SegmentId, usize),
}

impl Rope {
    /// Creates a rope that is a reference to librarian-stored text of
    /// logical length `len`.
    pub fn seg(id: SegmentId, len: usize) -> Rope {
        if len == 0 {
            return Rope::new();
        }
        Rope {
            root: Some(Arc::new(RNode::Seg(id, len))),
        }
    }

    /// `true` if the rope contains unresolved segment references.
    pub fn has_segments(&self) -> bool {
        fn go(n: &RNode) -> bool {
            match n {
                RNode::Leaf(_) => false,
                RNode::Seg(..) => true,
                RNode::Concat { left, right, .. } => go(left) || go(right),
            }
        }
        self.root.as_deref().is_some_and(go)
    }

    /// Segment ids referenced, left to right.
    pub fn seg_ids(&self) -> Vec<SegmentId> {
        self.pieces()
            .into_iter()
            .filter_map(|p| match p {
                Piece::Seg(id, _) => Some(id),
                Piece::Text(_) => None,
            })
            .collect()
    }

    /// Flattens the rope into maximal text runs and segment references.
    pub fn pieces(&self) -> Vec<Piece> {
        let mut out: Vec<Piece> = Vec::new();
        let mut stack: Vec<&RNode> = Vec::new();
        if let Some(r) = self.root.as_deref() {
            stack.push(r);
        }
        while let Some(n) = stack.pop() {
            match n {
                RNode::Leaf(s) => match out.last_mut() {
                    Some(Piece::Text(t)) => t.push_str(s),
                    _ => out.push(Piece::Text(s.to_string())),
                },
                RNode::Seg(id, len) => out.push(Piece::Seg(*id, *len)),
                RNode::Concat { left, right, .. } => {
                    stack.push(right);
                    stack.push(left);
                }
            }
        }
        out
    }

    /// Replaces text runs of at least `threshold` bytes with fresh
    /// segments allocated through `alloc` (which must register the text
    /// with the librarian). Segment references already present are kept.
    ///
    /// Returns the deflated rope and how many new segments were created.
    pub fn deflate(
        &self,
        threshold: usize,
        alloc: &mut dyn FnMut(Rope) -> SegmentId,
    ) -> (Rope, usize) {
        let mut created = 0;
        let mut result = Rope::new();
        for piece in self.pieces() {
            match piece {
                Piece::Text(t) if t.len() >= threshold => {
                    let len = t.len();
                    let id = alloc(Rope::leaf(t));
                    result.push_rope(&Rope::seg(id, len));
                    created += 1;
                }
                Piece::Text(t) => result.push_str(&t),
                Piece::Seg(id, len) => result.push_rope(&Rope::seg(id, len)),
            }
        }
        (result, created)
    }

    /// Resolves every segment reference against `store`, producing a
    /// pure-text rope.
    ///
    /// # Errors
    ///
    /// [`UnknownSegment`] if a referenced segment was never registered.
    pub fn resolve(&self, store: &SegmentStore) -> Result<Rope, UnknownSegment> {
        if !self.has_segments() {
            return Ok(self.clone());
        }
        let mut result = Rope::new();
        for piece in self.pieces() {
            match piece {
                Piece::Text(t) => result.push_str(&t),
                Piece::Seg(id, _) => {
                    let r = store.get(id).ok_or(UnknownSegment(id))?;
                    // Stored text may itself contain segments (an inner
                    // evaluator's descriptors); resolve recursively.
                    result.push_rope(&r.resolve(store)?);
                }
            }
        }
        Ok(result)
    }

    /// Bytes physically carried by this rope on the wire: literal text
    /// plus 9 bytes per segment reference plus a header. This is what
    /// the librarian optimization shrinks — the logical [`Rope::len`] is
    /// unchanged.
    pub fn physical_wire_size(&self) -> usize {
        fn go(n: &RNode) -> usize {
            match n {
                RNode::Leaf(s) => s.len(),
                RNode::Seg(..) => 9,
                RNode::Concat { left, right, .. } => go(left) + go(right),
            }
        }
        8 + self.root.as_deref().map_or(0, go)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(pairs: &[(SegmentId, &str)]) -> SegmentStore {
        let mut s = SegmentStore::new();
        for (id, text) in pairs {
            s.register(*id, Rope::from(*text));
        }
        s
    }

    #[test]
    fn seg_rope_has_logical_length() {
        let id = SegmentId::from_parts(1, 0);
        let r = Rope::seg(id, 100);
        assert_eq!(r.len(), 100);
        assert!(r.has_segments());
        assert_eq!(r.seg_ids(), vec![id]);
        assert_eq!(r.physical_wire_size(), 8 + 9);
    }

    #[test]
    fn zero_length_seg_collapses() {
        let r = Rope::seg(SegmentId(1), 0);
        assert!(r.is_empty());
        assert!(!r.has_segments());
    }

    #[test]
    fn pieces_merge_adjacent_text() {
        let id = SegmentId(9);
        let r = Rope::from("ab")
            .concat(&Rope::from("cd"))
            .concat(&Rope::seg(id, 5))
            .concat(&Rope::from("ef"));
        assert_eq!(
            r.pieces(),
            vec![
                Piece::Text("abcd".into()),
                Piece::Seg(id, 5),
                Piece::Text("ef".into())
            ]
        );
    }

    #[test]
    fn resolve_round_trips() {
        let a = SegmentId::from_parts(0, 0);
        let store = store_with(&[(a, "HELLO")]);
        let r = Rope::from("<")
            .concat(&Rope::seg(a, 5))
            .concat(&Rope::from(">"));
        assert_eq!(r.len(), 7);
        let resolved = r.resolve(&store).unwrap();
        assert_eq!(resolved.to_string(), "<HELLO>");
        assert!(!resolved.has_segments());
    }

    #[test]
    fn resolve_is_recursive() {
        // Segment a's stored text itself references segment b — the
        // nested-evaluator case.
        let a = SegmentId::from_parts(0, 0);
        let b = SegmentId::from_parts(1, 0);
        let mut store = SegmentStore::new();
        store.register(b, Rope::from("inner"));
        store.register(
            a,
            Rope::from("[")
                .concat(&Rope::seg(b, 5))
                .concat(&Rope::from("]")),
        );
        let r = Rope::seg(a, 7);
        assert_eq!(r.resolve(&store).unwrap().to_string(), "[inner]");
    }

    #[test]
    fn resolve_unknown_segment_errors() {
        let store = SegmentStore::new();
        let r = Rope::seg(SegmentId(77), 3);
        assert!(r.resolve(&store).is_err());
    }

    #[test]
    fn deflate_extracts_large_text_runs() {
        let mut store = SegmentStore::new();
        let mut next = 0u32;
        let big = "x".repeat(1000);
        let r = Rope::from(big.as_str()).concat(&Rope::from("tiny"));
        let (deflated, created) = {
            let mut alloc = |text: Rope| {
                let id = SegmentId::from_parts(5, next);
                next += 1;
                store.register(id, text);
                id
            };
            r.deflate(256, &mut alloc)
        };
        assert_eq!(created, 1);
        assert_eq!(deflated.len(), r.len());
        assert!(deflated.physical_wire_size() < 100);
        assert_eq!(
            deflated.resolve(&store).unwrap().to_string(),
            format!("{big}tiny")
        );
    }

    #[test]
    fn deflate_preserves_existing_segments() {
        let child = SegmentId::from_parts(1, 0);
        let mut store = store_with(&[(child, "CHILD")]);
        let local = "y".repeat(500);
        let r = Rope::from(local.as_str()).concat(&Rope::seg(child, 5));
        let mut next = 0u32;
        let (deflated, created) = {
            let mut alloc = |text: Rope| {
                let id = SegmentId::from_parts(2, next);
                next += 1;
                store.register(id, text);
                id
            };
            r.deflate(256, &mut alloc)
        };
        assert_eq!(created, 1);
        assert_eq!(deflated.seg_ids().len(), 2);
        assert_eq!(
            deflated.resolve(&store).unwrap().to_string(),
            format!("{local}CHILD")
        );
    }

    #[test]
    fn deflate_below_threshold_is_identity_shaped() {
        let r = Rope::from("small");
        let (d, created) = r.deflate(256, &mut |_| unreachable!("no alloc expected"));
        assert_eq!(created, 0);
        assert_eq!(d.to_string(), "small");
    }
}
