//! String-librarian descriptors (paper §4.2).
//!
//! When an evaluator finishes its final code attribute it sends the *text*
//! to the string librarian process once, and passes only a small
//! [`Descriptor`] to its ancestor in the process tree. Ancestors combine
//! descriptors (cheap), and the root forwards the combined descriptor to the
//! librarian, which resolves it against its [`SegmentStore`] to produce the
//! final code rope. This turns result propagation from a sequential chain of
//! ever-growing string transmissions into one parallel transmission per
//! evaluator plus O(#evaluators) descriptor bytes.

use crate::Rope;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a text segment registered with the librarian.
///
/// The high bits name the owning evaluator so that ids allocated on
/// different machines never collide (the same scheme the paper uses for
/// unique label generation, §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u64);

impl SegmentId {
    /// Builds a segment id from an evaluator index and a local counter.
    pub fn from_parts(evaluator: u32, local: u32) -> Self {
        SegmentId(((evaluator as u64) << 32) | local as u64)
    }

    /// The evaluator that allocated this id.
    pub fn evaluator(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}.{}", self.evaluator(), self.0 as u32)
    }
}

/// A compact, shareable description of a string built from registered
/// segments and small literal snippets.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Descriptor {
    /// The empty string.
    #[default]
    Empty,
    /// A segment stored at the librarian.
    Seg(SegmentId),
    /// A short literal carried inline (used for glue text between
    /// separately generated code blocks).
    Lit(Arc<str>),
    /// Concatenation of two descriptors.
    Concat(Arc<Descriptor>, Arc<Descriptor>),
}

impl Descriptor {
    /// Descriptor for a literal snippet. Empty literals collapse to
    /// [`Descriptor::Empty`].
    pub fn lit(text: impl Into<Arc<str>>) -> Self {
        let text: Arc<str> = text.into();
        if text.is_empty() {
            Descriptor::Empty
        } else {
            Descriptor::Lit(text)
        }
    }

    /// Combines two descriptors (O(1)).
    pub fn concat(&self, other: &Descriptor) -> Descriptor {
        match (self, other) {
            (Descriptor::Empty, d) | (d, Descriptor::Empty) => d.clone(),
            (a, b) => Descriptor::Concat(Arc::new(a.clone()), Arc::new(b.clone())),
        }
    }

    /// All segment ids referenced by this descriptor, left to right.
    pub fn segments(&self) -> Vec<SegmentId> {
        let mut out = Vec::new();
        self.collect_segments(&mut out);
        out
    }

    fn collect_segments(&self, out: &mut Vec<SegmentId>) {
        match self {
            Descriptor::Empty | Descriptor::Lit(_) => {}
            Descriptor::Seg(id) => out.push(*id),
            Descriptor::Concat(a, b) => {
                a.collect_segments(out);
                b.collect_segments(out);
            }
        }
    }

    /// Number of bytes needed to transmit this descriptor over the
    /// network: a tag byte per node plus 8 bytes per segment id plus
    /// literal text.
    pub fn wire_size(&self) -> usize {
        match self {
            Descriptor::Empty => 1,
            Descriptor::Seg(_) => 9,
            Descriptor::Lit(s) => 1 + 4 + s.len(),
            Descriptor::Concat(a, b) => 1 + a.wire_size() + b.wire_size(),
        }
    }
}

/// The librarian's storage: segment id → text.
///
/// # Examples
///
/// ```
/// use paragram_rope::{Descriptor, Rope, SegmentId, SegmentStore};
///
/// let mut store = SegmentStore::new();
/// let a = SegmentId::from_parts(1, 0);
/// let b = SegmentId::from_parts(2, 0);
/// store.register(a, Rope::from("hello "));
/// store.register(b, Rope::from("world"));
/// let d = Descriptor::Seg(a).concat(&Descriptor::Seg(b));
/// assert_eq!(store.resolve(&d).unwrap().to_string(), "hello world");
/// ```
#[derive(Debug, Default)]
pub struct SegmentStore {
    segments: HashMap<SegmentId, Rope>,
    bytes: usize,
}

/// Error returned by [`SegmentStore::resolve`] when a descriptor names a
/// segment that was never registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSegment(pub SegmentId);

impl fmt::Display for UnknownSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown segment {}", self.0)
    }
}

impl std::error::Error for UnknownSegment {}

impl SegmentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `text` under `id`, replacing any previous registration.
    pub fn register(&mut self, id: SegmentId, text: Rope) {
        self.bytes += text.len();
        if let Some(old) = self.segments.insert(id, text) {
            self.bytes -= old.len();
        }
    }

    /// Looks up a registered segment.
    pub fn get(&self, id: SegmentId) -> Option<&Rope> {
        self.segments.get(&id)
    }

    /// Number of registered segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// `true` if no segments are registered.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total registered text bytes.
    pub fn total_bytes(&self) -> usize {
        self.bytes
    }

    /// Resolves a descriptor into the final rope.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSegment`] if the descriptor references a segment id
    /// that has not been registered (e.g. an evaluator crashed before
    /// shipping its code text).
    pub fn resolve(&self, d: &Descriptor) -> Result<Rope, UnknownSegment> {
        match d {
            Descriptor::Empty => Ok(Rope::new()),
            Descriptor::Seg(id) => self.segments.get(id).cloned().ok_or(UnknownSegment(*id)),
            Descriptor::Lit(s) => Ok(Rope::leaf(Arc::clone(s))),
            Descriptor::Concat(a, b) => Ok(self.resolve(a)?.concat(&self.resolve(b)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_id_round_trips_parts() {
        let id = SegmentId::from_parts(3, 17);
        assert_eq!(id.evaluator(), 3);
        assert_eq!(id.0 & 0xffff_ffff, 17);
        assert_eq!(id.to_string(), "seg3.17");
    }

    #[test]
    fn empty_descriptor_resolves_empty() {
        let store = SegmentStore::new();
        assert!(store.resolve(&Descriptor::Empty).unwrap().is_empty());
    }

    #[test]
    fn concat_collapses_empty() {
        let d = Descriptor::Empty.concat(&Descriptor::lit("x"));
        assert_eq!(d, Descriptor::lit("x"));
        let d2 = Descriptor::lit("").concat(&Descriptor::Empty);
        assert_eq!(d2, Descriptor::Empty);
    }

    #[test]
    fn resolve_interleaves_segments_and_literals() {
        let mut store = SegmentStore::new();
        let a = SegmentId::from_parts(0, 1);
        let b = SegmentId::from_parts(1, 1);
        store.register(a, Rope::from("AAA"));
        store.register(b, Rope::from("BBB"));
        let d = Descriptor::Seg(a)
            .concat(&Descriptor::lit("--"))
            .concat(&Descriptor::Seg(b));
        assert_eq!(store.resolve(&d).unwrap().to_string(), "AAA--BBB");
        assert_eq!(d.segments(), vec![a, b]);
    }

    #[test]
    fn unknown_segment_is_an_error() {
        let store = SegmentStore::new();
        let d = Descriptor::Seg(SegmentId::from_parts(9, 9));
        let err = store.resolve(&d).unwrap_err();
        assert_eq!(err.0, SegmentId::from_parts(9, 9));
        assert!(err.to_string().contains("seg9.9"));
    }

    #[test]
    fn register_replaces_and_tracks_bytes() {
        let mut store = SegmentStore::new();
        let id = SegmentId::from_parts(0, 0);
        store.register(id, Rope::from("12345"));
        assert_eq!(store.total_bytes(), 5);
        store.register(id, Rope::from("12"));
        assert_eq!(store.total_bytes(), 2);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn wire_size_is_small_for_descriptors() {
        let d = Descriptor::Seg(SegmentId(1)).concat(&Descriptor::Seg(SegmentId(2)));
        // Far smaller than any realistic code attribute.
        assert!(d.wire_size() < 32);
    }
}
