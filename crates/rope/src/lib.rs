//! Persistent rope strings with O(1) concatenation.
//!
//! The paper (§4.3) implements compiler string attributes — most importantly
//! the generated-code attribute — as *binary trees with the actual text
//! residing in the leaves*, so that string concatenation is a constant-time
//! operation and all values are immutable (applicative). This crate is that
//! data structure, plus the *descriptor* machinery used by the string
//! librarian process (§4.2): an evaluator ships its code text to the
//! librarian once, and passes only a small [`Descriptor`] up the process
//! tree; the librarian reassembles the final code from descriptors.
//!
//! # Examples
//!
//! ```
//! use paragram_rope::Rope;
//!
//! let a = Rope::from("movl r1, r2\n");
//! let b = Rope::from("addl2 $4, r2\n");
//! let code = a.concat(&b); // O(1), shares both inputs
//! assert_eq!(code.len(), a.len() + b.len());
//! assert_eq!(code.to_string(), "movl r1, r2\naddl2 $4, r2\n");
//! ```

mod descriptor;
mod seg;

pub use descriptor::{Descriptor, SegmentId, SegmentStore, UnknownSegment};
pub use seg::Piece;

use std::fmt;
use std::sync::Arc;

/// Internal rope node: a text leaf, a segment reference (librarian
/// protocol, see [`crate::seg`]), or an inner concatenation node.
#[derive(Debug)]
pub(crate) enum RNode {
    Leaf(Arc<str>),
    /// Reference to librarian-stored text with its logical length.
    Seg(SegmentId, usize),
    Concat {
        left: Arc<RNode>,
        right: Arc<RNode>,
        len: usize,
        depth: u32,
    },
}

impl RNode {
    fn len(&self) -> usize {
        match self {
            RNode::Leaf(s) => s.len(),
            RNode::Seg(_, len) => *len,
            RNode::Concat { len, .. } => *len,
        }
    }

    fn depth(&self) -> u32 {
        match self {
            RNode::Leaf(_) | RNode::Seg(..) => 0,
            RNode::Concat { depth, .. } => *depth,
        }
    }
}

/// An immutable string represented as a binary tree of text chunks.
///
/// Cloning and concatenating are cheap (reference-counted structure
/// sharing); extracting the flat text is O(n). All compiler "string"
/// attributes in this repository are `Rope`s, exactly as in the paper.
///
/// A rope may contain *segment references* to text held by the string
/// librarian ([`Rope::seg`], §4.2 of the paper). Text-reading methods
/// (`to_string`, [`Rope::chunks`], [`Rope::byte_at`], equality)
/// see only the locally carried text; call [`Rope::resolve`] against a
/// [`SegmentStore`] first when segments may be present
/// ([`Rope::has_segments`]).
#[derive(Clone, Default)]
pub struct Rope {
    pub(crate) root: Option<Arc<RNode>>,
}

impl Rope {
    /// Creates an empty rope.
    ///
    /// ```
    /// let r = paragram_rope::Rope::new();
    /// assert!(r.is_empty());
    /// ```
    pub fn new() -> Self {
        Rope { root: None }
    }

    /// Creates a rope holding a single leaf with `text`.
    pub fn leaf(text: impl Into<Arc<str>>) -> Self {
        let text: Arc<str> = text.into();
        if text.is_empty() {
            Rope::new()
        } else {
            Rope {
                root: Some(Arc::new(RNode::Leaf(text))),
            }
        }
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        self.root.as_ref().map_or(0, |n| n.len())
    }

    /// `true` if the rope contains no text.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Height of the underlying tree (a leaf has depth 0).
    pub fn depth(&self) -> u32 {
        self.root.as_ref().map_or(0, |n| n.depth())
    }

    /// Number of text leaves.
    pub fn leaf_count(&self) -> usize {
        self.chunks().count()
    }

    /// Concatenates two ropes in O(1) without copying text.
    ///
    /// ```
    /// use paragram_rope::Rope;
    /// let r = Rope::from("ab").concat(&Rope::from("cd"));
    /// assert_eq!(r.to_string(), "abcd");
    /// ```
    pub fn concat(&self, other: &Rope) -> Rope {
        match (&self.root, &other.root) {
            (None, _) => other.clone(),
            (_, None) => self.clone(),
            (Some(l), Some(r)) => Rope {
                root: Some(Arc::new(RNode::Concat {
                    len: l.len() + r.len(),
                    depth: l.depth().max(r.depth()) + 1,
                    left: Arc::clone(l),
                    right: Arc::clone(r),
                })),
            },
        }
    }

    /// Appends `text` as a new leaf (O(1)).
    pub fn push_str(&mut self, text: &str) {
        if !text.is_empty() {
            *self = self.concat(&Rope::leaf(text));
        }
    }

    /// Appends another rope (O(1)).
    pub fn push_rope(&mut self, other: &Rope) {
        *self = self.concat(other);
    }

    /// Iterates over the text chunks (leaves) left to right.
    pub fn chunks(&self) -> Chunks<'_> {
        let mut stack = Vec::new();
        if let Some(root) = &self.root {
            stack.push(root.as_ref());
        }
        Chunks { stack }
    }

    /// Iterates over the lines of the rope (without trailing `\n`),
    /// crossing chunk boundaries.
    pub fn lines(&self) -> impl Iterator<Item = String> + '_ {
        LineIter {
            chunks: self.chunks(),
            cur: "",
            pending: String::new(),
            done: false,
        }
    }

    /// Number of `\n` bytes in the rope.
    pub fn newline_count(&self) -> usize {
        self.chunks()
            .map(|c| c.bytes().filter(|&b| b == b'\n').count())
            .sum()
    }

    /// Byte at position `i`, or `None` past the end. O(depth).
    pub fn byte_at(&self, mut i: usize) -> Option<u8> {
        let mut node = self.root.as_deref()?;
        if i >= node.len() {
            return None;
        }
        loop {
            match node {
                RNode::Leaf(s) => return s.as_bytes().get(i).copied(),
                RNode::Seg(..) => return None, // unresolved text
                RNode::Concat { left, right, .. } => {
                    if i < left.len() {
                        node = left;
                    } else {
                        i -= left.len();
                        node = right;
                    }
                }
            }
        }
    }

    /// Rebuilds the rope into a balanced form with chunked leaves.
    ///
    /// Long evaluation pipelines produce deep, list-like ropes; the
    /// librarian flattens before final output. The text is copied once.
    pub fn rebalance(&self) -> Rope {
        if self.len() <= 1 || self.has_segments() {
            return self.clone();
        }
        const CHUNK: usize = 4096;
        let flat = self.to_string();
        let mut leaves: Vec<Rope> = Vec::new();
        let mut rest = flat.as_str();
        while !rest.is_empty() {
            let take = rest.len().min(CHUNK);
            // Avoid splitting a UTF-8 sequence.
            let mut cut = take;
            while !rest.is_char_boundary(cut) {
                cut -= 1;
            }
            let (head, tail) = rest.split_at(cut);
            leaves.push(Rope::leaf(head));
            rest = tail;
        }
        build_balanced(&leaves)
    }

    /// Approximate number of bytes needed to transmit this rope's text
    /// over the network in flattened form (text plus a length header).
    pub fn wire_size(&self) -> usize {
        self.len() + 8
    }

    /// `true` if both ropes have identical text content.
    ///
    /// Structural sharing is ignored: `"ab"+"c"` equals `"a"+"bc"`.
    pub fn content_eq(&self, other: &Rope) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let mut a = self.chunks();
        let mut b = other.chunks();
        let (mut ca, mut cb) = ("", "");
        loop {
            if ca.is_empty() {
                match a.next() {
                    Some(c) => ca = c,
                    None => return cb.is_empty() && b.next().is_none(),
                }
                continue;
            }
            if cb.is_empty() {
                match b.next() {
                    Some(c) => cb = c,
                    None => return false,
                }
                continue;
            }
            let n = ca.len().min(cb.len());
            if ca.as_bytes()[..n] != cb.as_bytes()[..n] {
                return false;
            }
            ca = &ca[n..];
            cb = &cb[n..];
        }
    }
}

fn build_balanced(leaves: &[Rope]) -> Rope {
    match leaves.len() {
        0 => Rope::new(),
        1 => leaves[0].clone(),
        n => {
            let (l, r) = leaves.split_at(n / 2);
            build_balanced(l).concat(&build_balanced(r))
        }
    }
}

/// Left-to-right iterator over a rope's text chunks.
///
/// Produced by [`Rope::chunks`].
pub struct Chunks<'a> {
    stack: Vec<&'a RNode>,
}

impl<'a> Iterator for Chunks<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        while let Some(node) = self.stack.pop() {
            match node {
                RNode::Leaf(s) => return Some(s),
                RNode::Seg(..) => continue, // unresolved text is not visible
                RNode::Concat { left, right, .. } => {
                    self.stack.push(right);
                    self.stack.push(left);
                }
            }
        }
        None
    }
}

struct LineIter<'a> {
    chunks: Chunks<'a>,
    cur: &'a str,
    pending: String,
    done: bool,
}

impl<'a> Iterator for LineIter<'a> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        if self.done {
            return None;
        }
        loop {
            if self.cur.is_empty() {
                match self.chunks.next() {
                    Some(c) => self.cur = c,
                    None => {
                        self.done = true;
                        if self.pending.is_empty() {
                            return None;
                        }
                        return Some(std::mem::take(&mut self.pending));
                    }
                }
                continue;
            }
            match self.cur.find('\n') {
                Some(pos) => {
                    self.pending.push_str(&self.cur[..pos]);
                    self.cur = &self.cur[pos + 1..];
                    return Some(std::mem::take(&mut self.pending));
                }
                None => {
                    self.pending.push_str(self.cur);
                    self.cur = "";
                }
            }
        }
    }
}

impl fmt::Display for Rope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for chunk in self.chunks() {
            f.write_str(chunk)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Rope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rope({:?})", self.to_string())
    }
}

impl PartialEq for Rope {
    fn eq(&self, other: &Self) -> bool {
        self.content_eq(other)
    }
}

impl Eq for Rope {}

impl From<&str> for Rope {
    fn from(s: &str) -> Self {
        Rope::leaf(s)
    }
}

impl From<String> for Rope {
    fn from(s: String) -> Self {
        Rope::leaf(s)
    }
}

impl FromIterator<Rope> for Rope {
    fn from_iter<I: IntoIterator<Item = Rope>>(iter: I) -> Self {
        let leaves: Vec<Rope> = iter.into_iter().collect();
        build_balanced(&leaves)
    }
}

impl<'a> FromIterator<&'a str> for Rope {
    fn from_iter<I: IntoIterator<Item = &'a str>>(iter: I) -> Self {
        iter.into_iter().map(Rope::leaf).collect()
    }
}

impl Extend<Rope> for Rope {
    fn extend<I: IntoIterator<Item = Rope>>(&mut self, iter: I) {
        for r in iter {
            self.push_rope(&r);
        }
    }
}

impl std::hash::Hash for Rope {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for chunk in self.chunks() {
            state.write(chunk.as_bytes());
        }
        state.write_u8(0xff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rope() {
        let r = Rope::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.to_string(), "");
        assert_eq!(r.depth(), 0);
        assert_eq!(r.leaf_count(), 0);
    }

    #[test]
    fn leaf_basics() {
        let r = Rope::from("hello");
        assert_eq!(r.len(), 5);
        assert_eq!(r.to_string(), "hello");
        assert_eq!(r.leaf_count(), 1);
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn empty_leaf_collapses() {
        let r = Rope::leaf("");
        assert!(r.is_empty());
        assert_eq!(r.leaf_count(), 0);
    }

    #[test]
    fn concat_is_constant_shape() {
        let a = Rope::from("aa");
        let b = Rope::from("bb");
        let c = a.concat(&b);
        assert_eq!(c.len(), 4);
        assert_eq!(c.depth(), 1);
        assert_eq!(c.to_string(), "aabb");
        // inputs unchanged (persistence)
        assert_eq!(a.to_string(), "aa");
        assert_eq!(b.to_string(), "bb");
    }

    #[test]
    fn concat_with_empty_is_identity() {
        let a = Rope::from("xyz");
        let e = Rope::new();
        assert_eq!(a.concat(&e).to_string(), "xyz");
        assert_eq!(e.concat(&a).to_string(), "xyz");
        assert_eq!(e.concat(&e).len(), 0);
    }

    #[test]
    fn push_str_accumulates() {
        let mut r = Rope::new();
        r.push_str("one ");
        r.push_str("two ");
        r.push_str("three");
        assert_eq!(r.to_string(), "one two three");
    }

    #[test]
    fn byte_at_traverses_tree() {
        let r = Rope::from("abc").concat(&Rope::from("defg"));
        assert_eq!(r.byte_at(0), Some(b'a'));
        assert_eq!(r.byte_at(2), Some(b'c'));
        assert_eq!(r.byte_at(3), Some(b'd'));
        assert_eq!(r.byte_at(6), Some(b'g'));
        assert_eq!(r.byte_at(7), None);
    }

    #[test]
    fn content_eq_ignores_structure() {
        let a = Rope::from("ab").concat(&Rope::from("c"));
        let b = Rope::from("a").concat(&Rope::from("bc"));
        assert_eq!(a, b);
        assert_ne!(a, Rope::from("abd"));
        assert_ne!(a, Rope::from("ab"));
    }

    #[test]
    fn lines_cross_chunks() {
        let r = Rope::from("one\ntw").concat(&Rope::from("o\nthree"));
        let lines: Vec<String> = r.lines().collect();
        assert_eq!(lines, vec!["one", "two", "three"]);
        assert_eq!(r.newline_count(), 2);
    }

    #[test]
    fn lines_trailing_newline() {
        let r = Rope::from("a\nb\n");
        let lines: Vec<String> = r.lines().collect();
        assert_eq!(lines, vec!["a", "b"]);
    }

    #[test]
    fn rebalance_preserves_content() {
        let mut r = Rope::new();
        for i in 0..200 {
            r.push_str(&format!("line {i}\n"));
        }
        assert!(r.depth() >= 100); // list-like
        let b = r.rebalance();
        assert!(b.depth() < 20);
        assert_eq!(r, b);
    }

    #[test]
    fn from_iterator_balances() {
        let r: Rope = (0..64).map(|i| Rope::from(format!("{i},"))).collect();
        assert!(r.depth() <= 7);
        assert!(r.to_string().starts_with("0,1,2,"));
    }

    #[test]
    fn hash_agrees_with_content_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |r: &Rope| {
            let mut s = DefaultHasher::new();
            r.hash(&mut s);
            s.finish()
        };
        let a = Rope::from("ab").concat(&Rope::from("c"));
        let b = Rope::from("a").concat(&Rope::from("bc"));
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn wire_size_tracks_len() {
        let r = Rope::from("12345");
        assert_eq!(r.wire_size(), 5 + 8);
    }
}
