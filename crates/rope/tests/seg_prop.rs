//! Property tests for segment-bearing ropes (the librarian protocol):
//! deflate followed by resolve must be the identity on content, for any
//! mix of text and pre-existing segment references.

use paragram_rope::{Rope, SegmentId, SegmentStore};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Piece {
    Text(String),
    Registered(String),
}

fn pieces() -> impl Strategy<Value = Vec<Piece>> {
    prop::collection::vec(
        prop_oneof![
            "[a-z]{0,300}".prop_map(Piece::Text),
            "[A-Z]{1,40}".prop_map(Piece::Registered),
        ],
        0..12,
    )
}

proptest! {
    #[test]
    fn deflate_then_resolve_is_identity(parts in pieces(), threshold in 1usize..512) {
        let mut store = SegmentStore::new();
        let mut next = 0u32;
        // Build the input rope: text leaves plus already-registered
        // child segments (as an inner evaluator would have produced).
        let mut rope = Rope::new();
        let mut expected = String::new();
        for p in &parts {
            match p {
                Piece::Text(t) => {
                    rope.push_str(t);
                    expected.push_str(t);
                }
                Piece::Registered(t) => {
                    let id = SegmentId::from_parts(9, next);
                    next += 1;
                    store.register(id, Rope::from(t.as_str()));
                    rope.push_rope(&Rope::seg(id, t.len()));
                    expected.push_str(t);
                }
            }
        }
        prop_assert_eq!(rope.len(), expected.len());

        let (deflated, _created) = rope.deflate(threshold, &mut |text| {
            let id = SegmentId::from_parts(3, next);
            next += 1;
            store.register(id, text);
            id
        });
        // Logical length is preserved by deflation.
        prop_assert_eq!(deflated.len(), expected.len());
        // Physical wire size never exceeds the original text plus
        // header/reference overhead.
        prop_assert!(deflated.physical_wire_size() <= expected.len() + 8 + 9 * (parts.len() + 4));
        // Resolution restores the exact content.
        let resolved = deflated.resolve(&store).unwrap();
        prop_assert_eq!(resolved.to_string(), expected);
        prop_assert!(!resolved.has_segments());
    }

    #[test]
    fn concat_of_deflated_ropes_resolves_in_order(
        a in "[a-z]{0,400}",
        b in "[a-z]{0,400}",
    ) {
        let mut store = SegmentStore::new();
        let mut next = 0u32;
        let mut alloc = |text: Rope| {
            let id = SegmentId::from_parts(0, next);
            next += 1;
            store.register(id, text);
            id
        };
        let (da, _) = Rope::from(a.as_str()).deflate(64, &mut alloc);
        let (db, _) = Rope::from(b.as_str()).deflate(64, &mut alloc);
        let combined = da.concat(&db);
        prop_assert_eq!(
            combined.resolve(&store).unwrap().to_string(),
            format!("{a}{b}")
        );
    }
}
