//! Property-based tests for the rope invariants the evaluators rely on.

use paragram_rope::{Descriptor, Rope, SegmentId, SegmentStore};
use proptest::prelude::*;

fn rope_strategy() -> impl Strategy<Value = (Rope, String)> {
    // Build a rope from a sequence of concat operations and track the
    // reference string alongside.
    prop::collection::vec("[a-z0-9\n]{0,12}", 0..24).prop_map(|parts| {
        let mut rope = Rope::new();
        let mut s = String::new();
        for p in parts {
            rope.push_str(&p);
            s.push_str(&p);
        }
        (rope, s)
    })
}

proptest! {
    #[test]
    fn rope_matches_reference_string((rope, s) in rope_strategy()) {
        prop_assert_eq!(rope.to_string(), s.clone());
        prop_assert_eq!(rope.len(), s.len());
        prop_assert_eq!(rope.is_empty(), s.is_empty());
        prop_assert_eq!(rope.newline_count(), s.bytes().filter(|&b| b == b'\n').count());
    }

    #[test]
    fn concat_associativity((a, sa) in rope_strategy(),
                            (b, sb) in rope_strategy(),
                            (c, sc) in rope_strategy()) {
        let left = a.concat(&b).concat(&c);
        let right = a.concat(&b.concat(&c));
        prop_assert_eq!(left.clone(), right);
        prop_assert_eq!(left.to_string(), format!("{sa}{sb}{sc}"));
    }

    #[test]
    fn rebalance_is_content_preserving((rope, s) in rope_strategy()) {
        let balanced = rope.rebalance();
        prop_assert_eq!(balanced.to_string(), s);
        prop_assert!(balanced.depth() <= rope.depth().max(2));
    }

    #[test]
    fn byte_at_agrees_with_string((rope, s) in rope_strategy()) {
        for (i, b) in s.bytes().enumerate() {
            prop_assert_eq!(rope.byte_at(i), Some(b));
        }
        prop_assert_eq!(rope.byte_at(s.len()), None);
    }

    #[test]
    fn lines_agree_with_str_lines((rope, s) in rope_strategy()) {
        let got: Vec<String> = rope.lines().collect();
        let want: Vec<String> = s.lines().map(str::to_owned).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn librarian_round_trip(texts in prop::collection::vec("[a-z]{0,16}", 1..8)) {
        // Registering each piece as a segment and resolving the combined
        // descriptor must equal direct concatenation — the librarian
        // optimization may not change the final code attribute.
        let mut store = SegmentStore::new();
        let mut descriptor = Descriptor::Empty;
        let mut direct = Rope::new();
        for (i, t) in texts.iter().enumerate() {
            let id = SegmentId::from_parts(i as u32, 0);
            store.register(id, Rope::from(t.as_str()));
            descriptor = descriptor.concat(&Descriptor::Seg(id));
            direct.push_str(t);
        }
        let resolved = store.resolve(&descriptor).unwrap();
        prop_assert_eq!(resolved, direct);
    }
}
