//! Criterion: the AG compiler against the conventional (direct)
//! compiler — §4.1's "sequential compilation speeds comparable to
//! commonly available compilers" claim, on the host.

use criterion::{criterion_group, criterion_main, Criterion};
use paragram_bench::Workload;
use paragram_pascal::direct::compile_direct;
use paragram_pascal::generator::GenConfig;
use paragram_pascal::parser::parse;

fn bench_sequential(c: &mut Criterion) {
    let w = Workload::from_config(&GenConfig::small());
    let mut group = c.benchmark_group("full-compilation");
    group.sample_size(20);
    group.bench_function("ag-static", |b| {
        b.iter(|| w.compiler.compile(&w.source).unwrap())
    });
    group.bench_function("ag-dynamic", |b| {
        b.iter(|| w.compiler.compile_dynamic(&w.source).unwrap())
    });
    group.bench_function("direct", |b| {
        b.iter(|| {
            let ast = parse(&w.source).unwrap();
            compile_direct(&ast)
        })
    });
    group.bench_function("parse-only", |b| b.iter(|| parse(&w.source).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_sequential);
criterion_main!(benches);
