//! Criterion: real-thread parallel speedup of the combined evaluator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paragram_bench::Workload;
use paragram_core::parallel::threads::{run_threads, ThreadConfig};

fn bench_parallel(c: &mut Criterion) {
    let w = Workload::paper();
    let mut group = c.benchmark_group("threaded-combined");
    group.sample_size(10);
    for machines in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(machines),
            &machines,
            |b, &machines| {
                b.iter(|| {
                    run_threads(&w.tree, Some(&w.plans), ThreadConfig::combined(machines)).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
