//! Criterion: rope vs `String` concatenation — the §4.3 claim that
//! tree-structured strings make code-attribute concatenation constant
//! time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paragram_rope::Rope;

const LINE: &str = "\tmovl 4(fp), r0 ; addl2 r1, r0 ; pushl r0\n";

fn bench_rope(c: &mut Criterion) {
    let mut group = c.benchmark_group("code-concat");
    for n in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("rope", n), &n, |b, &n| {
            b.iter(|| {
                let mut r = Rope::new();
                for _ in 0..n {
                    r.push_str(LINE);
                }
                r.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("string", n), &n, |b, &n| {
            b.iter(|| {
                // The naive applicative alternative: a fresh String per
                // concatenation, as a pure semantic rule would need.
                let mut s = String::new();
                for _ in 0..n {
                    let mut t = s.clone();
                    t.push_str(LINE);
                    s = t;
                }
                s.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rope);
criterion_main!(benches);
