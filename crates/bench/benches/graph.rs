//! Criterion: dependency-graph construction cost in isolation.
//!
//! The dynamic pipeline (Figure 1) pays for building the instance
//! dependency graph before any rule runs; `stats.graph_nodes` /
//! `stats.graph_edges` measure its size, this bench measures its time.
//! Constructing a [`Machine`] in dynamic mode builds exactly the
//! region's dependency graph without evaluating anything.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paragram_bench::Workload;
use paragram_core::eval::{dynamic_eval, Machine, MachineMode};
use paragram_core::split::Decomposition;
use paragram_pascal::generator::GenConfig;

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependency-graph");
    group.sample_size(10);
    for (label, cfg) in [("small", GenConfig::small()), ("paper", GenConfig::paper())] {
        let w = Workload::from_config(&cfg);
        let whole = Decomposition::whole(&w.tree);
        group.bench_with_input(BenchmarkId::new("construct", label), &w, |b, w| {
            b.iter(|| {
                let m = Machine::new(&w.tree, None, &whole, 0, MachineMode::Dynamic);
                m.graph_size()
            })
        });
        group.bench_with_input(BenchmarkId::new("construct+eval", label), &w, |b, w| {
            b.iter(|| dynamic_eval(&w.tree).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
