//! Criterion: dependency-graph construction cost in isolation.
//!
//! The dynamic pipeline (Figure 1) pays for building the instance
//! dependency graph before any rule runs; `stats.graph_nodes` /
//! `stats.graph_edges` measure its size, this bench measures its time.
//! Constructing a [`Machine`] in dynamic mode builds exactly the
//! region's dependency graph without evaluating anything.
//!
//! It also measures the ready-queue service order in isolation
//! (`eval/fifo` vs `eval/prod-batched`): the ROADMAP's "measure first"
//! item for replacing the scheduler's global FIFO with per-production
//! batches that improve rule i-cache locality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paragram_bench::Workload;
use paragram_core::eval::{
    dynamic_eval, dynamic_eval_with, EvalPlan, Machine, MachineMode, MachineScratch, ReadyPolicy,
};
use paragram_core::split::Decomposition;
use paragram_pascal::generator::GenConfig;
use std::sync::Arc;

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependency-graph");
    group.sample_size(10);
    for (label, cfg) in [("small", GenConfig::small()), ("paper", GenConfig::paper())] {
        let w = Workload::from_config(&cfg);
        let whole = Decomposition::whole(&w.tree);
        // Shared plan tables built once, outside the timed loop, so the
        // "construct" timing isolates dependency-graph construction.
        let plan = Arc::new(EvalPlan::from_parts(w.tree.grammar(), None, None));
        // Construction-cost invariant: a dynamic-mode machine over the
        // undecomposed tree builds exactly one task per semantic-rule
        // application — its single region walk must not duplicate or
        // drop work. (Guards the folded single-walk construction.)
        {
            let g = w.tree.grammar();
            let expected_tasks: usize = w
                .tree
                .node_ids()
                .map(|n| g.prod(w.tree.node(n).prod).rules.len())
                .sum();
            let m = Machine::from_plan(
                &plan,
                &w.tree,
                &whole,
                0,
                MachineMode::Dynamic,
                MachineScratch::new(),
            );
            let (nodes, edges) = m.graph_size();
            assert_eq!(
                nodes, expected_tasks,
                "{label}: machine construction must enumerate every rule exactly once"
            );
            let (_, stats) = dynamic_eval(&w.tree).unwrap();
            assert_eq!(
                nodes, stats.graph_nodes,
                "{label}: same graph as dynamic_eval"
            );
            assert_eq!(
                edges, stats.graph_edges,
                "{label}: same edges as dynamic_eval"
            );
        }
        group.bench_with_input(BenchmarkId::new("construct", label), &w, |b, w| {
            b.iter(|| {
                let m = Machine::from_plan(
                    &plan,
                    &w.tree,
                    &whole,
                    0,
                    MachineMode::Dynamic,
                    MachineScratch::new(),
                );
                m.graph_size()
            })
        });
        group.bench_with_input(BenchmarkId::new("construct+eval", label), &w, |b, w| {
            b.iter(|| dynamic_eval(&w.tree).unwrap())
        });
        // Ready-lane comparison: identical graphs and results (asserted
        // in core's tests), different service order of the ready set.
        group.bench_with_input(BenchmarkId::new("eval/fifo", label), &w, |b, w| {
            b.iter(|| dynamic_eval_with(&w.tree, ReadyPolicy::Fifo).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("eval/prod-batched", label), &w, |b, w| {
            b.iter(|| dynamic_eval_with(&w.tree, ReadyPolicy::ProductionBatched).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
