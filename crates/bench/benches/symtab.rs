//! Criterion: applicative symbol tables vs cloning a `BTreeMap` — the
//! §4.3 claim that path-copying BSTs make applicative updates cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paragram_symtab::SymTab;
use std::collections::BTreeMap;

fn bench_symtab(c: &mut Criterion) {
    let mut group = c.benchmark_group("applicative-updates");
    for n in [100usize, 1_000] {
        let names: Vec<String> = (0..n).map(|i| format!("ident{i}")).collect();
        group.bench_with_input(BenchmarkId::new("symtab", n), &names, |b, names| {
            b.iter(|| {
                // Keep every version alive, as the attribute grammar does.
                let mut versions = Vec::with_capacity(names.len());
                let mut t: SymTab<usize> = SymTab::new();
                for (i, name) in names.iter().enumerate() {
                    t = t.add(name.as_str(), i);
                    versions.push(t.clone());
                }
                versions.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("btreemap-clone", n), &names, |b, names| {
            b.iter(|| {
                let mut versions = Vec::with_capacity(names.len());
                let mut m: BTreeMap<String, usize> = BTreeMap::new();
                for (i, name) in names.iter().enumerate() {
                    let mut next = m.clone();
                    next.insert(name.clone(), i);
                    m = next.clone();
                    versions.push(next);
                }
                versions.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_symtab);
criterion_main!(benches);
