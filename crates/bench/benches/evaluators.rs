//! Criterion: sequential evaluator comparison (real host time).
//!
//! Static (ordered) vs dynamic evaluation of the same attributed tree —
//! the CPU-cost claim behind the paper's §2.3: static evaluation skips
//! run-time dependency analysis entirely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paragram_bench::Workload;
use paragram_core::eval::{dynamic_eval, static_eval};
use paragram_pascal::generator::GenConfig;

fn bench_evaluators(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential-evaluators");
    group.sample_size(10);
    for (label, cfg) in [("small", GenConfig::small()), ("paper", GenConfig::paper())] {
        let w = Workload::from_config(&cfg);
        group.bench_with_input(BenchmarkId::new("static", label), &w, |b, w| {
            b.iter(|| static_eval(&w.tree, &w.plans).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dynamic", label), &w, |b, w| {
            b.iter(|| dynamic_eval(&w.tree).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_evaluators);
criterion_main!(benches);
