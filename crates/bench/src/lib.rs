//! Shared harness code for the figure/table binaries and Criterion
//! benches: the paper workload, simulator configurations, request
//! streams ([`stream`]) and small formatting helpers.

pub mod stream;

use paragram_core::analysis::Plans;
use paragram_core::eval::{EvalPlan, MachineMode};
use paragram_core::parallel::sim::{run_sim, SimConfig, SimReport};
use paragram_core::parallel::{phase_classifier, PhaseClassifier, ResultPropagation};
use paragram_core::tree::ParseTree;
use paragram_pascal::generator::{generate, GenConfig};
use paragram_pascal::{Compiler, PVal};
use std::sync::Arc;

/// The measurement workload: compiler, attributed tree and plans for
/// the paper-shaped generated program.
pub struct Workload {
    /// The AG compiler (grammar + plans).
    pub compiler: Compiler,
    /// The generated source text.
    pub source: String,
    /// The attributed parse tree.
    pub tree: Arc<ParseTree<PVal>>,
    /// Static plans.
    pub plans: Arc<Plans>,
}

impl Workload {
    /// Builds the paper workload (≈2000 lines, ≈60 procedures).
    pub fn paper() -> Workload {
        Workload::from_config(&GenConfig::paper())
    }

    /// Builds a smaller workload (for quick runs and tests).
    pub fn small() -> Workload {
        Workload::from_config(&GenConfig::small())
    }

    /// Builds a workload from a generator configuration.
    ///
    /// # Panics
    ///
    /// Panics if the generated source fails to compile — covered by
    /// generator tests.
    pub fn from_config(cfg: &GenConfig) -> Workload {
        let compiler = Compiler::new();
        let source = generate(cfg);
        let tree = compiler
            .tree_from_source(&source)
            .expect("generated workload parses");
        let plans = Arc::clone(compiler.evals.plans().expect("pascal grammar is ordered"));
        Workload {
            compiler,
            source,
            tree,
            plans,
        }
    }

    /// Source line count.
    pub fn lines(&self) -> usize {
        self.source.lines().count()
    }

    /// The compiler's shared evaluation plan: grammar analysis, visit
    /// sequences and the compiled visit programs, built once per
    /// grammar. Benchmarks take this so program compilation stays out
    /// of their timed loops.
    pub fn plan(&self) -> &Arc<EvalPlan<PVal>> {
        self.compiler.evals.plan()
    }
}

/// The Figure-6 phase classifier for the Pascal grammar's attribute
/// names.
pub fn pascal_classifier() -> PhaseClassifier {
    phase_classifier(vec![
        ("env", "symbol table"),
        ("off", "symbol table"),
        ("sig", "symbol table"),
        ("code", "code generation"),
        ("errs", "code generation"),
        ("ty", "code generation"),
    ])
}

/// Simulator configuration for the Pascal workload.
pub fn pascal_sim_config(
    machines: usize,
    mode: MachineMode,
    result: ResultPropagation,
) -> SimConfig {
    let mut cfg = SimConfig::paper(machines);
    cfg.mode = mode;
    cfg.result = result;
    cfg.classifier = pascal_classifier();
    cfg
}

/// Runs one simulated parallel compilation of a workload.
pub fn simulate(w: &Workload, machines: usize, mode: MachineMode) -> SimReport<PVal> {
    let cfg = pascal_sim_config(machines, mode, ResultPropagation::Librarian);
    run_sim(&w.tree, Some(&w.plans), &cfg)
}

/// Nearest-rank percentile (`p` in 1..=100) of an unsorted sample.
/// Returns 0 for an empty sample.
pub fn percentile(samples: &[u64], p: usize) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (p * sorted.len()).div_ceil(100).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Formats a µs time as seconds with 2 decimals.
pub fn fmt_secs(us: u64) -> String {
    format!("{:6.2}s", us as f64 / 1e6)
}

/// Renders a simple horizontal bar for terminal tables.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}
