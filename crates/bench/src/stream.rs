//! Seeded open-arrival request streams for the service benchmarks.
//!
//! `bench_latency` measures a *service*, so its input is not a batch
//! but a **request stream**: who arrives when, with what size of
//! compilation unit, billed to which tenant. This module generates
//! those streams deterministically — same seed, same stream — so the
//! wall-clock service and the simulated service replay identical
//! arrival schedules, and a regenerated `BENCH_latency.json` is
//! comparable run to run.
//!
//! Interarrival gaps are exponential (Poisson arrivals, the standard
//! open-arrival model), sampled from the integer-only [`rand`] shim by
//! building the uniform variate from raw bits. Sizes come from
//! [`SizeClass`] — the generator shapes the other benches already use,
//! plus the bigger-than-paper [`GenConfig::huge`] unit that makes a
//! stream *skewed*: one huge request contaminating a stream of small
//! ones is exactly the case where dispatch policy (FIFO vs
//! shortest-job-first vs fair queueing) decides tail latency.

use paragram_pascal::generator::GenConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A compilation-unit size class, naming a generator shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// One procedure (~a few dozen nodes): the dominant request size of
    /// an interactive service.
    Proc,
    /// A small compilation unit (a couple of procedures).
    Unit,
    /// The paper's ≈2000-line measurement program.
    Paper,
    /// The bigger-than-paper unit (≥10× the paper's node count) — the
    /// stream contaminant that policy experiments need.
    Huge,
}

impl SizeClass {
    /// Short stable name (JSON keys, report labels).
    pub fn name(self) -> &'static str {
        match self {
            SizeClass::Proc => "proc",
            SizeClass::Unit => "unit",
            SizeClass::Paper => "paper",
            SizeClass::Huge => "huge",
        }
    }

    /// The generator shape for this class, with `seed` varying the
    /// program (distinct seeds give distinct sources of the same
    /// shape).
    pub fn gen_config(self, seed: u64) -> GenConfig {
        match self {
            SizeClass::Proc => GenConfig {
                clusters: 1,
                procs_per_cluster: 1,
                stmts_per_proc: 3,
                nesting: 1,
                seed,
                template_clusters: 0,
            },
            SizeClass::Unit => GenConfig {
                clusters: 1,
                procs_per_cluster: 2,
                stmts_per_proc: 4,
                nesting: 1,
                seed,
                template_clusters: 0,
            },
            SizeClass::Paper => GenConfig {
                seed,
                ..GenConfig::paper()
            },
            SizeClass::Huge => GenConfig {
                seed,
                ..GenConfig::huge()
            },
        }
    }
}

/// Stream shape: how many requests, how fast, how big, how many
/// tenants.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// RNG seed; the stream is a pure function of this config.
    pub seed: u64,
    /// Number of requests.
    pub requests: usize,
    /// Mean exponential interarrival gap, in abstract ticks (scale to
    /// wall or virtual time at the call site).
    pub mean_interarrival: u64,
    /// Number of tenants; each request's tenant is sampled uniformly.
    pub tenants: u32,
    /// Size-class mix as `(class, weight)` pairs; weights are relative.
    pub mix: Vec<(SizeClass, u32)>,
    /// Fraction of requests (0.0–1.0) whose generator seed is drawn
    /// from a small fixed pool instead of being unique: duplicated
    /// traffic, the replay shape a cross-request memo cache exploits.
    /// Sampled from a side RNG so the arrival schedule, tenants and
    /// size classes are *identical* at any fraction. 0.0 (the default)
    /// keeps every request's source distinct.
    pub template_fraction: f64,
}

/// Number of distinct template seeds duplicated traffic draws from.
const TEMPLATE_POOL: u64 = 4;

/// Base of the template seed range — far from the per-request seed
/// range `cfg.seed + 1 + i` for any realistic stream seed.
const TEMPLATE_SEED_BASE: u64 = 0x7e3a_11ab_0000_0000;

impl StreamConfig {
    /// A skewed service stream: overwhelmingly small requests with a
    /// sprinkle of big ones — the shape that separates dispatch
    /// policies.
    pub fn skewed(requests: usize, seed: u64) -> Self {
        StreamConfig {
            seed,
            requests,
            mean_interarrival: 1_000,
            tenants: 3,
            mix: vec![
                (SizeClass::Proc, 70),
                (SizeClass::Unit, 24),
                (SizeClass::Paper, 4),
                (SizeClass::Huge, 2),
            ],
            template_fraction: 0.0,
        }
    }

    /// Returns the stream with the given duplicated-traffic fraction
    /// (clamped to 0.0–1.0); the arrival schedule is unchanged.
    pub fn with_template_fraction(mut self, fraction: f64) -> Self {
        self.template_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// The same stream shape with every class at or above `cap`
    /// replaced by `cap` (smoke runs substitute `Paper` for `Huge` to
    /// stay seconds-scale while keeping the skew).
    pub fn capped(mut self, cap: SizeClass) -> Self {
        let rank = |c: SizeClass| match c {
            SizeClass::Proc => 0,
            SizeClass::Unit => 1,
            SizeClass::Paper => 2,
            SizeClass::Huge => 3,
        };
        for (class, _) in &mut self.mix {
            if rank(*class) > rank(cap) {
                *class = cap;
            }
        }
        self
    }
}

/// One generated request: arrival time (in the config's abstract
/// ticks), tenant, size class, and the per-request generator seed.
#[derive(Debug, Clone, Copy)]
pub struct RequestSpec {
    /// Arrival time in abstract ticks, non-decreasing across the
    /// stream.
    pub arrival: u64,
    /// Tenant the request bills to.
    pub tenant: u32,
    /// Compilation-unit size class.
    pub class: SizeClass,
    /// Seed for this request's generated source (distinct per
    /// request).
    pub seed: u64,
}

/// A unit uniform variate from 64 raw bits: the top 53 bits, centered
/// in their bucket — never 0 or 1, so `ln` is safe.
fn unit_uniform(bits: u64) -> f64 {
    ((bits >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Generates the request stream for `cfg`: exponential interarrival
/// gaps, weighted size classes, uniform tenants. Deterministic in the
/// config.
///
/// # Panics
///
/// Panics if the mix is empty or all weights are zero.
pub fn generate_stream(cfg: &StreamConfig) -> Vec<RequestSpec> {
    let total_weight: u32 = cfg.mix.iter().map(|&(_, w)| w).sum();
    assert!(total_weight > 0, "stream mix needs positive weight");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    // Template decisions come from a separate RNG: the arrival/class/
    // tenant schedule is byte-identical at any template fraction.
    let mut trng = SmallRng::seed_from_u64(cfg.seed ^ TEMPLATE_SEED_BASE);
    let mut at = 0u64;
    (0..cfg.requests)
        .map(|i| {
            let u = unit_uniform(rng.next_u64());
            let gap = (-(cfg.mean_interarrival as f64) * u.ln()).round() as u64;
            at += gap;
            let mut pick = rng.gen_range(0..total_weight);
            let class = cfg
                .mix
                .iter()
                .find(|&&(_, w)| {
                    if pick < w {
                        true
                    } else {
                        pick -= w;
                        false
                    }
                })
                .expect("weights sum to total")
                .0;
            let tenant = rng.gen_range(0..cfg.tenants.max(1));
            let seed = if cfg.template_fraction > 0.0
                && unit_uniform(trng.next_u64()) < cfg.template_fraction
            {
                TEMPLATE_SEED_BASE + trng.next_u64() % TEMPLATE_POOL
            } else {
                cfg.seed.wrapping_add(1 + i as u64)
            };
            RequestSpec {
                arrival: at,
                tenant,
                class,
                seed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        let cfg = StreamConfig::skewed(64, 9);
        let a = generate_stream(&cfg);
        let b = generate_stream(&cfg);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.arrival, x.tenant, x.class, x.seed),
                (y.arrival, y.tenant, y.class, y.seed)
            );
        }
        let c = generate_stream(&StreamConfig::skewed(64, 10));
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.arrival != y.arrival),
            "different seeds give different schedules"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_gaps_average_near_the_mean() {
        let cfg = StreamConfig {
            requests: 2_000,
            ..StreamConfig::skewed(0, 3)
        };
        let stream = generate_stream(&cfg);
        assert!(stream.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let mean = stream.last().unwrap().arrival as f64 / stream.len() as f64;
        let want = cfg.mean_interarrival as f64;
        assert!(
            (mean - want).abs() < want * 0.15,
            "empirical mean gap {mean:.0} vs configured {want:.0}"
        );
    }

    #[test]
    fn the_mix_respects_the_weights() {
        let cfg = StreamConfig::skewed(1_000, 17);
        let stream = generate_stream(&cfg);
        let count = |class| stream.iter().filter(|r| r.class == class).count();
        let (p, u, a, h) = (
            count(SizeClass::Proc),
            count(SizeClass::Unit),
            count(SizeClass::Paper),
            count(SizeClass::Huge),
        );
        assert_eq!(p + u + a + h, 1_000);
        assert!(p > u && u > a, "proc {p} > unit {u} > paper {a}");
        assert!(
            (1..100).contains(&h),
            "huge contaminates, not dominates: {h}"
        );
        // Distinct per-request seeds.
        let mut seeds: Vec<u64> = stream.iter().map(|r| r.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1_000);
    }

    #[test]
    fn template_fraction_duplicates_seeds_without_touching_the_schedule() {
        let base = StreamConfig::skewed(400, 11);
        let plain = generate_stream(&base);
        let templated = generate_stream(&base.clone().with_template_fraction(0.5));
        // Identical schedule, tenants and classes at any fraction.
        for (a, b) in plain.iter().zip(&templated) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.tenant, b.tenant);
            assert_eq!(a.class, b.class);
        }
        // Roughly half the requests now share a handful of seeds.
        let mut seeds: Vec<u64> = templated.iter().map(|r| r.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        let dups = templated.len() - seeds.len();
        assert!(
            (100..300).contains(&dups),
            "≈50% of 400 requests should duplicate, got {dups}"
        );
        // Fraction 0 is byte-identical to the unfractioned stream.
        let zero = generate_stream(&base.clone().with_template_fraction(0.0));
        for (a, b) in plain.iter().zip(&zero) {
            assert_eq!(a.seed, b.seed);
        }
    }

    #[test]
    fn capping_substitutes_the_big_classes() {
        let cfg = StreamConfig::skewed(200, 5).capped(SizeClass::Paper);
        assert!(cfg.mix.iter().all(|&(c, _)| c != SizeClass::Huge));
        let stream = generate_stream(&cfg);
        assert!(stream.iter().all(|r| r.class != SizeClass::Huge));
        // The arrival schedule is unchanged by the substitution.
        let full = generate_stream(&StreamConfig::skewed(200, 5));
        for (a, b) in stream.iter().zip(&full) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.tenant, b.tenant);
        }
    }
}
