//! Figure 6: activity chart of the combined evaluator on five machines.
//!
//! Reproduces the paper's Gantt view: horizontal activity lines per
//! process (parser, evaluators a–e, string librarian), thick segments
//! busy, thin segments idle, with message send/receive markers. The
//! expected picture: symbol-table generation and propagation is
//! essentially sequential across machines, code generation runs in
//! parallel on all evaluators, and result propagation converges on the
//! librarian at the end.

use paragram_bench::{simulate, Workload};
use paragram_core::eval::MachineMode;
use paragram_netsim::ProcId;

fn main() {
    let w = Workload::paper();
    let report = simulate(&w, 5, MachineMode::Combined);
    println!(
        "Figure 6 — combined evaluator on {} machines (evaluation {:.2}s)\n",
        report.regions,
        report.eval_secs()
    );
    println!("{}", report.render_gantt(100));

    // Per-process phase accounting (the textual content of Figure 6).
    println!("\nper-process busy time by phase:");
    for (i, name) in report.names.iter().enumerate() {
        let p = ProcId(i);
        let busy = report.trace.busy_time(p);
        if busy == 0 {
            continue;
        }
        let st = report.trace.phase_time(p, "symbol table");
        let cg = report.trace.phase_time(p, "code generation");
        let rp = report.trace.phase_time(p, "result propagation");
        println!(
            "  {name:<12} busy {:6.2}s  (symtab {:5.2}s, codegen {:5.2}s, result-prop {:5.2}s)",
            busy as f64 / 1e6,
            st as f64 / 1e6,
            cg as f64 / 1e6,
            rp as f64 / 1e6,
        );
    }
    println!(
        "\nnetwork: {} messages, {} KiB total",
        report.trace.messages.len(),
        report.trace.network_bytes() / 1024
    );
}
