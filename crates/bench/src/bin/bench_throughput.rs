//! Throughput benchmark for the batched compilation driver.
//!
//! Measures trees/second when a stream of parse trees is compiled
//! through `paragram-driver`, for batch sizes 1 / 16 / 256: each batch
//! pays the full per-compilation setup **once** — grammar analysis and
//! visit plans ([`CompilationPlan::analyze`]), split tables, worker and
//! librarian spin-up ([`BatchDriver::new`]) — and then streams its
//! trees through the persistent pool. Batch size 1 is the unamortized
//! baseline (the single-compilation pipeline the paper measures);
//! larger batches show how much of a compilation was really per-grammar
//! overhead.
//!
//! Two workload scales are generated from [`GenConfig`]: `unit`, a
//! small compilation-unit-sized program, and `small`, the generator's
//! standard small program. Trees are parsed up front (the paper's
//! parser is a separate sequential pipeline stage); distinct seeds make
//! the trees distinct.
//!
//! Writes `BENCH_throughput.json` (override with `--out`). `--smoke`
//! runs a seconds-scale subset and writes nothing unless `--out` is
//! given — CI uses it to keep the driver's bench path alive.
//!
//! Usage: `cargo run --release --bin bench_throughput --
//! [--smoke] [--workers N] [--out PATH] [--label TEXT]`

use paragram_core::tree::ParseTree;
use paragram_driver::{BatchDriver, CompilationPlan, DriverConfig};
use paragram_pascal::generator::{generate, GenConfig};
use paragram_pascal::{Compiler, PVal};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    smoke: bool,
    workers: usize,
    out: Option<String>,
    label: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        workers: 4,
        out: None,
        label: "current".to_string(),
    };
    let mut explicit_out = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--workers" => {
                args.workers = val("--workers").parse().unwrap_or_else(|_| {
                    eprintln!("error: --workers takes an integer");
                    std::process::exit(2);
                });
                args.workers = args.workers.max(1);
            }
            "--out" => {
                args.out = Some(val("--out"));
                explicit_out = true;
            }
            "--label" => args.label = val("--label"),
            other => {
                eprintln!(
                    "error: unknown argument {other:?}\nusage: bench_throughput [--smoke] [--workers N] [--out PATH] [--label TEXT]"
                );
                std::process::exit(2);
            }
        }
    }
    if !args.smoke && !explicit_out {
        args.out = Some("BENCH_throughput.json".to_string());
    }
    args
}

/// A named workload scale: the generator shape and the batch sizes /
/// repetition counts measured at that scale.
struct Scale {
    name: &'static str,
    cfg: GenConfig,
}

fn scales(smoke: bool) -> Vec<Scale> {
    // Batch throughput matters where per-tree work is comparable to the
    // per-compilation setup it amortizes — streams of procedure- and
    // compilation-unit-sized trees. (At the generator's 2000-line paper
    // scale a single tree's evaluation dwarfs setup; that regime is
    // tracked by BENCH_dynamic.json instead.)
    let proc = Scale {
        name: "proc",
        cfg: GenConfig {
            clusters: 1,
            procs_per_cluster: 1,
            stmts_per_proc: 3,
            nesting: 1,
            seed: 7,
        },
    };
    let unit = Scale {
        name: "unit",
        cfg: GenConfig {
            clusters: 1,
            procs_per_cluster: 2,
            stmts_per_proc: 4,
            nesting: 1,
            seed: 2024,
        },
    };
    if smoke {
        return vec![proc];
    }
    vec![proc, unit]
}

/// Distinct trees for a scale (seeds vary; sources differ).
fn build_trees(compiler: &Compiler, cfg: &GenConfig, count: usize) -> Vec<Arc<ParseTree<PVal>>> {
    (0..count)
        .map(|i| {
            let src = generate(&GenConfig {
                seed: cfg.seed + i as u64,
                ..*cfg
            });
            compiler
                .tree_from_source(&src)
                .expect("generated workload parses")
        })
        .collect()
}

/// One timed batch: full setup (grammar analysis + plans + pool spawn)
/// plus `batch` trees streamed through the driver. Returns nanoseconds.
fn run_batch(
    compiler: &Compiler,
    trees: &[Arc<ParseTree<PVal>>],
    batch: usize,
    workers: usize,
) -> u128 {
    let t = Instant::now();
    let plan = CompilationPlan::analyze(&compiler.pg.grammar, DriverConfig::workers(workers));
    let mut driver = BatchDriver::new(&plan);
    for i in 0..batch {
        let tree = &trees[i % trees.len()];
        let out = driver.compile_tree(tree).expect("evaluation succeeds");
        std::hint::black_box(out.root_values.len());
    }
    t.elapsed().as_nanos()
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let args = parse_args();
    let compiler = Compiler::new();
    let batch_sizes: &[usize] = if args.smoke { &[1, 4] } else { &[1, 16, 256] };

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"label\": {:?},\n", args.label));
    out.push_str(&format!("  \"workers\": {},\n", args.workers));
    out.push_str(&format!(
        "  \"batch_sizes\": [{}],\n",
        batch_sizes
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));

    let scales = scales(args.smoke);
    let mut all_amortized = true;
    for (si, scale) in scales.iter().enumerate() {
        let distinct = batch_sizes.iter().copied().max().unwrap().min(32);
        let trees = build_trees(&compiler, &scale.cfg, distinct);
        let nodes_avg: usize = trees.iter().map(|t| t.len()).sum::<usize>() / trees.len();
        println!(
            "scale {}: {} distinct trees, ~{} nodes each",
            scale.name,
            trees.len(),
            nodes_avg
        );

        out.push_str(&format!("  \"{}\": {{\n", scale.name));
        out.push_str(&format!("    \"tree_nodes_avg\": {nodes_avg},\n"));
        let mut per_batch: Vec<(usize, f64)> = Vec::new();
        for &batch in batch_sizes {
            // Keep total work per batch size comparable: more reps for
            // small batches, fewer for large ones.
            let reps = if args.smoke {
                2
            } else {
                (512 / batch).clamp(3, 15)
            };
            // Warm-up (loads code paths, grows allocator arenas).
            run_batch(&compiler, &trees, batch.min(4), args.workers);
            let times: Vec<u128> = (0..reps)
                .map(|_| run_batch(&compiler, &trees, batch, args.workers))
                .collect();
            let med = median(times);
            let tps = batch as f64 / (med as f64 / 1e9);
            per_batch.push((batch, tps));
            println!(
                "  {}/batch_{batch}: median {med} ns/batch, {tps:.1} trees/sec ({reps} reps)",
                scale.name
            );
            out.push_str(&format!("    \"batch_{batch}\": {{\n"));
            out.push_str(&format!("      \"median_ns_per_batch\": {med},\n"));
            out.push_str(&format!("      \"trees_per_sec\": {tps:.1}\n"));
            // The speedup field follows, so every batch entry takes a
            // trailing comma.
            out.push_str("    },\n");
        }
        let (b0, tps0) = per_batch[0];
        let (bn, tpsn) = *per_batch.last().unwrap();
        let speedup = tpsn / tps0;
        if speedup < 1.3 {
            all_amortized = false;
        }
        println!(
            "  {}: batch_{bn} is {speedup:.2}x batch_{b0} throughput",
            scale.name
        );
        out.push_str(&format!(
            "    \"speedup_batch_{bn}_vs_{b0}\": {speedup:.2}\n"
        ));
        out.push_str("  }");
        out.push_str(if si + 1 < scales.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");

    if let Some(path) = &args.out {
        std::fs::write(path, &out).expect("write output");
        println!("wrote {path}");
    }
    if !all_amortized {
        println!("warning: amortization below 1.3x on at least one scale");
    }
}
