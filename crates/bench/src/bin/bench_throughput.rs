//! Throughput benchmark for the batched compilation driver.
//!
//! Measures trees/second when a stream of parse trees is compiled
//! through `paragram-driver`, for batch sizes 1 / 16 / 256: each batch
//! pays the full per-compilation setup **once** — grammar analysis and
//! visit plans ([`CompilationPlan::analyze`]), split tables, worker and
//! librarian spin-up ([`BatchDriver::new`]) — and then streams its
//! trees through the persistent pool. Batch size 1 is the unamortized
//! baseline (the single-compilation pipeline the paper measures);
//! larger batches show how much of a compilation was really per-grammar
//! overhead.
//!
//! Every batch size is measured on a second axis, **barrier vs
//! pipelined**: the barrier pool (pipeline depth 1) retires each tree
//! before dispatching the next, while the pipelined pool (depth ≥ 2,
//! `--depth`) keeps a window of trees in flight so tree N+1's region
//! jobs fill workers idling behind tree N's stragglers and tree N's
//! result assembly overlaps tree N+1's evaluation. The two modes run
//! interleaved within each repetition so the comparison is same-box,
//! same-moment. Note: on a single-core host (like the current bench
//! container) both schedules consume the same CPU and the wall-clock
//! ratio hovers around 1.0 — there is no idle core for the window to
//! fill. The `sim` section therefore also runs the same stream on the
//! paper's simulated multi-machine network ([`run_sim_batch`]), where
//! the overlapped schedule's makespan win is measured deterministically
//! (straggler regions of tree N evaluate while tree N+1's machines
//! start).
//!
//! Two workload scales are generated from [`GenConfig`]: `proc`, a
//! procedure-sized program, and `unit`, a compilation-unit-sized one.
//! Trees are parsed up front (the paper's parser is a separate
//! sequential pipeline stage); distinct seeds make the trees distinct.
//!
//! A third axis, **`--single-tree`**, measures region-granular
//! scheduling on one bigger-than-paper tree ([`GenConfig::huge`], ≥10×
//! the paper workload): the same tree compiled whole-tree (fixed-count
//! decomposition, at most one region per worker) vs adaptive-region
//! (cost-driven budget, many region jobs round-robining over the pool),
//! interleaved rep by rep, plus the deterministic simulated-network
//! comparison on a stream led by the huge tree, plus a
//! store-construction axis (total/peak machine-store slots per
//! decomposition vs the tree's instance count — the O(region) win of
//! region-local stores). Emits a `single_tree` section in the JSON. In
//! `--smoke` mode the paper-sized tree stands in for the huge one.
//!
//! Writes `BENCH_throughput.json` (override with `--out`). `--smoke`
//! runs a seconds-scale subset and writes nothing unless `--out` is
//! given — CI uses it (once per mode) to keep both driver schedules
//! alive.
//!
//! A fourth axis, **`--memo`**, measures cross-request subtree sharing:
//! streams of separately parsed trees — fully duplicated, sharing a
//! template prefix of clusters, or i.i.d. — compiled with the memo
//! cache off vs on ([`DriverConfig::with_memo_capacity`]), interleaved
//! rep by rep, cold (first pass of a fresh pool) and warm (second pass
//! of the same pool) measured separately. Hit rates come from
//! [`BatchReport::memo`]. Two properties are asserted, not just
//! reported: memo-on outputs are value-identical to memo-off on every
//! tree, and the warm duplicated pass actually hits. The memo-on side
//! additionally runs under `InstallPolicy::SecondTouch` (2Q
//! scan-resistant installs), asserting the duplicated stream's warm
//! hit rate survives deferral. Emits a `memo` section in the JSON.
//!
//! A fifth axis, **`--sched`**, compares fixed modular placement
//! against the work-stealing scheduler ([`SchedulerMode::Stealing`])
//! on a skewed multi-huge-tree stream, wall-clock and simulated; see
//! [`run_sched`] for the stream's rationale and the gated acceptance
//! bar (stealing ≥ 1.15× fixed in the sim, zero result divergence).
//! Emits a `sched` section in the JSON.
//!
//! Usage: `cargo run --release --bin bench_throughput --
//! [--smoke] [--single-tree] [--memo] [--sched] [--workers N]
//! [--depth N] [--modes barrier,pipelined] [--out PATH] [--label TEXT]`

use paragram_core::memo::InstallPolicy;
use paragram_core::parallel::pool::SchedulerMode;
use paragram_core::parallel::sim::{run_sim_batch, run_sim_batch_with, SimConfig};
use paragram_core::split::{decompose_granular, RegionGranularity, RegionId, SplitTable};
use paragram_core::tree::ParseTree;
use paragram_driver::{BatchDriver, CompilationPlan, DriverConfig};
use paragram_pascal::generator::{generate, GenConfig};
use paragram_pascal::{Compiler, PVal};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    smoke: bool,
    single_tree: bool,
    memo: bool,
    sched: bool,
    workers: usize,
    depth: usize,
    modes: Vec<Mode>,
    out: Option<String>,
    label: String,
}

/// One point on the barrier-vs-pipelined axis.
#[derive(Clone, Copy, PartialEq)]
struct Mode {
    name: &'static str,
    depth: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        single_tree: false,
        memo: false,
        sched: false,
        workers: 4,
        depth: 2,
        modes: Vec::new(),
        out: None,
        label: "current".to_string(),
    };
    let mut explicit_out = false;
    let mut mode_names: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--single-tree" => args.single_tree = true,
            "--memo" => args.memo = true,
            "--sched" => args.sched = true,
            "--workers" => {
                args.workers = val("--workers").parse().unwrap_or_else(|_| {
                    eprintln!("error: --workers takes an integer");
                    std::process::exit(2);
                });
                args.workers = args.workers.max(1);
            }
            "--depth" => {
                args.depth = val("--depth").parse().unwrap_or_else(|_| {
                    eprintln!("error: --depth takes an integer");
                    std::process::exit(2);
                });
                if args.depth < 2 {
                    eprintln!(
                        "error: --depth must be >= 2 (depth 1 is the barrier; use --modes barrier)"
                    );
                    std::process::exit(2);
                }
            }
            "--modes" => mode_names = Some(val("--modes")),
            "--out" => {
                args.out = Some(val("--out"));
                explicit_out = true;
            }
            "--label" => args.label = val("--label"),
            other => {
                eprintln!(
                    "error: unknown argument {other:?}\nusage: bench_throughput [--smoke] [--single-tree] [--memo] [--sched] [--workers N] [--depth N] [--modes barrier,pipelined] [--out PATH] [--label TEXT]"
                );
                std::process::exit(2);
            }
        }
    }
    let barrier = Mode {
        name: "barrier",
        depth: 1,
    };
    let pipelined = Mode {
        name: "pipelined",
        depth: args.depth,
    };
    args.modes = match mode_names.as_deref() {
        None => vec![barrier, pipelined],
        Some(names) => names
            .split(',')
            .map(|n| match n.trim() {
                "barrier" => barrier,
                "pipelined" => pipelined,
                other => {
                    eprintln!("error: unknown mode {other:?} (barrier|pipelined)");
                    std::process::exit(2);
                }
            })
            .collect(),
    };
    if args.modes.len() > 2 || (args.modes.len() == 2 && args.modes[0].name == args.modes[1].name) {
        eprintln!("error: --modes takes each mode at most once");
        std::process::exit(2);
    }
    if !args.smoke && !explicit_out {
        args.out = Some("BENCH_throughput.json".to_string());
    }
    args
}

/// A named workload scale: the generator shape and the batch sizes /
/// repetition counts measured at that scale.
struct Scale {
    name: &'static str,
    cfg: GenConfig,
}

fn scales(smoke: bool) -> Vec<Scale> {
    // Batch throughput matters where per-tree work is comparable to the
    // per-compilation setup it amortizes — streams of procedure- and
    // compilation-unit-sized trees. (At the generator's 2000-line paper
    // scale a single tree's evaluation dwarfs setup; that regime is
    // tracked by BENCH_dynamic.json instead.)
    let proc = Scale {
        name: "proc",
        cfg: GenConfig {
            clusters: 1,
            procs_per_cluster: 1,
            stmts_per_proc: 3,
            nesting: 1,
            seed: 7,
            template_clusters: 0,
        },
    };
    let unit = Scale {
        name: "unit",
        cfg: GenConfig {
            clusters: 1,
            procs_per_cluster: 2,
            stmts_per_proc: 4,
            nesting: 1,
            seed: 2024,
            template_clusters: 0,
        },
    };
    if smoke {
        return vec![proc];
    }
    vec![proc, unit]
}

/// Distinct trees for a scale (seeds vary; sources differ).
fn build_trees(compiler: &Compiler, cfg: &GenConfig, count: usize) -> Vec<Arc<ParseTree<PVal>>> {
    (0..count)
        .map(|i| {
            let src = generate(&GenConfig {
                seed: cfg.seed + i as u64,
                ..*cfg
            });
            compiler
                .tree_from_source(&src)
                .expect("generated workload parses")
        })
        .collect()
}

/// One timed batch: full setup (grammar analysis + plans + pool spawn)
/// plus `batch` trees streamed through the driver at the mode's
/// pipeline depth. Returns nanoseconds.
fn run_batch(
    compiler: &Compiler,
    trees: &[Arc<ParseTree<PVal>>],
    batch: usize,
    workers: usize,
    depth: usize,
) -> u128 {
    let stream: Vec<Arc<ParseTree<PVal>>> = (0..batch)
        .map(|i| Arc::clone(&trees[i % trees.len()]))
        .collect();
    let t = Instant::now();
    let plan = CompilationPlan::analyze(
        &compiler.pg.grammar,
        DriverConfig::workers(workers).with_pipeline_depth(depth),
    );
    let mut driver = BatchDriver::new(&plan);
    let report = driver.compile_batch(stream).expect("evaluation succeeds");
    std::hint::black_box(report.outputs.len());
    t.elapsed().as_nanos()
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// One memo-axis stream shape: how many distinct sources the stream
/// cycles through and how many leading clusters are template-shared.
struct MemoVariant {
    name: &'static str,
    distinct: usize,
    template_clusters: usize,
}

/// Builds a memo-axis stream: `count` separately parsed trees whose
/// generator seeds cycle through `distinct` values (identical sources
/// parse to identical trees — same unique-id tokens, same hashes — but
/// each occurrence is its own parse, as duplicated service traffic
/// would be).
fn memo_stream(
    compiler: &Compiler,
    variant: &MemoVariant,
    count: usize,
) -> Vec<Arc<ParseTree<PVal>>> {
    let base = GenConfig {
        clusters: 3,
        procs_per_cluster: 2,
        stmts_per_proc: 4,
        nesting: 1,
        seed: 0,
        template_clusters: variant.template_clusters,
    };
    (0..count)
        .map(|i| {
            let src = generate(&GenConfig {
                seed: 9_000 + (i % variant.distinct) as u64,
                ..base
            });
            compiler
                .tree_from_source(&src)
                .expect("generated workload parses")
        })
        .collect()
}

/// Asserts two outputs of the same tree are value-identical, instance
/// by instance (the bench-level equivalence gate; the unit suites do
/// the same per fixture).
fn assert_outputs_match(
    tree: &ParseTree<PVal>,
    on: &paragram_driver::TreeOutput<PVal>,
    off: &paragram_driver::TreeOutput<PVal>,
    ctx: &str,
) {
    let g = tree.grammar();
    for node in tree.node_ids() {
        let sym = g.prod(tree.node(node).prod).lhs;
        for a in 0..g.attr_count(sym) {
            let attr = paragram_core::grammar::AttrId(a as u32);
            assert_eq!(
                on.store.get(node, attr),
                off.store.get(node, attr),
                "{ctx}: node {node:?} attr {attr:?} diverged with the memo cache on"
            );
        }
    }
    assert_eq!(
        on.root_values, off.root_values,
        "{ctx}: root values diverged with the memo cache on"
    );
}

/// The `--memo` axis: duplicated / shared-prefix / i.i.d. streams with
/// the cache off vs on, cold and warm passes, interleaved rep by rep.
/// The on side runs twice more under `InstallPolicy::SecondTouch` (2Q:
/// first touch marks, second touch installs) to measure what
/// scan-resistant installs cost a genuinely re-referenced stream —
/// gated: the duplicated stream's warm hit rate must not drop.
fn run_memo(compiler: &Compiler, args: &Args, out: &mut String) {
    const MEMO_BYTES: usize = 64 << 20;
    let count = if args.smoke { 8 } else { 32 };
    let reps = if args.smoke { 2 } else { 7 };
    let variants = [
        MemoVariant {
            name: "duplicated",
            distinct: if args.smoke { 2 } else { 4 },
            template_clusters: 0,
        },
        MemoVariant {
            name: "shared_prefix",
            distinct: count,
            template_clusters: 2,
        },
        MemoVariant {
            name: "iid",
            distinct: count,
            template_clusters: 0,
        },
    ];
    let plan = compiler.evals.plan();
    out.push_str("  \"memo\": {\n");
    out.push_str(&format!("    \"capacity_bytes\": {MEMO_BYTES},\n"));
    out.push_str(&format!("    \"stream_len\": {count},\n"));
    for (vi, variant) in variants.iter().enumerate() {
        let trees = memo_stream(compiler, variant, count);
        let nodes_avg: usize = trees.iter().map(|t| t.len()).sum::<usize>() / trees.len();
        println!(
            "memo/{}: {count} trees ({} distinct), ~{nodes_avg} nodes each",
            variant.name, variant.distinct
        );

        // Both sides run adaptive granularity: the memo caches *leaf*
        // regions, and only cost-driven decomposition carves procedure
        // bodies (`stmts` subtrees — memo-safe symbols) into leaves.
        // Fixed per-worker carving roots every pascal leaf at `decls`,
        // whose forward-reference loop (genv ← env_out) makes it
        // uncacheable. Same budget on the off side keeps the ratio a
        // pure memo effect.
        let budget = (plan.tree_work(&trees[0]) / 16).max(1);

        // One full-detail pass for the equivalence gate and hit rates:
        // the same stream through a memo-off and a memo-on driver, two
        // passes each (cold, then warm on the same pool).
        let config = |bytes: usize| {
            DriverConfig::workers(args.workers)
                .with_pipeline_depth(args.depth)
                .with_adaptive_budget(budget)
                .with_memo_capacity(bytes)
        };
        let mut off_driver = BatchDriver::new(&CompilationPlan::from_plan(plan, config(0)));
        let mut on_driver = BatchDriver::new(&CompilationPlan::from_plan(plan, config(MEMO_BYTES)));
        let mut tq_driver = BatchDriver::new(&CompilationPlan::from_plan(
            plan,
            config(MEMO_BYTES).with_memo_install(InstallPolicy::SecondTouch),
        ));
        let off_cold = off_driver.compile_batch(trees.iter().cloned()).unwrap();
        let on_cold = on_driver.compile_batch(trees.iter().cloned()).unwrap();
        let tq_cold = tq_driver.compile_batch(trees.iter().cloned()).unwrap();
        let off_warm = off_driver.compile_batch(trees.iter().cloned()).unwrap();
        let on_warm = on_driver.compile_batch(trees.iter().cloned()).unwrap();
        let tq_warm = tq_driver.compile_batch(trees.iter().cloned()).unwrap();
        for (i, tree) in trees.iter().enumerate() {
            let ctx = format!("memo/{} tree {i}", variant.name);
            assert_outputs_match(tree, &on_cold.outputs[i], &off_cold.outputs[i], &ctx);
            assert_outputs_match(tree, &on_warm.outputs[i], &off_warm.outputs[i], &ctx);
            assert_outputs_match(tree, &tq_cold.outputs[i], &off_cold.outputs[i], &ctx);
            assert_outputs_match(tree, &tq_warm.outputs[i], &off_warm.outputs[i], &ctx);
        }
        let cold_counters = on_cold.memo.expect("memo on");
        let warm_counters = on_warm.memo.expect("memo on");
        let tq_cold_counters = tq_cold.memo.expect("memo on");
        let tq_warm_counters = tq_warm.memo.expect("memo on");
        if variant.name == "duplicated" {
            assert!(
                warm_counters.hits > 0,
                "warm duplicated stream must hit the memo cache: {warm_counters:?}"
            );
            // The 2Q gate: deferring first-touch installs must not cost
            // a genuinely re-referenced stream its warm hit rate — the
            // repeats earn installation on the second touch, so by the
            // warm pass the cache holds the same hot set.
            assert!(
                tq_warm_counters.hit_rate() >= warm_counters.hit_rate() - 0.01,
                "2Q must keep the duplicated stream's warm hit rate (always-install {:.3}, second-touch {:.3})",
                warm_counters.hit_rate(),
                tq_warm_counters.hit_rate()
            );
            assert!(
                tq_cold_counters.deferred > 0,
                "cold 2Q pass must defer first-touch installs: {tq_cold_counters:?}"
            );
        }
        println!(
            "  hit rate: cold {:.2} ({}/{} probes), warm {:.2} ({}/{} probes)",
            cold_counters.hit_rate(),
            cold_counters.hits,
            cold_counters.hits + cold_counters.misses,
            warm_counters.hit_rate(),
            warm_counters.hits,
            warm_counters.hits + warm_counters.misses,
        );
        println!(
            "  2Q: cold hit rate {:.2} ({} deferred), warm hit rate {:.2} ({} deferred)",
            tq_cold_counters.hit_rate(),
            tq_cold_counters.deferred,
            tq_warm_counters.hit_rate(),
            tq_warm_counters.deferred,
        );

        // Timed reps, memo-off and memo-on interleaved: fresh pool per
        // rep, pass 1 is the cold measurement, pass 2 the warm one.
        let mut times: [Vec<u128>; 6] = Default::default();
        let arms = [
            (0usize, 0usize, InstallPolicy::Always),
            (1, MEMO_BYTES, InstallPolicy::Always),
            (2, MEMO_BYTES, InstallPolicy::SecondTouch),
        ];
        for _ in 0..reps {
            for (oi, bytes, install) in arms {
                let mut driver = BatchDriver::new(&CompilationPlan::from_plan(
                    plan,
                    config(bytes).with_memo_install(install),
                ));
                for pass in 0..2 {
                    let t = Instant::now();
                    let report = driver.compile_batch(trees.iter().cloned()).unwrap();
                    std::hint::black_box(report.outputs.len());
                    times[oi * 2 + pass].push(t.elapsed().as_nanos());
                }
            }
        }
        let [off_cold_ns, off_warm_ns, on_cold_ns, on_warm_ns, tq_cold_ns, tq_warm_ns] =
            times.map(median);
        let tps = |ns: u128| count as f64 / (ns as f64 / 1e9);
        let warm_ratio = tps(on_warm_ns) / tps(off_warm_ns);
        let cold_ratio = tps(on_cold_ns) / tps(off_cold_ns);
        println!(
            "  memo-off: cold {:.1} / warm {:.1} trees/sec; memo-on: cold {:.1} / warm {:.1} trees/sec — warm memo-on is {warm_ratio:.2}x memo-off",
            tps(off_cold_ns),
            tps(off_warm_ns),
            tps(on_cold_ns),
            tps(on_warm_ns),
        );

        out.push_str(&format!("    \"{}\": {{\n", variant.name));
        out.push_str(&format!(
            "      \"distinct_sources\": {},\n",
            variant.distinct
        ));
        out.push_str(&format!("      \"tree_nodes_avg\": {nodes_avg},\n"));
        out.push_str(&format!(
            "      \"hit_rate\": {{ \"cold\": {:.3}, \"warm\": {:.3} }},\n",
            cold_counters.hit_rate(),
            warm_counters.hit_rate()
        ));
        out.push_str(&format!(
            "      \"memo_off\": {{ \"cold_trees_per_sec\": {:.1}, \"warm_trees_per_sec\": {:.1} }},\n",
            tps(off_cold_ns),
            tps(off_warm_ns)
        ));
        out.push_str(&format!(
            "      \"memo_on\": {{ \"cold_trees_per_sec\": {:.1}, \"warm_trees_per_sec\": {:.1} }},\n",
            tps(on_cold_ns),
            tps(on_warm_ns)
        ));
        out.push_str(&format!(
            "      \"memo_on_vs_off\": {{ \"cold\": {cold_ratio:.2}, \"warm\": {warm_ratio:.2} }},\n"
        ));
        out.push_str(&format!(
            "      \"second_touch\": {{ \"hit_rate\": {{ \"cold\": {:.3}, \"warm\": {:.3} }}, \"deferred\": {{ \"cold\": {}, \"warm\": {} }}, \"cold_trees_per_sec\": {:.1}, \"warm_trees_per_sec\": {:.1}, \"warm_vs_always_install\": {:.2} }}\n"
        ,
            tq_cold_counters.hit_rate(),
            tq_warm_counters.hit_rate(),
            tq_cold_counters.deferred,
            tq_warm_counters.deferred,
            tps(tq_cold_ns),
            tps(tq_warm_ns),
            tps(tq_warm_ns) / tps(on_warm_ns),
        ));
        out.push_str(if vi + 1 == variants.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  },\n");
}

/// The `--single-tree` axis: one bigger-than-paper tree compiled
/// whole-tree (fixed-count regions ≤ workers) vs adaptive-region
/// (cost-driven budget, regions ≫ workers), reps interleaved so the
/// ratio is a same-box, same-moment comparison. Appends a
/// `single_tree` object (with a trailing comma) to the JSON.
fn run_single_tree(compiler: &Compiler, args: &Args, out: &mut String) {
    let (workload, cfg) = if args.smoke {
        ("paper", GenConfig::paper())
    } else {
        ("huge", GenConfig::huge())
    };
    let src = generate(&cfg);
    let tree = compiler
        .tree_from_source(&src)
        .expect("generated workload parses");
    let plan = compiler.evals.plan();
    // Budget ≈ a quarter of a worker's fair share: several region jobs
    // per worker, so stragglers interleave. On a single-core host the
    // extra regions cost wall clock (each machine pays its own
    // construction; there is no idle core to fill) — the sim section
    // below shows the scheduling win on a real machine park.
    let budget = (plan.tree_work(&tree) / (args.workers as u64 * 4)).max(1);
    let whole_cfg = DriverConfig::workers(args.workers).with_pipeline_depth(args.depth);
    let adaptive_cfg = whole_cfg.with_adaptive_budget(budget);
    let reps = if args.smoke { 3 } else { 7 };
    println!(
        "single tree ({workload}): {} nodes, budget {budget} work units",
        tree.len()
    );

    let run = |config: DriverConfig| -> (u128, usize) {
        let t = Instant::now();
        let cp = CompilationPlan::from_plan(plan, config);
        let mut driver = BatchDriver::new(&cp);
        let output = driver.compile_tree(&tree).expect("evaluation succeeds");
        std::hint::black_box(output.stats.total_applied());
        (t.elapsed().as_nanos(), output.regions)
    };
    run(whole_cfg); // warm-up
    let mut whole_times = Vec::with_capacity(reps);
    let mut adaptive_times = Vec::with_capacity(reps);
    let (mut whole_regions, mut adaptive_regions) = (0usize, 0usize);
    for _ in 0..reps {
        let (t, r) = run(whole_cfg);
        whole_times.push(t);
        whole_regions = r;
        let (t, r) = run(adaptive_cfg);
        adaptive_times.push(t);
        adaptive_regions = r;
    }
    let wm = median(whole_times);
    let am = median(adaptive_times);
    let wall_ratio = wm as f64 / am as f64;
    println!(
        "  whole-tree: median {wm} ns ({whole_regions} regions); adaptive-region: median {am} ns ({adaptive_regions} regions) — adaptive is {wall_ratio:.2}x whole-tree wall clock"
    );

    // Store-construction axis: how many attribute slots the region
    // machines of each decomposition allocate in total / at peak.
    // Region-local stores put both modes at ≈1× the tree's instance
    // count (owned spans partition the instances; boundary aliases are
    // the only overhead), where whole-tree stores per machine used to
    // cost regions × tree instances under adaptive granularity.
    let split_table = SplitTable::new(tree.grammar().as_ref(), 1.0);
    let machine_slots = |granularity: RegionGranularity| -> (usize, usize, usize) {
        let d = decompose_granular(&tree, &split_table, plan.work_table(), granularity);
        let map = d.slot_map();
        (0..d.len() as RegionId).fold((0, 0, map.tree_instances()), |(total, peak, ti), r| {
            let slots = map.total_slots(r);
            (total + slots, peak.max(slots), ti)
        })
    };
    let (whole_slots, whole_peak, tree_instances) =
        machine_slots(RegionGranularity::Machines(args.workers));
    let (adaptive_slots, adaptive_peak, _) = machine_slots(RegionGranularity::Adaptive { budget });
    println!(
        "  store slots: tree {tree_instances}; whole-tree machines Σ{whole_slots} (peak {whole_peak}); adaptive machines Σ{adaptive_slots} (peak {adaptive_peak})"
    );

    // Deterministic simulated-network comparison: a stream led by the
    // single big tree plus small units behind it — the head-of-line
    // case region granularity exists for.
    let plans = compiler.evals.plans().expect("pascal grammar is l-ordered");
    let machines = args.workers.max(2);
    let mut stream = vec![Arc::clone(&tree)];
    stream.extend(build_trees(compiler, &scales(true)[0].cfg, 4));
    let sim_cfg = SimConfig::paper(machines);
    let whole_ms = run_sim_batch(&stream, Some(plans), &sim_cfg, args.depth).makespan;
    let adaptive_ms = run_sim_batch_with(
        &stream,
        Some(plans),
        &sim_cfg,
        args.depth,
        RegionGranularity::Adaptive { budget },
    )
    .makespan;
    let sim_ratio = whole_ms as f64 / adaptive_ms as f64;
    println!(
        "  sim ({machines} machines, {} trees): whole-tree {whole_ms}µs, adaptive {adaptive_ms}µs — adaptive is {sim_ratio:.2}x whole-tree throughput",
        stream.len()
    );

    out.push_str("  \"single_tree\": {\n");
    out.push_str(&format!("    \"workload\": {workload:?},\n"));
    out.push_str(&format!("    \"tree_nodes\": {},\n", tree.len()));
    out.push_str(&format!("    \"budget_work_units\": {budget},\n"));
    out.push_str(&format!(
        "    \"whole_tree\": {{ \"median_ns\": {wm}, \"regions\": {whole_regions} }},\n"
    ));
    out.push_str(&format!(
        "    \"adaptive_region\": {{ \"median_ns\": {am}, \"regions\": {adaptive_regions} }},\n"
    ));
    out.push_str(&format!(
        "    \"adaptive_vs_whole_tree_wall\": {wall_ratio:.2},\n"
    ));
    out.push_str("    \"store_slots\": {\n");
    out.push_str(&format!("      \"tree_instances\": {tree_instances},\n"));
    out.push_str(&format!(
        "      \"whole_tree\": {{ \"machine_total\": {whole_slots}, \"machine_peak\": {whole_peak} }},\n"
    ));
    out.push_str(&format!(
        "      \"adaptive_region\": {{ \"machine_total\": {adaptive_slots}, \"machine_peak\": {adaptive_peak} }}\n"
    ));
    out.push_str("    },\n");
    out.push_str("    \"sim\": {\n");
    out.push_str(&format!("      \"machines\": {machines},\n"));
    out.push_str(&format!("      \"trees\": {},\n", stream.len()));
    out.push_str(&format!("      \"whole_tree_makespan_us\": {whole_ms},\n"));
    out.push_str(&format!("      \"adaptive_makespan_us\": {adaptive_ms},\n"));
    out.push_str(&format!(
        "      \"adaptive_vs_whole_tree\": {sim_ratio:.2}\n"
    ));
    out.push_str("    }\n");
    out.push_str("  },\n");
}

/// The `--sched` axis: fixed modular placement vs the work-stealing
/// scheduler on a skewed stream. Pascal trees decompose into exactly
/// `machines` regions whose *head* region (declarations + the root's
/// code concatenation) carries roughly twice the work of its siblings,
/// so a stream of several huge trees is the shape fixed placement
/// handles worst: every tree's heavy head region lands on machine 0
/// (region r always maps to machine r mod N) while LPT seeding spreads
/// one head region per machine. The stream is `machines` huge trees
/// interleaved with as many proc-scale small ones, at pipeline depth
/// `machines` so the skew actually overlaps in flight. Wall-clock reps
/// run interleaved; the deterministic simulated network is the ranking
/// that matters on a single-core host. Asserts zero result divergence
/// between the schedulers, that stealing is never worse in the sim,
/// and — the acceptance bar — that stealing clears 1.15× fixed
/// throughput on this stream. Appends a `sched` object (with a
/// trailing comma) to the JSON.
fn run_sched(compiler: &Compiler, args: &Args, out: &mut String) {
    let (workload, cfg) = if args.smoke {
        ("paper", GenConfig::paper())
    } else {
        ("huge", GenConfig::huge())
    };
    let big = compiler
        .tree_from_source(&generate(&cfg))
        .expect("generated workload parses");
    let machines = args.workers.max(2);
    let depth = machines;
    let mut stream = vec![Arc::clone(&big); machines];
    let pcfg = scales(true).remove(0).cfg;
    stream.extend(build_trees(compiler, &pcfg, machines));
    let plan = compiler.evals.plan();
    let reps = if args.smoke { 3 } else { 7 };
    println!(
        "sched ({workload}): {} trees, head tree {} nodes",
        stream.len(),
        big.len()
    );

    let config = |sched: SchedulerMode| {
        DriverConfig::workers(args.workers)
            .with_pipeline_depth(depth)
            .with_scheduler(sched)
    };

    // Equivalence gate: the stealing pool's outputs must be
    // value-identical to fixed placement's on every tree.
    let compile = |sched: SchedulerMode| {
        let mut driver = BatchDriver::new(&CompilationPlan::from_plan(plan, config(sched)));
        driver.compile_batch(stream.iter().cloned()).unwrap()
    };
    let fixed_out = compile(SchedulerMode::Fixed);
    let steal_out = compile(SchedulerMode::Stealing);
    for (i, tree) in stream.iter().enumerate() {
        assert_outputs_match(
            tree,
            &steal_out.outputs[i],
            &fixed_out.outputs[i],
            &format!("sched tree {i}"),
        );
    }

    // Wall-clock reps, interleaved. On a single-core host both
    // schedulers serialize onto one core and the ratio hovers near
    // 1.0; the telemetry still shows the placement differences.
    let run_live = |sched: SchedulerMode| -> u128 {
        let t = Instant::now();
        let mut driver = BatchDriver::new(&CompilationPlan::from_plan(plan, config(sched)));
        let report = driver.compile_batch(stream.iter().cloned()).unwrap();
        std::hint::black_box(report.outputs.len());
        t.elapsed().as_nanos()
    };
    run_live(SchedulerMode::Fixed); // warm-up
    let mut fixed_ns = Vec::with_capacity(reps);
    let mut steal_ns = Vec::with_capacity(reps);
    for _ in 0..reps {
        fixed_ns.push(run_live(SchedulerMode::Fixed));
        steal_ns.push(run_live(SchedulerMode::Stealing));
    }
    let (fm, sm) = (median(fixed_ns), median(steal_ns));
    let wall_ratio = fm as f64 / sm as f64;
    println!(
        "  wall clock: fixed median {fm} ns, stealing median {sm} ns — stealing is {wall_ratio:.2}x fixed"
    );

    // Deterministic simulated network: the ranking the scheduler was
    // validated on, and the CI gate.
    let plans = compiler.evals.plans().expect("pascal grammar is l-ordered");
    let sim_cfg = SimConfig::paper(machines);
    let fixed_rep = run_sim_batch(&stream, Some(plans), &sim_cfg, depth);
    let steal_rep = run_sim_batch(
        &stream,
        Some(plans),
        &sim_cfg.clone().with_scheduler(SchedulerMode::Stealing),
        depth,
    );
    for (i, (f, s)) in fixed_rep
        .root_values
        .iter()
        .zip(&steal_rep.root_values)
        .enumerate()
    {
        assert_eq!(f, s, "sim tree {i}: root values diverged under stealing");
    }
    let sim_ratio = fixed_rep.makespan as f64 / steal_rep.makespan as f64;
    let sc = steal_rep.sched;
    println!(
        "  sim ({machines} machines): fixed {}µs, stealing {}µs — stealing is {sim_ratio:.2}x fixed throughput ({} steals, {} local / {} remote sends)",
        fixed_rep.makespan, steal_rep.makespan, sc.steals, sc.local_sends, sc.remote_sends
    );
    assert!(
        steal_rep.makespan <= fixed_rep.makespan,
        "stealing ({}µs) must not be worse than fixed placement ({}µs) on the skewed stream",
        steal_rep.makespan,
        fixed_rep.makespan
    );
    assert!(
        sim_ratio >= 1.15,
        "stealing must clear 1.15x fixed placement on the skewed stream (got {sim_ratio:.2}x)"
    );

    out.push_str("  \"sched\": {\n");
    out.push_str(&format!("    \"workload\": {workload:?},\n"));
    out.push_str(&format!("    \"trees\": {},\n", stream.len()));
    out.push_str(&format!("    \"head_tree_nodes\": {},\n", big.len()));
    out.push_str(&format!("    \"pipeline_depth\": {depth},\n"));
    out.push_str(&format!(
        "    \"wall\": {{ \"fixed_median_ns\": {fm}, \"stealing_median_ns\": {sm}, \"stealing_vs_fixed\": {wall_ratio:.2} }},\n"
    ));
    out.push_str("    \"sim\": {\n");
    out.push_str(&format!("      \"machines\": {machines},\n"));
    out.push_str(&format!(
        "      \"fixed_makespan_us\": {},\n",
        fixed_rep.makespan
    ));
    out.push_str(&format!(
        "      \"stealing_makespan_us\": {},\n",
        steal_rep.makespan
    ));
    out.push_str(&format!("      \"stealing_vs_fixed\": {sim_ratio:.2},\n"));
    out.push_str(&format!(
        "      \"steals\": {}, \"migrated_attrs\": {}, \"local_sends\": {}, \"remote_sends\": {}\n",
        sc.steals, sc.migrated_attrs, sc.local_sends, sc.remote_sends
    ));
    out.push_str("    }\n");
    out.push_str("  },\n");
}

fn main() {
    let args = parse_args();
    let compiler = Compiler::new();
    let batch_sizes: &[usize] = if args.smoke { &[1, 4] } else { &[1, 16, 256] };

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"label\": {:?},\n", args.label));
    out.push_str(&format!("  \"workers\": {},\n", args.workers));
    out.push_str(&format!("  \"pipeline_depth\": {},\n", args.depth));
    out.push_str(&format!(
        "  \"batch_sizes\": [{}],\n",
        batch_sizes
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));

    let scales = scales(args.smoke);
    let mut all_amortized = true;
    let mut all_pipelined_win = true;
    // Ratios are barrier-vs-pipelined by *name*, independent of the
    // order --modes listed them in.
    let barrier_idx = args.modes.iter().position(|m| m.name == "barrier");
    let pipelined_idx = args.modes.iter().position(|m| m.name == "pipelined");
    for (si, scale) in scales.iter().enumerate() {
        let distinct = batch_sizes.iter().copied().max().unwrap().min(32);
        let trees = build_trees(&compiler, &scale.cfg, distinct);
        let nodes_avg: usize = trees.iter().map(|t| t.len()).sum::<usize>() / trees.len();
        println!(
            "scale {}: {} distinct trees, ~{} nodes each",
            scale.name,
            trees.len(),
            nodes_avg
        );

        out.push_str(&format!("  \"{}\": {{\n", scale.name));
        out.push_str(&format!("    \"tree_nodes_avg\": {nodes_avg},\n"));
        // Per mode: (batch, trees/sec) series.
        let mut per_mode: Vec<Vec<(usize, f64)>> = vec![Vec::new(); args.modes.len()];
        for &batch in batch_sizes {
            // Keep total work per batch size comparable: more reps for
            // small batches, fewer for large ones.
            let reps = if args.smoke {
                2
            } else {
                (512 / batch).clamp(7, 15)
            };
            // Warm-up (loads code paths, grows allocator arenas).
            run_batch(&compiler, &trees, batch.min(4), args.workers, 1);
            // Interleave the modes rep-by-rep: the barrier-vs-pipelined
            // ratio is then a same-box, same-moment comparison.
            let mut times: Vec<Vec<u128>> = vec![Vec::new(); args.modes.len()];
            for _ in 0..reps {
                for (mi, mode) in args.modes.iter().enumerate() {
                    times[mi].push(run_batch(
                        &compiler,
                        &trees,
                        batch,
                        args.workers,
                        mode.depth,
                    ));
                }
            }
            out.push_str(&format!("    \"batch_{batch}\": {{\n"));
            for (mi, mode) in args.modes.iter().enumerate() {
                let med = median(times[mi].clone());
                let tps = batch as f64 / (med as f64 / 1e9);
                per_mode[mi].push((batch, tps));
                println!(
                    "  {}/batch_{batch}/{}: median {med} ns/batch, {tps:.1} trees/sec ({reps} reps)",
                    scale.name, mode.name
                );
                out.push_str(&format!("      \"{}\": {{\n", mode.name));
                out.push_str(&format!("        \"median_ns_per_batch\": {med},\n"));
                out.push_str(&format!("        \"trees_per_sec\": {tps:.1}\n"));
                out.push_str("      },\n");
            }
            if let (Some(bi), Some(pi)) = (barrier_idx, pipelined_idx) {
                let ratio = per_mode[pi].last().unwrap().1 / per_mode[bi].last().unwrap().1;
                println!(
                    "  {}/batch_{batch}: pipelined is {ratio:.2}x barrier",
                    scale.name
                );
                out.push_str(&format!("      \"pipelined_vs_barrier\": {ratio:.2}\n"));
            } else {
                // Strip the trailing comma of the last mode entry.
                let cut = out.trim_end_matches(",\n").len();
                out.truncate(cut);
                out.push('\n');
            }
            out.push_str("    },\n");
        }
        // Scale summary: amortization (largest batch vs batch 1,
        // preferring the pipelined series) and the pipelining win at
        // the largest batch.
        let summary_idx = pipelined_idx.unwrap_or(0);
        let series = &per_mode[summary_idx];
        let (b0, tps0) = series[0];
        let (bn, tpsn) = *series.last().unwrap();
        let speedup = tpsn / tps0;
        if speedup < 1.3 {
            all_amortized = false;
        }
        println!(
            "  {}: batch_{bn} is {speedup:.2}x batch_{b0} throughput ({})",
            scale.name, args.modes[summary_idx].name
        );
        out.push_str(&format!("    \"speedup_batch_{bn}_vs_{b0}\": {speedup:.2}"));
        if let (Some(bi), Some(pi)) = (barrier_idx, pipelined_idx) {
            let ratio = per_mode[pi].last().unwrap().1 / per_mode[bi].last().unwrap().1;
            if ratio < 1.10 {
                all_pipelined_win = false;
            }
            println!(
                "  {}: pipelined batch_{bn} is {ratio:.2}x barrier batch_{bn}",
                scale.name
            );
            out.push_str(&format!(
                ",\n    \"pipelined_vs_barrier_batch_{bn}\": {ratio:.2}\n"
            ));
        } else {
            out.push('\n');
        }
        out.push_str("  },\n");
        let _ = si;
    }

    // Cross-request memo-cache axis (duplicated / shared-prefix /
    // i.i.d. streams, cache off vs on, cold and warm).
    if args.memo {
        run_memo(&compiler, &args, &mut out);
    }

    // Region-granular single-tree axis (adaptive vs whole-tree on one
    // bigger-than-paper tree).
    if args.single_tree {
        run_single_tree(&compiler, &args, &mut out);
    }

    // Scheduler axis (fixed modular placement vs work stealing on a
    // skewed stream).
    if args.sched {
        run_sched(&compiler, &args, &mut out);
    }

    // Simulated multi-machine axis: the same kind of stream on the
    // paper's network-of-workstations model, where the pipelined
    // schedule has real (virtual) machines whose idle tails the next
    // tree can fill. The stream mixes the scales (real compilation
    // streams mix unit sizes): a small tree behind a large one slots
    // into the stragglers' gaps. Deterministic — one run per mode, and
    // only when both modes are requested (single-mode CI smoke steps
    // skip it; core's sim tests cover it).
    if barrier_idx.is_some() && pipelined_idx.is_some() {
        let machines = args.workers.max(2);
        let stream_len = if args.smoke { 6 } else { 24 };
        let per_scale: Vec<Vec<Arc<ParseTree<PVal>>>> = scales
            .iter()
            .map(|s| build_trees(&compiler, &s.cfg, (stream_len / 2).clamp(3, 16)))
            .collect();
        let stream: Vec<Arc<ParseTree<PVal>>> = (0..stream_len)
            .map(|i| {
                let s = &per_scale[i % per_scale.len()];
                Arc::clone(&s[(i / per_scale.len()) % s.len()])
            })
            .collect();
        let plans = compiler.evals.plans().expect("pascal grammar is l-ordered");
        let sim_cfg = SimConfig::paper(machines);
        let run = |depth: usize| run_sim_batch(&stream, Some(plans), &sim_cfg, depth).makespan;
        let barrier = run(1);
        let pipelined = run(args.depth);
        let ratio = barrier as f64 / pipelined as f64;
        println!(
            "sim ({machines} machines, {stream_len} trees): barrier {barrier}µs, pipelined {pipelined}µs — pipelined is {ratio:.2}x barrier throughput"
        );
        out.push_str("  \"sim\": {\n");
        out.push_str(&format!("    \"machines\": {machines},\n"));
        out.push_str(&format!("    \"trees\": {stream_len},\n"));
        out.push_str(&format!("    \"barrier_makespan_us\": {barrier},\n"));
        out.push_str(&format!("    \"pipelined_makespan_us\": {pipelined},\n"));
        out.push_str(&format!("    \"pipelined_vs_barrier\": {ratio:.2}\n"));
        out.push_str("  }\n");
        if ratio < 1.10 {
            all_pipelined_win = false;
        }
    } else {
        // No sim object: strip the last scale's trailing comma.
        let cut = out.trim_end_matches(",\n").len();
        out.truncate(cut);
        out.push('\n');
    }
    out.push_str("}\n");

    if let Some(path) = &args.out {
        std::fs::write(path, &out).expect("write output");
        println!("wrote {path}");
    }
    if !all_amortized {
        println!("warning: amortization below 1.3x on at least one scale");
    }
    if args.modes.len() == 2 && !all_pipelined_win {
        println!("warning: pipelining below 1.10x over the barrier on at least one scale");
    }
}
