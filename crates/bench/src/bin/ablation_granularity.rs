//! §2.5 ablation: split-granularity runtime argument.
//!
//! The grammar declares a minimum subtree size per split nonterminal;
//! the paper scales it "by a runtime argument to the parser to allow
//! for easy experimentation with decompositions with different
//! granularities". Sweeping the scale on 6 machines shows the
//! trade-off: too coarse and the tree cannot be divided evenly (or at
//! all); the declared sizes are near the sweet spot.

use paragram_bench::{fmt_secs, pascal_classifier, Workload};
use paragram_core::eval::MachineMode;
use paragram_core::parallel::sim::{run_sim, SimConfig};
use paragram_core::parallel::ResultPropagation;

fn main() {
    let w = Workload::paper();
    println!("§2.5 — split granularity sweep, 6 machines\n");
    println!("{:>12} | {:>8} | {:>9}", "scale", "regions", "time");
    println!("{}", "-".repeat(36));
    for scale in [0.1, 1.0, 50.0, 150.0, 250.0, 400.0, 700.0, 1000.0] {
        let mut cfg = SimConfig::paper(6);
        cfg.mode = MachineMode::Combined;
        cfg.result = ResultPropagation::Librarian;
        cfg.classifier = pascal_classifier();
        cfg.min_size_scale = scale;
        let r = run_sim(&w.tree, Some(&w.plans), &cfg);
        println!("{scale:>12} | {:>8} | {}", r.regions, fmt_secs(r.eval_time));
    }
}
