//! Figure 7: decomposition of the source program into subtrees.
//!
//! Shows how the parser divides the measurement program for five
//! machines: five subtrees (a–e) of about equal size, split at the
//! grammar's `%split` nonterminals (procedure declarations and
//! statement lists).

use paragram_bench::Workload;
use paragram_core::split::{boundary_children, decompose, SplitConfig};

fn main() {
    let w = Workload::paper();
    for machines in [5, 6] {
        let d = decompose(&w.tree, SplitConfig::machines(machines));
        println!(
            "Figure 7 — decomposition for {machines} machines ({} source lines):\n",
            w.lines()
        );
        print!("{}", d.render(&w.tree));
        for r in 0..d.len() as u32 {
            let b = boundary_children(&w.tree, &d, r);
            let letter = (b'a' + (r % 26) as u8) as char;
            println!("  region {letter}: {} remotely evaluated leaves", b.len());
        }
        println!();
    }
}
