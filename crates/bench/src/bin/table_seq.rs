//! §4.1 sequential comparison: AG evaluators vs the conventional
//! compiler.
//!
//! The paper compares its sequential evaluator against the vendor Pascal
//! compiler on identical hardware and reports parsing time separately.
//! Here the conventional baseline is the `direct` single-pass compiler
//! over the same AST, and two time scales are shown: *virtual* SUN-2
//! seconds from the simulator's cost model (comparable to the paper's
//! numbers) and real host wall-clock times.

use paragram_bench::{fmt_secs, simulate, Workload};
use paragram_core::eval::{dynamic_eval, static_eval, MachineMode};
use paragram_pascal::direct::compile_direct;
use paragram_pascal::parser::parse;
use paragram_pascal::run_asm;
use std::time::Instant;

fn main() {
    let w = Workload::paper();
    println!(
        "§4.1 — sequential compilation of the {}-line workload\n",
        w.lines()
    );

    // Virtual (1987 SUN-2) seconds from the simulator.
    let combined = simulate(&w, 1, MachineMode::Combined);
    let dynamic = simulate(&w, 1, MachineMode::Dynamic);
    println!("virtual 1987 seconds (simulator cost model):");
    println!(
        "  parsing (reported separately)   {}",
        fmt_secs(combined.parse_time)
    );
    println!(
        "  static/combined evaluation      {}",
        fmt_secs(combined.eval_time)
    );
    println!(
        "  dynamic evaluation              {}",
        fmt_secs(dynamic.eval_time)
    );

    // Real host times.
    println!("\nreal host wall-clock:");
    let t = Instant::now();
    let ast = parse(&w.source).expect("workload parses");
    let parse_t = t.elapsed();
    println!("  parse + AST                     {parse_t:>10.2?}");

    let t = Instant::now();
    let tree = w.compiler.tree_from_source(&w.source).unwrap();
    let tree_t = t.elapsed();
    println!("  attributed-tree construction    {tree_t:>10.2?}");

    let t = Instant::now();
    let (store_s, stats_s) = static_eval(&tree, &w.plans).unwrap();
    let static_t = t.elapsed();
    println!(
        "  AG static evaluation            {static_t:>10.2?}  ({} rules)",
        stats_s.static_applied
    );

    let t = Instant::now();
    let (_store_d, stats_d) = dynamic_eval(&tree).unwrap();
    let dynamic_t = t.elapsed();
    println!(
        "  AG dynamic evaluation           {dynamic_t:>10.2?}  ({} rules, {} graph edges)",
        stats_d.dynamic_applied, stats_d.graph_edges
    );

    let t = Instant::now();
    let direct = compile_direct(&ast);
    let direct_t = t.elapsed();
    println!("  direct (conventional) compile   {direct_t:>10.2?}");

    // Output quality: both compilers' programs must behave identically;
    // report code sizes (the paper: "code quality at least comparable").
    let ag_out = w.compiler.output_from_store(&tree, &store_s, stats_s);
    assert!(ag_out.errors.is_empty());
    assert!(direct.errors.is_empty());
    let ag_run = run_asm(&ag_out.asm).expect("AG output runs");
    let direct_run = run_asm(&direct.asm).expect("direct output runs");
    assert_eq!(ag_run, direct_run, "compilers disagree!");
    let (opt, pstats) = paragram_pascal::optimize_asm(&ag_out.asm).unwrap();
    println!("\ngenerated code:");
    println!(
        "  AG assembly                     {:>8} lines",
        ag_out.asm.lines().count()
    );
    println!(
        "  direct assembly                 {:>8} lines",
        direct.asm.lines().count()
    );
    println!(
        "  after peephole                  {:>8} lines  ({} removed, {} rewritten)",
        opt.lines().count(),
        pstats.removed,
        pstats.rewritten
    );
    let prog = paragram_vax::assemble(&ag_out.asm).unwrap();
    println!(
        "  machine-code size estimate      {:>8} bytes (vs {} bytes of assembly text)",
        prog.machine_size(),
        ag_out.asm.len()
    );
    println!("\nboth compilers produce behaviourally identical programs ✓");
}
