//! §4.3 ablation: unique-identifier generation strategies.
//!
//! Sequential attribute grammars generate unique labels by threading a
//! counter attribute through the whole tree; in a parallel evaluator
//! that forces "virtually all evaluators to wait for the value of this
//! attribute to be propagated". The paper's alternative hands each
//! evaluator a disjoint base value from the parser. We build the same
//! little language both ways and compare on 5 machines: with the
//! threaded counter the code-generation phase serializes; with
//! parser-supplied unique-id tokens it parallelizes.

use paragram_core::analysis::compute_plans;
use paragram_core::eval::MachineMode;
use paragram_core::grammar::{Grammar, GrammarBuilder};
use paragram_core::parallel::sim::{run_sim, SimConfig};
use paragram_core::tree::{token, ParseTree, TreeBuilder};
use paragram_core::value::Value;
use paragram_rope::Rope;
use std::sync::Arc;

const ITEMS: usize = 120;
const DEPTH: usize = 10;

/// Labels from parser-supplied unique-id tokens.
fn uid_language() -> (Arc<Grammar<Value>>, Arc<ParseTree<Value>>) {
    let mut g = GrammarBuilder::<Value>::new();
    let s = g.nonterminal("S");
    let l = g.nonterminal("stmts");
    let b = g.nonterminal("body");
    let uid = g.terminal("UID");
    let _u = g.synthesized(uid, "uid");
    let scode = g.synthesized(s, "code");
    let lcode = g.synthesized(l, "code");
    let bcode = g.synthesized(b, "code");
    g.mark_split(l, 4);

    let top = g.production("top", s, [l]);
    g.rule(top, (0, scode), [(1, lcode)], |a| a[0].clone());
    let cons = g.production("cons", l, [b, l]);
    g.rule(cons, (0, lcode), [(1, bcode), (2, lcode)], |a| {
        Value::Rope(a[0].as_rope().unwrap().concat(a[1].as_rope().unwrap()))
    });
    let nil = g.production("nil", l, []);
    g.rule(nil, (0, lcode), [], |_| Value::Rope(Rope::new()));
    let wrap = g.production("wrap", b, [uid, b]);
    g.rule_with_cost(
        wrap,
        (0, bcode),
        [(1, paragram_core::grammar::AttrId(0)), (2, bcode)],
        |a| {
            let label = a[0].as_int().unwrap();
            Value::Rope(Rope::from(format!("L{label}:\n\tinstr\n")).concat(a[1].as_rope().unwrap()))
        },
        4,
    );
    let unit = g.production("unit", b, []);
    g.rule(unit, (0, bcode), [], |_| Value::Rope(Rope::from("\tret\n")));

    let grammar = Arc::new(g.build(s).unwrap());
    let mut tb = TreeBuilder::new(&grammar);
    let mut next_uid = 0i64;
    let mut tail = tb.leaf(nil);
    for _ in 0..ITEMS {
        let mut body = tb.leaf(unit);
        for _ in 0..DEPTH {
            next_uid += 1;
            body = tb.node_full(wrap, vec![token(vec![Value::Int(next_uid)]), body.into()]);
        }
        tail = tb.node(cons, [body, tail]);
    }
    let root = tb.node(top, [tail]);
    (Arc::clone(&grammar), Arc::new(tb.finish(root).unwrap()))
}

/// Labels from a counter attribute threaded through the entire tree.
fn threaded_language() -> (Arc<Grammar<Value>>, Arc<ParseTree<Value>>) {
    let mut g = GrammarBuilder::<Value>::new();
    let s = g.nonterminal("S");
    let l = g.nonterminal("stmts");
    let b = g.nonterminal("body");
    let scode = g.synthesized(s, "code");
    let lin = g.inherited(l, "lab_in");
    let lout = g.synthesized(l, "lab_out");
    let lcode = g.synthesized(l, "code");
    let bin = g.inherited(b, "lab_in");
    let bout = g.synthesized(b, "lab_out");
    let bcode = g.synthesized(b, "code");
    g.mark_split(l, 4);

    let top = g.production("top", s, [l]);
    g.rule(top, (1, lin), [], |_| Value::Int(0));
    g.rule(top, (0, scode), [(1, lcode)], |a| a[0].clone());
    let cons = g.production("cons", l, [b, l]);
    g.copy_rule(cons, (1, bin), (0, lin));
    g.copy_rule(cons, (2, lin), (1, bout));
    g.copy_rule(cons, (0, lout), (2, lout));
    g.rule(cons, (0, lcode), [(1, bcode), (2, lcode)], |a| {
        Value::Rope(a[0].as_rope().unwrap().concat(a[1].as_rope().unwrap()))
    });
    let nil = g.production("nil", l, []);
    g.copy_rule(nil, (0, lout), (0, lin));
    g.rule(nil, (0, lcode), [], |_| Value::Rope(Rope::new()));
    let wrap = g.production("wrap", b, [b]);
    g.rule(wrap, (1, bin), [(0, bin)], |a| {
        Value::Int(a[0].as_int().unwrap() + 1)
    });
    g.copy_rule(wrap, (0, bout), (1, bout));
    g.rule_with_cost(
        wrap,
        (0, bcode),
        [(0, bin), (1, bcode)],
        |a| {
            let label = a[0].as_int().unwrap();
            Value::Rope(Rope::from(format!("L{label}:\n\tinstr\n")).concat(a[1].as_rope().unwrap()))
        },
        4,
    );
    let unit = g.production("unit", b, []);
    g.copy_rule(unit, (0, bout), (0, bin));
    g.rule(unit, (0, bcode), [], |_| Value::Rope(Rope::from("\tret\n")));

    let grammar = Arc::new(g.build(s).unwrap());
    let mut tb = TreeBuilder::new(&grammar);
    let mut tail = tb.leaf(nil);
    for _ in 0..ITEMS {
        let mut body = tb.leaf(unit);
        for _ in 0..DEPTH {
            body = tb.node(wrap, [body]);
        }
        tail = tb.node(cons, [body, tail]);
    }
    let root = tb.node(top, [tail]);
    (Arc::clone(&grammar), Arc::new(tb.finish(root).unwrap()))
}

fn main() {
    println!("§4.3 — unique-label strategies, 5 machines, {ITEMS} blocks\n");
    println!("{:>26} | {:>9} | note", "strategy", "time");
    println!("{}", "-".repeat(70));
    let mut times = Vec::new();
    for (name, (grammar, tree), note) in [
        (
            "parser-supplied uid tokens",
            uid_language(),
            "labels local, codegen parallel",
        ),
        (
            "threaded counter attribute",
            threaded_language(),
            "label chain serializes evaluators",
        ),
    ]
    .map(|(n, gt, note)| (n, gt, note))
    {
        let plans = Arc::new(compute_plans(grammar.as_ref()).unwrap());
        let mut cfg = SimConfig::paper(5);
        cfg.mode = MachineMode::Combined;
        let r = run_sim(&tree, Some(&plans), &cfg);
        println!("{name:>26} | {:8.2}s | {note}", r.eval_time as f64 / 1e6);
        times.push(r.eval_time);
    }
    println!(
        "\nthreaded counters are {:.2}x slower in parallel (paper §4.3)",
        times[1] as f64 / times[0] as f64
    );
}
