//! §4.1's proposed extension: assembly as a *separate parallel pass*
//! specified by its own attribute grammar.
//!
//! The paper: "Assembly can be specified as a separate attribute
//! grammar which can be run as a separate parallel pass after
//! compilation. … machine language is much more compact than assembly
//! language, resulting in smaller attributes being transmitted over
//! the network."
//!
//! We build exactly that: the compiler's assembly output is divided
//! into sections (one per routine), the sections form a splittable
//! list, and a two-visit attribute grammar assembles them — visit 1
//! synthesizes each section's size and label table, the root combines
//! them into the global label table and passes it back down, visit 2
//! encodes each section against the resolved addresses, in parallel.
//! The same combined evaluator, splitter, simulator and librarian used
//! for compilation run this pass unchanged.

use paragram_bench::Workload;
use paragram_core::analysis::compute_plans;
use paragram_core::eval::{static_eval, MachineMode};
use paragram_core::grammar::{AttrId, Grammar, GrammarBuilder};
use paragram_core::parallel::phase_classifier;
use paragram_core::parallel::sim::{run_sim, SimConfig};
use paragram_core::tree::{token, ParseTree, TreeBuilder};
use paragram_core::value::Value;
use paragram_rope::Rope;
use paragram_symtab::SymTab;
use paragram_vax::{parse_asm, Instr, Item};
use std::sync::Arc;

/// One assembly section: a leading label and its instructions, kept as
/// text in the token (the tree is what the parser would ship).
fn split_sections(asm: &str) -> Vec<(String, Vec<Item>)> {
    let items = parse_asm(asm).expect("compiler output parses");
    let mut sections: Vec<(String, Vec<Item>)> = Vec::new();
    let mut current: Option<(String, Vec<Item>)> = None;
    for item in items {
        match item {
            Item::Label(l) => {
                // Local labels (branch targets) stay inside the current
                // section; routine labels (start/__*/P*) open a new one.
                let is_routine = l == "start" || l.starts_with("__") || l.starts_with('P');
                if is_routine || current.is_none() {
                    if let Some(s) = current.take() {
                        sections.push(s);
                    }
                    current = Some((l.clone(), vec![Item::Label(l)]));
                } else if let Some((_, items)) = current.as_mut() {
                    items.push(Item::Label(l));
                }
            }
            other => {
                if let Some((_, items)) = current.as_mut() {
                    items.push(other);
                }
            }
        }
    }
    if let Some(s) = current.take() {
        sections.push(s);
    }
    sections
}

/// The assembler attribute grammar: two-visit, splittable section list.
struct AsmLang {
    grammar: Arc<Grammar<Value>>,
    p_top: paragram_core::grammar::ProdId,
    p_cons: paragram_core::grammar::ProdId,
    p_nil: paragram_core::grammar::ProdId,
    p_sect: paragram_core::grammar::ProdId,
    out: AttrId,
}

fn asm_grammar() -> AsmLang {
    let mut g = GrammarBuilder::<Value>::new();
    let s = g.nonterminal("S");
    let list = g.nonterminal("sections");
    let sect = g.nonterminal("section");
    let t_text = g.terminal("TEXT");
    let _text = g.synthesized(t_text, "text");

    let out = g.synthesized(s, "object");
    // Visit 1: size and local label table, offsets relative to the
    // section start.
    let l_size = g.synthesized(list, "size");
    let l_tab = g.synthesized(list, "labtab");
    // Visit 2: absolute base address and resolved global table flow
    // down; encoded object code flows up.
    let l_base = g.inherited(list, "base");
    let l_genv = g.inherited(list, "glabels");
    let l_obj = g.synthesized(list, "object");
    let c_size = g.synthesized(sect, "size");
    let c_tab = g.synthesized(sect, "labtab");
    let c_base = g.inherited(sect, "base");
    let c_genv = g.inherited(sect, "glabels");
    let c_obj = g.synthesized(sect, "object");
    g.mark_split(list, 3);
    g.mark_split(sect, 3);
    // The paper's §4.3 fix applies here verbatim: without priority
    // markings the cheap base/label-table relay rules queue behind
    // 100ms encode visits and the pass serializes.
    for (sym, attrs) in [
        (list, vec![l_size, l_tab, l_base, l_genv]),
        (sect, vec![c_size, c_tab, c_base, c_genv]),
    ] {
        for a in attrs {
            g.mark_priority(sym, a);
        }
    }

    let parse_section = |text: &str| -> Vec<Item> { parse_asm(text).expect("section text parses") };

    // S -> sections
    let p_top = g.production("asm_prog", s, [list]);
    g.rule(p_top, (1, l_base), [], |_| Value::Int(0));
    g.copy_rule(p_top, (1, l_genv), (1, l_tab));
    g.copy_rule(p_top, (0, out), (1, l_obj));

    // sections -> section sections | ε
    let p_cons = g.production("sects_cons", list, [sect, list]);
    g.rule(p_cons, (0, l_size), [(1, c_size), (2, l_size)], |a| {
        Value::Int(a[0].as_int().unwrap() + a[1].as_int().unwrap())
    });
    g.rule_with_cost(
        p_cons,
        (0, l_tab),
        [(1, c_tab), (2, l_tab), (1, c_size)],
        |a| {
            // Merge: head's labels stay, tail's labels shift by head
            // size.
            let mut tab = a[0].as_tab().unwrap().clone();
            let shift = a[2].as_int().unwrap();
            for (name, v) in a[1].as_tab().unwrap().iter() {
                tab = tab.add(name, Value::Int(v.as_int().unwrap() + shift));
            }
            Value::Tab(tab)
        },
        3,
    );
    g.copy_rule(p_cons, (1, c_base), (0, l_base));
    g.copy_rule(p_cons, (1, c_genv), (0, l_genv));
    g.rule(p_cons, (2, l_base), [(0, l_base), (1, c_size)], |a| {
        Value::Int(a[0].as_int().unwrap() + a[1].as_int().unwrap())
    });
    g.copy_rule(p_cons, (2, l_genv), (0, l_genv));
    g.rule_with_cost(
        p_cons,
        (0, l_obj),
        [(1, c_obj), (2, l_obj)],
        |a| Value::Rope(a[0].as_rope().unwrap().concat(a[1].as_rope().unwrap())),
        2,
    );
    let p_nil = g.production("sects_nil", list, []);
    g.rule(p_nil, (0, l_size), [], |_| Value::Int(0));
    g.rule(p_nil, (0, l_tab), [], |_| Value::Tab(SymTab::new()));
    g.rule(p_nil, (0, l_obj), [], |_| Value::Rope(Rope::new()));

    // section -> TEXT
    let p_sect = g.production("section", sect, [t_text]);
    {
        g.rule_with_cost(
            p_sect,
            (0, c_size),
            [(1, AttrId(0))],
            move |a| {
                let items = parse_section(a[0].as_str().unwrap());
                Value::Int(
                    items
                        .iter()
                        .filter_map(|i| match i {
                            Item::Instr(i) => Some(i.encoded_size() as i64),
                            Item::Label(_) => None,
                        })
                        .sum(),
                )
            },
            // Costs approximate per-instruction work on the 1987 cost
            // model: sections average ≈500 instructions.
            150,
        );
    }
    g.rule_with_cost(
        p_sect,
        (0, c_tab),
        [(1, AttrId(0))],
        move |a| {
            let items = parse_asm(a[0].as_str().unwrap()).expect("section parses");
            let mut tab = SymTab::new();
            let mut off = 0i64;
            for item in items {
                match item {
                    Item::Label(l) => tab = tab.add(l.as_str(), Value::Int(off)),
                    Item::Instr(i) => off += i.encoded_size() as i64,
                }
            }
            Value::Tab(tab)
        },
        200,
    );
    g.rule_with_cost(
        p_sect,
        (0, c_obj),
        [(1, AttrId(0)), (0, c_base), (0, c_genv)],
        move |a| {
            // "Encode": one hex word per opcode and resolved absolute
            // address per branch target. Compact relative to text.
            let items = parse_asm(a[0].as_str().unwrap()).expect("section parses");
            let glabels = a[2].as_tab().unwrap();
            let mut out = String::new();
            for item in &items {
                if let Item::Instr(i) = item {
                    match i.target() {
                        Some(t) => {
                            let addr = glabels
                                .lookup(t)
                                .and_then(Value::as_int)
                                .expect("label resolved in global table");
                            out.push_str(&format!("{:02x}@{addr:06x};", opcode(i)));
                        }
                        None => out.push_str(&format!("{:02x};", opcode(i))),
                    }
                }
            }
            Value::Rope(Rope::from(out))
        },
        900,
    );

    AsmLang {
        grammar: Arc::new(g.build(s).unwrap()),
        p_top,
        p_cons,
        p_nil,
        p_sect,
        out,
    }
}

fn opcode(i: &Instr) -> u8 {
    // Stable tiny opcode map by mnemonic hash.
    i.mnemonic()
        .bytes()
        .fold(7u8, |h, b| h.wrapping_mul(31).wrapping_add(b))
}

fn build_asm_tree(lang: &AsmLang, sections: &[(String, Vec<Item>)]) -> Arc<ParseTree<Value>> {
    let mut tb = TreeBuilder::new(&lang.grammar);
    let mut tail = tb.leaf(lang.p_nil);
    for (_, items) in sections.iter().rev() {
        let text: String = items.iter().map(|i| format!("{i}\n")).collect();
        let sect = tb.node_full(lang.p_sect, vec![token(vec![Value::str(text)])]);
        tail = tb.node_full(lang.p_cons, vec![sect.into(), tail.into()]);
    }
    let root = tb.node(lang.p_top, [tail]);
    Arc::new(tb.finish(root).unwrap())
}

fn main() {
    // Compile the paper workload, then assemble its output in parallel.
    let w = Workload::paper();
    let (store, stats) = static_eval(&w.tree, &w.plans).unwrap();
    let compiled = w.compiler.output_from_store(&w.tree, &store, stats);
    assert!(compiled.errors.is_empty());

    let sections = split_sections(&compiled.asm);
    let lang = asm_grammar();
    let plans = Arc::new(compute_plans(lang.grammar.as_ref()).unwrap());
    let tree = build_asm_tree(&lang, &sections);
    println!(
        "§4.1 — assembly as a separate parallel pass ({} sections, {} KiB of assembly)\n",
        sections.len(),
        compiled.asm.len() / 1024
    );

    // Sequential reference for correctness + size accounting.
    let (seq_store, _) = static_eval(&tree, &plans).unwrap();
    let object = seq_store
        .get(tree.root(), lang.out)
        .and_then(Value::as_rope)
        .cloned()
        .unwrap();
    println!(
        "object code {} KiB vs assembly text {} KiB ({}x more compact)\n",
        object.len() / 1024,
        compiled.asm.len() / 1024,
        compiled.asm.len() / object.len().max(1)
    );

    println!("{:>9} | {:>9} | {:>8}", "machines", "time", "speedup");
    println!("{}", "-".repeat(34));
    let mut base = 0.0;
    for machines in [1usize, 2, 3, 5, 6] {
        let mut cfg = SimConfig::paper(machines);
        cfg.mode = MachineMode::Combined;
        cfg.classifier = phase_classifier(vec![
            ("labtab", "label table"),
            ("size", "label table"),
            ("object", "encode"),
        ]);
        let report = run_sim(&tree, Some(&plans), &cfg);
        if machines == 1 {
            base = report.eval_time as f64;
        }
        // Correctness under parallel evaluation.
        let got = report
            .root_values
            .iter()
            .find(|(a, _)| *a == lang.out)
            .and_then(|(_, v)| v.as_rope().cloned())
            .unwrap();
        assert!(got.content_eq(&object), "parallel assembly differs");
        println!(
            "{machines:>9} | {:8.2}s | {:7.2}x  ({} regions, {:.1}% dynamic)",
            report.eval_time as f64 / 1e6,
            base / report.eval_time as f64,
            report.regions,
            100.0 * report.stats.dynamic_fraction(),
        );
    }
    println!("\nparallel object code identical to sequential ✓");
}

#[cfg(test)]
mod probe {}
