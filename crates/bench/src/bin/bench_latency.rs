//! Latency benchmark for the open-arrival compilation service.
//!
//! `bench_throughput` measures *batches*: all trees known up front,
//! nobody waiting. This binary measures the **service** question —
//! when requests arrive on their own schedule, how long does each one
//! wait from enqueue to assembled output, and how much does the
//! dispatch policy change the tail?
//!
//! A seeded request stream ([`paragram_bench::stream`]) mixes size
//! classes — mostly procedure-sized requests, a few compilation units,
//! the paper program, and a bigger-than-paper huge unit as the skew
//! contaminant — with exponential (Poisson) interarrivals. The same
//! stream is replayed against:
//!
//! * **wall**: a real [`ServiceQueue`] over the worker pool, arrivals
//!   paced to ≈0.9 utilization (estimated from a short calibration),
//!   bounded waiting room (`--capacity`), per-request timestamps from
//!   [`paragram_driver::RequestTimes`]. Wall numbers are informational
//!   on a loaded host — the policy *ranking* is not taken from them.
//! * **sim**: the deterministic 4-machine network simulator
//!   (`run_sim_service`), same arrival schedule compressed to virtual
//!   µs so the waiting room actually fills. This is where the policy
//!   comparison is reproducible bit-for-bit on a 1-core box — and it
//!   runs *the same `PolicyQueue` code* the wall service dispatches
//!   with.
//!
//! Each of FIFO, shortest-job-first (keyed by `EvalPlan::tree_work`)
//! and per-tenant deficit fair queueing runs both sections; the JSON
//! reports p50/p95/p99 latency per size class plus trees/sec and shed
//! counts, and a `sim_ranking` object compares p99 on the dominant
//! (`proc`) class. On a skewed stream a non-FIFO policy must improve
//! that tail — `--smoke` re-reads the emitted JSON, validates the
//! schema, and **fails (exit 1)** if SJF's sim p99 exceeds FIFO's.
//!
//! With `--sched`, the FIFO stream is additionally replayed under the
//! work-stealing scheduler (`SchedulerMode::Stealing`) on both the wall
//! service and the sim park, reporting proc-class p99 side by side with
//! the steal/locality telemetry from [`paragram_driver::ServiceStats`].
//! Informational: latency tails on this small-dominated stream are a
//! placement wash by design — the throughput acceptance scenario lives
//! in `bench_throughput --sched`.
//!
//! With `--faults`, the FIFO stream is additionally replayed on the
//! stealing sim park with a seeded mid-evaluation crash+restart of one
//! evaluator ([`paragram_netsim::FaultPlan`]): the victim and crash
//! instant are probed deterministically until the crash lands on held
//! work, and the `faults` JSON section records the recovery telemetry.
//! `--smoke --faults` **gates** (exit 1 on violation): zero output
//! divergence vs the fault-free run, recovered makespan ≤ 1.25× the
//! fault-free makespan, regions re-executed and duplicate deliveries
//! suppressed both > 0, and shed accounting unchanged by the crash.
//!
//! A `duplicated_traffic` section additionally replays the stream with
//! `template_fraction` 0.5 (half the requests drawn from a small
//! template pool — the replay shape of real fleets) against a memo-off
//! and a memo-on wall service, recording shed/p99 deltas and the cache
//! hit rate. Informational only: the deltas are reported, not gated.
//!
//! Writes `BENCH_latency.json` (override with `--out`; `--smoke`
//! writes `target/BENCH_latency.smoke.json` unless `--out` is given).
//!
//! Usage: `cargo run --release --bin bench_latency --
//! [--smoke] [--sched] [--faults] [--workers N] [--depth N]
//! [--capacity N] [--requests N] [--seed N] [--out PATH] [--label TEXT]`

use paragram_bench::percentile;
use paragram_bench::stream::{generate_stream, RequestSpec, SizeClass, StreamConfig};
use paragram_core::parallel::policy::DispatchPolicy;
use paragram_core::parallel::pool::SchedulerMode;
use paragram_core::parallel::sim::{
    run_sim_service, run_sim_service_with_faults, ServiceSimReport, SimConfig, SimRequest,
};
use paragram_core::split::RegionGranularity;
use paragram_core::tree::ParseTree;
use paragram_driver::{
    Admission, BatchDriver, CompilationPlan, DriverConfig, ServiceConfig, ServiceQueue,
};
use paragram_netsim::FaultPlan;
use paragram_pascal::generator::generate;
use paragram_pascal::{Compiler, PVal};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    smoke: bool,
    sched: bool,
    faults: bool,
    workers: usize,
    depth: usize,
    capacity: usize,
    requests: usize,
    seed: u64,
    out: String,
    label: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        sched: false,
        faults: false,
        workers: 4,
        depth: 2,
        capacity: 32,
        requests: 0, // resolved after --smoke is known
        seed: 2026,
        out: String::new(),
        label: "current".to_string(),
    };
    let mut requests: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        let int = |name: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: {name} takes an integer");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--sched" => args.sched = true,
            "--faults" => args.faults = true,
            "--workers" => args.workers = int("--workers", val("--workers")).max(1),
            "--depth" => args.depth = int("--depth", val("--depth")).max(1),
            "--capacity" => args.capacity = int("--capacity", val("--capacity")).max(1),
            "--requests" => requests = Some(int("--requests", val("--requests")).max(1)),
            "--seed" => args.seed = int("--seed", val("--seed")) as u64,
            "--out" => out = Some(val("--out")),
            "--label" => args.label = val("--label"),
            other => {
                eprintln!(
                    "error: unknown argument {other:?}\nusage: bench_latency [--smoke] [--sched] [--faults] [--workers N] [--depth N] [--capacity N] [--requests N] [--seed N] [--out PATH] [--label TEXT]"
                );
                std::process::exit(2);
            }
        }
    }
    args.requests = requests.unwrap_or(if args.smoke { 24 } else { 96 });
    args.out = out.unwrap_or_else(|| {
        if args.smoke {
            "target/BENCH_latency.smoke.json".to_string()
        } else {
            "BENCH_latency.json".to_string()
        }
    });
    args
}

const POLICIES: [DispatchPolicy; 3] = [
    DispatchPolicy::Fifo,
    DispatchPolicy::ShortestJobFirst,
    DispatchPolicy::FairQueue { quantum: 0 }, // quantum resolved per stream
];

/// Trees for a stream, index-aligned with the requests. Big classes
/// draw from small pre-parsed pools (parsing many distinct huge
/// programs would dominate the benchmark's setup), small classes stay
/// distinct per request.
fn build_trees(compiler: &Compiler, stream: &[RequestSpec]) -> Vec<Arc<ParseTree<PVal>>> {
    let pool_size = |class: SizeClass| match class {
        SizeClass::Proc => 32u64,
        SizeClass::Unit => 16,
        SizeClass::Paper => 2,
        SizeClass::Huge => 1,
    };
    let mut pools: HashMap<(SizeClass, u64), Arc<ParseTree<PVal>>> = HashMap::new();
    stream
        .iter()
        .map(|req| {
            let key = (req.class, req.seed % pool_size(req.class));
            Arc::clone(pools.entry(key).or_insert_with(|| {
                let src = generate(&req.class.gen_config(1 + key.1));
                compiler
                    .tree_from_source(&src)
                    .expect("generated workload parses")
            }))
        })
        .collect()
}

struct SectionResult {
    /// Latency µs per request (None = shed), index-aligned with the
    /// stream.
    latencies: Vec<Option<u64>>,
    shed: usize,
    trees_per_sec: f64,
}

/// Replays the stream against the real service queue, pacing arrivals
/// by `ns_per_tick` and pumping between them. Also returns the
/// service's memo counters (all zero unless the plan enables the
/// cache).
fn run_wall(
    plan: &CompilationPlan<PVal>,
    trees: &[Arc<ParseTree<PVal>>],
    stream: &[RequestSpec],
    policy: DispatchPolicy,
    capacity: usize,
    ns_per_tick: f64,
) -> (
    SectionResult,
    paragram_core::memo::MemoCounters,
    paragram_core::parallel::pool::SchedCounters,
) {
    let mut q = ServiceQueue::new(plan, ServiceConfig::fifo(capacity).with_policy(policy));
    let mut ids: Vec<Option<u64>> = vec![None; stream.len()];
    let start = Instant::now();
    for (i, req) in stream.iter().enumerate() {
        let due = start + Duration::from_nanos((req.arrival as f64 * ns_per_tick) as u64);
        loop {
            q.pump();
            let now = Instant::now();
            if now >= due {
                break;
            }
            std::thread::sleep((due - now).min(Duration::from_micros(500)));
        }
        if let Admission::Admitted { id } = q.offer(&trees[i], req.tenant) {
            ids[i] = Some(id);
        }
    }
    q.drain();
    let elapsed = start.elapsed();
    let stats = q.stats();
    let latencies = ids
        .iter()
        .map(|id| {
            id.map(|id| {
                let t = q.times(id).expect("admitted request has times");
                t.latency().expect("drained request assembled").as_micros() as u64
            })
        })
        .collect();
    (
        SectionResult {
            latencies,
            shed: stats.shed,
            trees_per_sec: stats.completed as f64 / elapsed.as_secs_f64(),
        },
        stats.memo,
        stats.sched,
    )
}

/// Replays the stream on the simulated machine park (deterministic;
/// ticks become virtual µs, which floods the waiting room and makes
/// the policy differences visible and reproducible).
#[allow(clippy::too_many_arguments)]
fn run_sim(
    trees: &[Arc<ParseTree<PVal>>],
    stream: &[RequestSpec],
    plans: &Arc<paragram_core::analysis::Plans>,
    machines: usize,
    depth: usize,
    policy: DispatchPolicy,
    capacity: usize,
    scheduler: SchedulerMode,
) -> SectionResult {
    let requests: Vec<SimRequest> = stream
        .iter()
        .map(|r| SimRequest {
            arrival_us: r.arrival,
            tenant: r.tenant,
        })
        .collect();
    let report = run_sim_service(
        trees,
        &requests,
        Some(plans),
        &SimConfig::paper(machines).with_scheduler(scheduler),
        depth,
        RegionGranularity::Machines(machines),
        policy,
        capacity,
    );
    let completed = stream.len() - report.shed_count();
    SectionResult {
        latencies: (0..stream.len()).map(|i| report.latency(i)).collect(),
        shed: report.shed_count(),
        trees_per_sec: completed as f64 / (report.makespan as f64 / 1e6),
    }
}

/// Emits one section's per-class percentiles.
fn push_section(out: &mut String, indent: &str, r: &SectionResult, stream: &[RequestSpec]) {
    out.push_str(&format!("{indent}\"shed\": {},\n", r.shed));
    out.push_str(&format!(
        "{indent}\"trees_per_sec\": {:.2},\n",
        r.trees_per_sec
    ));
    out.push_str(&format!("{indent}\"per_class\": {{\n"));
    let classes = [
        SizeClass::Proc,
        SizeClass::Unit,
        SizeClass::Paper,
        SizeClass::Huge,
    ];
    let present: Vec<SizeClass> = classes
        .into_iter()
        .filter(|c| stream.iter().any(|s| s.class == *c))
        .collect();
    for (ci, class) in present.iter().enumerate() {
        let sample: Vec<u64> = stream
            .iter()
            .zip(&r.latencies)
            .filter(|(s, _)| s.class == *class)
            .filter_map(|(_, l)| *l)
            .collect();
        let comma = if ci + 1 == present.len() { "" } else { "," };
        out.push_str(&format!(
            "{indent}  \"{}\": {{ \"count\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {} }}{comma}\n",
            class.name(),
            sample.len(),
            percentile(&sample, 50),
            percentile(&sample, 95),
            percentile(&sample, 99),
        ));
    }
    out.push_str(&format!("{indent}}}\n"));
}

/// p99 of one class's completed latencies in a section.
fn class_p99(r: &SectionResult, stream: &[RequestSpec], class: SizeClass) -> u64 {
    let sample: Vec<u64> = stream
        .iter()
        .zip(&r.latencies)
        .filter(|(s, _)| s.class == class)
        .filter_map(|(_, l)| *l)
        .collect();
    percentile(&sample, 99)
}

/// Extracts `"key": <int>` from a JSON string by scanning (the smoke
/// validator's minimal parser — the schema is our own).
fn scan_int(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `--smoke` gate: re-read the emitted JSON, check the schema keys,
/// and enforce the policy ranking on the deterministic sim stream —
/// plus, with `--faults`, the crash-recovery gates on the `faults`
/// section.
fn validate(path: &str, faults: bool) {
    let json = std::fs::read_to_string(path).expect("re-read emitted JSON");
    for key in [
        "\"label\"",
        "\"policies\"",
        "\"fifo\"",
        "\"sjf\"",
        "\"fair\"",
        "\"wall\"",
        "\"sim\"",
        "\"per_class\"",
        "\"p50_us\"",
        "\"p95_us\"",
        "\"p99_us\"",
        "\"trees_per_sec\"",
        "\"shed\"",
        "\"sim_ranking\"",
        "\"sim_admission\"",
        "\"duplicated_traffic\"",
    ] {
        assert!(json.contains(key), "schema: missing {key} in {path}");
    }
    let fifo = scan_int(&json, "fifo_p99_us").expect("sim_ranking.fifo_p99_us");
    let sjf = scan_int(&json, "sjf_p99_us").expect("sim_ranking.sjf_p99_us");
    println!("smoke gate: sim proc p99 fifo={fifo}µs sjf={sjf}µs");
    if sjf > fifo {
        eprintln!(
            "FAIL: shortest-job-first p99 ({sjf}µs) exceeds FIFO p99 ({fifo}µs) on the skewed sim stream"
        );
        std::process::exit(1);
    }
    println!("smoke gate passed: SJF p99 <= FIFO p99 on the dominant class");

    if faults {
        assert!(
            json.contains("\"faults\""),
            "schema: missing faults section"
        );
        let get = |key: &str| scan_int(&json, key).unwrap_or_else(|| panic!("faults.{key}"));
        let divergent = get("divergent_trees");
        let reexec = get("regions_reexecuted");
        let dups = get("dup_suppressed");
        let clean_ms = get("clean_makespan_us");
        let faulty_ms = get("faulty_makespan_us");
        let (clean_shed, faulty_shed) = (get("clean_shed"), get("faulty_shed"));
        println!(
            "faults gate: {reexec} re-executed, {dups} dups suppressed, {divergent} divergent, makespan {faulty_ms}µs vs {clean_ms}µs, shed {faulty_shed} vs {clean_shed}"
        );
        let mut failed = false;
        if divergent != 0 {
            eprintln!("FAIL: {divergent} trees diverged from the fault-free output");
            failed = true;
        }
        if reexec == 0 || dups == 0 {
            eprintln!(
                "FAIL: the crash exercised no recovery (regions_reexecuted {reexec}, dup_suppressed {dups})"
            );
            failed = true;
        }
        // Recovery bound: the detour costs at most 25% of the
        // fault-free makespan on the open-arrival stream.
        if faulty_ms * 4 > clean_ms * 5 {
            eprintln!(
                "FAIL: recovered makespan {faulty_ms}µs exceeds 1.25× fault-free {clean_ms}µs"
            );
            failed = true;
        }
        if faulty_shed != clean_shed {
            eprintln!(
                "FAIL: crash changed admission accounting ({clean_shed} → {faulty_shed} shed)"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "faults gate passed: byte-identical recovery within 1.25× makespan, shed accounting intact"
        );
    }
}

fn main() {
    let args = parse_args();
    let compiler = Compiler::new();

    // The stream: skewed small-dominated mix; smoke substitutes the
    // paper program for the huge unit to stay seconds-scale (the skew
    // survives — paper is still ~100× a proc request).
    let mut stream_cfg = StreamConfig::skewed(args.requests, args.seed);
    if args.smoke {
        stream_cfg = stream_cfg.capped(SizeClass::Paper);
    }
    let stream = generate_stream(&stream_cfg);
    // The whole point is a *skewed* stream: without at least one
    // big-class contaminant the policy comparison is vacuous.
    assert!(
        stream
            .iter()
            .any(|s| matches!(s.class, SizeClass::Paper | SizeClass::Huge)),
        "stream drew no big-class request — pick another --seed or more --requests"
    );
    let trees = build_trees(&compiler, &stream);
    let nodes: usize = trees.iter().map(|t| t.len()).sum();
    println!(
        "stream: {} requests, {} total nodes, classes {:?}",
        stream.len(),
        nodes,
        {
            let mut counts = HashMap::new();
            for s in &stream {
                *counts.entry(s.class.name()).or_insert(0usize) += 1;
            }
            let mut v: Vec<_> = counts.into_iter().collect();
            v.sort();
            v
        }
    );

    let plan_shared = compiler.evals.plan();
    let driver_cfg = DriverConfig::workers(args.workers).with_pipeline_depth(args.depth);
    let plan = CompilationPlan::from_plan(plan_shared, driver_cfg);
    let plans = compiler.evals.plans().expect("pascal grammar is l-ordered");

    // Fair-queueing quantum: the median request's work estimate.
    let works: Vec<u64> = trees.iter().map(|t| plan_shared.tree_work(t)).collect();
    let quantum = {
        let mut w = works.clone();
        w.sort_unstable();
        w[w.len() / 2].max(1)
    };

    // Pace wall arrivals to ≈0.9 utilization: estimate per-tree wall
    // cost from a short calibration (ns per work unit on this box).
    let ns_per_tick = {
        let mut driver = BatchDriver::new(&CompilationPlan::from_plan(plan_shared, driver_cfg));
        let probe: Vec<_> = trees.iter().take(8).cloned().collect();
        driver.compile_batch(probe.clone()).expect("calibration");
        let t = Instant::now();
        driver.compile_batch(probe.clone()).expect("calibration");
        let probe_work: u64 = probe.iter().map(|t| plan_shared.tree_work(t)).sum();
        let ns_per_work = t.elapsed().as_nanos() as f64 / probe_work as f64;
        let total_ns = works.iter().sum::<u64>() as f64 * ns_per_work;
        let span_ticks = stream.last().expect("non-empty stream").arrival.max(1);
        (total_ns / 0.9) / span_ticks as f64
    };
    println!("wall pacing: {ns_per_tick:.0} ns/tick (≈0.9 utilization target)");

    let resolve = |p: DispatchPolicy| match p {
        DispatchPolicy::FairQueue { .. } => DispatchPolicy::FairQueue { quantum },
        other => other,
    };

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"label\": {:?},\n", args.label));
    out.push_str(&format!("  \"workers\": {},\n", args.workers));
    out.push_str(&format!("  \"pipeline_depth\": {},\n", args.depth));
    out.push_str(&format!("  \"capacity\": {},\n", args.capacity));
    out.push_str(&format!("  \"requests\": {},\n", stream.len()));
    out.push_str(&format!("  \"fair_quantum_work\": {quantum},\n"));
    out.push_str("  \"policies\": {\n");

    let mut sim_results: Vec<(DispatchPolicy, SectionResult)> = Vec::new();
    for (pi, &policy) in POLICIES.iter().enumerate() {
        let policy = resolve(policy);
        let name = policy.name();
        println!("policy {name}: wall section");
        let (wall, _, _) = run_wall(&plan, &trees, &stream, policy, args.capacity, ns_per_tick);
        println!(
            "  wall: {:.1} trees/sec, {} shed, proc p99 {}µs",
            wall.trees_per_sec,
            wall.shed,
            class_p99(&wall, &stream, SizeClass::Proc)
        );
        println!("policy {name}: sim section (4-machine park)");
        // The ranking runs unbounded so every policy serves the same
        // request set; deterministic shed accounting is measured
        // separately below.
        let sim = run_sim(
            &trees,
            &stream,
            plans,
            4,
            args.depth,
            policy,
            stream.len(),
            SchedulerMode::Fixed,
        );
        println!(
            "  sim: {:.1} trees/sec, proc p99 {}µs",
            sim.trees_per_sec,
            class_p99(&sim, &stream, SizeClass::Proc)
        );
        out.push_str(&format!("    \"{name}\": {{\n"));
        out.push_str("      \"wall\": {\n");
        push_section(&mut out, "        ", &wall, &stream);
        out.push_str("      },\n");
        out.push_str("      \"sim\": {\n");
        push_section(&mut out, "        ", &sim, &stream);
        out.push_str("      }\n");
        out.push_str(if pi + 1 == POLICIES.len() {
            "    }\n"
        } else {
            "    },\n"
        });
        sim_results.push((policy, sim));
    }
    out.push_str("  },\n");

    // Deterministic shed accounting: the same sim stream against the
    // bounded waiting room (FIFO; admission is policy-independent at a
    // given queue length, but drain order changes how fast it empties).
    let bounded = run_sim(
        &trees,
        &stream,
        plans,
        4,
        args.depth,
        DispatchPolicy::Fifo,
        args.capacity.min(8),
        SchedulerMode::Fixed,
    );
    out.push_str("  \"sim_admission\": {\n");
    out.push_str(&format!("    \"capacity\": {},\n", args.capacity.min(8)));
    out.push_str(&format!("    \"offered\": {},\n", stream.len()));
    out.push_str(&format!("    \"shed\": {}\n", bounded.shed));
    out.push_str("  },\n");
    println!(
        "sim admission (capacity {}): {} of {} shed",
        args.capacity.min(8),
        bounded.shed,
        stream.len()
    );

    // Duplicated-traffic replay: the same arrival schedule with half
    // the requests drawing from a small template pool, served memo-off
    // vs memo-on (FIFO). Recorded as shed/p99 deltas — informational
    // wall numbers, deliberately not gated yet. Both sides use
    // adaptive granularity (budget = the median request's work) so the
    // cache's leaf regions exist; small duplicated requests then replay
    // as whole-tree hits.
    let dup_fraction = 0.5;
    let dup_stream = generate_stream(&stream_cfg.clone().with_template_fraction(dup_fraction));
    let dup_trees = build_trees(&compiler, &dup_stream);
    let adaptive_cfg = driver_cfg.with_adaptive_budget(quantum);
    let (dup_off, _, _) = run_wall(
        &CompilationPlan::from_plan(plan_shared, adaptive_cfg),
        &dup_trees,
        &dup_stream,
        DispatchPolicy::Fifo,
        args.capacity,
        ns_per_tick,
    );
    let (dup_on, dup_memo, _) = run_wall(
        &CompilationPlan::from_plan(plan_shared, adaptive_cfg.with_memo_capacity(64 << 20)),
        &dup_trees,
        &dup_stream,
        DispatchPolicy::Fifo,
        args.capacity,
        ns_per_tick,
    );
    let (off_p99, on_p99) = (
        class_p99(&dup_off, &dup_stream, SizeClass::Proc),
        class_p99(&dup_on, &dup_stream, SizeClass::Proc),
    );
    out.push_str("  \"duplicated_traffic\": {\n");
    out.push_str(&format!("    \"template_fraction\": {dup_fraction},\n"));
    out.push_str("    \"policy\": \"fifo\",\n");
    out.push_str(&format!(
        "    \"memo_off\": {{ \"shed\": {}, \"trees_per_sec\": {:.2}, \"proc_p99_us\": {} }},\n",
        dup_off.shed, dup_off.trees_per_sec, off_p99
    ));
    out.push_str(&format!(
        "    \"memo_on\": {{ \"shed\": {}, \"trees_per_sec\": {:.2}, \"proc_p99_us\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.3} }},\n",
        dup_on.shed,
        dup_on.trees_per_sec,
        on_p99,
        dup_memo.hits,
        dup_memo.misses,
        dup_memo.hit_rate()
    ));
    out.push_str(&format!(
        "    \"delta\": {{ \"proc_p99_us\": {}, \"shed\": {} }}\n",
        on_p99 as i64 - off_p99 as i64,
        dup_on.shed as i64 - dup_off.shed as i64
    ));
    out.push_str("  },\n");
    println!(
        "duplicated traffic (fraction {dup_fraction}): memo-off proc p99 {off_p99}µs / shed {}, memo-on proc p99 {on_p99}µs / shed {} (hit rate {:.2})",
        dup_off.shed,
        dup_on.shed,
        dup_memo.hit_rate()
    );

    // The --sched axis: FIFO replayed under the stealing scheduler,
    // wall (with steal telemetry) and sim, against the Fixed runs
    // above. Informational — see the module doc.
    if args.sched {
        let steal_plan = CompilationPlan::from_plan(
            plan_shared,
            driver_cfg.with_scheduler(SchedulerMode::Stealing),
        );
        let (wall_fixed, _, _) = run_wall(
            &plan,
            &trees,
            &stream,
            DispatchPolicy::Fifo,
            args.capacity,
            ns_per_tick,
        );
        let (wall_steal, _, wsched) = run_wall(
            &steal_plan,
            &trees,
            &stream,
            DispatchPolicy::Fifo,
            args.capacity,
            ns_per_tick,
        );
        let sim_steal = run_sim(
            &trees,
            &stream,
            plans,
            4,
            args.depth,
            DispatchPolicy::Fifo,
            stream.len(),
            SchedulerMode::Stealing,
        );
        let sim_fixed_p99 = sim_results
            .iter()
            .find(|(p, _)| p.name() == "fifo")
            .map(|(_, r)| class_p99(r, &stream, SizeClass::Proc))
            .expect("fifo ran");
        let (wf_p99, ws_p99) = (
            class_p99(&wall_fixed, &stream, SizeClass::Proc),
            class_p99(&wall_steal, &stream, SizeClass::Proc),
        );
        let ss_p99 = class_p99(&sim_steal, &stream, SizeClass::Proc);
        out.push_str(
            "  \"sched\": {
",
        );
        out.push_str(
            "    \"policy\": \"fifo\",
",
        );
        out.push_str(&format!(
            "    \"wall\": {{ \"fixed_proc_p99_us\": {wf_p99}, \"stealing_proc_p99_us\": {ws_p99}, \"steals\": {}, \"migrated_attrs\": {}, \"local_sends\": {}, \"remote_sends\": {} }},
",
            wsched.steals, wsched.migrated_attrs, wsched.local_sends, wsched.remote_sends
        ));
        out.push_str(&format!(
            "    \"sim\": {{ \"fixed_proc_p99_us\": {sim_fixed_p99}, \"stealing_proc_p99_us\": {ss_p99} }}
"
        ));
        out.push_str(
            "  },
",
        );
        println!(
            "sched (fifo): wall proc p99 fixed {wf_p99}µs / stealing {ws_p99}µs ({} steals, {} local / {} remote sends); sim proc p99 fixed {sim_fixed_p99}µs / stealing {ss_p99}µs",
            wsched.steals, wsched.local_sends, wsched.remote_sends
        );
    }

    // The --faults axis: the FIFO stream replayed on the stealing sim
    // park with a mid-evaluation crash+restart of one evaluator. The
    // victim/instant pair is probed deterministically (the sim replays
    // bit-for-bit, so the probe always lands on the same pair) until
    // the crash hits held work AND forces duplicate-suppressed replay —
    // the recovery paths the smoke exists to exercise.
    if args.faults {
        let machines = 4usize;
        let cfg = SimConfig::paper(machines).with_scheduler(SchedulerMode::Stealing);
        let requests: Vec<SimRequest> = stream
            .iter()
            .map(|r| SimRequest {
                arrival_us: r.arrival,
                tenant: r.tenant,
            })
            .collect();
        let run_faulty = |plan: &FaultPlan| -> ServiceSimReport<PVal> {
            run_sim_service_with_faults(
                &trees,
                &requests,
                Some(plans),
                &cfg,
                args.depth,
                RegionGranularity::Machines(machines),
                DispatchPolicy::Fifo,
                stream.len(),
                plan,
            )
        };
        let clean = run_faulty(&FaultPlan::default());

        // Candidate crash instants: quarters of the evaluation window,
        // from the first dispatch to the fault-free makespan.
        let d0 = clean
            .dispatched
            .iter()
            .flatten()
            .copied()
            .min()
            .expect("stream dispatched at least one request");
        let downtime = (clean.makespan / 20).max(1);
        let probe = (1..=3u64)
            .flat_map(|frac| {
                (1..=machines).map(move |victim| (victim, d0 + (clean.makespan - d0) * frac / 4))
            })
            .map(|(victim, at)| {
                let plan = FaultPlan::seeded(args.seed).crash_restart(victim, at, downtime);
                (victim, at, run_faulty(&plan))
            })
            .find(|(_, _, rep)| rep.faults.regions_reexecuted > 0 && rep.faults.dup_suppressed > 0);
        let (victim, crash_at, faulty) =
            probe.expect("some victim×instant crash lands on mid-evaluation work");

        // Byte-identical recovery: every request's root attributes,
        // compared content-deep (ropes by bytes) after canonicalizing
        // by attribute id — faults may reorder arrival, never content.
        let canonical = |rep: &ServiceSimReport<PVal>| -> Vec<Vec<(u32, PVal)>> {
            rep.root_values
                .iter()
                .map(|roots| {
                    let mut r: Vec<(u32, PVal)> =
                        roots.iter().map(|(a, v)| (a.0, v.clone())).collect();
                    r.sort_by_key(|(a, _)| *a);
                    r
                })
                .collect()
        };
        let divergent = canonical(&clean)
            .iter()
            .zip(canonical(&faulty).iter())
            .filter(|(c, f)| c != f)
            .count();
        let f = faulty.faults;
        out.push_str("  \"faults\": {\n");
        out.push_str(&format!("    \"victim\": {victim},\n"));
        out.push_str(&format!("    \"crash_at_us\": {crash_at},\n"));
        out.push_str(&format!("    \"restart_after_us\": {downtime},\n"));
        out.push_str(&format!("    \"crashes\": {},\n", f.crashes));
        out.push_str(&format!(
            "    \"regions_reexecuted\": {},\n",
            f.regions_reexecuted
        ));
        out.push_str(&format!("    \"dup_suppressed\": {},\n", f.dup_suppressed));
        out.push_str(&format!("    \"divergent_trees\": {divergent},\n"));
        out.push_str(&format!("    \"clean_makespan_us\": {},\n", clean.makespan));
        out.push_str(&format!(
            "    \"faulty_makespan_us\": {},\n",
            faulty.makespan
        ));
        out.push_str(&format!("    \"clean_shed\": {},\n", clean.shed_count()));
        out.push_str(&format!("    \"faulty_shed\": {}\n", faulty.shed_count()));
        out.push_str("  },\n");
        println!(
            "faults (fifo, stealing): crash p{victim}@{crash_at}µs ↓{downtime}µs — {} regions re-executed, {} dups suppressed, {} divergent trees, makespan {}µs vs clean {}µs",
            f.regions_reexecuted, f.dup_suppressed, divergent, faulty.makespan, clean.makespan
        );
    }

    // The ranking object the smoke gate reads: p99 on the dominant
    // small class, per policy, on the deterministic sim.
    let p99 = |name: &str| {
        sim_results
            .iter()
            .find(|(p, _)| p.name() == name)
            .map(|(_, r)| class_p99(r, &stream, SizeClass::Proc))
            .expect("policy ran")
    };
    let (f, s, q) = (p99("fifo"), p99("sjf"), p99("fair"));
    let winner = if s <= f.min(q) {
        "sjf"
    } else if q <= f {
        "fair"
    } else {
        "fifo"
    };
    out.push_str("  \"sim_ranking\": {\n");
    out.push_str("    \"class\": \"proc\",\n");
    out.push_str(&format!("    \"fifo_p99_us\": {f},\n"));
    out.push_str(&format!("    \"sjf_p99_us\": {s},\n"));
    out.push_str(&format!("    \"fair_p99_us\": {q},\n"));
    out.push_str(&format!("    \"winner\": \"{winner}\"\n"));
    out.push_str("  }\n");
    out.push_str("}\n");
    println!("sim ranking (proc p99): fifo {f}µs, sjf {s}µs, fair {q}µs — winner {winner}");

    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&args.out, &out).expect("write output");
    println!("wrote {}", args.out);

    if args.smoke {
        validate(&args.out, args.faults);
    }
}
