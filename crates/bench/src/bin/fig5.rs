//! Figure 5: evaluator running times vs. number of machines.
//!
//! Reproduces the paper's central measurement: running time of the
//! parallel *dynamic* and *combined* evaluators on 1–6 machines (plus a
//! couple more for context), compiling the ≈2000-line generated Pascal
//! workload on the simulated SUN-2/Ethernet testbed. The expected
//! shape: the combined evaluator is consistently faster, speedup peaks
//! around five machines (the balanced decomposition), and adding a
//! sixth machine does not help monotonically.

use paragram_bench::{bar, fmt_secs, simulate, Workload};
use paragram_core::eval::MachineMode;

fn main() {
    let w = Workload::paper();
    println!(
        "Figure 5 — running time vs machines ({} source lines, {} tree nodes)\n",
        w.lines(),
        w.tree.len()
    );
    println!(
        "{:>9} | {:>10} {:>8} | {:>10} {:>8} | chart (combined)",
        "machines", "dynamic", "speedup", "combined", "speedup"
    );
    println!("{}", "-".repeat(78));
    let mut base_dyn = 0.0;
    let mut base_comb = 0.0;
    let mut rows = Vec::new();
    for machines in 1..=8 {
        let d = simulate(&w, machines, MachineMode::Dynamic);
        let c = simulate(&w, machines, MachineMode::Combined);
        if machines == 1 {
            base_dyn = d.eval_time as f64;
            base_comb = c.eval_time as f64;
        }
        rows.push((machines, d.eval_time, c.eval_time, d.regions, c.regions));
    }
    let max = rows.iter().map(|r| r.1).max().unwrap_or(1) as f64;
    for (machines, dt, ct, _dr, cr) in &rows {
        println!(
            "{:>9} | {:>10} {:>7.2}x | {:>10} {:>7.2}x | {}",
            format!("{machines} ({cr})"),
            fmt_secs(*dt),
            base_dyn / *dt as f64,
            fmt_secs(*ct),
            base_comb / *ct as f64,
            bar(*ct as f64, max, 28),
        );
    }
    println!("\n(regions actually used shown in parentheses; sequential parse time");
    let parse = simulate(&w, 1, MachineMode::Combined).parse_time;
    println!(" reported separately as in §4.1: {})", fmt_secs(parse));
}
