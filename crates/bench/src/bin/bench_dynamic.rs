//! Perf-trajectory benchmark for the dynamic pipeline.
//!
//! Measures, on the paper workload (and the small workload for quick
//! sanity), the median wall-clock time of:
//!
//! * `dynamic_eval` — graph construction + dynamic evaluation,
//! * `static_eval` — compiled-visit-program evaluation (no graph; the
//!   programs are prebuilt with the plan, outside the timed loop),
//! * `machine_combined` — a whole-tree combined-mode [`Machine`] run
//!   over the same programs (the region engine's sequential floor),
//! * dependency-graph construction alone (a dynamic-mode [`Machine`]
//!   over the undecomposed tree builds exactly the instance graph).
//!
//! With `--programs-vs-segments` the static measurement becomes an
//! *interleaved* A/B comparison against the reference segment walker
//! (`static_eval_segments`): iterations alternate program/segment on
//! the same box so neither side benefits from thermal or cache drift.
//! The run fails (non-zero exit) if the compiled programs are slower
//! than the segment walker by more than 10% on any non-small workload —
//! CI runs this in `--smoke` mode as a dispatch-regression gate.
//!
//! Writes `BENCH_dynamic.json` (override with `--out`). With
//! `--baseline FILE` (a previous run's output), the new file embeds the
//! baseline numbers and the relative improvement so the repo can track
//! its perf trajectory across PRs.
//!
//! Usage: `cargo run --release --bin bench_dynamic -- [--iters N]
//! [--out PATH] [--baseline PATH] [--label TEXT] [--huge] [--smoke]
//! [--programs-vs-segments]`

use paragram_bench::Workload;
use paragram_core::eval::{
    dynamic_eval, static_eval_segments, static_eval_with_programs, EvalPlan, Machine, MachineMode,
    MachineScratch,
};
use paragram_core::split::Decomposition;
use paragram_pascal::generator::GenConfig;
use std::sync::Arc;
use std::time::Instant;

/// Regression gate: programs must not trail the segment walker by more
/// than this factor on non-small workloads.
const GATE_RATIO: f64 = 1.10;

struct Args {
    iters: usize,
    out: String,
    baseline: Option<String>,
    label: String,
    huge: bool,
    smoke: bool,
    programs_vs_segments: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        iters: 15,
        out: "BENCH_dynamic.json".to_string(),
        baseline: None,
        label: "current".to_string(),
        huge: false,
        smoke: false,
        programs_vs_segments: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--iters" => {
                args.iters = val("--iters").parse().unwrap_or_else(|_| {
                    eprintln!("error: --iters takes an integer");
                    std::process::exit(2);
                });
                args.iters = args.iters.max(1);
            }
            "--out" => args.out = val("--out"),
            "--baseline" => args.baseline = Some(val("--baseline")),
            "--label" => args.label = val("--label"),
            "--huge" => args.huge = true,
            "--smoke" => args.smoke = true,
            "--programs-vs-segments" => args.programs_vs_segments = true,
            other => {
                eprintln!(
                    "error: unknown argument {other:?}\nusage: bench_dynamic [--iters N] [--out PATH] [--baseline PATH] [--label TEXT] [--huge] [--smoke] [--programs-vs-segments]"
                );
                std::process::exit(2);
            }
        }
    }
    if args.smoke {
        // Quick CI mode: fewer iterations, never the huge workload.
        args.iters = args.iters.min(9);
        args.huge = false;
    }
    args
}

/// Median of `iters` timed runs, in nanoseconds.
fn median_ns<O>(iters: usize, mut f: impl FnMut() -> O) -> u128 {
    let mut times: Vec<u128> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        times.push(t.elapsed().as_nanos());
    }
    times.sort_unstable();
    times[times.len() / 2]
}

/// Interleaved A/B medians: each iteration times `a` then `b`
/// back-to-back, so both sides see the same thermal, frequency and
/// cache conditions. Returns `(median_a, median_b)`.
fn medians_interleaved<A, B>(
    iters: usize,
    mut a: impl FnMut() -> A,
    mut b: impl FnMut() -> B,
) -> (u128, u128) {
    let mut ta: Vec<u128> = Vec::with_capacity(iters);
    let mut tb: Vec<u128> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(a());
        ta.push(t.elapsed().as_nanos());
        let t = Instant::now();
        std::hint::black_box(b());
        tb.push(t.elapsed().as_nanos());
    }
    ta.sort_unstable();
    tb.sort_unstable();
    (ta[ta.len() / 2], tb[tb.len() / 2])
}

struct Measurement {
    name: &'static str,
    median_ns: u128,
}

struct WorkloadResults {
    measurements: Vec<Measurement>,
    /// Relative advantage of programs over segments (positive =
    /// programs faster), from the interleaved comparison.
    programs_vs_segments_pct: Option<f64>,
}

fn measure(w: &Workload, iters: usize, compare_segments: bool) -> WorkloadResults {
    let whole = Decomposition::whole(&w.tree);
    // Plan tables are grammar-level and shared; build them outside the
    // timed loop so graph_build isolates graph construction.
    let dyn_plan = Arc::new(EvalPlan::from_parts(w.tree.grammar(), None, None));
    let plan = w.plan();
    let programs = plan
        .programs()
        .expect("pascal grammar compiles to programs");

    let mut measurements = vec![Measurement {
        name: "dynamic_eval",
        median_ns: median_ns(iters, || dynamic_eval(&w.tree).unwrap()),
    }];
    let mut pct = None;
    if compare_segments {
        let (prog_ns, seg_ns) = medians_interleaved(
            iters,
            || static_eval_with_programs(&w.tree, &w.plans, programs).unwrap(),
            || static_eval_segments(&w.tree, &w.plans).unwrap(),
        );
        pct = Some(100.0 * (seg_ns as f64 - prog_ns as f64) / seg_ns as f64);
        measurements.push(Measurement {
            name: "static_eval",
            median_ns: prog_ns,
        });
        measurements.push(Measurement {
            name: "static_eval_segments",
            median_ns: seg_ns,
        });
    } else {
        measurements.push(Measurement {
            name: "static_eval",
            median_ns: median_ns(iters, || {
                static_eval_with_programs(&w.tree, &w.plans, programs).unwrap()
            }),
        });
    }
    measurements.push(Measurement {
        name: "machine_combined",
        median_ns: median_ns(iters, || {
            let mut m = Machine::from_plan(
                plan,
                &w.tree,
                &whole,
                0,
                MachineMode::Combined,
                MachineScratch::new(),
            );
            m.run().unwrap();
            assert!(m.is_done());
        }),
    });
    measurements.push(Measurement {
        name: "graph_build",
        median_ns: median_ns(iters, || {
            Machine::from_plan(
                &dyn_plan,
                &w.tree,
                &whole,
                0,
                MachineMode::Dynamic,
                MachineScratch::new(),
            )
            .graph_size()
        }),
    });
    WorkloadResults {
        measurements,
        programs_vs_segments_pct: pct,
    }
}

/// Pulls `"name": { ... "median_ns": N ... }` out of a previous run's
/// JSON without a JSON parser (the format is our own, flat and stable).
fn baseline_value(json: &str, workload: &str, name: &str) -> Option<u128> {
    let w = json.find(&format!("\"{workload}\""))?;
    let sect = &json[w..];
    let k = sect.find(&format!("\"{name}\""))?;
    let rest = &sect[k..];
    let m = rest.find("\"median_ns\":")?;
    let tail = rest[m + "\"median_ns\":".len()..].trim_start();
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn main() {
    let args = parse_args();
    let baseline = args.baseline.as_ref().map(|p| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {p}: {e}");
            std::process::exit(2);
        })
    });

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"label\": {:?},\n", args.label));
    out.push_str(&format!("  \"iters\": {},\n", args.iters));

    let mut workloads = vec![("small", GenConfig::small()), ("paper", GenConfig::paper())];
    if args.huge {
        workloads.push(("huge", GenConfig::huge()));
    }
    let mut gate_failures: Vec<String> = Vec::new();
    for (wi, (wname, cfg)) in workloads.iter().enumerate() {
        let w = Workload::from_config(cfg);
        let (d, dstats) = dynamic_eval(&w.tree).unwrap();
        drop(d);
        println!(
            "workload {wname}: {} lines, {} nodes, graph {} nodes / {} edges",
            w.lines(),
            w.tree.len(),
            dstats.graph_nodes,
            dstats.graph_edges
        );
        let results = measure(&w, args.iters, args.programs_vs_segments);
        out.push_str(&format!("  \"{wname}\": {{\n"));
        out.push_str(&format!("    \"source_lines\": {},\n", w.lines()));
        out.push_str(&format!("    \"tree_nodes\": {},\n", w.tree.len()));
        out.push_str(&format!("    \"graph_nodes\": {},\n", dstats.graph_nodes));
        out.push_str(&format!("    \"graph_edges\": {},\n", dstats.graph_edges));
        if let Some(pct) = results.programs_vs_segments_pct {
            out.push_str(&format!("    \"programs_vs_segments_pct\": {pct:.1},\n"));
            println!("  {wname}/programs_vs_segments: programs {pct:+.1}% vs segments");
            if *wname != "small" && pct < 100.0 * (1.0 - GATE_RATIO) {
                gate_failures.push(format!(
                    "{wname}: compiled programs are {:.1}% slower than the segment walker (gate: {:.0}%)",
                    -pct,
                    100.0 * (GATE_RATIO - 1.0)
                ));
            }
        }
        let ms = &results.measurements;
        for (i, m) in ms.iter().enumerate() {
            let base = baseline
                .as_deref()
                .and_then(|b| baseline_value(b, wname, m.name));
            out.push_str(&format!("    \"{}\": {{\n", m.name));
            out.push_str(&format!("      \"median_ns\": {}", m.median_ns));
            if let Some(base) = base {
                let pct = 100.0 * (base as f64 - m.median_ns as f64) / base as f64;
                out.push_str(&format!(",\n      \"baseline_median_ns\": {base}"));
                out.push_str(&format!(",\n      \"improvement_pct\": {pct:.1}"));
                println!(
                    "  {wname}/{}: {} ns (baseline {base} ns, {pct:+.1}%)",
                    m.name, m.median_ns
                );
            } else {
                println!("  {wname}/{}: {} ns", m.name, m.median_ns);
            }
            out.push_str("\n    }");
            out.push_str(if i + 1 < ms.len() { ",\n" } else { "\n" });
        }
        out.push_str("  }");
        out.push_str(if wi + 1 < workloads.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("}\n");
    std::fs::write(&args.out, out).expect("write output");
    println!("wrote {}", args.out);
    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("DISPATCH REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}
