//! Perf-trajectory benchmark for the dynamic pipeline.
//!
//! Measures, on the paper workload (and the small workload for quick
//! sanity), the median wall-clock time of:
//!
//! * `dynamic_eval` — graph construction + dynamic evaluation,
//! * `static_eval` — plan-driven evaluation (no graph),
//! * dependency-graph construction alone (a dynamic-mode [`Machine`]
//!   over the undecomposed tree builds exactly the instance graph).
//!
//! Writes `BENCH_dynamic.json` (override with `--out`). With
//! `--baseline FILE` (a previous run's output), the new file embeds the
//! baseline numbers and the relative improvement so the repo can track
//! its perf trajectory across PRs.
//!
//! Usage: `cargo run --release --bin bench_dynamic -- [--iters N]
//! [--out PATH] [--baseline PATH] [--label TEXT]`

use paragram_bench::Workload;
use paragram_core::eval::{
    dynamic_eval, static_eval, EvalPlan, Machine, MachineMode, MachineScratch,
};
use paragram_core::split::Decomposition;
use paragram_pascal::generator::GenConfig;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    iters: usize,
    out: String,
    baseline: Option<String>,
    label: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        iters: 15,
        out: "BENCH_dynamic.json".to_string(),
        baseline: None,
        label: "current".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--iters" => {
                args.iters = val("--iters").parse().unwrap_or_else(|_| {
                    eprintln!("error: --iters takes an integer");
                    std::process::exit(2);
                });
                args.iters = args.iters.max(1);
            }
            "--out" => args.out = val("--out"),
            "--baseline" => args.baseline = Some(val("--baseline")),
            "--label" => args.label = val("--label"),
            other => {
                eprintln!(
                    "error: unknown argument {other:?}\nusage: bench_dynamic [--iters N] [--out PATH] [--baseline PATH] [--label TEXT]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Median of `iters` timed runs, in nanoseconds.
fn median_ns<O>(iters: usize, mut f: impl FnMut() -> O) -> u128 {
    let mut times: Vec<u128> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        times.push(t.elapsed().as_nanos());
    }
    times.sort_unstable();
    times[times.len() / 2]
}

struct Measurement {
    name: &'static str,
    median_ns: u128,
}

fn measure(w: &Workload, iters: usize) -> Vec<Measurement> {
    let whole = Decomposition::whole(&w.tree);
    // Plan tables are grammar-level and shared; build them outside the
    // timed loop so graph_build isolates graph construction.
    let plan = Arc::new(EvalPlan::from_parts(w.tree.grammar(), None, None));
    vec![
        Measurement {
            name: "dynamic_eval",
            median_ns: median_ns(iters, || dynamic_eval(&w.tree).unwrap()),
        },
        Measurement {
            name: "static_eval",
            median_ns: median_ns(iters, || static_eval(&w.tree, &w.plans).unwrap()),
        },
        Measurement {
            name: "graph_build",
            median_ns: median_ns(iters, || {
                Machine::from_plan(
                    &plan,
                    &w.tree,
                    &whole,
                    0,
                    MachineMode::Dynamic,
                    MachineScratch::new(),
                )
                .graph_size()
            }),
        },
    ]
}

/// Pulls `"name": { ... "median_ns": N ... }` out of a previous run's
/// JSON without a JSON parser (the format is our own, flat and stable).
fn baseline_value(json: &str, workload: &str, name: &str) -> Option<u128> {
    let w = json.find(&format!("\"{workload}\""))?;
    let sect = &json[w..];
    let k = sect.find(&format!("\"{name}\""))?;
    let rest = &sect[k..];
    let m = rest.find("\"median_ns\":")?;
    let tail = rest[m + "\"median_ns\":".len()..].trim_start();
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn main() {
    let args = parse_args();
    let baseline = args.baseline.as_ref().map(|p| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {p}: {e}");
            std::process::exit(2);
        })
    });

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"label\": {:?},\n", args.label));
    out.push_str(&format!("  \"iters\": {},\n", args.iters));

    let workloads = [("small", GenConfig::small()), ("paper", GenConfig::paper())];
    for (wi, (wname, cfg)) in workloads.iter().enumerate() {
        let w = Workload::from_config(cfg);
        let (d, dstats) = dynamic_eval(&w.tree).unwrap();
        drop(d);
        println!(
            "workload {wname}: {} lines, {} nodes, graph {} nodes / {} edges",
            w.lines(),
            w.tree.len(),
            dstats.graph_nodes,
            dstats.graph_edges
        );
        let results = measure(&w, args.iters);
        out.push_str(&format!("  \"{wname}\": {{\n"));
        out.push_str(&format!("    \"source_lines\": {},\n", w.lines()));
        out.push_str(&format!("    \"tree_nodes\": {},\n", w.tree.len()));
        out.push_str(&format!("    \"graph_nodes\": {},\n", dstats.graph_nodes));
        out.push_str(&format!("    \"graph_edges\": {},\n", dstats.graph_edges));
        for (i, m) in results.iter().enumerate() {
            let base = baseline
                .as_deref()
                .and_then(|b| baseline_value(b, wname, m.name));
            out.push_str(&format!("    \"{}\": {{\n", m.name));
            out.push_str(&format!("      \"median_ns\": {}", m.median_ns));
            if let Some(base) = base {
                let pct = 100.0 * (base as f64 - m.median_ns as f64) / base as f64;
                out.push_str(&format!(",\n      \"baseline_median_ns\": {base}"));
                out.push_str(&format!(",\n      \"improvement_pct\": {pct:.1}"));
                println!(
                    "  {wname}/{}: {} ns (baseline {base} ns, {pct:+.1}%)",
                    m.name, m.median_ns
                );
            } else {
                println!("  {wname}/{}: {} ns", m.name, m.median_ns);
            }
            out.push_str("\n    }");
            out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
        }
        out.push_str("  }");
        out.push_str(if wi + 1 < workloads.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("}\n");
    std::fs::write(&args.out, out).expect("write output");
    println!("wrote {}", args.out);
}
