//! §4.3 ablation: priority attributes.
//!
//! Without priority markings on the symbol-table attributes, a machine
//! can schedule ready local code-generation work ahead of the
//! environment values its *peers* are blocked on — the paper's
//! "pathological situations ... whereby local attributes are computed
//! ahead of attributes that are required globally".

use paragram_bench::{fmt_secs, pascal_classifier};
use paragram_core::eval::MachineMode;
use paragram_core::parallel::sim::{run_sim, SimConfig};
use paragram_core::parallel::ResultPropagation;
use paragram_pascal::generator::GenConfig;
use std::sync::Arc;

fn main() {
    println!("§4.3 — priority attributes on 5 machines\n");
    println!("{:>22} | {:>9}", "configuration", "time");
    println!("{}", "-".repeat(36));
    let mut times = Vec::new();
    for (name, priority) in [("priority attrs ON", true), ("priority attrs OFF", false)] {
        // Build the grammar variant and recompile the workload with it.
        let pg = paragram_pascal::grammar::build_with(priority);
        let evals = paragram_core::eval::Evaluators::new(&pg.grammar);
        let src = paragram_pascal::generator::generate(&GenConfig::paper());
        let ast = paragram_pascal::parser::parse(&src).unwrap();
        let tree = paragram_pascal::agtree::build_tree(&pg, &ast).unwrap();
        let plans = Arc::clone(evals.plans().expect("ordered"));
        let mut cfg = SimConfig::paper(5);
        cfg.mode = MachineMode::Combined;
        cfg.result = ResultPropagation::Librarian;
        cfg.classifier = pascal_classifier();
        let r = run_sim(&tree, Some(&plans), &cfg);
        println!("{name:>22} | {}", fmt_secs(r.eval_time));
        times.push(r.eval_time);
    }
    let delta = times[1].saturating_sub(times[0]);
    println!(
        "\npriority attributes save {} ({:.1}%)",
        fmt_secs(delta),
        100.0 * delta as f64 / times[1].max(1) as f64
    );
}
