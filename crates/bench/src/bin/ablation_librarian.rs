//! §4.2 ablation: string librarian vs naive result propagation.
//!
//! The naive scheme ships each evaluator's full code attribute to its
//! ancestor, which concatenates and re-transmits — large attributes
//! cross the network as many times as the process tree is deep, and the
//! concatenation chain is strictly sequential. The librarian receives
//! each evaluator's text once, in parallel, and only small descriptors
//! travel up. The paper measured ≈1 second (≈10%) improvement.

use paragram_bench::{fmt_secs, pascal_sim_config, Workload};
use paragram_core::eval::MachineMode;
use paragram_core::parallel::sim::run_sim;
use paragram_core::parallel::ResultPropagation;

fn main() {
    let w = Workload::paper();
    println!("§4.2 — result propagation on 5 machines\n");
    println!(
        "{:>10} | {:>9} | {:>12} | {:>9}",
        "mode", "time", "net bytes", "messages"
    );
    println!("{}", "-".repeat(50));
    let mut times = Vec::new();
    for (name, mode) in [
        ("librarian", ResultPropagation::Librarian),
        ("naive", ResultPropagation::Naive),
    ] {
        let cfg = pascal_sim_config(5, MachineMode::Combined, mode);
        let r = run_sim(&w.tree, Some(&w.plans), &cfg);
        println!(
            "{name:>10} | {} | {:>10} K | {:>9}",
            fmt_secs(r.eval_time),
            r.trace.network_bytes() / 1024,
            r.trace.messages.len()
        );
        times.push(r.eval_time);
    }
    let saved = times[1].saturating_sub(times[0]);
    println!(
        "\nlibrarian saves {} ({:.1}% of the naive time; paper: ≈1s, ≈10%)",
        fmt_secs(saved),
        100.0 * saved as f64 / times[1] as f64
    );
}
