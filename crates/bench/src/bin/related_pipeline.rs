//! §5 related-work comparison: pipelined compilation.
//!
//! The paper: "An alternative approach to parallelizing compilation
//! consists of pipelining the compilation process … the speedup that
//! can be achieved by executing different stages in parallel is limited
//! by the number of stages in the pipeline (which is usually rather
//! small) and by dependencies between the data produced by the
//! different stages. Our attempt at parallelizing the portable C
//! compiler in this way shows speedups limited to ≈2."
//!
//! We simulate that architecture on the same network multiprocessor:
//! one process per compiler stage (parse → symbol table → code
//! generation → peephole), streaming one work unit per procedure
//! through the pipeline, with per-stage costs taken from the measured
//! phase breakdown of the AG compilation. The speedup saturates at the
//! slowest stage regardless of machine count — compare Figure 5, where
//! tree decomposition keeps scaling to five machines.

use paragram_bench::{fmt_secs, simulate, Workload};
use paragram_core::eval::MachineMode;
use paragram_netsim::{Ctx, NetModel, ProcId, Process, Sim, Time};

/// Per-unit stage costs (virtual µs), calibrated against the combined
/// evaluator's measured phase times on the same workload: code
/// generation dominates, as in any real compiler.
const STAGES: [(&str, Time); 4] = [
    ("parse", 70_000),
    ("symtab", 60_000),
    ("codegen", 230_000),
    ("peephole", 105_000),
];

struct Stage {
    index: usize,
    stages_used: usize,
    units: usize,
    received: usize,
}

impl Process<u32> for Stage {
    fn on_start(&mut self, ctx: &mut Ctx<u32>) {
        if self.index == 0 {
            // The first stage sources all units itself.
            for unit in 0..self.units as u32 {
                self.work(ctx, unit);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<u32>, _from: ProcId, unit: u32) {
        self.work(ctx, unit);
    }
}

impl Stage {
    fn is_last(&self) -> bool {
        self.index + 1 == self.stages_used
    }

    fn work(&mut self, ctx: &mut Ctx<u32>, unit: u32) {
        // This process runs a contiguous band of the four stages when
        // fewer machines than stages are available.
        let per = STAGES.len().div_ceil(self.stages_used);
        let lo = self.index * per;
        let hi = (lo + per).min(STAGES.len());
        for (name, cost) in &STAGES[lo..hi] {
            ctx.phase(name);
            ctx.spend(*cost);
        }
        if self.is_last() {
            self.received += 1;
            if self.received == self.units {
                ctx.stop();
            }
        } else {
            // Hand the unit to the next stage (intermediate form on the
            // wire: a few KiB per procedure).
            ctx.send(ProcId(self.index + 1), unit, 4_096, "ir");
        }
    }
}

fn run_pipeline(stages_used: usize, units: usize) -> Time {
    let mut sim: Sim<u32> = Sim::new(NetModel::lan_1987());
    for index in 0..stages_used {
        sim.add_process(
            format!("stage-{index}"),
            Stage {
                index,
                stages_used,
                units,
                received: 0,
            },
        );
    }
    sim.run()
}

fn main() {
    let units = 65; // procedures in the paper workload
    println!("§5 — pipelined compilation vs attribute-grammar decomposition\n");
    println!("pipeline of compiler stages ({units} procedure-sized units):");
    println!("{:>9} | {:>9} | {:>8}", "machines", "time", "speedup");
    println!("{}", "-".repeat(34));
    let base = run_pipeline(1, units);
    for machines in [1usize, 2, 3, 4] {
        let t = run_pipeline(machines.min(STAGES.len()), units);
        println!(
            "{machines:>9} | {} | {:7.2}x",
            fmt_secs(t),
            base as f64 / t as f64
        );
    }
    let total: Time = STAGES.iter().map(|(_, c)| c).sum();
    let slowest = STAGES.iter().map(|(_, c)| *c).max().unwrap();
    println!(
        "\npipeline bound: total/slowest-stage = {:.2}x — more machines cannot help",
        total as f64 / slowest as f64
    );

    println!("\nattribute-grammar decomposition (same workload, Figure 5):");
    let w = Workload::paper();
    let b = simulate(&w, 1, MachineMode::Combined).eval_time;
    for machines in [1usize, 2, 3, 5] {
        let t = simulate(&w, machines, MachineMode::Combined).eval_time;
        println!(
            "{machines:>9} | {} | {:7.2}x",
            fmt_secs(t),
            b as f64 / t as f64
        );
    }
    println!("\nthe AG decomposition keeps scaling where the pipeline saturates ✓");
}
