//! §4.1 measurement: fraction of attribute instances evaluated
//! dynamically by the combined evaluator.
//!
//! The paper reports that "on average less than 5 percent of the
//! attributes are evaluated dynamically" — the superiority of the
//! combined evaluator rests on this number being small.

use paragram_bench::{simulate, Workload};
use paragram_core::eval::MachineMode;

fn main() {
    let w = Workload::paper();
    println!("§4.1 — attributes evaluated dynamically (combined evaluator)\n");
    println!(
        "{:>9} | {:>9} | {:>9} | {:>8} | graph nodes/edges",
        "machines", "dynamic", "static", "fraction"
    );
    println!("{}", "-".repeat(66));
    for machines in 1..=6 {
        let r = simulate(&w, machines, MachineMode::Combined);
        println!(
            "{:>9} | {:>9} | {:>9} | {:>7.2}% | {} / {}",
            machines,
            r.stats.dynamic_applied,
            r.stats.static_applied,
            100.0 * r.stats.dynamic_fraction(),
            r.stats.graph_nodes,
            r.stats.graph_edges,
        );
    }
    println!("\nfor contrast, the purely dynamic evaluator on 5 machines:");
    let d = simulate(&w, 5, MachineMode::Dynamic);
    println!(
        "{:>9} | {:>9} | {:>9} | {:>7.2}% | {} / {}",
        5,
        d.stats.dynamic_applied,
        d.stats.static_applied,
        100.0 * d.stats.dynamic_fraction(),
        d.stats.graph_nodes,
        d.stats.graph_edges,
    );
}
