//! Cross-evaluator equivalence property: every evaluator the crate
//! ships — dynamic (Figure 1), static (Figures 2–3), the combined
//! machine engine (Figure 4) in both modes, and the real-thread
//! parallel runtime — must fill the attribute store with *identical*
//! values on the same tree, for arbitrary tree shapes and machine
//! counts, with priority attributes in play (§4.3).
//!
//! This guards the `Args<'_, V>` zero-allocation calling convention and
//! the CSR dependency-graph layout: any gather-order, wake-up-order or
//! argument-aliasing bug in one evaluator breaks agreement with the
//! others.

use paragram_core::analysis::{compute_plans, Plans};
use paragram_core::eval::{
    dynamic_eval, static_eval, static_eval_segments, static_eval_with_programs, AttrMsg, EvalPlan,
    Machine, MachineMode, SendTarget,
};
use paragram_core::grammar::{AttrId, Grammar, GrammarBuilder, ProdId};
use paragram_core::parallel::pool::{PoolConfig, WorkerPool};
use paragram_core::parallel::threads::{run_threads, ThreadConfig};
use paragram_core::parallel::ResultPropagation;
use paragram_core::split::{decompose, Decomposition, RegionId, SplitConfig};
use paragram_core::tree::{AttrStore, ParseTree, TreeBuilder};
use proptest::prelude::*;
use std::sync::Arc;

/// The paper's compiler shape over i64: decls flow up, a *priority*
/// env flows down (the symbol-table chain §4.3 serves first), code
/// flows up — with splittable statement lists and off-spine bodies.
/// Rules are a deliberate mix of direct-call-table entries
/// (`rule_direct`) and boxed closures, so every evaluator exercises
/// both dispatch paths of the compiled visit programs.
struct Fixture {
    grammar: Arc<Grammar<i64>>,
    top: ProdId,
    cons: ProdId,
    nil: ProdId,
    wrap: ProdId,
    unit: ProdId,
}

fn fixture() -> Fixture {
    let mut g = GrammarBuilder::<i64>::new();
    let s = g.nonterminal("S");
    let l = g.nonterminal("L");
    let b = g.nonterminal("B");
    let out = g.synthesized(s, "out");
    let decls = g.synthesized(l, "decls");
    let env = g.inherited(l, "env");
    let code = g.synthesized(l, "code");
    let benv = g.inherited(b, "env");
    let bcode = g.synthesized(b, "code");
    g.mark_split(l, 2);
    g.mark_split(b, 2);
    g.mark_priority(l, env);
    g.mark_priority(b, benv);

    let top = g.production("top", s, [l]);
    g.rule_direct(top, (1, env), [(1, decls)], |a| a[0].wrapping_mul(31) + 1);
    g.rule(top, (0, out), [(1, code)], |a| a[0]);
    let cons = g.production("cons", l, [b, l]);
    g.rule_direct(cons, (0, decls), [(2, decls)], |a| a[0] + 1);
    g.rule(cons, (2, env), [(0, env)], |a| a[0].wrapping_add(3));
    g.rule_direct(cons, (1, benv), [(0, env)], |a| a[0] ^ 0x55);
    g.rule(cons, (0, code), [(1, bcode), (2, code)], |a| {
        a[0].wrapping_mul(1_000_003).wrapping_add(a[1])
    });
    let nil = g.production("nil", l, []);
    g.rule_direct(nil, (0, decls), [], |_| 0);
    g.rule(nil, (0, code), [(0, env)], |a| a[0]);
    let wrap = g.production("wrap", b, [b]);
    g.rule(wrap, (1, benv), [(0, benv)], |a| a[0].wrapping_add(7));
    g.rule_direct(wrap, (0, bcode), [(1, bcode), (0, benv)], |a| {
        a[0].wrapping_mul(17) ^ a[1]
    });
    let unit = g.production("unit", b, []);
    g.rule(unit, (0, bcode), [(0, benv)], |a| a[0].wrapping_mul(13) + 1);

    Fixture {
        grammar: Arc::new(g.build(s).unwrap()),
        top,
        cons,
        nil,
        wrap,
        unit,
    }
}

/// One list item per shape entry, each with a body of that depth.
fn build_tree(fx: &Fixture, shape: &[u8]) -> Arc<ParseTree<i64>> {
    let mut tb = TreeBuilder::new(&fx.grammar);
    let mut tail = tb.leaf(fx.nil);
    for &depth in shape {
        let mut body = tb.leaf(fx.unit);
        for _ in 0..depth {
            body = tb.node(fx.wrap, [body]);
        }
        tail = tb.node(fx.cons, [body, tail]);
    }
    let root = tb.node(fx.top, [tail]);
    Arc::new(tb.finish(root).unwrap())
}

/// Runs all machines of a decomposition to completion with a
/// synchronous round-robin message pump; returns the merged store.
fn pump_machines(
    tree: &Arc<ParseTree<i64>>,
    plans: &Arc<Plans>,
    decomp: &Decomposition,
    mode: MachineMode,
) -> AttrStore<i64> {
    let mut machines: Vec<Machine<i64>> = (0..decomp.len() as RegionId)
        .map(|r| Machine::new(tree, Some(plans), decomp, r, mode))
        .collect();
    let mut inbox: Vec<AttrMsg<i64>> = Vec::new();
    loop {
        let mut progressed = false;
        for m in machines.iter_mut() {
            let sends = m.run().unwrap();
            progressed |= !sends.is_empty();
            inbox.extend(sends);
        }
        for msg in inbox.drain(..) {
            if let SendTarget::Region(r) = msg.to {
                machines[r as usize].provide(msg.node, msg.attr, msg.value);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    assert!(
        machines.iter().all(|m| m.is_done()),
        "machine pump deadlocked: {machines:?}"
    );
    // Sparse assembly through the decomposition's slot layout: each
    // region's owned span fills disjoint whole-tree instances.
    let mut merged = AttrStore::new(tree);
    for m in machines {
        merged.absorb_region(tree, m.into_store());
    }
    merged
}

fn assert_stores_equal(
    g: &Arc<Grammar<i64>>,
    tree: &ParseTree<i64>,
    want: &AttrStore<i64>,
    got: &AttrStore<i64>,
    label: &str,
) -> Result<(), TestCaseError> {
    for node in tree.node_ids() {
        let sym = g.prod(tree.node(node).prod).lhs;
        for i in 0..g.attr_count(sym) {
            let attr = AttrId(i as u32);
            prop_assert_eq!(
                want.get(node, attr),
                got.get(node, attr),
                "{} disagrees at {:?} attr {:?}",
                label,
                node,
                attr
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// dynamic == static == combined machines == dynamic machines ==
    /// threaded runtime, everywhere, for random shapes, machine counts
    /// and split granularities.
    #[test]
    fn all_evaluators_fill_identical_stores(
        shape in prop::collection::vec(0u8..6, 1..16),
        machines in 1usize..5,
        scale in prop::sample::select(vec![0.5f64, 1.0, 4.0]),
    ) {
        let fx = fixture();
        let tree = build_tree(&fx, &shape);
        let plans = Arc::new(compute_plans(fx.grammar.as_ref()).unwrap());

        let (reference, dstats) = dynamic_eval(&tree).unwrap();
        prop_assert_eq!(dstats.graph_nodes, fx.grammar.rule_count_for_tree(&tree));

        let (stat, _) = static_eval(&tree, &plans).unwrap();
        assert_stores_equal(&fx.grammar, &tree, &reference, &stat, "static")?;

        // The compiled-program interpreter and the reference segment
        // walker must agree opcode-for-step.
        let (seg, _) = static_eval_segments(&tree, &plans).unwrap();
        assert_stores_equal(&fx.grammar, &tree, &reference, &seg, "static segments")?;

        let decomp = decompose(&tree, SplitConfig {
            target_regions: machines,
            min_size_scale: scale,
        });
        let combined = pump_machines(&tree, &plans, &decomp, MachineMode::Combined);
        assert_stores_equal(&fx.grammar, &tree, &reference, &combined, "combined machines")?;

        let dynamic_m = pump_machines(&tree, &plans, &decomp, MachineMode::Dynamic);
        assert_stores_equal(&fx.grammar, &tree, &reference, &dynamic_m, "dynamic machines")?;

        let report = run_threads(&tree, Some(&plans), ThreadConfig {
            machines,
            mode: MachineMode::Combined,
            result: ResultPropagation::Naive,
            min_size_scale: scale,
        }).unwrap();
        assert_stores_equal(&fx.grammar, &tree, &reference, &report.store, "run_threads")?;
    }

    /// Subtree hashing is structural: within and across generated
    /// trees, two subtree hashes are equal exactly when the subtrees
    /// are structurally equal (same productions, same token values,
    /// recursively) — collision-free on this fixture set.
    #[test]
    fn subtree_hash_equality_is_structural_equality(
        shape_a in prop::collection::vec(0u8..6, 1..12),
        shape_b in prop::collection::vec(0u8..6, 1..12),
    ) {
        let fx = fixture();
        let a = build_tree(&fx, &shape_a);
        let b = build_tree(&fx, &shape_b);
        // Root hashes agree iff the shapes (⇔ the trees) agree.
        let ha = a.subtree_hash(a.root()).expect("i64 tokens hash exactly");
        let hb = b.subtree_hash(b.root()).expect("i64 tokens hash exactly");
        prop_assert_eq!(shape_a == shape_b, ha == hb,
            "root hashes {} vs {} for shapes {:?} / {:?}", ha, hb, shape_a, shape_b);
        // Node by node across both trees: hash equality must coincide
        // with structural subtree equality.
        let subtree_sig = |t: &ParseTree<i64>, n| {
            t.subtree(n)
                .map(|m| t.node(m).prod)
                .collect::<Vec<_>>()
        };
        for (t1, t2) in [(&a, &a), (&a, &b)] {
            for n1 in t1.node_ids() {
                for n2 in t2.node_ids() {
                    let h1 = t1.subtree_hash(n1).unwrap();
                    let h2 = t2.subtree_hash(n2).unwrap();
                    // Productions in preorder pin structure (the
                    // fixture has no token values to differ on).
                    prop_assert_eq!(
                        subtree_sig(t1, n1) == subtree_sig(t2, n2),
                        h1 == h2,
                        "subtree hash/structure mismatch at {:?}/{:?}", n1, n2
                    );
                }
            }
        }
    }

    /// The memo cache is invisible in the values: a pool with the cache
    /// on — cold pass, then a warm pass replaying cached spans — fills
    /// the store identically to the dynamic reference and to a memo-off
    /// pool, in both machine modes, for arbitrary shapes and machine
    /// counts (each (shape, machines) draw exercises a different
    /// region/schedule interleaving).
    #[test]
    fn memo_on_equals_memo_off_across_modes_and_schedules(
        shape in prop::collection::vec(0u8..6, 1..16),
        machines in 1usize..5,
    ) {
        let fx = fixture();
        let tree = build_tree(&fx, &shape);
        let plan = Arc::new(EvalPlan::analyze(&fx.grammar));
        let (reference, _) = dynamic_eval(&tree).unwrap();
        for mode in [MachineMode::Combined, MachineMode::Dynamic] {
            let off = PoolConfig { mode, ..PoolConfig::combined(machines) };
            let on = PoolConfig {
                mode,
                ..PoolConfig::combined(machines).with_memo_capacity(1 << 20)
            };
            let mut off_pool = WorkerPool::new(&plan, off);
            let off_report = off_pool.eval(&tree).unwrap();
            assert_stores_equal(
                &fx.grammar, &tree, &reference, &off_report.store,
                &format!("{mode:?} memo-off"),
            )?;
            let mut on_pool = WorkerPool::new(&plan, on);
            for round in 0..2 {
                let r = on_pool.eval(&tree).unwrap();
                assert_stores_equal(
                    &fx.grammar, &tree, &reference, &r.store,
                    &format!("{mode:?} memo-on round {round}"),
                )?;
                prop_assert_eq!(
                    &r.root_values, &off_report.root_values,
                    "{:?} memo-on round {} root values", mode, round
                );
            }
        }
    }
}

/// Helper used by the property above (kept on the grammar so the count
/// stays in sync with rule additions).
trait RuleCount {
    fn rule_count_for_tree(&self, tree: &ParseTree<i64>) -> usize;
}

impl RuleCount for Grammar<i64> {
    fn rule_count_for_tree(&self, tree: &ParseTree<i64>) -> usize {
        tree.node_ids()
            .map(|n| self.prod(tree.node(n).prod).rules.len())
            .sum()
    }
}

/// The direct-call table is an optimisation, never a semantics change:
/// rules absent from it (boxed closures) fall back to `Arc<dyn Fn>`
/// dispatch inside the same compiled program, and the mixed grammar
/// still agrees with the dynamic reference everywhere.
#[test]
fn boxed_rules_fall_back_and_agree_with_direct_dispatch() {
    let fx = fixture();
    let tree = build_tree(&fx, &[2, 4, 0, 1, 3]);
    let plan = EvalPlan::analyze(&fx.grammar);
    let programs = plan.programs().expect("fixture grammar is l-ordered");

    // The fixture deliberately mixes registration styles; the compiled
    // rule table must mirror the grammar's `direct` slots exactly.
    let direct_in_grammar: usize = fx
        .grammar
        .prods()
        .iter()
        .flat_map(|p| &p.rules)
        .filter(|r| r.direct.is_some())
        .count();
    assert_eq!(programs.direct_rule_count(), direct_in_grammar);
    assert!(
        programs.direct_rule_count() > 0,
        "fixture should exercise the direct path"
    );
    assert!(
        programs.direct_rule_count() < programs.rule_count(),
        "fixture should exercise the boxed fallback path"
    );

    let (reference, _) = dynamic_eval(&tree).unwrap();
    let (via_programs, _) =
        static_eval_with_programs(&tree, plan.plans().unwrap(), programs).unwrap();
    for node in tree.node_ids() {
        let sym = fx.grammar.prod(tree.node(node).prod).lhs;
        for i in 0..fx.grammar.attr_count(sym) {
            let attr = AttrId(i as u32);
            assert_eq!(
                reference.get(node, attr),
                via_programs.get(node, attr),
                "mixed direct/boxed program disagrees at {node:?} {attr:?}"
            );
        }
    }
}

/// Priority attributes must not change results, only order — verified
/// against an identical grammar without priority markings.
#[test]
fn priority_markings_do_not_change_values() {
    let fx = fixture();
    let tree = build_tree(&fx, &[3, 0, 5, 2, 1]);
    let (with_priority, _) = dynamic_eval(&tree).unwrap();

    // Same grammar, no priority flags.
    let mut g = GrammarBuilder::<i64>::new();
    let s = g.nonterminal("S");
    let l = g.nonterminal("L");
    let b = g.nonterminal("B");
    let _out = g.synthesized(s, "out");
    let decls = g.synthesized(l, "decls");
    let env = g.inherited(l, "env");
    let code = g.synthesized(l, "code");
    let benv = g.inherited(b, "env");
    let bcode = g.synthesized(b, "code");
    let top = g.production("top", s, [l]);
    g.rule(top, (1, env), [(1, decls)], |a| a[0].wrapping_mul(31) + 1);
    g.rule(top, (0, _out), [(1, code)], |a| a[0]);
    let cons = g.production("cons", l, [b, l]);
    g.rule(cons, (0, decls), [(2, decls)], |a| a[0] + 1);
    g.rule(cons, (2, env), [(0, env)], |a| a[0].wrapping_add(3));
    g.rule(cons, (1, benv), [(0, env)], |a| a[0] ^ 0x55);
    g.rule(cons, (0, code), [(1, bcode), (2, code)], |a| {
        a[0].wrapping_mul(1_000_003).wrapping_add(a[1])
    });
    let nil = g.production("nil", l, []);
    g.rule(nil, (0, decls), [], |_| 0);
    g.rule(nil, (0, code), [(0, env)], |a| a[0]);
    let wrap = g.production("wrap", b, [b]);
    g.rule(wrap, (1, benv), [(0, benv)], |a| a[0].wrapping_add(7));
    g.rule(wrap, (0, bcode), [(1, bcode), (0, benv)], |a| {
        a[0].wrapping_mul(17) ^ a[1]
    });
    let unit = g.production("unit", b, []);
    g.rule(unit, (0, bcode), [(0, benv)], |a| a[0].wrapping_mul(13) + 1);
    let plain = Fixture {
        grammar: Arc::new(g.build(s).unwrap()),
        top,
        cons,
        nil,
        wrap,
        unit,
    };
    let plain_tree = build_tree(&plain, &[3, 0, 5, 2, 1]);
    let (without_priority, _) = dynamic_eval(&plain_tree).unwrap();

    for node in plain_tree.node_ids() {
        let sym = plain.grammar.prod(plain_tree.node(node).prod).lhs;
        for i in 0..plain.grammar.attr_count(sym) {
            let attr = AttrId(i as u32);
            assert_eq!(
                with_priority.get(node, attr),
                without_priority.get(node, attr),
                "priority changed a value at {node:?} {attr:?}"
            );
        }
    }
}
