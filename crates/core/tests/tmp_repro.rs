//! Temporary review repro: phase-2 merge where the target region index
//! exceeds the victim's.

use paragram_core::grammar::GrammarBuilder;
use paragram_core::split::{decompose_adaptive, RegionId, SplitTable, WorkTable};
use paragram_core::tree::TreeBuilder;
use std::sync::Arc;

#[test]
fn merge_into_higher_index_region() {
    let mut g = GrammarBuilder::<i64>::new();
    let s = g.nonterminal("S");
    let e = g.nonterminal("E");
    let sv = g.synthesized(s, "v");
    let ev = g.synthesized(e, "v");
    g.mark_split(e, 2);

    let rootp = g.production("root", s, [e]);
    g.rule(rootp, (0, sv), [(1, ev)], |a| a[0]);
    let pair = g.production("pair", e, [e, e]);
    g.rule(pair, (0, ev), [(1, ev), (2, ev)], |a| a[0] + a[1]);
    let heavy = g.production("heavy", e, [e]);
    g.rule_with_cost(heavy, (0, ev), [(1, ev)], |a| a[0], 60);
    let light = g.production("light", e, [e]);
    g.rule(light, (0, ev), [(1, ev)], |a| a[0]);
    let leafp = g.production("leaf", e, []);
    g.rule(leafp, (0, ev), [], |_| 1);

    let gr = Arc::new(g.build(s).unwrap());
    let mut tb = TreeBuilder::new(&gr);
    // H1 = heavy(leaf): work 61
    let h1 = tb.node(heavy, [tb.leaf(leafp)]);
    // T = light(light(light(leaf))): work 4
    let mut t = tb.leaf(leafp);
    for _ in 0..3 {
        t = tb.node(light, [t]);
    }
    // X = pair(H1, T): work 66
    let mut chain = tb.node(pair, [h1, t]);
    // 45 light levels above X
    for _ in 0..45 {
        chain = tb.node(light, [chain]);
    }
    let root = tb.node(rootp, [chain]);
    let tree = Arc::new(tb.finish(root).unwrap());

    let table = SplitTable::new(gr.as_ref(), 1.0);
    let work = WorkTable::new(gr.as_ref());
    assert_eq!(work.tree_work(&tree), 112);

    let d = decompose_adaptive(&tree, &table, &work, 30);
    eprintln!("regions: {}", d.len());
    let total: usize = d.regions.iter().map(|r| r.local_size).sum();
    let mut oob = Vec::new();
    for n in tree.node_ids() {
        if (d.region(n) as usize) >= d.len() {
            oob.push((n, d.region(n)));
        }
    }
    for (i, r) in d.regions.iter().enumerate() {
        assert_eq!(
            d.region(r.root),
            i as RegionId,
            "region {i} root not owned by its region"
        );
    }
    assert!(oob.is_empty(), "out-of-range region ids: {oob:?}");
    assert_eq!(total, tree.len(), "regions must partition the tree");
}
