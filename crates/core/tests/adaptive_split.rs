//! Cost-driven adaptive decomposition equivalence properties.
//!
//! `decompose_adaptive` may carve a tree into any number of regions —
//! more than there are machines, fewer than a fixed-count split would —
//! yet evaluation over the region machines must fill the attribute
//! store with exactly the values the whole-tree sequential static
//! evaluator produces, for arbitrary tree shapes, work budgets and
//! split granularities. Alongside value equivalence this pins the
//! structural invariants region-granular scheduling relies on: every
//! node owned by exactly one region, region 0 at the tree root, parent
//! links consistent with the node map, and every boundary child the
//! root of the region that owns it.

use paragram_core::analysis::{compute_plans, Plans};
use paragram_core::eval::{static_eval, AttrMsg, Machine, MachineMode, SendTarget};
use paragram_core::grammar::{AttrId, Grammar, GrammarBuilder, ProdId};
use paragram_core::split::{
    boundary_children, decompose_adaptive, Decomposition, RegionId, SplitTable, WorkTable,
};
use paragram_core::tree::{AttrStore, ParseTree, TreeBuilder};
use proptest::prelude::*;
use std::sync::Arc;

/// The paper's compiler shape over i64 (decls up, priority env down,
/// code up), with splittable lists and bodies — the same fixture the
/// cross-evaluator equivalence suite uses, here driven through the
/// adaptive decomposition instead of the fixed-count one.
struct Fixture {
    grammar: Arc<Grammar<i64>>,
    top: ProdId,
    cons: ProdId,
    nil: ProdId,
    wrap: ProdId,
    unit: ProdId,
}

fn fixture() -> Fixture {
    let mut g = GrammarBuilder::<i64>::new();
    let s = g.nonterminal("S");
    let l = g.nonterminal("L");
    let b = g.nonterminal("B");
    let out = g.synthesized(s, "out");
    let decls = g.synthesized(l, "decls");
    let env = g.inherited(l, "env");
    let code = g.synthesized(l, "code");
    let benv = g.inherited(b, "env");
    let bcode = g.synthesized(b, "code");
    g.mark_split(l, 2);
    g.mark_split(b, 2);
    g.mark_priority(l, env);
    g.mark_priority(b, benv);

    let top = g.production("top", s, [l]);
    g.rule(top, (1, env), [(1, decls)], |a| a[0].wrapping_mul(31) + 1);
    g.rule(top, (0, out), [(1, code)], |a| a[0]);
    let cons = g.production("cons", l, [b, l]);
    g.rule(cons, (0, decls), [(2, decls)], |a| a[0] + 1);
    g.rule(cons, (2, env), [(0, env)], |a| a[0].wrapping_add(3));
    g.rule(cons, (1, benv), [(0, env)], |a| a[0] ^ 0x55);
    g.rule(cons, (0, code), [(1, bcode), (2, code)], |a| {
        a[0].wrapping_mul(1_000_003).wrapping_add(a[1])
    });
    let nil = g.production("nil", l, []);
    g.rule(nil, (0, decls), [], |_| 0);
    g.rule(nil, (0, code), [(0, env)], |a| a[0]);
    let wrap = g.production("wrap", b, [b]);
    g.rule(wrap, (1, benv), [(0, benv)], |a| a[0].wrapping_add(7));
    g.rule_with_cost(
        wrap,
        (0, bcode),
        [(1, bcode), (0, benv)],
        |a| a[0].wrapping_mul(17) ^ a[1],
        3,
    );
    let unit = g.production("unit", b, []);
    g.rule(unit, (0, bcode), [(0, benv)], |a| a[0].wrapping_mul(13) + 1);

    Fixture {
        grammar: Arc::new(g.build(s).unwrap()),
        top,
        cons,
        nil,
        wrap,
        unit,
    }
}

/// One list item per shape entry, each with a body of that depth.
fn build_tree(fx: &Fixture, shape: &[u8]) -> Arc<ParseTree<i64>> {
    let mut tb = TreeBuilder::new(&fx.grammar);
    let mut tail = tb.leaf(fx.nil);
    for &depth in shape {
        let mut body = tb.leaf(fx.unit);
        for _ in 0..depth {
            body = tb.node(fx.wrap, [body]);
        }
        tail = tb.node(fx.cons, [body, tail]);
    }
    let root = tb.node(fx.top, [tail]);
    Arc::new(tb.finish(root).unwrap())
}

/// Every node owned by exactly one region, boundary invariants intact.
fn assert_partition(tree: &Arc<ParseTree<i64>>, d: &Decomposition) -> Result<(), TestCaseError> {
    let total: usize = d.regions.iter().map(|r| r.local_size).sum();
    prop_assert_eq!(total, tree.len(), "regions must partition the tree");
    prop_assert_eq!(d.regions[0].root, tree.root());
    prop_assert_eq!(d.region(tree.root()), 0);
    for n in tree.node_ids() {
        prop_assert!((d.region(n) as usize) < d.len());
    }
    for (i, r) in d.regions.iter().enumerate() {
        prop_assert_eq!(d.region(r.root), i as RegionId, "root owned by its region");
        if i > 0 {
            let parent = r.parent.expect("non-root regions have parents");
            let (pnode, _) = tree.node(r.root).parent.expect("root has a parent node");
            prop_assert_eq!(d.region(pnode), parent, "parent link consistent");
        }
    }
    for r in 0..d.len() as RegionId {
        for (p, c) in boundary_children(tree, d, r) {
            prop_assert_eq!(d.region(p), r);
            prop_assert_ne!(d.region(c), r);
            prop_assert_eq!(
                d.regions[d.region(c) as usize].root,
                c,
                "boundary child must be its region's root"
            );
        }
    }
    Ok(())
}

/// Runs all machines of a decomposition to completion with a
/// synchronous round-robin message pump; returns the merged store.
fn pump_machines(
    tree: &Arc<ParseTree<i64>>,
    plans: &Arc<Plans>,
    decomp: &Decomposition,
    mode: MachineMode,
) -> AttrStore<i64> {
    let mut machines: Vec<Machine<i64>> = (0..decomp.len() as RegionId)
        .map(|r| Machine::new(tree, Some(plans), decomp, r, mode))
        .collect();
    let mut inbox: Vec<AttrMsg<i64>> = Vec::new();
    loop {
        let mut progressed = false;
        for m in machines.iter_mut() {
            let sends = m.run().unwrap();
            progressed |= !sends.is_empty();
            inbox.extend(sends);
        }
        for msg in inbox.drain(..) {
            if let SendTarget::Region(r) = msg.to {
                machines[r as usize].provide(msg.node, msg.attr, msg.value);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    assert!(
        machines.iter().all(|m| m.is_done()),
        "machine pump deadlocked: {machines:?}"
    );
    let mut merged: Option<AttrStore<i64>> = None;
    for m in machines {
        let s = m.into_store();
        merged = Some(match merged {
            None => s,
            Some(mut acc) => {
                acc.absorb(s);
                acc
            }
        });
    }
    merged.expect("at least one region")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random tree shapes, budgets and granularity scales, the
    /// adaptive decomposition partitions the tree soundly and region
    /// evaluation over it matches whole-tree sequential static eval.
    #[test]
    fn adaptive_decomposition_evaluates_like_whole_tree_static(
        shape in prop::collection::vec(0u8..6, 1..20),
        divisor in prop::sample::select(vec![2u64, 3, 6, 12, 24]),
        scale in prop::sample::select(vec![0.5f64, 1.0, 4.0]),
    ) {
        let fx = fixture();
        let tree = build_tree(&fx, &shape);
        let plans = Arc::new(compute_plans(fx.grammar.as_ref()).unwrap());
        let (want, _) = static_eval(&tree, &plans).unwrap();

        let table = SplitTable::new(fx.grammar.as_ref(), scale);
        let work = WorkTable::new(fx.grammar.as_ref());
        let budget = (work.tree_work(&tree) / divisor).max(1);
        let d = decompose_adaptive(&tree, &table, &work, budget);
        assert_partition(&tree, &d)?;
        // Regions' work estimates cover the tree exactly.
        let covered: u64 = (0..d.len() as RegionId)
            .map(|r| work.region_work(&tree, &d, r))
            .sum();
        prop_assert_eq!(covered, work.tree_work(&tree));

        for mode in [MachineMode::Combined, MachineMode::Dynamic] {
            let got = pump_machines(&tree, &plans, &d, mode);
            for node in tree.node_ids() {
                let sym = fx.grammar.prod(tree.node(node).prod).lhs;
                for i in 0..fx.grammar.attr_count(sym) {
                    let attr = AttrId(i as u32);
                    prop_assert_eq!(
                        want.get(node, attr),
                        got.get(node, attr),
                        "{:?} disagrees at {:?} attr {:?} (budget {}, {} regions)",
                        mode, node, attr, budget, d.len()
                    );
                }
            }
        }
    }
}
