//! Cost-driven adaptive decomposition equivalence properties.
//!
//! `decompose_adaptive` may carve a tree into any number of regions —
//! more than there are machines, fewer than a fixed-count split would —
//! yet evaluation over the region machines must fill the attribute
//! store with exactly the values the whole-tree sequential static
//! evaluator produces, for arbitrary tree shapes, work budgets and
//! split granularities — under **both** granularity engines
//! (fixed-count and adaptive) and regardless of the order region
//! stores are merged back into the whole-tree store. Alongside value
//! equivalence this pins the structural invariants region-granular
//! scheduling relies on: every node owned by exactly one region,
//! region 0 at the tree root, parent links consistent with the node
//! map, and every boundary child the root of the region that owns it —
//! plus the slot-layout invariants the region-local stores add: a
//! machine's store is sized by its region's slots (owned + boundary
//! aliases), never by the tree.

use paragram_core::analysis::{compute_plans, Plans};
use paragram_core::eval::{static_eval, AttrMsg, Machine, MachineMode, SendTarget};
use paragram_core::grammar::{AttrId, Grammar, GrammarBuilder, ProdId};
use paragram_core::split::{
    boundary_children, decompose_adaptive, decompose_granular, Decomposition, RegionGranularity,
    RegionId, SplitTable, WorkTable,
};
use paragram_core::tree::{AttrStore, ParseTree, RegionStore, TreeBuilder};
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::Arc;

/// The paper's compiler shape over i64 (decls up, priority env down,
/// code up), with splittable lists and bodies — the same fixture the
/// cross-evaluator equivalence suite uses, here driven through the
/// adaptive decomposition instead of the fixed-count one.
struct Fixture {
    grammar: Arc<Grammar<i64>>,
    top: ProdId,
    cons: ProdId,
    nil: ProdId,
    wrap: ProdId,
    unit: ProdId,
}

fn fixture() -> Fixture {
    let mut g = GrammarBuilder::<i64>::new();
    let s = g.nonterminal("S");
    let l = g.nonterminal("L");
    let b = g.nonterminal("B");
    let out = g.synthesized(s, "out");
    let decls = g.synthesized(l, "decls");
    let env = g.inherited(l, "env");
    let code = g.synthesized(l, "code");
    let benv = g.inherited(b, "env");
    let bcode = g.synthesized(b, "code");
    g.mark_split(l, 2);
    g.mark_split(b, 2);
    g.mark_priority(l, env);
    g.mark_priority(b, benv);

    let top = g.production("top", s, [l]);
    g.rule(top, (1, env), [(1, decls)], |a| a[0].wrapping_mul(31) + 1);
    g.rule(top, (0, out), [(1, code)], |a| a[0]);
    let cons = g.production("cons", l, [b, l]);
    g.rule(cons, (0, decls), [(2, decls)], |a| a[0] + 1);
    g.rule(cons, (2, env), [(0, env)], |a| a[0].wrapping_add(3));
    g.rule(cons, (1, benv), [(0, env)], |a| a[0] ^ 0x55);
    g.rule(cons, (0, code), [(1, bcode), (2, code)], |a| {
        a[0].wrapping_mul(1_000_003).wrapping_add(a[1])
    });
    let nil = g.production("nil", l, []);
    g.rule(nil, (0, decls), [], |_| 0);
    g.rule(nil, (0, code), [(0, env)], |a| a[0]);
    let wrap = g.production("wrap", b, [b]);
    g.rule(wrap, (1, benv), [(0, benv)], |a| a[0].wrapping_add(7));
    g.rule_with_cost(
        wrap,
        (0, bcode),
        [(1, bcode), (0, benv)],
        |a| a[0].wrapping_mul(17) ^ a[1],
        3,
    );
    let unit = g.production("unit", b, []);
    g.rule(unit, (0, bcode), [(0, benv)], |a| a[0].wrapping_mul(13) + 1);

    Fixture {
        grammar: Arc::new(g.build(s).unwrap()),
        top,
        cons,
        nil,
        wrap,
        unit,
    }
}

/// One list item per shape entry, each with a body of that depth.
fn build_tree(fx: &Fixture, shape: &[u8]) -> Arc<ParseTree<i64>> {
    let mut tb = TreeBuilder::new(&fx.grammar);
    let mut tail = tb.leaf(fx.nil);
    for &depth in shape {
        let mut body = tb.leaf(fx.unit);
        for _ in 0..depth {
            body = tb.node(fx.wrap, [body]);
        }
        tail = tb.node(fx.cons, [body, tail]);
    }
    let root = tb.node(fx.top, [tail]);
    Arc::new(tb.finish(root).unwrap())
}

/// Every node owned by exactly one region, boundary invariants intact.
fn assert_partition(tree: &Arc<ParseTree<i64>>, d: &Decomposition) -> Result<(), TestCaseError> {
    let total: usize = d.regions.iter().map(|r| r.local_size).sum();
    prop_assert_eq!(total, tree.len(), "regions must partition the tree");
    prop_assert_eq!(d.regions[0].root, tree.root());
    prop_assert_eq!(d.region(tree.root()), 0);
    for n in tree.node_ids() {
        prop_assert!((d.region(n) as usize) < d.len());
    }
    for (i, r) in d.regions.iter().enumerate() {
        prop_assert_eq!(d.region(r.root), i as RegionId, "root owned by its region");
        if i > 0 {
            let parent = r.parent.expect("non-root regions have parents");
            let (pnode, _) = tree.node(r.root).parent.expect("root has a parent node");
            prop_assert_eq!(d.region(pnode), parent, "parent link consistent");
        }
    }
    for r in 0..d.len() as RegionId {
        for (p, c) in boundary_children(tree, d, r) {
            prop_assert_eq!(d.region(p), r);
            prop_assert_ne!(d.region(c), r);
            prop_assert_eq!(
                d.regions[d.region(c) as usize].root,
                c,
                "boundary child must be its region's root"
            );
        }
    }
    Ok(())
}

/// Runs all machines of a decomposition to completion with a
/// synchronous round-robin message pump; returns the region-local
/// stores in region order.
fn pump_machines(
    tree: &Arc<ParseTree<i64>>,
    plans: &Arc<Plans>,
    decomp: &Decomposition,
    mode: MachineMode,
) -> Vec<RegionStore<i64>> {
    let mut machines: Vec<Machine<i64>> = (0..decomp.len() as RegionId)
        .map(|r| Machine::new(tree, Some(plans), decomp, r, mode))
        .collect();
    let mut inbox: Vec<AttrMsg<i64>> = Vec::new();
    loop {
        let mut progressed = false;
        for m in machines.iter_mut() {
            let sends = m.run().unwrap();
            progressed |= !sends.is_empty();
            inbox.extend(sends);
        }
        for msg in inbox.drain(..) {
            if let SendTarget::Region(r) = msg.to {
                machines[r as usize].provide(msg.node, msg.attr, msg.value);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    assert!(
        machines.iter().all(|m| m.is_done()),
        "machine pump deadlocked: {machines:?}"
    );
    machines.into_iter().map(Machine::into_store).collect()
}

/// Sparse assembly in an arbitrary merge order: the regions' owned
/// spans are disjoint whole-tree instances, so any permutation must
/// produce the identical store.
fn merge_stores(
    tree: &Arc<ParseTree<i64>>,
    stores: Vec<RegionStore<i64>>,
    order: &[usize],
) -> AttrStore<i64> {
    assert_eq!(stores.len(), order.len());
    let mut merged = AttrStore::new(tree);
    let mut slots: Vec<Option<RegionStore<i64>>> = stores.into_iter().map(Some).collect();
    for &i in order {
        merged.absorb_region(tree, slots[i].take().expect("each region merged once"));
    }
    merged
}

/// A seeded permutation of `0..n` (Fisher–Yates over the shim rng).
fn shuffled_order(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    order
}

/// Checks the slot-layout invariants of a decomposition's region-local
/// stores: a machine's store is sized by its region's owned span plus
/// its boundary aliases — never by the tree — and the owned spans sum
/// to exactly the tree's instance count.
fn assert_region_local_layout(
    tree: &Arc<ParseTree<i64>>,
    d: &Decomposition,
    stores: &[RegionStore<i64>],
) -> Result<(), TestCaseError> {
    let g = tree.grammar();
    let map = d.slot_map();
    let tree_instances: usize = tree
        .node_ids()
        .map(|n| g.attr_count(g.prod(tree.node(n).prod).lhs))
        .sum();
    let mut owned_total = 0usize;
    for (r, store) in stores.iter().enumerate() {
        let r = r as RegionId;
        prop_assert_eq!(store.len(), map.total_slots(r), "store sized by layout");
        owned_total += map.owned_slots(r);
        // Aliases: one span per boundary child, nothing more.
        let boundary_slots: usize = boundary_children(tree, d, r)
            .iter()
            .map(|&(_, c)| g.attr_count(g.prod(tree.node(c).prod).lhs))
            .sum();
        prop_assert_eq!(
            map.total_slots(r) - map.owned_slots(r),
            boundary_slots,
            "foreign span covers exactly the boundary children"
        );
        if d.len() > 1 {
            prop_assert!(
                map.owned_slots(r) < tree_instances,
                "region {} store must be smaller than the tree",
                r
            );
        }
    }
    prop_assert_eq!(
        owned_total,
        tree_instances,
        "owned spans partition the instances"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random tree shapes, budgets/machine counts, granularity
    /// scales and merge orders, both decomposition engines partition
    /// the tree soundly, region-local evaluation over them matches
    /// whole-tree sequential static eval everywhere (boundary
    /// attributes crossing regions included), and assembly is
    /// merge-order independent.
    #[test]
    fn region_local_evaluation_matches_whole_tree_static(
        shape in prop::collection::vec(0u8..6, 1..20),
        divisor in prop::sample::select(vec![2u64, 3, 6, 12, 24]),
        machines in 1usize..6,
        scale in prop::sample::select(vec![0.5f64, 1.0, 4.0]),
        seed in any::<u64>(),
    ) {
        let fx = fixture();
        let tree = build_tree(&fx, &shape);
        let plans = Arc::new(compute_plans(fx.grammar.as_ref()).unwrap());
        let (want, _) = static_eval(&tree, &plans).unwrap();

        let table = SplitTable::new(fx.grammar.as_ref(), scale);
        let work = WorkTable::new(fx.grammar.as_ref());
        let budget = (work.tree_work(&tree) / divisor).max(1);
        for granularity in [
            RegionGranularity::Adaptive { budget },
            RegionGranularity::Machines(machines),
        ] {
            let d = decompose_granular(&tree, &table, &work, granularity);
            assert_partition(&tree, &d)?;
            // Regions' work estimates cover the tree exactly.
            let covered: u64 = (0..d.len() as RegionId)
                .map(|r| work.region_work(&tree, &d, r))
                .sum();
            prop_assert_eq!(covered, work.tree_work(&tree));

            for mode in [MachineMode::Combined, MachineMode::Dynamic] {
                let stores = pump_machines(&tree, &plans, &d, mode);
                assert_region_local_layout(&tree, &d, &stores)?;
                let order = shuffled_order(stores.len(), seed);
                let got = merge_stores(&tree, stores, &order);
                prop_assert_eq!(got.filled(), got.len(), "assembly fills every instance");
                for node in tree.node_ids() {
                    let sym = fx.grammar.prod(tree.node(node).prod).lhs;
                    for i in 0..fx.grammar.attr_count(sym) {
                        let attr = AttrId(i as u32);
                        prop_assert_eq!(
                            want.get(node, attr),
                            got.get(node, attr),
                            "{:?}/{:?} disagrees at {:?} attr {:?} ({} regions, order {:?})",
                            granularity, mode, node, attr, d.len(), order
                        );
                    }
                }
            }
        }
    }
}

/// Regression (promoted from the PR 4 review repro): phase-2 merging
/// must stay sound when an undersized region folds into a region with
/// a *higher* index — the renumbering shifts every later region down,
/// and the node map, region roots and partition must all survive it.
#[test]
fn phase2_merge_into_higher_index_region_keeps_partition_sound() {
    let mut g = GrammarBuilder::<i64>::new();
    let s = g.nonterminal("S");
    let e = g.nonterminal("E");
    let sv = g.synthesized(s, "v");
    let ev = g.synthesized(e, "v");
    g.mark_split(e, 2);

    let rootp = g.production("root", s, [e]);
    g.rule(rootp, (0, sv), [(1, ev)], |a| a[0]);
    let pair = g.production("pair", e, [e, e]);
    g.rule(pair, (0, ev), [(1, ev), (2, ev)], |a| a[0] + a[1]);
    let heavy = g.production("heavy", e, [e]);
    g.rule_with_cost(heavy, (0, ev), [(1, ev)], |a| a[0], 60);
    let light = g.production("light", e, [e]);
    g.rule(light, (0, ev), [(1, ev)], |a| a[0]);
    let leafp = g.production("leaf", e, []);
    g.rule(leafp, (0, ev), [], |_| 1);

    let gr = Arc::new(g.build(s).unwrap());
    let mut tb = TreeBuilder::new(&gr);
    // H1 = heavy(leaf): work 61.
    let hl = tb.leaf(leafp);
    let h1 = tb.node(heavy, [hl]);
    // T = light(light(light(leaf))): work 4.
    let mut t = tb.leaf(leafp);
    for _ in 0..3 {
        t = tb.node(light, [t]);
    }
    // X = pair(H1, T): work 66, with 45 light levels above X — shaped
    // so the undersized region carved at T merges into a region whose
    // index exceeds its own.
    let mut chain = tb.node(pair, [h1, t]);
    for _ in 0..45 {
        chain = tb.node(light, [chain]);
    }
    let root = tb.node(rootp, [chain]);
    let tree = Arc::new(tb.finish(root).unwrap());

    let table = SplitTable::new(gr.as_ref(), 1.0);
    let work = WorkTable::new(gr.as_ref());
    assert_eq!(work.tree_work(&tree), 112);

    let d = decompose_adaptive(&tree, &table, &work, 30);
    let total: usize = d.regions.iter().map(|r| r.local_size).sum();
    assert_eq!(total, tree.len(), "regions must partition the tree");
    for n in tree.node_ids() {
        assert!(
            (d.region(n) as usize) < d.len(),
            "out-of-range region id {} at {n:?}",
            d.region(n)
        );
    }
    for (i, r) in d.regions.iter().enumerate() {
        assert_eq!(
            d.region(r.root),
            i as RegionId,
            "region {i} root not owned by its region"
        );
    }
}
