//! Property tests for the CSR adjacency builders: both construction
//! paths (flat pair list and streaming two-pass) must be edge-set-equal
//! to a naive `Vec<Vec<_>>` adjacency reference on arbitrary inputs —
//! including empty rows, duplicate edges, and edge-free sources at the
//! high end of the id range.

use paragram_core::csr::{Csr, CsrCounter};
use proptest::prelude::*;

/// The reference implementation the CSR build replaced: one `Vec` per
/// source, targets appended in enumeration order.
fn naive_adjacency(sources: usize, pairs: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let mut adj = vec![Vec::new(); sources];
    for &(s, t) in pairs {
        adj[s as usize].push(t);
    }
    adj
}

/// Builds via the streaming two-pass API (count, prefix-sum, fill).
fn streaming_build(sources: usize, pairs: &[(u32, u32)]) -> Csr {
    let mut counter = CsrCounter::new(sources);
    for &(s, _) in pairs {
        counter.count(s as usize);
    }
    let mut filler = counter.into_filler();
    for &(s, t) in pairs {
        filler.fill(s as usize, t);
    }
    filler.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn from_pairs_matches_naive_adjacency(
        sources in 1usize..48,
        raw in prop::collection::vec((0u32..48, 0u32..1000), 0..200),
    ) {
        // Clamp sources into range; duplicates arise naturally from the
        // small source domain and are kept (duplicate edges are legal).
        let pairs: Vec<(u32, u32)> = raw
            .iter()
            .map(|&(s, t)| (s % sources as u32, t))
            .collect();
        let want = naive_adjacency(sources, &pairs);
        let csr = Csr::from_pairs(sources, &pairs);

        prop_assert_eq!(csr.sources(), sources);
        prop_assert_eq!(csr.edge_count(), pairs.len());
        for (s, row) in want.iter().enumerate() {
            // Same edge multiset AND same order (scheduling order is
            // part of the CSR contract).
            prop_assert_eq!(csr.targets(s), row.as_slice(), "source {}", s);
        }
    }

    #[test]
    fn streaming_build_matches_from_pairs(
        sources in 1usize..32,
        raw in prop::collection::vec((0u32..32, 0u32..500), 0..150),
    ) {
        let pairs: Vec<(u32, u32)> = raw
            .iter()
            .map(|&(s, t)| (s % sources as u32, t))
            .collect();
        let a = Csr::from_pairs(sources, &pairs);
        let b = streaming_build(sources, &pairs);
        prop_assert_eq!(a.sources(), b.sources());
        prop_assert_eq!(a.edge_count(), b.edge_count());
        for s in 0..sources {
            prop_assert_eq!(a.targets(s), b.targets(s), "source {}", s);
        }
    }

    #[test]
    fn target_range_view_agrees_with_targets(
        sources in 1usize..24,
        raw in prop::collection::vec((0u32..24, 0u32..100), 0..80),
    ) {
        let pairs: Vec<(u32, u32)> = raw
            .iter()
            .map(|&(s, t)| (s % sources as u32, t))
            .collect();
        let csr = Csr::from_pairs(sources, &pairs);
        for s in 0..sources {
            let via_range: Vec<u32> =
                csr.target_range(s).map(|k| csr.target_at(k)).collect();
            prop_assert_eq!(via_range.as_slice(), csr.targets(s), "source {}", s);
        }
    }
}

#[test]
fn explicit_empty_row_and_duplicate_edge_cases() {
    // Every row empty.
    let csr = Csr::from_pairs(5, &[]);
    assert_eq!(csr.sources(), 5);
    assert_eq!(csr.edge_count(), 0);
    for s in 0..5 {
        assert!(csr.targets(s).is_empty());
    }

    // Duplicate edges survive, in order, including on the last source
    // (the sentinel-offset edge case).
    let pairs = [(4u32, 9u32), (4, 9), (0, 9), (4, 9)];
    let csr = Csr::from_pairs(5, &pairs);
    assert_eq!(csr.targets(4), &[9, 9, 9]);
    assert_eq!(csr.targets(0), &[9]);
    assert_eq!(csr.edge_count(), 4);
    assert_eq!(naive_adjacency(5, &pairs)[4], vec![9, 9, 9]);
}
