//! Integration test: a three-visit grammar (two syn→inh round trips)
//! through analysis, all sequential evaluators, and the parallel
//! machines — the deepest visit structure the Pascal grammar doesn't
//! exercise.

use paragram_core::analysis::compute_plans;
use paragram_core::eval::{dynamic_eval, static_eval, MachineMode};
use paragram_core::grammar::{AttrId, Grammar, GrammarBuilder};
use paragram_core::parallel::threads::{run_threads, ThreadConfig};
use paragram_core::parallel::ResultPropagation;
use paragram_core::tree::{ParseTree, TreeBuilder};
use std::sync::Arc;

/// Three waves over a list: count items (syn), broadcast the count
/// (inh), collect per-item products (syn), broadcast *that* sum (inh),
/// emit final per-item result (syn). Forces phases 1..3 on the list
/// symbol.
struct Lang {
    grammar: Arc<Grammar<i64>>,
    l: paragram_core::grammar::SymbolId,
    cons: paragram_core::grammar::ProdId,
    nil: paragram_core::grammar::ProdId,
    top: paragram_core::grammar::ProdId,
    out: AttrId,
    count: AttrId,
    bcast1: AttrId,
    mid: AttrId,
    bcast2: AttrId,
    fin: AttrId,
}

fn lang() -> Lang {
    let mut g = GrammarBuilder::<i64>::new();
    let s = g.nonterminal("S");
    let l = g.nonterminal("L");
    let out = g.synthesized(s, "out");
    let count = g.synthesized(l, "count");
    let bcast1 = g.inherited(l, "bcast1");
    let mid = g.synthesized(l, "mid");
    let bcast2 = g.inherited(l, "bcast2");
    let fin = g.synthesized(l, "fin");
    g.mark_split(l, 2);

    let top = g.production("top", s, [l]);
    g.rule(top, (1, bcast1), [(1, count)], |a| a[0] * 10);
    g.rule(top, (1, bcast2), [(1, mid)], |a| a[0] + 1);
    g.rule(top, (0, out), [(1, fin)], |a| a[0]);

    let cons = g.production("cons", l, [l]);
    g.rule(cons, (0, count), [(1, count)], |a| a[0] + 1);
    g.rule(cons, (1, bcast1), [(0, bcast1)], |a| a[0]);
    g.rule(cons, (0, mid), [(1, mid), (0, bcast1)], |a| {
        a[0].wrapping_add(a[1])
    });
    g.rule(cons, (1, bcast2), [(0, bcast2)], |a| a[0]);
    g.rule(cons, (0, fin), [(1, fin), (0, bcast2)], |a| {
        a[0].wrapping_mul(3) ^ a[1]
    });

    let nil = g.production("nil", l, []);
    g.rule(nil, (0, count), [], |_| 0);
    g.rule(nil, (0, mid), [(0, bcast1)], |a| a[0] + 7);
    g.rule(nil, (0, fin), [(0, bcast2)], |a| a[0] - 7);

    Lang {
        grammar: Arc::new(g.build(s).unwrap()),
        l,
        cons,
        nil,
        top,
        out,
        count,
        bcast1,
        mid,
        bcast2,
        fin,
    }
}

fn chain(lg: &Lang, n: usize) -> Arc<ParseTree<i64>> {
    let mut tb = TreeBuilder::new(&lg.grammar);
    let mut tail = tb.leaf(lg.nil);
    for _ in 0..n {
        tail = tb.node(lg.cons, [tail]);
    }
    let root = tb.node(lg.top, [tail]);
    Arc::new(tb.finish(root).unwrap())
}

#[test]
fn three_visits_are_inferred() {
    let lg = lang();
    let plans = compute_plans(lg.grammar.as_ref()).unwrap();
    assert_eq!(plans.phases.visit_count(lg.l), 3);
    assert_eq!(plans.phases.of(lg.l, lg.count), 1);
    assert_eq!(plans.phases.of(lg.l, lg.bcast1), 2);
    assert_eq!(plans.phases.of(lg.l, lg.mid), 2);
    assert_eq!(plans.phases.of(lg.l, lg.bcast2), 3);
    assert_eq!(plans.phases.of(lg.l, lg.fin), 3);
    // Each list production therefore has three plan segments.
    assert_eq!(plans.plan(lg.cons).segments.len(), 3);
    assert_eq!(plans.plan(lg.nil).segments.len(), 3);
    let _ = lg.top;
}

#[test]
fn static_matches_dynamic_across_three_visits() {
    let lg = lang();
    let plans = compute_plans(lg.grammar.as_ref()).unwrap();
    for n in [0usize, 1, 2, 7, 40] {
        let tree = chain(&lg, n);
        let (d, dstats) = dynamic_eval(&tree).unwrap();
        let (s, sstats) = static_eval(&tree, &plans).unwrap();
        assert_eq!(dstats.dynamic_applied, sstats.static_applied, "n={n}");
        for node in tree.node_ids() {
            let sym = lg.grammar.prod(tree.node(node).prod).lhs;
            for a in 0..lg.grammar.attr_count(sym) {
                let attr = AttrId(a as u32);
                assert_eq!(d.get(node, attr), s.get(node, attr), "n={n} {node:?}");
            }
        }
    }
}

#[test]
fn parallel_machines_handle_three_visit_boundaries() {
    let lg = lang();
    let plans = Arc::new(compute_plans(lg.grammar.as_ref()).unwrap());
    let tree = chain(&lg, 30);
    let (d, _) = dynamic_eval(&tree).unwrap();
    for machines in [2usize, 3, 5] {
        let report = run_threads(
            &tree,
            Some(&plans),
            ThreadConfig {
                machines,
                mode: MachineMode::Combined,
                result: ResultPropagation::Naive,
                min_size_scale: 1.0,
            },
        )
        .unwrap();
        assert_eq!(
            report.store.get(tree.root(), lg.out),
            d.get(tree.root(), lg.out),
            "machines={machines}"
        );
        assert_eq!(report.store.filled(), d.filled());
    }
}
