//! Distributed unique-identifier generation (§4.3).
//!
//! Compilers need unique labels. A sequential attribute grammar threads a
//! counter attribute through the whole tree — which, evaluated in
//! parallel, would force "virtually all evaluators to wait for the value
//! of this attribute to be propagated". The paper's fix: the parser hands
//! each evaluator a disjoint *base value*, and labels are generated
//! relative to that base with no communication at all.
//!
//! [`IdBase`] is that mechanism. The threaded-counter alternative is kept
//! (in the Pascal grammar's `threaded_labels` variant) for the ablation
//! experiment.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// Number of label values reserved per evaluator.
pub const BLOCK: u32 = 1 << 20;

/// A per-evaluator unique-id allocator: ids are `base * BLOCK + counter`,
/// so ids from different evaluators never collide.
#[derive(Debug)]
pub struct IdBase {
    base: u32,
    next: AtomicU32,
}

impl IdBase {
    /// Creates the allocator for evaluator index `evaluator` (the "unique
    /// value communicated by the parser to each evaluator").
    pub fn new(evaluator: u32) -> Self {
        IdBase {
            base: evaluator,
            next: AtomicU32::new(0),
        }
    }

    /// Allocates the next unique id.
    ///
    /// # Panics
    ///
    /// Panics if an evaluator allocates more than [`BLOCK`] ids — a
    /// single compilation never comes close.
    pub fn fresh(&self) -> UniqueId {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(n < BLOCK, "evaluator exhausted its unique-id block");
        UniqueId(self.base as u64 * BLOCK as u64 + n as u64)
    }

    /// The evaluator index this allocator belongs to.
    pub fn evaluator(&self) -> u32 {
        self.base
    }

    /// How many ids have been allocated so far.
    pub fn allocated(&self) -> u32 {
        self.next.load(Ordering::Relaxed)
    }
}

/// A globally unique identifier, printable as an assembler label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UniqueId(pub u64);

impl fmt::Display for UniqueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fresh_ids_are_sequential_within_an_evaluator() {
        let b = IdBase::new(0);
        assert_eq!(b.fresh(), UniqueId(0));
        assert_eq!(b.fresh(), UniqueId(1));
        assert_eq!(b.allocated(), 2);
    }

    #[test]
    fn different_evaluators_never_collide() {
        let mut seen = HashSet::new();
        for e in 0..8 {
            let b = IdBase::new(e);
            for _ in 0..1000 {
                assert!(seen.insert(b.fresh()), "duplicate id across evaluators");
            }
        }
    }

    #[test]
    fn ids_format_as_labels() {
        assert_eq!(UniqueId(42).to_string(), "L42");
        let b = IdBase::new(1);
        assert_eq!(b.fresh().to_string(), format!("L{}", BLOCK));
    }

    #[test]
    fn allocator_is_thread_safe() {
        let b = std::sync::Arc::new(IdBase::new(3));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = std::sync::Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                (0..500).map(|_| b.fresh()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<UniqueId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 2000);
    }
}
