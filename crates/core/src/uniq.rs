//! Distributed unique-identifier generation (§4.3).
//!
//! Compilers need unique labels. A sequential attribute grammar threads a
//! counter attribute through the whole tree — which, evaluated in
//! parallel, would force "virtually all evaluators to wait for the value
//! of this attribute to be propagated". The paper's fix: the parser hands
//! each evaluator a disjoint *base value*, and labels are generated
//! relative to that base with no communication at all.
//!
//! [`IdBase`] is that mechanism. The threaded-counter alternative is kept
//! (in the Pascal grammar's `threaded_labels` variant) for the ablation
//! experiment.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// Number of label values reserved per evaluator.
pub const BLOCK: u32 = 1 << 20;

/// A per-evaluator unique-id allocator: ids are `base * BLOCK + counter`,
/// so ids from different evaluators never collide.
#[derive(Debug)]
pub struct IdBase {
    base: u32,
    next: AtomicU32,
}

impl IdBase {
    /// Creates the allocator for evaluator index `evaluator` (the "unique
    /// value communicated by the parser to each evaluator").
    pub fn new(evaluator: u32) -> Self {
        IdBase {
            base: evaluator,
            next: AtomicU32::new(0),
        }
    }

    /// Allocates the next unique id.
    ///
    /// # Panics
    ///
    /// Panics if an evaluator allocates more than [`BLOCK`] ids — a
    /// single compilation never comes close.
    pub fn fresh(&self) -> UniqueId {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(n < BLOCK, "evaluator exhausted its unique-id block");
        UniqueId(self.base as u64 * BLOCK as u64 + n as u64)
    }

    /// The evaluator index this allocator belongs to.
    pub fn evaluator(&self) -> u32 {
        self.base
    }

    /// How many ids have been allocated so far.
    pub fn allocated(&self) -> u32 {
        self.next.load(Ordering::Relaxed)
    }
}

/// A globally unique identifier, printable as an assembler label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UniqueId(pub u64);

impl fmt::Display for UniqueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Label safety under cross-tree memoization.
    ///
    /// A cached region replayed into a new tree must not smuggle in
    /// labels that collide with the rest of that tree. The memo design
    /// guarantees this *by construction*: label-producing rules draw
    /// from per-tree unique-id **tokens** (the parser-communicated base
    /// values of §4.3, materialized as token values), never from live
    /// [`IdBase`] allocator state — and token values are part of the
    /// subtree hash, so a cache hit implies the replayed labels are
    /// byte-identical to what a fresh evaluation of *this* subtree
    /// would produce. Disjointness within a tree then follows from the
    /// builder's per-tree uid uniqueness, replay or no replay.
    #[test]
    fn memoized_regions_replay_disjoint_labels_across_trees() {
        use crate::eval::EvalPlan;
        use crate::grammar::GrammarBuilder;
        use crate::parallel::pool::{PoolConfig, WorkerPool};
        use crate::tree::{token, TreeBuilder};
        use crate::value::Value;
        use std::sync::Arc;

        let mut g = GrammarBuilder::<Value>::new();
        let s = g.nonterminal("S");
        let p = g.nonterminal("stmts");
        let num = g.terminal("num");
        let val = g.synthesized(num, "val");
        let out = g.synthesized(s, "out");
        let code = g.synthesized(p, "code");
        g.mark_split(p, 4);
        let top = g.production("top", s, [p, p]);
        g.rule(top, (0, out), [(1, code), (2, code)], |a| {
            Value::str(format!(
                "{} {}",
                a[0].as_str().unwrap(),
                a[1].as_str().unwrap()
            ))
        });
        // The labels come from uid tokens — part of the subtree hash —
        // not from a runtime counter.
        let cons = g.production("cons", p, [num, p]);
        g.rule(cons, (0, code), [(1, val), (2, code)], |a| {
            Value::str(format!(
                "L{} {}",
                a[0].as_int().unwrap(),
                a[1].as_str().unwrap()
            ))
        });
        let last = g.production("last", p, [num]);
        g.rule(last, (0, code), [(1, val)], |a| {
            Value::str(format!("L{}", a[0].as_int().unwrap()))
        });
        let grammar = Arc::new(g.build(s).unwrap());
        let plan = Arc::new(EvalPlan::analyze(&grammar));
        let chain = |tb: &mut TreeBuilder<Value>, uids: &[i64]| {
            let mut tail = tb.node_full(last, vec![token(vec![Value::Int(uids[uids.len() - 1])])]);
            for &u in uids[..uids.len() - 1].iter().rev() {
                tail = tb.node_full(cons, vec![token(vec![Value::Int(u)]), tail.into()]);
            }
            tail
        };
        let mk = |first: &[i64], second: &[i64]| {
            let mut tb = TreeBuilder::new(&grammar);
            let p1 = chain(&mut tb, first);
            let p2 = chain(&mut tb, second);
            let root = tb.node_full(top, vec![p1.into(), p2.into()]);
            Arc::new(tb.finish(root).unwrap())
        };
        // Tree A and tree B share their second procedure (uids 1..=16);
        // each has a private first one. The shared chain dominates the
        // tree's work, so the decomposition's leaf region falls inside
        // it and tree B replays it from tree A's cached evaluation.
        let shared: Vec<i64> = (1..=16).collect();
        let a = mk(&[101, 102], &shared);
        let b = mk(&[201, 202], &shared);
        let mut pool = WorkerPool::new(&plan, PoolConfig::combined(2).with_memo_capacity(1 << 20));
        let ra = pool.eval(&a).unwrap();
        let rb = pool.eval(&b).unwrap();
        let c = pool.memo_counters().unwrap();
        assert!(
            c.hits >= 1,
            "shared procedure must replay from cache: {c:?}"
        );

        let labels = |r: &crate::parallel::pool::PoolReport<Value>| -> Vec<String> {
            r.root_values
                .iter()
                .find(|(attr, _)| *attr == out)
                .and_then(|(_, v)| v.as_str())
                .unwrap()
                .split(' ')
                .map(str::to_string)
                .collect()
        };
        for (name, r, base) in [("A", &ra, 101i64), ("B", &rb, 201)] {
            let ls = labels(r);
            let distinct: HashSet<&String> = ls.iter().collect();
            assert_eq!(
                distinct.len(),
                ls.len(),
                "tree {name}: labels collide: {ls:?}"
            );
            let want: Vec<String> = [base, base + 1]
                .iter()
                .chain(&shared)
                .map(|u| format!("L{u}"))
                .collect();
            assert_eq!(
                ls, want,
                "tree {name}: replayed labels match fresh evaluation"
            );
        }
    }

    #[test]
    fn fresh_ids_are_sequential_within_an_evaluator() {
        let b = IdBase::new(0);
        assert_eq!(b.fresh(), UniqueId(0));
        assert_eq!(b.fresh(), UniqueId(1));
        assert_eq!(b.allocated(), 2);
    }

    #[test]
    fn different_evaluators_never_collide() {
        let mut seen = HashSet::new();
        for e in 0..8 {
            let b = IdBase::new(e);
            for _ in 0..1000 {
                assert!(seen.insert(b.fresh()), "duplicate id across evaluators");
            }
        }
    }

    #[test]
    fn ids_format_as_labels() {
        assert_eq!(UniqueId(42).to_string(), "L42");
        let b = IdBase::new(1);
        assert_eq!(b.fresh().to_string(), format!("L{}", BLOCK));
    }

    #[test]
    fn allocator_is_thread_safe() {
        let b = std::sync::Arc::new(IdBase::new(3));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = std::sync::Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                (0..500).map(|_| b.fresh()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<UniqueId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 2000);
    }
}
