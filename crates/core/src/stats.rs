//! Evaluation statistics.
//!
//! Everything §4 of the paper measures is counted here: how many
//! attribute instances were evaluated dynamically vs. statically (the
//! "less than 5 percent" claim), dependency-graph sizes (the dynamic
//! evaluator's space/CPU overhead), rule applications and abstract cost
//! units (which the simulator converts to virtual time).

use std::ops::AddAssign;

/// Counters accumulated during one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Rule applications performed through the dynamic scheduler.
    pub dynamic_applied: usize,
    /// Rule applications performed inside static visit sequences.
    pub static_applied: usize,
    /// Dependency-graph tasks created (dynamic + static-visit tasks).
    pub graph_nodes: usize,
    /// Dependency-graph edges created.
    pub graph_edges: usize,
    /// Abstract CPU cost units consumed by rule applications.
    pub rule_cost_units: u64,
    /// Attribute values received from other machines.
    pub attrs_received: usize,
    /// Attribute values sent to other machines.
    pub attrs_sent: usize,
    /// Bytes of attribute values sent.
    pub bytes_sent: usize,
}

impl EvalStats {
    /// Total rule applications.
    pub fn total_applied(&self) -> usize {
        self.dynamic_applied + self.static_applied
    }

    /// Fraction of rule applications that went through the dynamic
    /// scheduler (§4.1 reports < 5% for the combined evaluator).
    pub fn dynamic_fraction(&self) -> f64 {
        let total = self.total_applied();
        if total == 0 {
            0.0
        } else {
            self.dynamic_applied as f64 / total as f64
        }
    }
}

impl AddAssign for EvalStats {
    fn add_assign(&mut self, o: Self) {
        self.dynamic_applied += o.dynamic_applied;
        self.static_applied += o.static_applied;
        self.graph_nodes += o.graph_nodes;
        self.graph_edges += o.graph_edges;
        self.rule_cost_units += o.rule_cost_units;
        self.attrs_received += o.attrs_received;
        self.attrs_sent += o.attrs_sent;
        self.bytes_sent += o.bytes_sent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_fraction_handles_zero() {
        assert_eq!(EvalStats::default().dynamic_fraction(), 0.0);
    }

    #[test]
    fn dynamic_fraction_counts() {
        let s = EvalStats {
            dynamic_applied: 5,
            static_applied: 95,
            ..Default::default()
        };
        assert!((s.dynamic_fraction() - 0.05).abs() < 1e-12);
        assert_eq!(s.total_applied(), 100);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = EvalStats {
            dynamic_applied: 1,
            bytes_sent: 10,
            ..Default::default()
        };
        a += EvalStats {
            dynamic_applied: 2,
            static_applied: 3,
            bytes_sent: 5,
            ..Default::default()
        };
        assert_eq!(a.dynamic_applied, 3);
        assert_eq!(a.static_applied, 3);
        assert_eq!(a.bytes_sent, 15);
    }
}
