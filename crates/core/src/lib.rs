//! Attribute-grammar core: the paper's primary contribution.
//!
//! This crate implements the machinery of *Parallel Attribute Grammar
//! Evaluation* (Boehm & Zwaenepoel, ICDCS 1987):
//!
//! * [`grammar`] — attribute grammars in Bochmann normal form: symbols
//!   with synthesized/inherited attributes, productions with semantic
//!   rules that are pure functions (§2.2), split annotations and priority
//!   attributes (§2.5, §4.3);
//! * [`tree`] — arena-allocated parse trees and attribute stores;
//! * [`csr`] — compressed-sparse-row adjacency backing the instance
//!   dependency graphs (one flat allocation instead of one per
//!   instance);
//! * [`analysis`] — dependency analysis: noncircularity, induced
//!   dependencies, and Kastens' *ordered* attribute-grammar construction
//!   producing per-production visit sequences (§2.3);
//! * [`eval`] — the three evaluators compared in the paper: dynamic
//!   (Figure 1), static (Figures 2–3) and the **combined** evaluator
//!   (Figure 4, §2.4);
//! * [`split`] — decomposition of the parse tree into subtrees for
//!   separate evaluation (§2.1, Figure 7);
//! * [`parallel`] — the parallel compiler runtimes: a deterministic
//!   simulated network multiprocessor (reproducing Figures 5 and 6) and a
//!   real-thread executor, both with string-librarian result propagation
//!   (§4.2);
//! * [`stats`] — instrumentation backing every measurement in §4;
//! * [`uniq`] — per-evaluator unique-identifier bases (§4.3).
//!
//! # Examples
//!
//! A tiny grammar — binary trees whose `size` is synthesized bottom-up —
//! evaluated all three ways:
//!
//! ```
//! use paragram_core::grammar::{AttrKind, GrammarBuilder};
//! use paragram_core::tree::TreeBuilder;
//! use paragram_core::eval::{dynamic_eval, static_eval};
//!
//! let mut g = GrammarBuilder::<i64>::new();
//! let t = g.nonterminal("T");
//! let size = g.synthesized(t, "size");
//! let leaf = g.production("leaf", t, []);
//! g.rule(leaf, (0, size), [], |_| 1);
//! let fork = g.production("fork", t, [t, t]);
//! g.rule(fork, (0, size), [(1, size), (2, size)], |a| a[0] + a[1] + 1);
//! let grammar = std::sync::Arc::new(g.build(t).unwrap());
//!
//! let mut tb = TreeBuilder::new(&grammar);
//! let l1 = tb.leaf(leaf);
//! let l2 = tb.leaf(leaf);
//! let root = tb.node(fork, [l1, l2]);
//! let tree = tb.finish(root).unwrap();
//!
//! let (store, _) = dynamic_eval(&tree).unwrap();
//! assert_eq!(store.get(tree.root(), size), Some(&3));
//! let plans = paragram_core::analysis::compute_plans(&grammar).unwrap();
//! let (store2, _) = static_eval(&tree, &plans).unwrap();
//! assert_eq!(store2.get(tree.root(), size), Some(&3));
//! ```

pub mod analysis;
pub mod csr;
pub mod eval;
pub mod grammar;
pub mod memo;
pub mod parallel;
pub mod split;
pub mod stats;
pub mod tree;
pub mod uniq;
pub mod value;

pub use grammar::{AttrId, AttrKind, Grammar, GrammarBuilder, ProdId, SymbolId};
pub use memo::{MemoCache, MemoCounters};
pub use tree::{AttrSlots, AttrStore, NodeId, ParseTree, RegionStore, TreeBuilder};
pub use value::{AttrValue, Value};
