//! Attribute value domains.
//!
//! Evaluators are generic over the attribute value type `V`; the only
//! requirements are captured by [`AttrValue`]. A convenience [`Value`]
//! enum covering the domains the paper's examples need (integers, rope
//! strings, applicative symbol tables, lists) is provided for the `spec`
//! crate and the examples; the Pascal compiler defines its own richer
//! domain.

use paragram_rope::Rope;
use paragram_symtab::SymTab;
use std::fmt;
use std::sync::Arc;

/// Requirements on attribute values.
///
/// `wire_size` is the paper's "conversion function" abstraction (§2.5): a
/// flattened, contiguous representation suitable for transmission over the
/// network must exist, and its size drives the simulated (and measured)
/// communication cost.
///
/// `Default` provides the placeholder that packed attribute stores keep
/// in unwritten slots (presence is tracked in a side bitset, so the
/// placeholder is never observable through the store API).
pub trait AttrValue: Clone + Default + Send + Sync + fmt::Debug + 'static {
    /// Bytes needed to ship this value over the network.
    fn wire_size(&self) -> usize {
        16
    }

    /// String-librarian hook (§4.2): replace large embedded text with
    /// segment references allocated through `alloc` (which registers the
    /// text with the librarian). Returns `None` when the value carries
    /// no deflatable text — the default for non-string domains.
    ///
    /// Only the *string data type implementation* changes for the
    /// librarian optimization; grammars and evaluators are untouched,
    /// exactly as the paper claims.
    fn deflate(&self, _alloc: &mut dyn FnMut(Rope) -> paragram_rope::SegmentId) -> Option<Self> {
        None
    }

    /// Inverse hook: resolve any segment references against the
    /// librarian's store. Default: identity.
    fn inflate(&self, _store: &paragram_rope::SegmentStore) -> Self {
        self.clone()
    }

    /// Content fingerprint for memoization (subtree hashing and region
    /// input signatures). Two values with equal content must hash
    /// equal; the converse need not hold — a miss only costs a cache
    /// reuse, never correctness. Return `None` when the value is not
    /// fingerprintable (the default), which marks any tree node or
    /// region input carrying it as uncacheable.
    fn content_hash(&self) -> Option<u64> {
        None
    }

    /// `true` iff [`AttrValue::content_hash`] would return `Some` —
    /// i.e. the value carries no ticket-local state (such as unresolved
    /// segment references) that would make it unsafe to replay under
    /// another ticket. The retire-time memo installer calls this on
    /// every value of a candidate span, so implementations should
    /// answer with a cheap structural check rather than the default,
    /// which computes (and discards) the full content hash.
    fn is_fingerprintable(&self) -> bool {
        self.content_hash().is_some()
    }
}

/// FNV-1a over a byte slice — the workhorse for `content_hash` impls.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Extends an FNV-1a state with one 64-bit word (for combining child
/// hashes and variant tags).
pub fn fnv1a_u64(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl AttrValue for i64 {
    fn wire_size(&self) -> usize {
        8
    }
    fn content_hash(&self) -> Option<u64> {
        Some(fnv1a(&self.to_le_bytes()))
    }
}
impl AttrValue for u64 {
    fn wire_size(&self) -> usize {
        8
    }
    fn content_hash(&self) -> Option<u64> {
        Some(fnv1a(&self.to_le_bytes()))
    }
}
impl AttrValue for bool {
    fn wire_size(&self) -> usize {
        1
    }
    fn content_hash(&self) -> Option<u64> {
        Some(fnv1a(&[*self as u8]))
    }
}
impl AttrValue for String {
    fn wire_size(&self) -> usize {
        self.len() + 8
    }
    fn content_hash(&self) -> Option<u64> {
        Some(fnv1a(self.as_bytes()))
    }
}
impl AttrValue for () {
    fn content_hash(&self) -> Option<u64> {
        Some(fnv1a(&[]))
    }
}

/// A general-purpose attribute value domain: everything the paper's
/// appendix grammar and the examples need.
#[derive(Clone, Default)]
pub enum Value {
    /// Unit/absent value.
    #[default]
    Unit,
    /// 64-bit integer (the appendix grammar's `value` attribute).
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Short immutable string (identifier names from the scanner).
    Str(Arc<str>),
    /// Rope string (code attributes).
    Rope(Rope),
    /// Applicative symbol table (the appendix grammar's `stab`).
    Tab(SymTab<Value>),
    /// List of values.
    List(Arc<Vec<Value>>),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Creates a list value.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        Value::List(Arc::new(items.into_iter().collect()))
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean inside, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The rope inside, if this is a `Rope`.
    pub fn as_rope(&self) -> Option<&Rope> {
        match self {
            Value::Rope(r) => Some(r),
            _ => None,
        }
    }

    /// The symbol table inside, if this is a `Tab`.
    pub fn as_tab(&self) -> Option<&SymTab<Value>> {
        match self {
            Value::Tab(t) => Some(t),
            _ => None,
        }
    }

    /// The list inside, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Name of the variant, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::Rope(_) => "rope",
            Value::Tab(_) => "tab",
            Value::List(_) => "list",
        }
    }
}

/// Minimum rope size worth shipping to the librarian; smaller text is
/// cheaper to carry inline than to indirect.
pub const DEFLATE_THRESHOLD: usize = 256;

impl AttrValue for Value {
    fn wire_size(&self) -> usize {
        1 + match self {
            Value::Unit => 0,
            Value::Int(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => s.len() + 4,
            Value::Rope(r) => r.physical_wire_size(),
            Value::Tab(t) => t.wire_size(AttrValue::wire_size),
            Value::List(l) => 4 + l.iter().map(AttrValue::wire_size).sum::<usize>(),
        }
    }

    fn deflate(&self, alloc: &mut dyn FnMut(Rope) -> paragram_rope::SegmentId) -> Option<Self> {
        match self {
            Value::Rope(r) => {
                let (deflated, created) = r.deflate(DEFLATE_THRESHOLD, alloc);
                (created > 0).then_some(Value::Rope(deflated))
            }
            _ => None,
        }
    }

    fn inflate(&self, store: &paragram_rope::SegmentStore) -> Self {
        match self {
            Value::Rope(r) if r.has_segments() => match r.resolve(store) {
                Ok(resolved) => Value::Rope(resolved),
                Err(_) => self.clone(),
            },
            _ => self.clone(),
        }
    }

    fn content_hash(&self) -> Option<u64> {
        let mut h = fnv1a(&[match self {
            Value::Unit => 0u8,
            Value::Int(_) => 1,
            Value::Bool(_) => 2,
            Value::Str(_) => 3,
            Value::Rope(_) => 4,
            Value::Tab(_) => 5,
            Value::List(_) => 6,
        }]);
        match self {
            Value::Unit => {}
            Value::Int(i) => h = fnv1a_u64(h, *i as u64),
            Value::Bool(b) => h = fnv1a_u64(h, *b as u64),
            Value::Str(s) => h = fnv1a_u64(h, fnv1a(s.as_bytes())),
            Value::Rope(r) => {
                // Unresolved segment references are placeholders whose
                // text lives elsewhere — not fingerprintable.
                if r.has_segments() {
                    return None;
                }
                for chunk in r.chunks() {
                    h = fnv1a_u64(h, fnv1a(chunk.as_bytes()));
                }
            }
            Value::Tab(t) => {
                // Iteration order is determined by the table's build
                // sequence; identical builds hash identically, while
                // equal-content tables built differently may miss
                // (never false-hit, since the node hash still pins the
                // full iteration content).
                for (name, v) in t.iter() {
                    h = fnv1a_u64(h, fnv1a(name.as_bytes()));
                    h = fnv1a_u64(h, v.content_hash()?);
                }
                h = fnv1a_u64(h, t.len() as u64);
            }
            Value::List(l) => {
                for v in l.iter() {
                    h = fnv1a_u64(h, v.content_hash()?);
                }
                h = fnv1a_u64(h, l.len() as u64);
            }
        }
        Some(h)
    }

    fn is_fingerprintable(&self) -> bool {
        match self {
            Value::Rope(r) => !r.has_segments(),
            Value::Tab(t) => t.iter().all(|(_, v)| v.is_fingerprintable()),
            Value::List(l) => l.iter().all(|v| v.is_fingerprintable()),
            _ => true,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Rope(a), Value::Rope(b)) => a == b,
            (Value::Tab(a), Value::Tab(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Rope(r) => write!(f, "rope({} bytes)", r.len()),
            Value::Tab(t) => write!(f, "tab({} entries)", t.len()),
            Value::List(l) => f.debug_list().entries(l.iter()).finish(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Rope(r) => write!(f, "{r}"),
            Value::Tab(t) => write!(f, "{t:?}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<Rope> for Value {
    fn from(r: Rope) -> Self {
        Value::Rope(r)
    }
}

impl From<SymTab<Value>> for Value {
    fn from(t: SymTab<Value>) -> Self {
        Value::Tab(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert_eq!(Value::Int(3).as_str(), None);
        assert_eq!(Value::Unit.as_int(), None);
        let l = Value::list([Value::Int(1), Value::Int(2)]);
        assert_eq!(l.as_list().map(|x| x.len()), Some(2));
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Value::Int(1), Value::Int(1));
        assert_ne!(Value::Int(1), Value::Int(2));
        assert_ne!(Value::Int(1), Value::Bool(true));
        let a = Value::Rope(Rope::from("ab").concat(&Rope::from("c")));
        let b = Value::Rope(Rope::from("abc"));
        assert_eq!(a, b);
    }

    #[test]
    fn wire_sizes_scale_with_content() {
        assert_eq!(Value::Unit.wire_size(), 1);
        assert_eq!(Value::Int(0).wire_size(), 9);
        let small = Value::Rope(Rope::from("x"));
        let big = Value::Rope(Rope::from("x".repeat(1000)));
        assert!(big.wire_size() > small.wire_size());
        let tab = Value::Tab(SymTab::new().add("name", Value::Int(1)));
        assert!(tab.wire_size() > 10);
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::str("id").to_string(), "id");
        assert_eq!(
            Value::list([Value::Int(1), Value::Int(2)]).to_string(),
            "[1, 2]"
        );
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Unit.kind_name(), "unit");
        assert_eq!(Value::Tab(SymTab::new()).kind_name(), "tab");
    }
}
