//! The three evaluators of the paper.
//!
//! * [`dynamic_eval`] — Figure 1: build the instance dependency graph of
//!   the whole tree, topologically sort, evaluate. Handles every
//!   noncircular grammar but pays graph construction in time and space.
//! * [`static_eval`] — Figures 2–3: execute precomputed visit sequences
//!   with zero run-time dependency analysis. Requires an *l-ordered*
//!   grammar (see [`crate::analysis`]).
//! * [`Machine`] — the per-evaluator engine behind the **combined**
//!   evaluator (Figure 4) and both parallel runtimes: dynamic scheduling
//!   for spine nodes, static visit sequences for everything else.
//!
//! [`Evaluators`] bundles the analysis artifacts and picks the best
//! strategy available, falling back to dynamic evaluation for grammars
//! the static method cannot order (the paper's §4.1 caveat).
//!
//! # Compiled visit programs
//!
//! The static and combined evaluators do not interpret the analysis
//! artifact ([`crate::analysis::Plans`]) step by step. At [`EvalPlan`]
//! build time every production's plan segments are flattened into one
//! grammar-wide **visit program** ([`VisitPrograms`]):
//!
//! * **Opcode layout** — a single flat `Vec` of [`Op`]s:
//!   `Op::Eval(rule)` applies a compiled rule, `Op::Visit { occ, visit }`
//!   descends into a child's program, and `Op::Ret` terminates a
//!   segment. An interpreter frame is a bare `(node, pc)` pair.
//! * **Offset tables** — per-(production, visit) entry points: a dense
//!   `prod_base` table indexes a dense `entries` table mapping each
//!   (production, visit) pair to its first opcode. Child productions are
//!   tree data, so `Op::Visit` re-resolves through the same table at run
//!   time; all other operands (targets, arguments, costs) are resolved
//!   at build time into a shared operand slab.
//! * **Direct-call table contract** — a rule registered with a plain
//!   `fn` pointer ([`crate::grammar::GrammarBuilder::rule_direct`], the
//!   spec layer's named-function registry, or `copy_rule`) is dispatched
//!   without `Arc<dyn Fn>` indirection; any rule the registry cannot
//!   name falls back to its boxed closure. Both paths must compute the
//!   identical value — the direct pointer *is* the registered function,
//!   and the equivalence property suite pins program, segment and
//!   dynamic evaluation to identical stores.
//!
//! [`run_program_segment`] is the interpreter (generic over
//! [`crate::tree::AttrSlots`], so region machines execute the same
//! programs over their `RegionStore`s); [`run_static_segment`] remains
//! as the reference segment walker for equivalence tests and the
//! `bench_dynamic --programs-vs-segments` comparison axis.

mod dynamic;
mod incremental;
mod machine;
mod plan;
mod program;
mod static_eval;

pub use dynamic::{dynamic_eval, dynamic_eval_with, ReadyPolicy};
pub use incremental::{Incremental, UpdateError};
pub use machine::{AttrMsg, Machine, MachineMode, SendTarget, StepOutcome};
pub use plan::{EvalPlan, MachineScratch};
pub use program::{Op, VisitPrograms};
pub use static_eval::{
    run_program_segment, run_static_segment, static_eval, static_eval_segments,
    static_eval_with_programs, EvalScratch,
};

use crate::analysis::{OagError, Plans};
use crate::grammar::Grammar;
use crate::stats::EvalStats;
use crate::tree::{AttrStore, NodeId, ParseTree};
use crate::value::AttrValue;
use std::fmt;
use std::sync::Arc;

/// Errors reported by evaluators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The instance dependency graph of this tree has a cycle; `stuck`
    /// instances could not be evaluated.
    Cycle {
        /// Number of attribute instances left unevaluated.
        stuck: usize,
    },
    /// A static plan referenced an attribute instance that was not yet
    /// available — an internal inconsistency between analysis and
    /// evaluation.
    PlanInconsistency {
        /// Node where evaluation failed.
        node: NodeId,
        /// Description of the failing step.
        step: String,
    },
    /// The machine engine finished but external inputs never arrived.
    MissingInputs {
        /// Number of external instances still missing.
        missing: usize,
    },
    /// A semantic rule panicked during evaluation. The parallel pool
    /// contains the unwind ([`std::panic::catch_unwind`]) so a buggy
    /// rule fails only its own ticket instead of the whole pool.
    RulePanic {
        /// The panic payload's message, when it carried one.
        message: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Cycle { stuck } => {
                write!(
                    f,
                    "attribute dependency cycle: {stuck} instances unevaluated"
                )
            }
            EvalError::PlanInconsistency { node, step } => {
                write!(f, "static plan inconsistency at {node:?}: {step}")
            }
            EvalError::MissingInputs { missing } => {
                write!(f, "{missing} external attribute values never arrived")
            }
            EvalError::RulePanic { message } => {
                write!(f, "semantic rule panicked: {message}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Strategy actually used by [`Evaluators`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Static plans are available; sequential evaluation is static and
    /// parallel evaluation is combined.
    Ordered,
    /// The grammar is not l-ordered; everything falls back to dynamic.
    DynamicOnly,
}

/// Precomputed evaluation artifacts for one grammar: the evaluator
/// factory the "compiler generator" (§2.5) emits.
///
/// Internally this is a thin handle over a shared [`EvalPlan`]; batch
/// drivers take the plan directly (via [`Evaluators::plan`]) and reuse
/// it across every compilation.
pub struct Evaluators<V: AttrValue> {
    plan: Arc<EvalPlan<V>>,
}

impl<V: AttrValue> Evaluators<V> {
    /// Analyses `grammar`, computing visit sequences when possible.
    pub fn new(grammar: &Arc<Grammar<V>>) -> Self {
        Evaluators {
            plan: Arc::new(EvalPlan::analyze(grammar)),
        }
    }

    /// The grammar being evaluated.
    pub fn grammar(&self) -> &Arc<Grammar<V>> {
        self.plan.grammar()
    }

    /// The shared, immutable evaluation plan (grammar analysis + visit
    /// sequences + lookup tables), reusable across trees and threads.
    pub fn plan(&self) -> &Arc<EvalPlan<V>> {
        &self.plan
    }

    /// Which strategy is available.
    pub fn strategy(&self) -> Strategy {
        if self.plan.plans().is_some() {
            Strategy::Ordered
        } else {
            Strategy::DynamicOnly
        }
    }

    /// Why static ordering failed, if it did.
    pub fn ordered_failure(&self) -> Option<&OagError> {
        self.plan.ordered_failure()
    }

    /// The static plans, when the grammar is l-ordered.
    pub fn plans(&self) -> Option<&Arc<Plans>> {
        self.plan.plans()
    }

    /// Sequential evaluation with the best available method: static when
    /// ordered, dynamic otherwise.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from the chosen evaluator.
    pub fn eval_sequential(
        &self,
        tree: &ParseTree<V>,
    ) -> Result<(AttrStore<V>, EvalStats), EvalError> {
        match (self.plan.plans(), self.plan.programs()) {
            // The programs were compiled when the plan was built; run
            // them directly instead of re-flattening per tree.
            (Some(p), Some(programs)) => static_eval_with_programs(tree, p, programs),
            (Some(p), None) => static_eval(tree, p),
            _ => dynamic_eval(tree),
        }
    }
}

impl<V: AttrValue> fmt::Debug for Evaluators<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Evaluators({:?})", self.strategy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;
    use crate::tree::TreeBuilder;

    #[test]
    fn factory_picks_static_for_ordered_grammar() {
        let mut g = GrammarBuilder::<i64>::new();
        let t = g.nonterminal("T");
        let size = g.synthesized(t, "size");
        let leaf = g.production("leaf", t, []);
        g.rule(leaf, (0, size), [], |_| 1);
        let gr = Arc::new(g.build(t).unwrap());
        let ev = Evaluators::new(&gr);
        assert_eq!(ev.strategy(), Strategy::Ordered);
        assert!(ev.ordered_failure().is_none());

        let mut tb = TreeBuilder::new(&gr);
        let root = tb.leaf(leaf);
        let tree = tb.finish(root).unwrap();
        let (store, stats) = ev.eval_sequential(&tree).unwrap();
        assert_eq!(store.get(tree.root(), size), Some(&1));
        assert_eq!(stats.static_applied, 1);
        assert_eq!(stats.dynamic_applied, 0);
    }

    #[test]
    fn factory_falls_back_to_dynamic_for_circular_looking_grammar() {
        // i <- o and o <- i across two productions is truly circular, so
        // even dynamic fails on a real tree. Instead use a grammar that
        // is noncircular but NOT l-ordered: the classic alternation
        // where one production wants i1 before s1 and another wants the
        // reverse; IDS forces conflicting phases. Easiest concrete case:
        // two inherited/synthesized pairs used in opposite orders.
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let t = g.nonterminal("T");
        let out = g.synthesized(s, "out");
        let i1 = g.inherited(t, "i1");
        let i2 = g.inherited(t, "i2");
        let s1 = g.synthesized(t, "s1");
        let s2 = g.synthesized(t, "s2");
        // top1: i2 depends on s1 (s1 before i2)
        let top1 = g.production("top1", s, [t]);
        g.rule(top1, (1, i1), [], |_| 1);
        g.rule(top1, (1, i2), [(1, s1)], |a| a[0]);
        g.rule(top1, (0, out), [(1, s2)], |a| a[0]);
        // top2: i1 depends on s2 (s2 before i1)
        let top2 = g.production("top2", s, [t]);
        g.rule(top2, (1, i2), [], |_| 2);
        g.rule(top2, (1, i1), [(1, s2)], |a| a[0]);
        g.rule(top2, (0, out), [(1, s1)], |a| a[0]);
        // body: s1 <- i1, s2 <- i2
        let body = g.production("body", t, []);
        g.rule(body, (0, s1), [(0, i1)], |a| a[0]);
        g.rule(body, (0, s2), [(0, i2)], |a| a[0]);
        let gr = Arc::new(g.build(s).unwrap());
        let ev = Evaluators::new(&gr);
        // IDS(T) gets s1→i2 (from top1) and s2→i1 (from top2) plus local
        // i1→s1, i2→s2: phases conflict → cyclic or not-ordered; either
        // way the factory must fall back.
        assert_eq!(ev.strategy(), Strategy::DynamicOnly);
        assert!(ev.ordered_failure().is_some());

        // Dynamic evaluation still works on a tree using top1.
        let mut tb = TreeBuilder::new(&gr);
        let b = tb.leaf(body);
        let root = tb.node(top1, [b]);
        let tree = tb.finish(root).unwrap();
        let (store, stats) = ev.eval_sequential(&tree).unwrap();
        assert_eq!(store.get(tree.root(), out), Some(&1));
        assert!(stats.dynamic_applied > 0);
    }
}
