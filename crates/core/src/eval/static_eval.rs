//! The static (ordered) evaluator (Figures 2–3).
//!
//! Attributes are evaluated in the order fixed at grammar-analysis time:
//! per production, a visit sequence of `Eval`/`Visit` steps (see
//! [`crate::analysis`]). No dependency information is computed or stored
//! at evaluation time — this is exactly why the paper's measurements show
//! static evaluation beating dynamic evaluation sequentially.
//!
//! Two interpreters execute those sequences:
//!
//! * [`run_program_segment`] — the hot path: a compiled
//!   [`VisitPrograms`] opcode stream (see [`super::program`] for the
//!   format) whose inner loop is a match on opcodes with pre-resolved
//!   operands and devirtualized rule dispatch.
//! * [`run_static_segment`] — the reference segment walker over the raw
//!   analysis artifact, kept for equivalence testing and as the
//!   benchmark comparison baseline (`bench_dynamic
//!   --programs-vs-segments`).
//!
//! Both are iterative (explicit frame stack, reused across calls via
//! [`EvalScratch`]) so deep parse trees — statement lists are a linear
//! chain — cannot overflow the call stack, and both are generic over
//! [`AttrSlots`] so region machines run them against region-local
//! storage.

use crate::analysis::{Plans, Step};
use crate::grammar::ArgScratch;
use crate::stats::EvalStats;
use crate::tree::{occ_slot, occ_value, AttrSlots, AttrStore, NodeId, ParseTree};
use crate::value::AttrValue;

use super::program::{resolve_operand, Op, Operand, RuleCall, VisitPrograms};
use super::EvalError;

/// Reusable evaluation scratch for the segment walkers: the argument
/// gatherer plus both interpreters' frame stacks, so repeated visits
/// amortize every allocation to zero. A machine (or any other caller)
/// keeps one alive across all of its visits.
pub struct EvalScratch<V> {
    /// Argument-gathering buffer for rule applications.
    pub(crate) arg: ArgScratch<V>,
    /// Program-interpreter frames: (node, program counter).
    frames: Vec<(NodeId, u32)>,
    /// Segment-interpreter frames: (node, segment, step index).
    seg_frames: Vec<(NodeId, u32, usize)>,
}

impl<V> Default for EvalScratch<V> {
    fn default() -> Self {
        EvalScratch {
            arg: ArgScratch::new(),
            frames: Vec::new(),
            seg_frames: Vec::new(),
        }
    }
}

impl<V> EvalScratch<V> {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<V> std::fmt::Debug for EvalScratch<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EvalScratch(frames cap {}, seg cap {})",
            self.frames.capacity(),
            self.seg_frames.capacity()
        )
    }
}

/// Evaluates every attribute instance of `tree` using precomputed visit
/// sequences, through the compiled-program path ([`VisitPrograms`] is
/// built here; callers holding an [`super::EvalPlan`] should use
/// [`static_eval_with_programs`] to amortize that build).
///
/// # Errors
///
/// [`EvalError::PlanInconsistency`] if a plan step reads an unavailable
/// instance — impossible for plans produced by
/// [`crate::analysis::compute_plans`] on the same grammar.
pub fn static_eval<V: AttrValue>(
    tree: &ParseTree<V>,
    plans: &Plans,
) -> Result<(AttrStore<V>, EvalStats), EvalError> {
    let programs = VisitPrograms::build(tree.grammar(), plans);
    static_eval_with_programs(tree, plans, &programs)
}

/// [`static_eval`] over an already-compiled program (the form batch
/// drivers and benchmarks use: the programs live in the shared
/// [`super::EvalPlan`]).
///
/// # Errors
///
/// As for [`static_eval`].
pub fn static_eval_with_programs<V: AttrValue>(
    tree: &ParseTree<V>,
    plans: &Plans,
    programs: &VisitPrograms<V>,
) -> Result<(AttrStore<V>, EvalStats), EvalError> {
    let mut store = AttrStore::new(tree);
    let mut stats = EvalStats::default();
    let mut scratch = EvalScratch::new();
    let root_sym = tree.grammar().prod(tree.node(tree.root()).prod).lhs;
    for visit in 1..=plans.phases.visit_count(root_sym) {
        run_program_segment(
            tree,
            programs,
            &mut store,
            tree.root(),
            visit,
            &mut stats,
            &mut scratch,
        )?;
    }
    Ok((store, stats))
}

/// [`static_eval`] through the reference segment interpreter — the
/// pre-compilation walker over the raw analysis artifact. Kept for
/// equivalence testing and benchmark comparison.
///
/// # Errors
///
/// As for [`static_eval`].
pub fn static_eval_segments<V: AttrValue>(
    tree: &ParseTree<V>,
    plans: &Plans,
) -> Result<(AttrStore<V>, EvalStats), EvalError> {
    let mut store = AttrStore::new(tree);
    let mut stats = EvalStats::default();
    let mut scratch = EvalScratch::new();
    let root_sym = tree.grammar().prod(tree.node(tree.root()).prod).lhs;
    for visit in 1..=plans.phases.visit_count(root_sym) {
        run_static_segment(
            tree,
            plans,
            &mut store,
            tree.root(),
            visit,
            &mut stats,
            &mut scratch,
        )?;
    }
    Ok((store, stats))
}

#[cold]
fn inconsistency(node: NodeId, step: String) -> EvalError {
    EvalError::PlanInconsistency { node, step }
}

/// Executes the `visit`-th (1-based) visit of `node` by interpreting the
/// compiled opcode stream: the hot inner loop of the static and combined
/// evaluators. Generic over the store ([`AttrSlots`]) so region machines
/// run the same programs against their region-local storage.
///
/// # Errors
///
/// [`EvalError::PlanInconsistency`] when an opcode's inputs are missing —
/// for the combined evaluator this would mean an inherited attribute of
/// the subtree root was not provided before the visit.
pub fn run_program_segment<V: AttrValue, S: AttrSlots<V>>(
    tree: &ParseTree<V>,
    programs: &VisitPrograms<V>,
    store: &mut S,
    node: NodeId,
    visit: u32,
    stats: &mut EvalStats,
    scratch: &mut EvalScratch<V>,
) -> Result<(), EvalError> {
    let entry = |n: NodeId, v: u32| -> Result<u32, EvalError> {
        programs
            .entry(tree.node(n).prod, v)
            .ok_or_else(|| inconsistency(n, format!("no visit {v} program for node's production")))
    };
    scratch.frames.clear();
    scratch.frames.push((node, entry(node, visit)?));
    while let Some(f) = scratch.frames.last_mut() {
        // Copy out the frame and advance its pc; the borrow of the frame
        // stack ends here so the opcode bodies can push and pop.
        let (n, pc) = {
            let frame = *f;
            f.1 += 1;
            frame
        };
        match programs.op(pc) {
            Op::Eval(rid) => {
                let rule = programs.rule(rid);
                let args = programs.args_of(rule);
                let value = scratch.arg.try_call_gathered(
                    args.len(),
                    |i| {
                        resolve_operand(tree, store, n, args[i]).ok_or_else(|| {
                            inconsistency(
                                n,
                                format!(
                                    "rule {} of {:?} reads unavailable {:?}",
                                    rule.index,
                                    tree.grammar().prod(rule.prod).name,
                                    args[i]
                                ),
                            )
                        })
                    },
                    |a| match &rule.call {
                        RuleCall::Direct(f) => f(a),
                        RuleCall::Boxed(f) => f(a),
                    },
                )?;
                match rule.target {
                    Operand::Lhs(attr) => store.set(n, attr, value),
                    Operand::Node { occ, attr } => {
                        let Some(c) = tree.child_node(n, occ as usize) else {
                            return Err(inconsistency(
                                n,
                                format!("rule target at non-node occurrence {occ}"),
                            ));
                        };
                        store.set(c, attr, value);
                    }
                    Operand::Token { occ, .. } => {
                        return Err(inconsistency(
                            n,
                            format!("rule target at token occurrence {occ}"),
                        ));
                    }
                }
                stats.static_applied += 1;
                stats.rule_cost_units += rule.cost;
            }
            Op::Visit { occ, visit } => {
                let Some(child) = tree.child_node(n, occ as usize) else {
                    return Err(inconsistency(
                        n,
                        format!("visit of non-node occurrence {occ}"),
                    ));
                };
                let pc = entry(child, visit as u32)?;
                scratch.frames.push((child, pc));
            }
            Op::Ret => {
                scratch.frames.pop();
            }
        }
    }
    Ok(())
}

/// Executes the `visit`-th (1-based) visit of `node` by walking the raw
/// plan segments — the reference interpreter [`run_program_segment`] was
/// compiled from. `scratch` is the caller's reusable state, so repeated
/// segments amortize both argument gathering and the traversal stack to
/// zero allocations.
///
/// # Errors
///
/// [`EvalError::PlanInconsistency`] when a step's inputs are missing.
pub fn run_static_segment<V: AttrValue, S: AttrSlots<V>>(
    tree: &ParseTree<V>,
    plans: &Plans,
    store: &mut S,
    node: NodeId,
    visit: u32,
    stats: &mut EvalStats,
    scratch: &mut EvalScratch<V>,
) -> Result<(), EvalError> {
    // Explicit interpreter stack: (node, segment index, program counter).
    scratch.seg_frames.clear();
    scratch.seg_frames.push((node, visit - 1, 0));
    let g = tree.grammar();
    while let Some((n, seg, pc)) = scratch.seg_frames.pop() {
        let prod_id = tree.node(n).prod;
        let plan = plans.plan(prod_id);
        let Some(segment) = plan.segments.get(seg as usize) else {
            return Err(EvalError::PlanInconsistency {
                node: n,
                step: format!("no segment {seg} in plan of {:?}", g.prod(prod_id).name),
            });
        };
        let Some(step) = segment.get(pc) else {
            continue; // segment finished; frame popped
        };
        // Re-push the frame with an advanced pc before possibly pushing
        // a child frame on top.
        scratch.seg_frames.push((n, seg, pc + 1));
        match *step {
            Step::Eval(ri) => {
                let rule = &g.prod(prod_id).rules[ri];
                let value = scratch.arg.try_apply(rule, |a| {
                    occ_value(tree, store, n, a.occ, a.attr).ok_or_else(|| {
                        EvalError::PlanInconsistency {
                            node: n,
                            step: format!(
                                "rule {ri} of {:?} reads unavailable ${}.{:?}",
                                g.prod(prod_id).name,
                                a.occ,
                                a.attr
                            ),
                        }
                    })
                })?;
                let (tn, ta) = occ_slot(tree, n, rule.target.occ, rule.target.attr);
                store.set(tn, ta, value);
                stats.static_applied += 1;
                stats.rule_cost_units += rule.cost;
            }
            Step::Visit { occ, visit } => {
                let Some(child) = tree.child_node(n, occ) else {
                    return Err(EvalError::PlanInconsistency {
                        node: n,
                        step: format!("visit of non-node occurrence {occ}"),
                    });
                };
                scratch.seg_frames.push((child, visit - 1, 0));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::compute_plans;
    use crate::eval::dynamic_eval;
    use crate::grammar::{AttrId, GrammarBuilder};
    use crate::tree::{token, TreeBuilder};
    use std::sync::Arc;

    /// Static evaluation must agree with dynamic evaluation — the central
    /// equivalence invariant — through both interpreters.
    #[test]
    fn agrees_with_dynamic_on_two_pass_grammar() {
        // decls/env/code two-pass grammar over a list tree.
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let l = g.nonterminal("L");
        let done = g.synthesized(s, "done");
        let decls = g.synthesized(l, "decls");
        let env = g.inherited(l, "env");
        let code = g.synthesized(l, "code");
        let top = g.production("top", s, [l]);
        g.rule(top, (1, env), [(1, decls)], |a| a[0] * 100);
        g.rule(top, (0, done), [(1, code)], |a| a[0]);
        let cons = g.production("cons", l, [l]);
        g.rule(cons, (0, decls), [(1, decls)], |a| a[0] + 1);
        g.rule(cons, (1, env), [(0, env)], |a| a[0] + 1);
        g.rule(cons, (0, code), [(1, code), (0, env)], |a| a[0] + a[1]);
        let nil = g.production("nil", l, []);
        g.rule(nil, (0, decls), [], |_| 0);
        g.rule(nil, (0, code), [(0, env)], |a| a[0]);
        let gr = Arc::new(g.build(s).unwrap());
        let plans = compute_plans(&gr).unwrap();

        let mut tb = TreeBuilder::new(&gr);
        let mut n = tb.leaf(nil);
        for _ in 0..10 {
            n = tb.node(cons, [n]);
        }
        let root = tb.node(top, [n]);
        let tree = tb.finish(root).unwrap();

        let (dyn_store, dyn_stats) = dynamic_eval(&tree).unwrap();
        let (stat_store, stat_stats) = static_eval(&tree, &plans).unwrap();
        let (seg_store, seg_stats) = static_eval_segments(&tree, &plans).unwrap();
        // Same number of rule applications, same values everywhere.
        assert_eq!(dyn_stats.dynamic_applied, stat_stats.static_applied);
        assert_eq!(stat_stats.dynamic_applied, 0);
        assert_eq!(stat_stats.graph_nodes, 0, "static pays no graph cost");
        assert_eq!(seg_stats.static_applied, stat_stats.static_applied);
        assert_eq!(seg_stats.rule_cost_units, stat_stats.rule_cost_units);
        for node in tree.node_ids() {
            let sym = gr.prod(tree.node(node).prod).lhs;
            for a in 0..gr.attr_count(sym) {
                let attr = AttrId(a as u32);
                assert_eq!(
                    dyn_store.get(node, attr),
                    stat_store.get(node, attr),
                    "program mismatch at {node:?} attr {attr:?}"
                );
                assert_eq!(
                    dyn_store.get(node, attr),
                    seg_store.get(node, attr),
                    "segment mismatch at {node:?} attr {attr:?}"
                );
            }
        }
    }

    /// Deep trees do not overflow the stack (iterative interpreters).
    #[test]
    fn deep_tree_no_stack_overflow() {
        let mut g = GrammarBuilder::<i64>::new();
        let t = g.nonterminal("T");
        let size = g.synthesized(t, "size");
        let wrap = g.production("wrap", t, [t]);
        g.rule(wrap, (0, size), [(1, size)], |a| a[0] + 1);
        let stop = g.production("stop", t, []);
        g.rule(stop, (0, size), [], |_| 0);
        let gr = Arc::new(g.build(t).unwrap());
        let plans = compute_plans(&gr).unwrap();
        let mut tb = TreeBuilder::new(&gr);
        let mut n = tb.leaf(stop);
        for _ in 0..200_000 {
            n = tb.node(wrap, [n]);
        }
        let tree = tb.finish(n).unwrap();
        let (store, _) = static_eval(&tree, &plans).unwrap();
        assert_eq!(store.get(tree.root(), size), Some(&200_000));
        let (store, _) = static_eval_segments(&tree, &plans).unwrap();
        assert_eq!(store.get(tree.root(), size), Some(&200_000));
    }

    /// Tokens are read directly from the tree (pre-classified as
    /// `Operand::Token` in the compiled program).
    #[test]
    fn reads_token_values() {
        let mut g = GrammarBuilder::<i64>::new();
        let t = g.nonterminal("T");
        let num = g.terminal("num");
        let val = g.synthesized(num, "val");
        let size = g.synthesized(t, "size");
        let leaf = g.production("leaf", t, [num]);
        g.rule(leaf, (0, size), [(1, val)], |a| a[0] + 1);
        let gr = Arc::new(g.build(t).unwrap());
        let plans = compute_plans(&gr).unwrap();
        let mut tb = TreeBuilder::new(&gr);
        let root = tb.node_full(leaf, vec![token(vec![41i64])]);
        let tree = tb.finish(root).unwrap();
        let (store, _) = static_eval(&tree, &plans).unwrap();
        assert_eq!(store.get(tree.root(), size), Some(&42));
    }
}
