//! The dynamic evaluator (Figure 1).
//!
//! Builds the dependency graph between all attribute instances of a
//! parse tree — one task per semantic-rule application, one edge per
//! rule argument — topologically sorts it with a ready worklist, and
//! evaluates attributes as they become ready. *Priority attributes*
//! (§4.3) are served from a separate ready lane so globally needed
//! values (the symbol table) are never starved by local work.
//!
//! The normal lane's service order is configurable via [`ReadyPolicy`]:
//! the classic global FIFO, or per-production batches that run all
//! ready applications of one production's rules back-to-back for rule
//! i-cache locality ([`dynamic_eval_with`]; the `graph` bench compares
//! the two). Any service order is confluent — each attribute instance
//! has exactly one defining rule, so every topological order computes
//! the same store.

use crate::csr::CsrCounter;
use crate::grammar::{ArgScratch, OccRef};
use crate::stats::EvalStats;
use crate::tree::{occ_slot, occ_value, AttrSlots, AttrStore, Child, NodeId, ParseTree};
use crate::value::AttrValue;
use std::collections::VecDeque;

use super::EvalError;

/// Service order of the dynamic scheduler's normal ready lane (the
/// priority lane of §4.3 is always FIFO and always served first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadyPolicy {
    /// One global FIFO worklist — the classic order.
    #[default]
    Fifo,
    /// Ready tasks are bucketed by production and drained one
    /// production at a time, so a production's semantic rules run
    /// back-to-back (better rule i-cache/branch locality on wide
    /// trees). The evaluation *order* changes; the result cannot —
    /// every topological order fills the same store.
    ProductionBatched,
}

/// The normal ready lane behind [`ReadyPolicy`].
enum ReadyLane {
    Fifo(VecDeque<u32>),
    ProductionBatched {
        /// Ready tasks per production.
        buckets: Vec<Vec<u32>>,
        /// Productions with queued work, in first-ready order.
        order: VecDeque<u32>,
        /// Whether a production is already in `order` (or being
        /// drained), so it is queued at most once.
        queued: Vec<bool>,
        /// The production currently being drained.
        current: Option<usize>,
    },
}

impl ReadyLane {
    fn new(policy: ReadyPolicy, prods: usize) -> Self {
        match policy {
            ReadyPolicy::Fifo => ReadyLane::Fifo(VecDeque::new()),
            ReadyPolicy::ProductionBatched => ReadyLane::ProductionBatched {
                buckets: vec![Vec::new(); prods],
                order: VecDeque::new(),
                queued: vec![false; prods],
                current: None,
            },
        }
    }

    /// `prod` is resolved lazily so the default FIFO lane never pays
    /// the per-task production lookup the batched probe needs.
    fn push(&mut self, tid: u32, prod: impl FnOnce() -> usize) {
        match self {
            ReadyLane::Fifo(q) => q.push_back(tid),
            ReadyLane::ProductionBatched {
                buckets,
                order,
                queued,
                current,
            } => {
                let prod = prod();
                buckets[prod].push(tid);
                if !queued[prod] && *current != Some(prod) {
                    queued[prod] = true;
                    order.push_back(prod as u32);
                }
            }
        }
    }

    fn pop(&mut self) -> Option<u32> {
        match self {
            ReadyLane::Fifo(q) => q.pop_front(),
            ReadyLane::ProductionBatched {
                buckets,
                order,
                queued,
                current,
            } => loop {
                if let Some(p) = *current {
                    if let Some(t) = buckets[p].pop() {
                        return Some(t);
                    }
                    *current = None;
                }
                let p = order.pop_front()? as usize;
                queued[p] = false;
                *current = Some(p);
            },
        }
    }
}

/// Evaluates every attribute instance of `tree` dynamically with the
/// default FIFO ready lane.
///
/// Returns the filled attribute store and evaluation statistics
/// (instances evaluated, graph size — the costs Figure 1's pipeline
/// pays before any evaluation happens).
///
/// # Errors
///
/// [`EvalError::Cycle`] if the tree's instance graph is cyclic (the
/// grammar was circular for this tree).
pub fn dynamic_eval<V: AttrValue>(
    tree: &ParseTree<V>,
) -> Result<(AttrStore<V>, EvalStats), EvalError> {
    dynamic_eval_with(tree, ReadyPolicy::Fifo)
}

/// [`dynamic_eval`] with an explicit ready-lane service order.
///
/// # Errors
///
/// [`EvalError::Cycle`] if the tree's instance graph is cyclic (the
/// grammar was circular for this tree).
pub fn dynamic_eval_with<V: AttrValue>(
    tree: &ParseTree<V>,
    policy: ReadyPolicy,
) -> Result<(AttrStore<V>, EvalStats), EvalError> {
    let g = tree.grammar();
    let mut store = AttrStore::new(tree);
    let mut stats = EvalStats::default();

    // One task per rule application: (node, rule index). The waiters
    // relation (instance -> tasks reading it) is built in compressed
    // sparse row form by the classic two-pass counting sort — count,
    // prefix-sum, fill — so graph construction performs a constant
    // number of allocations instead of one `Vec` per attribute
    // instance.
    let mut tasks: Vec<(NodeId, usize)> = Vec::new();
    let mut missing: Vec<u32> = Vec::new();
    // Whether the task's target attribute is a priority attribute.
    let mut is_priority: Vec<bool> = Vec::new();

    // Pass 1: enumerate tasks, count edges per instance.
    let mut counter = CsrCounter::new(store.len());
    for node in tree.node_ids() {
        let prod = g.prod(tree.node(node).prod);
        for (ri, rule) in prod.rules.iter().enumerate() {
            tasks.push((node, ri));
            let mut need = 0u32;
            for_each_rule_arg(tree, &store, node, ri, |_, inst| {
                if let Some(inst) = inst {
                    counter.count(inst);
                    need += 1;
                    stats.graph_edges += 1;
                }
            });
            missing.push(need);
            let (tnode, tattr) = occ_slot(tree, node, rule.target.occ, rule.target.attr);
            let tsym = g.prod(tree.node(tnode).prod).lhs;
            is_priority.push(g.symbol(tsym).attrs[tattr.0 as usize].priority);
        }
    }
    stats.graph_nodes = tasks.len();

    // Pass 2: fill the edge array (same enumeration order via
    // for_each_rule_arg, so each instance's waiter list keeps the
    // task-id order the adjacency-list build produced).
    let mut filler = counter.into_filler();
    for (tid, &(node, ri)) in tasks.iter().enumerate() {
        for_each_rule_arg(tree, &store, node, ri, |_, inst| {
            if let Some(inst) = inst {
                filler.fill(inst, tid as u32);
            }
        });
    }
    let waiters = filler.finish();

    let task_prod = |tid: u32| tree.node(tasks[tid as usize].0).prod.0 as usize;
    let mut ready = ReadyLane::new(policy, g.prods().len());
    let mut ready_priority: VecDeque<u32> = VecDeque::new();
    for (tid, &m) in missing.iter().enumerate() {
        if m == 0 {
            if is_priority[tid] {
                ready_priority.push_back(tid as u32);
            } else {
                ready.push(tid as u32, || task_prod(tid as u32));
            }
        }
    }

    let mut executed = 0usize;
    let mut scratch = ArgScratch::new();
    while let Some(tid) = ready_priority.pop_front().or_else(|| ready.pop()) {
        let (node, ri) = tasks[tid as usize];
        let rule = &g.prod(tree.node(node).prod).rules[ri];
        let value = scratch.apply(rule, |a| {
            occ_value(tree, &store, node, a.occ, a.attr)
                .expect("scheduler readiness guarantees arguments")
        });
        stats.rule_cost_units += rule.cost;
        let (tnode, tattr) = occ_slot(tree, node, rule.target.occ, rule.target.attr);
        store.set(tnode, tattr, value);
        executed += 1;
        let inst = store.instance(tnode, tattr);
        for &w in waiters.targets(inst) {
            missing[w as usize] -= 1;
            if missing[w as usize] == 0 {
                if is_priority[w as usize] {
                    ready_priority.push_back(w);
                } else {
                    ready.push(w, || task_prod(w));
                }
            }
        }
    }

    stats.dynamic_applied = executed;
    if executed != tasks.len() {
        return Err(EvalError::Cycle {
            stuck: tasks.len() - executed,
        });
    }
    Ok((store, stats))
}

/// Instance index of a rule-argument occurrence, or `None` for token
/// occurrences (always available, no graph edge needed). Generic over
/// the store so machine construction resolves region-local indices.
pub(crate) fn arg_instance<V: AttrValue, S: AttrSlots<V>>(
    tree: &ParseTree<V>,
    store: &S,
    node: NodeId,
    arg: OccRef,
) -> Option<usize> {
    if arg.occ == 0 {
        Some(store.instance(node, arg.attr))
    } else {
        match &tree.node(node).children[arg.occ - 1] {
            Child::Node(c) => Some(store.instance(*c, arg.attr)),
            Child::Token(_) => None,
        }
    }
}

/// Enumerates the arguments of rule `ri` at `node` with their resolved
/// instance indices (`None` for token arguments).
///
/// This is the *single* edge enumeration behind every two-pass CSR
/// graph build: the count pass and the fill pass must visit identical
/// edges in identical order, so both call this — divergence is
/// impossible by construction.
pub(crate) fn for_each_rule_arg<V: AttrValue>(
    tree: &ParseTree<V>,
    store: &AttrStore<V>,
    node: NodeId,
    ri: usize,
    mut f: impl FnMut(OccRef, Option<usize>),
) {
    let rule = &tree.grammar().prod(tree.node(node).prod).rules[ri];
    for arg in &rule.args {
        f(*arg, arg_instance(tree, store, node, *arg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;
    use crate::tree::{token, TreeBuilder};
    use std::sync::Arc;

    /// size grammar over a small tree.
    #[test]
    fn evaluates_synthesized_tree() {
        let mut g = GrammarBuilder::<i64>::new();
        let t = g.nonterminal("T");
        let size = g.synthesized(t, "size");
        let leaf = g.production("leaf", t, []);
        g.rule(leaf, (0, size), [], |_| 1);
        let fork = g.production("fork", t, [t, t]);
        g.rule(fork, (0, size), [(1, size), (2, size)], |a| a[0] + a[1] + 1);
        let gr = Arc::new(g.build(t).unwrap());
        let mut tb = TreeBuilder::new(&gr);
        let mut nodes = Vec::new();
        for _ in 0..4 {
            nodes.push(tb.leaf(leaf));
        }
        let a = tb.node(fork, [nodes[0], nodes[1]]);
        let b = tb.node(fork, [nodes[2], nodes[3]]);
        let root = tb.node(fork, [a, b]);
        let tree = tb.finish(root).unwrap();
        let (store, stats) = dynamic_eval(&tree).unwrap();
        assert_eq!(store.get(tree.root(), size), Some(&7));
        assert_eq!(stats.dynamic_applied, 7);
        assert_eq!(stats.graph_nodes, 7);
        assert_eq!(stats.graph_edges, 6);
        assert_eq!(stats.dynamic_fraction(), 1.0);
    }

    /// Inherited attributes flow downward.
    #[test]
    fn evaluates_inherited_chain() {
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let t = g.nonterminal("T");
        let out = g.synthesized(s, "out");
        let depth = g.inherited(t, "depth");
        let max = g.synthesized(t, "max");
        let top = g.production("top", s, [t]);
        g.rule(top, (1, depth), [], |_| 1);
        g.rule(top, (0, out), [(1, max)], |a| a[0]);
        let wrap = g.production("wrap", t, [t]);
        g.rule(wrap, (1, depth), [(0, depth)], |a| a[0] + 1);
        g.rule(wrap, (0, max), [(1, max)], |a| a[0]);
        let stop = g.production("stop", t, []);
        g.rule(stop, (0, max), [(0, depth)], |a| a[0]);
        let gr = Arc::new(g.build(s).unwrap());
        let mut tb = TreeBuilder::new(&gr);
        let mut n = tb.leaf(stop);
        for _ in 0..5 {
            n = tb.node(wrap, [n]);
        }
        let root = tb.node(top, [n]);
        let tree = tb.finish(root).unwrap();
        let (store, _) = dynamic_eval(&tree).unwrap();
        assert_eq!(store.get(tree.root(), out), Some(&6));
    }

    /// Token attributes participate without graph edges.
    #[test]
    fn token_arguments_are_free() {
        let mut g = GrammarBuilder::<i64>::new();
        let t = g.nonterminal("T");
        let num = g.terminal("num");
        let val = g.synthesized(num, "val");
        let size = g.synthesized(t, "size");
        let leaf = g.production("leaf", t, [num]);
        g.rule(leaf, (0, size), [(1, val)], |a| a[0] * 10);
        let gr = Arc::new(g.build(t).unwrap());
        let mut tb = TreeBuilder::new(&gr);
        let root = tb.node_full(leaf, vec![token(vec![7i64])]);
        let tree = tb.finish(root).unwrap();
        let (store, stats) = dynamic_eval(&tree).unwrap();
        assert_eq!(store.get(tree.root(), size), Some(&70));
        assert_eq!(stats.graph_edges, 0);
    }

    /// A circular tree instance is detected, not looped on.
    #[test]
    fn cycle_detected() {
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let t = g.nonterminal("T");
        let out = g.synthesized(s, "out");
        let i = g.inherited(t, "i");
        let o = g.synthesized(t, "o");
        let top = g.production("top", s, [t]);
        g.rule(top, (1, i), [(1, o)], |a| a[0]);
        g.rule(top, (0, out), [(1, o)], |a| a[0]);
        let body = g.production("body", t, []);
        g.rule(body, (0, o), [(0, i)], |a| a[0]);
        let gr = Arc::new(g.build(s).unwrap());
        let mut tb = TreeBuilder::new(&gr);
        let b = tb.leaf(body);
        let root = tb.node(top, [b]);
        let tree = tb.finish(root).unwrap();
        match dynamic_eval(&tree) {
            Err(EvalError::Cycle { stuck }) => assert_eq!(stuck, 3),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    /// The per-production lane computes the same store as the FIFO lane
    /// (confluence), on a grammar mixing inherited chains, synthesized
    /// folds and token values.
    #[test]
    fn production_batched_lane_matches_fifo() {
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let t = g.nonterminal("T");
        let num = g.terminal("num");
        let val = g.synthesized(num, "val");
        let out = g.synthesized(s, "out");
        let depth = g.inherited(t, "depth");
        let sum = g.synthesized(t, "sum");
        let top = g.production("top", s, [t, t]);
        g.rule(top, (1, depth), [], |_| 1);
        g.rule(top, (2, depth), [], |_| 10);
        g.rule(top, (0, out), [(1, sum), (2, sum)], |a| a[0] * a[1]);
        let fork = g.production("fork", t, [t, t]);
        g.rule(fork, (1, depth), [(0, depth)], |a| a[0] + 1);
        g.rule(fork, (2, depth), [(0, depth)], |a| a[0] + 2);
        g.rule(fork, (0, sum), [(1, sum), (2, sum)], |a| a[0] + a[1]);
        let leaf = g.production("leaf", t, [num]);
        g.rule(leaf, (0, sum), [(0, depth), (1, val)], |a| a[0] * a[1]);
        let gr = Arc::new(g.build(s).unwrap());
        let mut tb = TreeBuilder::new(&gr);
        let mut build = |k: i64| {
            let mut n = tb.node_full(leaf, vec![token(vec![k])]);
            for i in 0..4 {
                let m = tb.node_full(leaf, vec![token(vec![k + i])]);
                n = tb.node(fork, [n, m]);
            }
            n
        };
        let (a, b) = (build(3), build(7));
        let root = tb.node(top, [a, b]);
        let tree = tb.finish(root).unwrap();

        let (fifo, fs) = dynamic_eval_with(&tree, ReadyPolicy::Fifo).unwrap();
        let (prod, ps) = dynamic_eval_with(&tree, ReadyPolicy::ProductionBatched).unwrap();
        assert_eq!(fs.dynamic_applied, ps.dynamic_applied);
        assert_eq!(fs.graph_edges, ps.graph_edges);
        for node in tree.node_ids() {
            let sym = tree.grammar().prod(tree.node(node).prod).lhs;
            for a in 0..tree.grammar().attr_count(sym) {
                let attr = crate::grammar::AttrId(a as u32);
                assert_eq!(
                    fifo.get(node, attr),
                    prod.get(node, attr),
                    "node={node:?} attr={attr:?}"
                );
            }
        }
    }

    /// Priority attributes are evaluated before an avalanche of ready
    /// normal work.
    #[test]
    fn priority_attributes_jump_the_queue() {
        use std::sync::Mutex;
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let out = g.synthesized(s, "out");
        let stab = g.synthesized(s, "stab");
        g.mark_priority(s, stab);
        let locals: Vec<_> = (0..4).map(|i| g.synthesized(s, format!("w{i}"))).collect();
        let top = g.production("top", s, []);
        {
            let order = Arc::clone(&order);
            g.rule(top, (0, stab), [], move |_| {
                order.lock().unwrap().push("stab");
                0
            });
        }
        for (i, w) in locals.iter().enumerate() {
            let order = Arc::clone(&order);
            let _ = i;
            g.rule(top, (0, *w), [], move |_| {
                order.lock().unwrap().push("local");
                0
            });
        }
        g.rule(top, (0, out), [], |_| 0);
        let gr = Arc::new(g.build(s).unwrap());
        let mut tb = TreeBuilder::new(&gr);
        let root = tb.leaf(top);
        let tree = tb.finish(root).unwrap();
        dynamic_eval(&tree).unwrap();
        let order = order.lock().unwrap();
        assert_eq!(
            order[0], "stab",
            "priority attribute must be evaluated first, got {order:?}"
        );
    }
}
