//! Compiled visit programs: the plan segments of a grammar flattened
//! into one contiguous opcode stream.
//!
//! The segment interpreter ([`super::run_static_segment`]) walks the
//! analysis artifact directly: per step it chases
//! `plans.plan(prod).segments[seg][pc]` through two heap indirections,
//! looks the rule up in the production's rule vector, and iterates the
//! rule's own `args: Vec<OccRef>` — paying pointer-chasing and an
//! `Arc<dyn Fn>` virtual call on every rule application. Profiling (PR 3)
//! showed this dispatch cost, not cache locality, dominates the hot loop.
//!
//! [`VisitPrograms`] compiles all of that away at [`super::EvalPlan`]
//! build time:
//!
//! * **Opcode stream** — every segment of every production becomes a run
//!   of [`Op`]s in a single flat `code: Vec<Op>` for the whole grammar,
//!   terminated by [`Op::Ret`]. An interpreter frame is just
//!   `(NodeId, pc)`; no per-step segment lookups remain.
//! * **Offset tables** — `entry(prod, visit)` resolves through two dense
//!   tables: `prod_base[prod]` indexes into `entries`, and
//!   `entries[prod_base[prod] + visit - 1]` is the pc of that
//!   (production, visit) segment. Child visits re-enter through the same
//!   table (the child's production is tree data, so it is resolved at
//!   run time — everything else is resolved here).
//! * **Compiled rules** — [`Op::Eval`] carries an index into a dense
//!   [`CompiledRule`] table with the target and cost inlined and the
//!   argument occurrences pre-classified ([`Operand::Lhs`] /
//!   [`Operand::Node`] / [`Operand::Token`]) into one shared operand
//!   slab, so argument gathering walks contiguous memory instead of each
//!   rule's private `Vec<OccRef>`.
//! * **Direct-call table** — rules registered through
//!   [`crate::grammar::GrammarBuilder::rule_direct`] (or the spec
//!   layer's function registry) carry a plain `fn` pointer; the builder
//!   copies it into [`RuleCall::Direct`] so the interpreter's dispatch
//!   is a two-way match instead of an unconditional `Arc<dyn Fn>`
//!   virtual call. Rules nobody could name fall back to
//!   [`RuleCall::Boxed`] — the two paths are semantically identical
//!   (pinned by the equivalence property suite).
//!
//! Programs are grammar-level artifacts: building one is `O(total plan
//! steps)` and happens once per [`super::EvalPlan`], then every tree,
//! machine and worker thread shares it via `Arc`. The interpreter lives
//! in [`super::static_eval`] (`run_program_segment`) and is generic over
//! [`AttrSlots`], so region machines execute the same programs over
//! their `RegionStore`s.

use crate::analysis::{Plans, Step};
use crate::grammar::{AttrId, DirectFn, Grammar, OccRef, ProdId, RuleFn};
use crate::tree::{AttrSlots, Child, NodeId, ParseTree};
use crate::value::AttrValue;
use std::fmt;
use std::sync::Arc;

/// One opcode of a compiled visit program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Apply the compiled rule at this index in the program's rule
    /// table.
    Eval(u32),
    /// Descend into the child at RHS occurrence `occ` (1-based),
    /// executing its production's program for `visit` (1-based).
    Visit {
        /// RHS occurrence index, 1-based.
        occ: u16,
        /// Visit number, 1-based.
        visit: u16,
    },
    /// Segment terminator: pop the interpreter frame.
    Ret,
}

/// A pre-classified attribute occurrence: which store (or token) an
/// operand resolves through, decided at program-build time instead of
/// per application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Operand {
    /// Attribute of the node being visited.
    Lhs(AttrId),
    /// Attribute of a nonterminal child (1-based RHS occurrence).
    Node { occ: u16, attr: AttrId },
    /// Lexical attribute of a terminal child (1-based RHS occurrence).
    Token { occ: u16, attr: AttrId },
}

/// How a compiled rule's semantic function is invoked.
pub(crate) enum RuleCall<V> {
    /// Through the direct-call table: a plain `fn` pointer.
    Direct(DirectFn<V>),
    /// Fallback: the boxed closure of the original [`crate::grammar::Rule`].
    Boxed(RuleFn<V>),
}

/// A rule with everything the interpreter needs inlined: target, operand
/// range, cost and the (possibly devirtualized) call.
pub(crate) struct CompiledRule<V> {
    /// Where the result is stored (never [`Operand::Token`]).
    pub target: Operand,
    /// Operand range in [`VisitPrograms::operands`].
    pub args: (u32, u32),
    /// Abstract cost (mirrors [`crate::grammar::Rule::cost`]).
    pub cost: u64,
    /// Owning production and rule index — for diagnostics only.
    pub prod: ProdId,
    /// Rule index within the production — for diagnostics only.
    pub index: u32,
    /// The semantic function.
    pub call: RuleCall<V>,
}

/// The compiled visit programs of one grammar: a single opcode stream
/// with per-(production, visit) entry points. See the module docs for
/// the layout.
pub struct VisitPrograms<V> {
    code: Vec<Op>,
    operands: Vec<Operand>,
    rules: Vec<CompiledRule<V>>,
    /// `entries[prod_base[p] + visit - 1]` = pc of that segment.
    entries: Vec<u32>,
    /// Per-production offset into `entries`; one trailing sentinel.
    prod_base: Vec<u32>,
    /// How many rules dispatch through the direct-call table.
    direct_rules: usize,
}

impl<V: AttrValue> VisitPrograms<V> {
    /// Flattens `plans` into the compiled program representation.
    pub fn build(grammar: &Grammar<V>, plans: &Plans) -> Self {
        let mut p = VisitPrograms {
            code: Vec::with_capacity(plans.program_len()),
            operands: Vec::new(),
            rules: Vec::new(),
            entries: Vec::with_capacity(plans.segment_count()),
            prod_base: Vec::with_capacity(grammar.prods().len() + 1),
            direct_rules: 0,
        };
        for (pi, prod) in grammar.prods().iter().enumerate() {
            let prod_id = ProdId(pi as u32);
            p.prod_base.push(p.entries.len() as u32);
            let classify = |r: OccRef| -> Operand {
                if r.occ == 0 {
                    Operand::Lhs(r.attr)
                } else if grammar.symbol(prod.occ_symbol(r.occ)).terminal {
                    Operand::Token {
                        occ: r.occ as u16,
                        attr: r.attr,
                    }
                } else {
                    Operand::Node {
                        occ: r.occ as u16,
                        attr: r.attr,
                    }
                }
            };
            for segment in &plans.plan(prod_id).segments {
                p.entries.push(p.code.len() as u32);
                for step in segment {
                    match *step {
                        Step::Eval(ri) => {
                            let rule = &prod.rules[ri];
                            let a0 = p.operands.len() as u32;
                            p.operands.extend(rule.args.iter().map(|&a| classify(a)));
                            let call = match rule.direct {
                                Some(f) => {
                                    p.direct_rules += 1;
                                    RuleCall::Direct(f)
                                }
                                None => RuleCall::Boxed(Arc::clone(&rule.func)),
                            };
                            let rid = p.rules.len() as u32;
                            p.rules.push(CompiledRule {
                                target: classify(rule.target),
                                args: (a0, p.operands.len() as u32),
                                cost: rule.cost,
                                prod: prod_id,
                                index: ri as u32,
                                call,
                            });
                            p.code.push(Op::Eval(rid));
                        }
                        Step::Visit { occ, visit } => {
                            p.code.push(Op::Visit {
                                occ: occ as u16,
                                visit: visit as u16,
                            });
                        }
                    }
                }
                p.code.push(Op::Ret);
            }
        }
        p.prod_base.push(p.entries.len() as u32);
        p
    }

    /// The entry pc of the `visit`-th (1-based) segment of `prod`, or
    /// `None` when the production has no such visit.
    #[inline]
    pub(crate) fn entry(&self, prod: ProdId, visit: u32) -> Option<u32> {
        let base = self.prod_base[prod.0 as usize];
        let idx = base + visit.checked_sub(1)?;
        if idx < self.prod_base[prod.0 as usize + 1] {
            Some(self.entries[idx as usize])
        } else {
            None
        }
    }

    /// The opcode at `pc`.
    #[inline]
    pub(crate) fn op(&self, pc: u32) -> Op {
        self.code[pc as usize]
    }

    /// The compiled rule behind an [`Op::Eval`].
    #[inline]
    pub(crate) fn rule(&self, id: u32) -> &CompiledRule<V> {
        &self.rules[id as usize]
    }

    /// The operand slice of a compiled rule.
    #[inline]
    pub(crate) fn args_of(&self, rule: &CompiledRule<V>) -> &[Operand] {
        &self.operands[rule.args.0 as usize..rule.args.1 as usize]
    }

    /// Total number of opcodes (all segments, all productions).
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// Number of compiled rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// How many compiled rules dispatch through the direct-call table
    /// (the rest fall back to the boxed closure).
    pub fn direct_rule_count(&self) -> usize {
        self.direct_rules
    }
}

impl<V> fmt::Debug for VisitPrograms<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VisitPrograms({} ops, {} rules, {} direct)",
            self.code.len(),
            self.rules.len(),
            self.direct_rules
        )
    }
}

/// Resolves an operand to a value reference at `node` — the compiled
/// counterpart of [`crate::tree::occ_value`]. Returns `None` for a slot
/// not yet filled (or a tree/program mismatch, which the caller turns
/// into a [`super::EvalError::PlanInconsistency`]).
#[inline]
pub(crate) fn resolve_operand<'a, V: AttrValue, S: AttrSlots<V>>(
    tree: &'a ParseTree<V>,
    store: &'a S,
    node: NodeId,
    operand: Operand,
) -> Option<&'a V> {
    match operand {
        Operand::Lhs(attr) => store.get(node, attr),
        Operand::Node { occ, attr } => match tree.node(node).children.get(occ as usize - 1)? {
            Child::Node(c) => store.get(*c, attr),
            Child::Token(_) => None,
        },
        Operand::Token { occ, attr } => match tree.node(node).children.get(occ as usize - 1)? {
            Child::Token(vals) => vals.get(attr.0 as usize),
            Child::Node(_) => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::compute_plans;
    use crate::grammar::GrammarBuilder;

    /// A two-pass list grammar with a mix of direct and boxed rules.
    fn sample() -> (Arc<Grammar<i64>>, Plans) {
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let l = g.nonterminal("L");
        let done = g.synthesized(s, "done");
        let decls = g.synthesized(l, "decls");
        let env = g.inherited(l, "env");
        let code = g.synthesized(l, "code");
        let top = g.production("top", s, [l]);
        g.rule_direct(top, (1, env), [(1, decls)], |a| a[0] * 100);
        g.copy_rule(top, (0, done), (1, code));
        let cons = g.production("cons", l, [l]);
        g.rule_direct(cons, (0, decls), [(1, decls)], |a| a[0] + 1);
        g.rule(cons, (1, env), [(0, env)], |a| a[0] + 1);
        g.rule(cons, (0, code), [(1, code), (0, env)], |a| a[0] + a[1]);
        let nil = g.production("nil", l, []);
        g.rule(nil, (0, decls), [], |_| 0);
        g.rule_direct(nil, (0, code), [(0, env)], |a| a[0]);
        let gr = Arc::new(g.build(s).unwrap());
        let plans = compute_plans(&gr).unwrap();
        (gr, plans)
    }

    #[test]
    fn flattening_matches_plan_sizes() {
        let (g, plans) = sample();
        let p = VisitPrograms::build(&g, &plans);
        assert_eq!(p.code_len(), plans.program_len());
        // One compiled rule per Step::Eval: every rule of every
        // production is scheduled exactly once.
        let total_rules: usize = g.prods().iter().map(|pr| pr.rules.len()).sum();
        assert_eq!(p.rule_count(), total_rules);
        // rule_direct + copy_rule entries made it into the table.
        assert_eq!(p.direct_rule_count(), 4);
    }

    #[test]
    fn entries_cover_every_segment_and_end_in_ret() {
        let (g, plans) = sample();
        let p = VisitPrograms::build(&g, &plans);
        for (pi, _) in g.prods().iter().enumerate() {
            let prod = ProdId(pi as u32);
            let segs = plans.plan(prod).segments.len();
            for v in 1..=segs as u32 {
                let pc = p.entry(prod, v).expect("segment entry");
                // Walk to the terminator; every segment is Ret-terminated.
                let mut pc = pc;
                loop {
                    match p.op(pc) {
                        Op::Ret => break,
                        _ => pc += 1,
                    }
                }
            }
            assert_eq!(p.entry(prod, segs as u32 + 1), None);
            assert_eq!(p.entry(prod, 0), None);
        }
    }
}
