//! The plan/instance split: immutable, shareable evaluation artifacts.
//!
//! Everything an evaluator needs that depends only on the *grammar* —
//! visit sequences, attribute partitions, per-rule priority flags,
//! per-symbol synthesized/inherited attribute lists — is computed once
//! into an [`EvalPlan`] and shared (via `Arc`) across every tree, every
//! machine and every worker thread. Per-*tree* state (the attribute
//! store, the task list, the dependency CSR) stays in [`super::Machine`].
//!
//! Before this split, each `Machine::new` re-derived the grammar-level
//! facts by walking the tree: the priority flag of every task's target
//! (one `occ_slot` walk per rule application task) and the syn/inh
//! attribute sets of every boundary symbol (one filtering iteration per
//! node). Under a batched driver compiling thousands of trees those
//! walks dominate construction; [`EvalPlan`] reduces them to table
//! lookups.
//!
//! [`MachineScratch`] is the complementary *reusable* state: buffers a
//! machine needs during construction and evaluation (the CSR pair list,
//! the region-node worklist, the [`super::EvalScratch`] argument
//! gatherer and interpreter frame stacks) whose capacity should survive
//! from one tree to the next. A pool worker
//! keeps one scratch alive across its whole lifetime:
//!
//! ```text
//! loop {
//!     let machine = Machine::from_plan(&plan, &tree, .., scratch);
//!     ... evaluate ...
//!     let (store, scratch2) = machine.recycle();
//!     scratch = scratch2;        // capacity carries over to the next tree
//! }
//! ```

use crate::analysis::{compute_plans, OagError, Plans};
use crate::grammar::{AttrId, AttrKind, Grammar};
use crate::split::{Decomposition, RegionId, WorkTable};
use crate::tree::{NodeId, ParseTree};
use crate::value::AttrValue;
use std::fmt;
use std::sync::Arc;

use super::program::VisitPrograms;
use super::{EvalScratch, MachineMode};

/// Immutable grammar-level evaluation artifacts, computed once and
/// shared across all compilations of the same grammar.
pub struct EvalPlan<V: AttrValue> {
    grammar: Arc<Grammar<V>>,
    plans: Option<Arc<Plans>>,
    /// The plans compiled into flat opcode streams (see
    /// [`super::program`]) — present exactly when `plans` is.
    programs: Option<Arc<VisitPrograms<V>>>,
    ordered_failure: Option<OagError>,
    /// `rule_priority[prod][rule]`: the rule's target attribute is a
    /// priority attribute (grammar-level fact; needs no tree).
    rule_priority: Vec<Vec<bool>>,
    /// `syn_attrs[symbol]` — synthesized attribute ids, in order.
    syn_attrs: Vec<Vec<AttrId>>,
    /// `inh_attrs[symbol]` — inherited attribute ids, in order.
    inh_attrs: Vec<Vec<AttrId>>,
    /// Per-production work estimates (Σ rule costs) — what the adaptive
    /// decomposition sizes its regions with.
    work: WorkTable,
}

impl<V: AttrValue> EvalPlan<V> {
    /// Runs the full grammar analysis and builds all lookup tables.
    ///
    /// This is the expensive entry point (Kastens' fixpoint + visit
    /// sequence scheduling); batch drivers call it once per grammar.
    pub fn analyze(grammar: &Arc<Grammar<V>>) -> Self {
        match compute_plans(grammar.as_ref()) {
            Ok(p) => Self::from_parts(grammar, Some(Arc::new(p)), None),
            Err(e) => Self::from_parts(grammar, None, Some(e)),
        }
    }

    /// Assembles a plan from an already-computed analysis (cheap: only
    /// the lookup tables are built).
    pub fn from_parts(
        grammar: &Arc<Grammar<V>>,
        plans: Option<Arc<Plans>>,
        ordered_failure: Option<OagError>,
    ) -> Self {
        let rule_priority = grammar
            .prods()
            .iter()
            .map(|p| {
                p.rules
                    .iter()
                    .map(|r| {
                        let sym = p.occ_symbol(r.target.occ);
                        grammar.symbol(sym).attrs[r.target.attr.0 as usize].priority
                    })
                    .collect()
            })
            .collect();
        let syn_attrs = grammar
            .symbols()
            .iter()
            .map(|s| s.attrs_of_kind(AttrKind::Syn).collect())
            .collect();
        let inh_attrs = grammar
            .symbols()
            .iter()
            .map(|s| s.attrs_of_kind(AttrKind::Inh).collect())
            .collect();
        let programs = plans
            .as_ref()
            .map(|p| Arc::new(VisitPrograms::build(grammar.as_ref(), p)));
        EvalPlan {
            grammar: Arc::clone(grammar),
            plans,
            programs,
            ordered_failure,
            rule_priority,
            syn_attrs,
            inh_attrs,
            work: WorkTable::new(grammar.as_ref()),
        }
    }

    /// The grammar this plan was computed from.
    pub fn grammar(&self) -> &Arc<Grammar<V>> {
        &self.grammar
    }

    /// The static visit sequences, when the grammar is l-ordered.
    pub fn plans(&self) -> Option<&Arc<Plans>> {
        self.plans.as_ref()
    }

    /// The compiled visit programs — the flattened, devirtualized form
    /// of [`EvalPlan::plans`]; present exactly when plans are.
    pub fn programs(&self) -> Option<&Arc<VisitPrograms<V>>> {
        self.programs.as_ref()
    }

    /// Why static ordering failed, if it did.
    pub fn ordered_failure(&self) -> Option<&OagError> {
        self.ordered_failure.as_ref()
    }

    /// The best machine mode this plan supports: combined when ordered,
    /// dynamic otherwise.
    pub fn best_mode(&self) -> MachineMode {
        if self.plans.is_some() {
            MachineMode::Combined
        } else {
            MachineMode::Dynamic
        }
    }

    /// Whether `rule` of `prod` defines a priority attribute.
    #[inline]
    pub fn rule_priority(&self, prod: crate::grammar::ProdId, rule: usize) -> bool {
        self.rule_priority[prod.0 as usize][rule]
    }

    /// Synthesized attribute ids of a symbol.
    #[inline]
    pub fn syn_attrs(&self, sym: crate::grammar::SymbolId) -> &[AttrId] {
        &self.syn_attrs[sym.0 as usize]
    }

    /// Inherited attribute ids of a symbol.
    #[inline]
    pub fn inh_attrs(&self, sym: crate::grammar::SymbolId) -> &[AttrId] {
        &self.inh_attrs[sym.0 as usize]
    }

    /// The per-production work-estimate table (for cost-driven
    /// decomposition).
    pub fn work_table(&self) -> &WorkTable {
        &self.work
    }

    /// Estimated work (rule-cost units) of one application of `prod`.
    #[inline]
    pub fn prod_work(&self, prod: crate::grammar::ProdId) -> u64 {
        self.work.prod_work(prod)
    }

    /// Estimated total work of a tree under this plan's grammar.
    pub fn tree_work(&self, tree: &ParseTree<V>) -> u64 {
        self.work.tree_work(tree)
    }

    /// Estimated work of one region of a decomposition.
    pub fn region_work(
        &self,
        tree: &ParseTree<V>,
        decomp: &Decomposition,
        region: RegionId,
    ) -> u64 {
        self.work.region_work(tree, decomp, region)
    }
}

impl<V: AttrValue> fmt::Debug for EvalPlan<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EvalPlan({} prods, {})",
            self.grammar.prods().len(),
            if self.plans.is_some() {
                "ordered"
            } else {
                "dynamic-only"
            }
        )
    }
}

/// Reusable per-worker buffers: construction and evaluation scratch
/// whose capacity carries over from one tree to the next.
pub struct MachineScratch<V> {
    /// Flat `(instance, task)` pair list for the CSR waiters build.
    pub(super) edges: Vec<(u32, u32)>,
    /// Region-node collection buffer (the single construction walk).
    pub(super) region_nodes: Vec<NodeId>,
    /// DFS worklist for the construction walk.
    pub(super) stack: Vec<NodeId>,
    /// Boundary pairs collected by the construction walk.
    pub(super) boundary: Vec<(NodeId, NodeId)>,
    /// Spine membership (ancestors of boundary children).
    pub(super) spine: std::collections::HashSet<NodeId>,
    /// Static-subtree roots hanging off the spine.
    pub(super) static_roots: Vec<NodeId>,
    /// Evaluation scratch: the argument-gathering buffer plus the
    /// interpreter frame stacks reused across static visits.
    pub(super) eval: EvalScratch<V>,
}

impl<V> Default for MachineScratch<V> {
    fn default() -> Self {
        MachineScratch {
            edges: Vec::new(),
            region_nodes: Vec::new(),
            stack: Vec::new(),
            boundary: Vec::new(),
            spine: std::collections::HashSet::new(),
            static_roots: Vec::new(),
            eval: EvalScratch::new(),
        }
    }
}

impl<V> MachineScratch<V> {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears contents, keeping capacity.
    pub(super) fn reset(&mut self) {
        self.edges.clear();
        self.region_nodes.clear();
        self.stack.clear();
        self.boundary.clear();
        self.spine.clear();
        self.static_roots.clear();
    }
}

impl<V> fmt::Debug for MachineScratch<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MachineScratch(edges cap {}, nodes cap {})",
            self.edges.capacity(),
            self.region_nodes.capacity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    #[test]
    fn plan_tables_match_grammar_facts() {
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let t = g.nonterminal("T");
        let out = g.synthesized(s, "out");
        let env = g.inherited(t, "env");
        let code = g.synthesized(t, "code");
        g.mark_priority(t, env);
        let top = g.production("top", s, [t]);
        g.rule(top, (1, env), [], |_| 0);
        g.rule(top, (0, out), [(1, code)], |a| a[0]);
        let body = g.production("body", t, []);
        g.rule(body, (0, code), [(0, env)], |a| a[0] + 1);
        let gr = Arc::new(g.build(s).unwrap());
        let plan = EvalPlan::analyze(&gr);

        assert!(plan.plans().is_some());
        assert!(plan.ordered_failure().is_none());
        assert_eq!(plan.best_mode(), MachineMode::Combined);
        // top's rule 0 targets $1.env (priority), rule 1 targets $0.out.
        assert!(plan.rule_priority(top, 0));
        assert!(!plan.rule_priority(top, 1));
        assert!(!plan.rule_priority(body, 0));
        assert_eq!(plan.syn_attrs(s), &[out]);
        assert_eq!(plan.inh_attrs(s), &[] as &[AttrId]);
        assert_eq!(plan.syn_attrs(t), &[code]);
        assert_eq!(plan.inh_attrs(t), &[env]);
    }

    #[test]
    fn from_parts_is_cheap_and_equivalent() {
        let mut g = GrammarBuilder::<i64>::new();
        let t = g.nonterminal("T");
        let size = g.synthesized(t, "size");
        let leaf = g.production("leaf", t, []);
        g.rule(leaf, (0, size), [], |_| 1);
        let gr = Arc::new(g.build(t).unwrap());
        let analyzed = EvalPlan::analyze(&gr);
        let assembled = EvalPlan::from_parts(&gr, analyzed.plans().cloned(), None);
        assert_eq!(assembled.best_mode(), MachineMode::Combined);
        assert_eq!(assembled.syn_attrs(t), analyzed.syn_attrs(t));
    }

    #[test]
    fn scratch_reset_keeps_capacity() {
        let mut s: MachineScratch<i64> = MachineScratch::new();
        s.edges.extend([(0, 1), (2, 3)]);
        s.region_nodes.push(NodeId(0));
        let cap = s.edges.capacity();
        s.reset();
        assert!(s.edges.is_empty());
        assert_eq!(s.edges.capacity(), cap);
    }
}
