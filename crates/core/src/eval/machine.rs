//! The per-evaluator engine of the combined evaluator (§2.4, Figure 4)
//! and of the parallel dynamic evaluator.
//!
//! Each parallel evaluator owns one *region* of the parse tree (see
//! [`crate::split`]). During construction the machine determines, for
//! each node, whether it lies on a path from the region root to a
//! *remotely evaluated leaf* (a child owned by another region):
//!
//! * **spine nodes** are evaluated dynamically — one scheduler task per
//!   semantic rule;
//! * subtrees hanging off the spine are evaluated **statically**: a
//!   single `StaticVisit` task per visit of the subtree root, whose
//!   *transitive dependencies* — precomputed by the grammar analysis as
//!   attribute phases — are entered into the dynamic dependency graph.
//!
//! Synthesized attributes of remote children and inherited attributes of
//! the region root are *external*: the machine blocks on them until
//! [`Machine::provide`] delivers the value from the network. Inherited
//! attributes the machine computes for remote children, and synthesized
//! attributes of its own region root, are emitted as [`AttrMsg`] sends.
//!
//! In [`MachineMode::Dynamic`] every region node is treated as spine,
//! which is exactly the paper's "purely dynamic" parallel evaluator.
//!
//! # Region-local storage
//!
//! A machine's attribute store is a [`RegionStore`]: slots indexed
//! *within the region* through the decomposition's shared
//! [`crate::split::SlotMap`]. The only nodes a machine ever addresses
//! are the nodes its region owns (dense span from 0) and its boundary
//! children (roots of child regions, aliased through the layout's
//! small remap) — so construction and memory are O(region), the
//! dependency CSR and the ready bookkeeping are sized by the region's
//! slots, and K-region decomposition of a tree allocates ≈1× the
//! tree's instances in total rather than K×. [`Machine::recycle`] /
//! [`Machine::into_store`] hand the region-local store back for sparse
//! assembly into the final whole-tree store
//! ([`crate::tree::AttrStore::absorb_region`]).

use crate::analysis::Plans;
use crate::csr::Csr;
use crate::grammar::{AttrId, SymbolId};
use crate::split::{Decomposition, RegionId};
use crate::stats::EvalStats;
use crate::tree::{occ_slot, occ_value, NodeId, ParseTree, RegionStore};
use crate::value::AttrValue;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use super::{run_program_segment, EvalError, EvalPlan, MachineScratch};

/// Evaluation strategy of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineMode {
    /// Combined static/dynamic evaluation (requires plans).
    Combined,
    /// Purely dynamic evaluation of the whole region.
    Dynamic,
}

/// Destination of an outgoing attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTarget {
    /// Another evaluator's region.
    Region(RegionId),
    /// The parser (root attributes of the whole tree).
    Parser,
}

/// An attribute value leaving a machine.
#[derive(Debug, Clone)]
pub struct AttrMsg<V> {
    /// Tree node the instance belongs to.
    pub node: NodeId,
    /// Attribute id within that node's symbol.
    pub attr: AttrId,
    /// The computed value.
    pub value: V,
    /// Where it must be delivered.
    pub to: SendTarget,
}

/// What one scheduler step did.
#[derive(Debug)]
pub struct StepOutcome<V> {
    /// Rule-cost units consumed (sum of applied rules' costs).
    pub cost_units: u64,
    /// Rules applied dynamically in this step (0 or 1).
    pub dynamic_rules: usize,
    /// Rules applied inside a static visit in this step.
    pub static_rules: usize,
    /// Attribute messages to transmit.
    pub sends: Vec<AttrMsg<V>>,
    /// Symbol/attribute the step produced (for phase classification in
    /// traces); `None` for attribute-free static visits.
    pub target: Option<(SymbolId, AttrId)>,
}

#[derive(Debug, Clone, Copy)]
enum Task {
    Apply { node: NodeId, rule: usize },
    StaticVisit { node: NodeId, visit: u32 },
}

/// One parallel evaluator working on one region of the tree.
pub struct Machine<V: AttrValue> {
    tree: Arc<ParseTree<V>>,
    plan: Arc<EvalPlan<V>>,
    region: RegionId,
    store: RegionStore<V>,
    tasks: Vec<Task>,
    missing: Vec<u32>,
    /// instance -> tasks waiting on it, in compressed sparse row form
    /// (one flat allocation instead of a `Vec` per instance).
    waiters: Csr,
    /// Per-task priority flag (precomputed so the hot wake-up path does
    /// no tree walks).
    priority: Vec<bool>,
    /// StaticVisit chaining: task -> the next visit's task.
    chain_next: HashMap<u32, u32>,
    ready: VecDeque<u32>,
    ready_priority: VecDeque<u32>,
    executed: usize,
    /// Reusable construction/evaluation buffers (recycled across trees
    /// via [`Machine::recycle`]).
    scratch: MachineScratch<V>,
    stats: EvalStats,
    /// Locally computed instances that must be transmitted.
    send_on_fill: HashMap<usize, (NodeId, AttrId, SendTarget)>,
    /// External instances not yet provided.
    awaiting: HashSet<usize>,
    graph_nodes: usize,
    graph_edges: usize,
    local_nodes: usize,
    est_work: u64,
}

impl<V: AttrValue> Machine<V> {
    /// Builds the machine for `region` of the decomposed tree.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is [`MachineMode::Combined`] but `plans` is
    /// `None` — the caller (the evaluator factory) must fall back to
    /// dynamic mode when the grammar is not l-ordered.
    pub fn new(
        tree: &Arc<ParseTree<V>>,
        plans: Option<&Arc<Plans>>,
        decomp: &Decomposition,
        region: RegionId,
        mode: MachineMode,
    ) -> Self {
        let plan = Arc::new(EvalPlan::from_parts(tree.grammar(), plans.cloned(), None));
        Machine::from_plan(&plan, tree, decomp, region, mode, MachineScratch::new())
    }

    /// Builds the machine from a shared [`EvalPlan`] with reusable
    /// buffers — the batched-driver path. `scratch` is consumed and can
    /// be recovered (with its grown capacity) via [`Machine::recycle`]
    /// when this tree is finished.
    ///
    /// Construction performs **one** walk over the region: a single DFS
    /// collects the region's nodes and its boundary children, and the
    /// task-enumeration pass derives each task's priority flag and the
    /// external/send classification from the plan's precomputed tables
    /// instead of re-walking the tree per attribute.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is [`MachineMode::Combined`] but the plan has no
    /// visit sequences — the caller must fall back to dynamic mode when
    /// the grammar is not l-ordered.
    pub fn from_plan(
        plan: &Arc<EvalPlan<V>>,
        tree: &Arc<ParseTree<V>>,
        decomp: &Decomposition,
        region: RegionId,
        mode: MachineMode,
        mut scratch: MachineScratch<V>,
    ) -> Self {
        assert!(
            mode == MachineMode::Dynamic || plan.plans().is_some(),
            "combined mode requires static plans"
        );
        let g = tree.grammar();
        let info = &decomp.regions[region as usize];
        let region_root = info.root;
        scratch.reset();

        // The single construction walk: one DFS collects region nodes
        // AND boundary children (in-region parent, out-of-region child).
        // All collection buffers live in the scratch and keep their
        // capacity across trees.
        scratch.stack.push(region_root);
        while let Some(n) = scratch.stack.pop() {
            scratch.region_nodes.push(n);
            for c in &tree.node(n).children {
                if let crate::tree::Child::Node(c) = c {
                    if decomp.region(*c) == region {
                        scratch.stack.push(*c);
                    } else {
                        scratch.boundary.push((n, *c));
                    }
                }
            }
        }

        // Spine: ancestors (within the region) of boundary children.
        match mode {
            MachineMode::Dynamic => scratch.spine.extend(scratch.region_nodes.iter().copied()),
            MachineMode::Combined => {
                for &(parent, _) in &scratch.boundary {
                    let mut n = parent;
                    loop {
                        if !scratch.spine.insert(n) {
                            break;
                        }
                        if n == region_root {
                            break;
                        }
                        let (p, _) = tree.node(n).parent.expect("non-root node has parent");
                        n = p;
                    }
                }
            }
        }

        // O(region) storage: the slot layout was computed once at
        // decomposition time and is shared by every region's machine.
        let store = RegionStore::new(decomp.slot_map(), region);
        let local_nodes = scratch.region_nodes.len();
        // Fold the region's work estimate into the construction pass —
        // the number the adaptive decomposition sized this region by.
        let est_work: u64 = scratch
            .region_nodes
            .iter()
            .map(|&n| plan.prod_work(tree.node(n).prod))
            .sum();
        let mut m = Machine {
            tree: Arc::clone(tree),
            plan: Arc::clone(plan),
            region,
            store,
            tasks: Vec::new(),
            missing: Vec::new(),
            waiters: Csr::empty(),
            priority: Vec::new(),
            chain_next: HashMap::new(),
            ready: VecDeque::new(),
            ready_priority: VecDeque::new(),
            executed: 0,
            scratch,
            stats: EvalStats::default(),
            send_on_fill: HashMap::new(),
            awaiting: HashSet::new(),
            graph_nodes: 0,
            graph_edges: 0,
            local_nodes,
            est_work,
        };

        // External inputs: syn attrs of boundary children ...
        for &(_, child) in &m.scratch.boundary {
            let csym = g.prod(tree.node(child).prod).lhs;
            for &a in plan.syn_attrs(csym) {
                m.awaiting.insert(m.store.instance(child, a));
            }
        }
        // ... and inh attrs of the region root (unless it is the tree
        // root, whose start symbol has none).
        let root_sym = g.prod(tree.node(region_root).prod).lhs;
        if region_root != tree.root() {
            for &a in plan.inh_attrs(root_sym) {
                m.awaiting.insert(m.store.instance(region_root, a));
            }
        }

        // Outgoing values: inh attrs of boundary children go to the
        // owning region; syn attrs of the region root go to the parent
        // region (or the parser at the very top).
        for &(_, child) in &m.scratch.boundary {
            let csym = g.prod(tree.node(child).prod).lhs;
            let target = SendTarget::Region(decomp.region(child));
            for &a in plan.inh_attrs(csym) {
                let inst = m.store.instance(child, a);
                m.send_on_fill.insert(inst, (child, a, target));
            }
        }
        {
            let target = match info.parent {
                Some(p) => SendTarget::Region(p),
                None => SendTarget::Parser,
            };
            for &a in plan.syn_attrs(root_sym) {
                let inst = m.store.instance(region_root, a);
                m.send_on_fill.insert(inst, (region_root, a, target));
            }
        }

        // Task enumeration (dynamic tasks for spine nodes). The waiters
        // relation is accumulated as one flat (instance, task) pair list
        // and compressed into CSR afterwards — no per-instance
        // allocations. Priority flags come straight from the plan's
        // per-rule table, folded into this same pass.
        let mut edges = std::mem::take(&mut m.scratch.edges);
        for i in 0..m.scratch.region_nodes.len() {
            let n = m.scratch.region_nodes[i];
            if !m.scratch.spine.contains(&n) {
                continue;
            }
            let prod_id = tree.node(n).prod;
            let prod = g.prod(prod_id);
            for (ri, rule) in prod.rules.iter().enumerate() {
                let tid = m.tasks.len() as u32;
                m.tasks.push(Task::Apply { node: n, rule: ri });
                m.priority.push(plan.rule_priority(prod_id, ri));
                let mut need = 0u32;
                for arg in &rule.args {
                    if let Some(inst) = super::dynamic::arg_instance(&m.tree, &m.store, n, *arg) {
                        edges.push((inst as u32, tid));
                        need += 1;
                        m.graph_edges += 1;
                    }
                }
                m.missing.push(need);
            }
        }

        // Static-visit tasks for subtrees hanging off the spine (or the
        // whole region when it has no boundary at all).
        if mode == MachineMode::Combined {
            let plans = Arc::clone(plan.plans().expect("checked above"));
            if m.scratch.spine.is_empty() {
                m.scratch.static_roots.push(region_root);
            } else {
                for i in 0..m.scratch.region_nodes.len() {
                    let n = m.scratch.region_nodes[i];
                    if !m.scratch.spine.contains(&n) {
                        continue;
                    }
                    for c in &tree.node(n).children {
                        if let crate::tree::Child::Node(c) = c {
                            if decomp.region(*c) == region && !m.scratch.spine.contains(c) {
                                m.scratch.static_roots.push(*c);
                            }
                        }
                    }
                }
            }
            for i in 0..m.scratch.static_roots.len() {
                let r = m.scratch.static_roots[i];
                let rsym = g.prod(tree.node(r).prod).lhs;
                let visits = plans.phases.visit_count(rsym);
                let mut prev: Option<u32> = None;
                for v in 1..=visits {
                    let tid = m.tasks.len() as u32;
                    m.tasks.push(Task::StaticVisit { node: r, visit: v });
                    m.priority.push(false);
                    let mut need = 0u32;
                    for &a in plan.inh_attrs(rsym) {
                        if plans.phases.of(rsym, a) == v {
                            let inst = m.store.instance(r, a);
                            edges.push((inst as u32, tid));
                            need += 1;
                            m.graph_edges += 1;
                        }
                    }
                    if let Some(p) = prev {
                        m.chain_next.insert(p, tid);
                        need += 1;
                        m.graph_edges += 1;
                    }
                    m.missing.push(need);
                    prev = Some(tid);
                }
            }
        }

        m.waiters = Csr::from_pairs(m.store.len(), &edges);
        m.scratch.edges = edges;
        m.graph_nodes = m.tasks.len();
        m.stats.graph_nodes = m.graph_nodes;
        m.stats.graph_edges = m.graph_edges;

        // Seed the ready queues.
        for tid in 0..m.tasks.len() as u32 {
            if m.missing[tid as usize] == 0 {
                m.enqueue(tid);
            }
        }
        m
    }

    fn enqueue(&mut self, tid: u32) {
        if self.priority[tid as usize] {
            self.ready_priority.push_back(tid);
        } else {
            self.ready.push_back(tid);
        }
    }

    /// The region this machine evaluates.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Number of tree nodes owned by this machine.
    pub fn local_nodes(&self) -> usize {
        self.local_nodes
    }

    /// Estimated work (rule-cost units) of this machine's region — the
    /// quantity [`crate::split::decompose_adaptive`] budgets regions
    /// by. Machines are constructed from an arbitrary region set; the
    /// estimate is summed over exactly the nodes this region owns.
    pub fn estimated_work(&self) -> u64 {
        self.est_work
    }

    /// Size of the dependency graph built at start-up — the cost the
    /// dynamic pipeline pays before evaluating anything.
    pub fn graph_size(&self) -> (usize, usize) {
        (self.graph_nodes, self.graph_edges)
    }

    /// `true` once every task has executed.
    pub fn is_done(&self) -> bool {
        self.executed == self.tasks.len()
    }

    /// Tasks not yet executed.
    pub fn pending(&self) -> usize {
        self.tasks.len() - self.executed
    }

    /// External instances still awaited.
    pub fn awaiting(&self) -> usize {
        self.awaiting.len()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Consumes the machine, returning its (partially) filled
    /// region-local store. Merge it into a whole-tree result with
    /// [`crate::tree::AttrStore::absorb_region`].
    pub fn into_store(self) -> RegionStore<V> {
        self.store
    }

    /// Consumes the machine, returning its region-local store, final
    /// statistics and the reusable scratch buffers (for the next
    /// tree's machine).
    pub fn recycle(self) -> (RegionStore<V>, EvalStats, MachineScratch<V>) {
        (self.store, self.stats, self.scratch)
    }

    /// Read access to the machine's region-local store.
    pub fn store(&self) -> &RegionStore<V> {
        &self.store
    }

    /// Delivers an external attribute value (from the network).
    /// Duplicate deliveries of an instance are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `node` is neither owned by this machine's region nor
    /// one of its boundary children — the region-local store has no
    /// slot for any other node. Senders route by the decomposition's
    /// `(ticket, region)` placement, which only ever produces those
    /// two cases; anything else is a routing bug worth crashing on.
    pub fn provide(&mut self, node: NodeId, attr: AttrId, value: V) {
        let inst = self.store.instance(node, attr);
        if !self.awaiting.remove(&inst) {
            return; // duplicate (or locally computed) delivery
        }
        self.stats.attrs_received += 1;
        self.store.set_by_index(inst, value);
        self.notify(inst);
    }

    fn notify(&mut self, inst: usize) {
        // Instances are write-once, so each is notified at most once;
        // provide() independently drops duplicate external deliveries.
        for k in self.waiters.target_range(inst) {
            let w = self.waiters.target_at(k);
            self.missing[w as usize] -= 1;
            if self.missing[w as usize] == 0 {
                self.enqueue(w);
            }
        }
    }

    /// Fills a locally computed instance: notifies waiting tasks and
    /// collects an outgoing message if the instance crosses the region
    /// boundary.
    fn filled_locally(&mut self, inst: usize, sends: &mut Vec<AttrMsg<V>>) {
        self.notify(inst);
        if let Some((node, attr, to)) = self.send_on_fill.remove(&inst) {
            let value = self
                .store
                .get_by_index(inst)
                .expect("instance was just filled")
                .clone();
            self.stats.attrs_sent += 1;
            self.stats.bytes_sent += value.wire_size();
            sends.push(AttrMsg {
                node,
                attr,
                value,
                to,
            });
        }
    }

    /// Executes one ready task. Returns `None` when no task is ready
    /// (machine finished or blocked on external values).
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError::PlanInconsistency`] from static visits.
    pub fn step(&mut self) -> Result<Option<StepOutcome<V>>, EvalError> {
        let Some(tid) = self
            .ready_priority
            .pop_front()
            .or_else(|| self.ready.pop_front())
        else {
            return Ok(None);
        };
        self.executed += 1;
        let g = Arc::clone(self.tree.grammar());
        match self.tasks[tid as usize] {
            Task::Apply { node, rule } => {
                let r = &g.prod(self.tree.node(node).prod).rules[rule];
                let tree = &self.tree;
                let store = &self.store;
                let value = self.scratch.eval.arg.apply(r, |a| {
                    occ_value(tree, store, node, a.occ, a.attr)
                        .expect("scheduler readiness guarantees arguments")
                });
                let (tn, ta) = occ_slot(&self.tree, node, r.target.occ, r.target.attr);
                self.store.set(tn, ta, value);
                self.stats.dynamic_applied += 1;
                self.stats.rule_cost_units += r.cost;
                let inst = self.store.instance(tn, ta);
                let mut sends = Vec::new();
                self.filled_locally(inst, &mut sends);
                let sym = g.prod(self.tree.node(tn).prod).lhs;
                Ok(Some(StepOutcome {
                    cost_units: r.cost,
                    dynamic_rules: 1,
                    static_rules: 0,
                    sends,
                    target: Some((sym, ta)),
                }))
            }
            Task::StaticVisit { node, visit } => {
                let plan = Arc::clone(&self.plan);
                let plans = plan.plans().expect("combined mode");
                // Region machines execute the same compiled programs the
                // sequential evaluator runs, over their RegionStore.
                let programs = plan.programs().expect("combined mode");
                let before = self.stats;
                run_program_segment(
                    &self.tree,
                    programs,
                    &mut self.store,
                    node,
                    visit,
                    &mut self.stats,
                    &mut self.scratch.eval,
                )?;
                let rules = self.stats.static_applied - before.static_applied;
                let cost = self.stats.rule_cost_units - before.rule_cost_units;
                // Expose the subtree root's synthesized attributes of
                // this phase to the dynamic graph and the network.
                let sym = g.prod(self.tree.node(node).prod).lhs;
                let mut sends = Vec::new();
                let mut target = None;
                for &a in plan.syn_attrs(sym) {
                    if plans.phases.of(sym, a) != visit {
                        continue;
                    }
                    target = Some((sym, a));
                    let inst = self.store.instance(node, a);
                    self.filled_locally(inst, &mut sends);
                }
                // Unlock the next visit of this subtree.
                if let Some(next) = self.chain_next.remove(&tid) {
                    self.missing[next as usize] -= 1;
                    if self.missing[next as usize] == 0 {
                        self.enqueue(next);
                    }
                }
                Ok(Some(StepOutcome {
                    cost_units: cost,
                    dynamic_rules: 0,
                    static_rules: rules,
                    sends,
                    target,
                }))
            }
        }
    }

    /// Runs until blocked or finished, collecting all outcomes' sends.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EvalError`] from [`Machine::step`].
    pub fn run(&mut self) -> Result<Vec<AttrMsg<V>>, EvalError> {
        let mut sends = Vec::new();
        while let Some(outcome) = self.step()? {
            sends.extend(outcome.sends);
        }
        Ok(sends)
    }
}

impl<V: AttrValue> std::fmt::Debug for Machine<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Machine(region {}, {}/{} tasks done, awaiting {})",
            self.region,
            self.executed,
            self.tasks.len(),
            self.awaiting.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::compute_plans;
    use crate::eval::dynamic_eval;
    use crate::grammar::{AttrKind, Grammar, GrammarBuilder, ProdId};
    use crate::split::{decompose, SplitConfig};
    use crate::tree::{AttrStore, TreeBuilder};

    /// Two-pass grammar with splittable list; used across machine tests.
    struct Fixture {
        grammar: Arc<Grammar<i64>>,
        tree: Arc<ParseTree<i64>>,
        plans: Arc<Plans>,
        done: AttrId,
    }

    fn fixture(n_items: usize, depth: usize) -> Fixture {
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let l = g.nonterminal("L");
        let item = g.nonterminal("I");
        let done = g.synthesized(s, "done");
        let decls = g.synthesized(l, "decls");
        let env = g.inherited(l, "env");
        let code = g.synthesized(l, "code");
        let idecls = g.synthesized(item, "decls");
        let ienv = g.inherited(item, "env");
        let icode = g.synthesized(item, "code");
        g.mark_split(l, 3);
        g.mark_priority(l, env);
        g.mark_priority(item, ienv);

        let top = g.production("top", s, [l]);
        g.rule(top, (1, env), [(1, decls)], |a| a[0] * 1000);
        g.rule(top, (0, done), [(1, code)], |a| a[0]);

        let cons = g.production("cons", l, [item, l]);
        g.rule(cons, (0, decls), [(1, decls), (2, decls)], |a| a[0] + a[1]);
        g.rule(cons, (1, ienv), [(0, env)], |a| a[0] + 1);
        g.rule(cons, (2, env), [(0, env)], |a| a[0] + 2);
        g.rule(cons, (0, code), [(1, icode), (2, code)], |a| {
            a[0] * 31 + a[1]
        });
        let nil = g.production("nil", l, []);
        g.rule(nil, (0, decls), [], |_| 1);
        g.rule(nil, (0, code), [(0, env)], |a| a[0] + 7);

        let wrap = g.production("wrap", item, [item]);
        g.rule(wrap, (0, decls), [(1, idecls)], |a| a[0] + 1);
        g.rule(wrap, (1, ienv), [(0, ienv)], |a| a[0] + 3);
        g.rule(wrap, (0, code), [(1, icode)], |a| a[0] * 2);
        let unit = g.production("unit", item, []);
        g.rule(unit, (0, idecls), [], |_| 1);
        g.rule(unit, (0, icode), [(0, ienv)], |a| a[0] + 11);

        let grammar = Arc::new(g.build(s).unwrap());
        let plans = Arc::new(compute_plans(&grammar).unwrap());

        let mut tb = TreeBuilder::new(&grammar);
        let mut tail = tb.leaf(nil);
        for _ in 0..n_items {
            let mut it = tb.leaf(unit);
            for _ in 0..depth {
                it = tb.node(wrap, [it]);
            }
            tail = tb.node(cons, [it, tail]);
        }
        let root = tb.node(top, [tail]);
        let tree = Arc::new(tb.finish(root).unwrap());
        let _ = (idecls, icode, ProdId(0));
        Fixture {
            grammar,
            tree,
            plans,
            done,
        }
    }

    /// Round-robin message pump: runs all machines to completion,
    /// delivering sends synchronously. Returns the merged store.
    fn pump(
        fx: &Fixture,
        decomp: &Decomposition,
        mode: MachineMode,
    ) -> (AttrStore<i64>, Vec<EvalStats>) {
        let plans = Some(&fx.plans);
        let mut machines: Vec<Machine<i64>> = (0..decomp.len() as RegionId)
            .map(|r| Machine::new(&fx.tree, plans, decomp, r, mode))
            .collect();
        let mut inbox: Vec<AttrMsg<i64>> = Vec::new();
        let mut parser_got: Vec<AttrMsg<i64>> = Vec::new();
        loop {
            let mut progressed = false;
            for m in machines.iter_mut() {
                let sends = m.run().unwrap();
                if !sends.is_empty() {
                    progressed = true;
                }
                inbox.extend(sends);
            }
            for msg in inbox.drain(..) {
                match msg.to {
                    SendTarget::Parser => parser_got.push(msg),
                    SendTarget::Region(r) => {
                        machines[r as usize].provide(msg.node, msg.attr, msg.value);
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        assert!(
            machines.iter().all(|m| m.is_done()),
            "deadlock: {machines:?}"
        );
        assert!(!parser_got.is_empty(), "root attributes must reach parser");
        let stats: Vec<EvalStats> = machines.iter().map(|m| m.stats()).collect();
        // Sparse assembly: each region's owned span maps back into the
        // whole-tree store through the decomposition's slot layout.
        let mut merged = AttrStore::new(&fx.tree);
        for m in machines {
            merged.absorb_region(&fx.tree, m.into_store());
        }
        (merged, stats)
    }

    #[test]
    fn single_region_combined_equals_dynamic() {
        let fx = fixture(6, 2);
        let decomp = Decomposition::whole(&fx.tree);
        let (store, stats) = pump(&fx, &decomp, MachineMode::Combined);
        let (dstore, _) = dynamic_eval(&fx.tree).unwrap();
        assert_eq!(
            store.get(fx.tree.root(), fx.done),
            dstore.get(fx.tree.root(), fx.done)
        );
        // Everything was static: the whole region is one static subtree.
        assert_eq!(stats[0].dynamic_applied, 0);
        assert!(stats[0].static_applied > 0);
    }

    #[test]
    fn multi_region_combined_matches_dynamic_everywhere() {
        let fx = fixture(12, 3);
        for k in [2, 3, 4] {
            let decomp = decompose(&fx.tree, SplitConfig::machines(k));
            assert!(decomp.len() > 1, "k={k} produced no split");
            let (store, stats) = pump(&fx, &decomp, MachineMode::Combined);
            let (dstore, _) = dynamic_eval(&fx.tree).unwrap();
            for node in fx.tree.node_ids() {
                let sym = fx.grammar.prod(fx.tree.node(node).prod).lhs;
                for a in 0..fx.grammar.attr_count(sym) {
                    let attr = AttrId(a as u32);
                    assert_eq!(
                        store.get(node, attr),
                        dstore.get(node, attr),
                        "k={k} node={node:?} attr={attr:?}"
                    );
                }
            }
            // The vast majority of rules must be static (§4.1).
            let total: usize = stats.iter().map(|s| s.total_applied()).sum();
            let dynamic: usize = stats.iter().map(|s| s.dynamic_applied).sum();
            assert!(
                (dynamic as f64) < 0.5 * total as f64,
                "k={k}: {dynamic}/{total} dynamic"
            );
        }
    }

    #[test]
    fn pure_dynamic_mode_also_matches() {
        let fx = fixture(10, 2);
        let decomp = decompose(&fx.tree, SplitConfig::machines(3));
        let (store, stats) = pump(&fx, &decomp, MachineMode::Dynamic);
        let (dstore, _) = dynamic_eval(&fx.tree).unwrap();
        assert_eq!(
            store.get(fx.tree.root(), fx.done),
            dstore.get(fx.tree.root(), fx.done)
        );
        assert!(stats.iter().all(|s| s.static_applied == 0));
    }

    #[test]
    fn machine_blocks_until_provided() {
        let fx = fixture(8, 2);
        let decomp = decompose(&fx.tree, SplitConfig::machines(2));
        // Region 1's root has an inherited attribute; without it the
        // machine must stop with pending work.
        let mut m1 = Machine::new(&fx.tree, Some(&fx.plans), &decomp, 1, MachineMode::Combined);
        let sends = m1.run().unwrap();
        // It may compute decls (phase 1 has no inherited inputs at the
        // boundary? decls of region root is syn phase 1 and needs no env)
        // but cannot finish: code needs env.
        assert!(!m1.is_done(), "machine finished without its inputs");
        assert!(m1.awaiting() > 0);
        let _ = sends;
    }

    #[test]
    fn graph_is_much_smaller_in_combined_mode() {
        let fx = fixture(16, 4);
        let decomp = decompose(&fx.tree, SplitConfig::machines(3));
        let combined = Machine::new(&fx.tree, Some(&fx.plans), &decomp, 0, MachineMode::Combined);
        let dynamic = Machine::new(&fx.tree, Some(&fx.plans), &decomp, 0, MachineMode::Dynamic);
        let (cn, _) = combined.graph_size();
        let (dn, _) = dynamic.graph_size();
        assert!(
            cn < dn,
            "combined graph ({cn}) should be smaller than dynamic ({dn})"
        );
    }

    #[test]
    fn region_work_estimates_sum_to_tree_work() {
        let fx = fixture(12, 3);
        let plan = Arc::new(EvalPlan::from_parts(
            &fx.grammar,
            Some(Arc::clone(&fx.plans)),
            None,
        ));
        let decomp = decompose(&fx.tree, SplitConfig::machines(4));
        assert!(decomp.len() > 1);
        let total: u64 = (0..decomp.len() as RegionId)
            .map(|r| {
                let m = Machine::from_plan(
                    &plan,
                    &fx.tree,
                    &decomp,
                    r,
                    MachineMode::Combined,
                    crate::eval::MachineScratch::new(),
                );
                assert_eq!(
                    m.estimated_work(),
                    plan.region_work(&fx.tree, &decomp, r),
                    "region {r}"
                );
                m.estimated_work()
            })
            .sum();
        assert_eq!(total, plan.tree_work(&fx.tree));
    }

    #[test]
    fn duplicate_provide_is_ignored() {
        let fx = fixture(8, 2);
        let decomp = decompose(&fx.tree, SplitConfig::machines(2));
        let region1_root = decomp.regions[1].root;
        let sym = fx.grammar.prod(fx.tree.node(region1_root).prod).lhs;
        let env: Vec<AttrId> = fx
            .grammar
            .symbol(sym)
            .attrs_of_kind(AttrKind::Inh)
            .collect();
        let mut m1 = Machine::new(&fx.tree, Some(&fx.plans), &decomp, 1, MachineMode::Combined);
        m1.run().unwrap();
        let before = m1.awaiting();
        m1.provide(region1_root, env[0], 5);
        m1.provide(region1_root, env[0], 99); // duplicate: ignored
        assert_eq!(m1.awaiting(), before - 1);
        m1.run().unwrap();
        assert!(m1.is_done());
    }
}
