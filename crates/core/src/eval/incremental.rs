//! Incremental re-evaluation after token changes.
//!
//! The paper deliberately studies *complete* evaluation first (§5),
//! noting that incremental algorithms "are easily applicable only in
//! the context of a structure editor" and that even such an environment
//! "is likely to require a fast batch evaluator". This module is the
//! other side of that trade-off, built on the same machinery: keep the
//! instance dependency graph and topological order from a batch run,
//! overlay changed token values, and re-evaluate only the affected cone
//! — with *early cutoff*: if a recomputed value equals the old one,
//! its dependents are not dirtied (Reps-style change propagation).
//!
//! # Examples
//!
//! ```
//! use paragram_core::grammar::GrammarBuilder;
//! use paragram_core::tree::{token, TreeBuilder};
//! use paragram_core::eval::Incremental;
//! use std::sync::Arc;
//!
//! // sum over a list of numbers
//! let mut g = GrammarBuilder::<i64>::new();
//! let l = g.nonterminal("L");
//! let num = g.terminal("num");
//! let val = g.synthesized(num, "val");
//! let sum = g.synthesized(l, "sum");
//! let cons = g.production("cons", l, [num, l]);
//! g.rule(cons, (0, sum), [(1, val), (2, sum)], |a| a[0] + a[1]);
//! let nil = g.production("nil", l, []);
//! g.rule(nil, (0, sum), [], |_| 0);
//! let grammar = Arc::new(g.build(l).unwrap());
//!
//! let mut tb = TreeBuilder::new(&grammar);
//! let mut tail = tb.leaf(nil);
//! let mut first = None;
//! for v in [3i64, 4, 5] {
//!     let node = tb.node_full(cons, vec![token(vec![v]), tail.into()]);
//!     first = Some(node);
//!     tail = node;
//! }
//! let tree = Arc::new(tb.finish(first.unwrap()).unwrap());
//!
//! let mut inc = Incremental::new(&tree).unwrap();
//! assert_eq!(inc.store().get(tree.root(), sum), Some(&12));
//! // Change the root node's "5" to 30: only the instances on the path
//! // to the root are re-evaluated.
//! let changed = inc.update_token(tree.root(), /*occ*/ 1, val, 30).unwrap();
//! assert_eq!(inc.store().get(tree.root(), sum), Some(&37));
//! assert!(changed <= 2);
//! ```

use crate::csr::{Csr, CsrCounter};
use crate::grammar::{ArgScratch, AttrId};
use crate::stats::EvalStats;
use crate::tree::{occ_slot, AttrStore, Child, NodeId, PackedSlots, ParseTree};
use crate::value::AttrValue;
use std::collections::HashMap;
use std::sync::Arc;

use super::EvalError;

/// Error from [`Incremental::update_token`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The occurrence is not a token of that node.
    NotAToken {
        /// The node whose occurrence was addressed.
        node: NodeId,
        /// The 1-based occurrence index.
        occ: usize,
    },
    /// The attribute index exceeds the token's lexical values.
    BadAttr(AttrId),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::NotAToken { node, occ } => {
                write!(f, "occurrence {occ} of {node:?} is not a token")
            }
            UpdateError::BadAttr(a) => write!(f, "token has no attribute {a:?}"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// An incrementally re-evaluable attribution of one tree.
pub struct Incremental<V: AttrValue + PartialEq> {
    tree: Arc<ParseTree<V>>,
    store: AttrStore<V>,
    /// Token overlays: (node, occ) → replacement lexical values,
    /// mirroring [`AttrStore`]'s packed layout (dense values + side
    /// presence bits; unset positions fall through to the tree's own
    /// token values).
    overrides: HashMap<(NodeId, usize), PackedSlots<V>>,
    /// One task per rule application.
    tasks: Vec<(NodeId, usize)>,
    /// Position of each task in the batch run's topological order
    /// (for ordered dirty processing).
    topo_pos: Vec<u32>,
    /// instance index → tasks whose arguments read it (CSR: one flat
    /// allocation, kept alive for the editor session).
    dependents: Csr,
    /// (node, occ) token → tasks reading any of its values.
    token_dependents: HashMap<(NodeId, usize), Vec<u32>>,
    /// Reusable argument-gathering buffer.
    scratch: ArgScratch<V>,
    /// Cumulative statistics (batch + all updates).
    stats: EvalStats,
}

impl<V: AttrValue + PartialEq> Incremental<V> {
    /// Runs the initial batch evaluation (dynamic scheduling) and
    /// retains the graph for later updates.
    ///
    /// # Errors
    ///
    /// [`EvalError::Cycle`] if the tree's instance graph is cyclic.
    pub fn new(tree: &Arc<ParseTree<V>>) -> Result<Self, EvalError> {
        let g = tree.grammar();
        let mut store = AttrStore::new(tree);
        let mut stats = EvalStats::default();

        // Two-pass CSR build of the dependents relation (count →
        // prefix-sum → fill); token dependents are sparse and stay in a
        // map keyed by (node, occurrence).
        let mut tasks: Vec<(NodeId, usize)> = Vec::new();
        let mut token_dependents: HashMap<(NodeId, usize), Vec<u32>> = HashMap::new();
        let mut missing: Vec<u32> = Vec::new();
        let mut counter = CsrCounter::new(store.len());
        for node in tree.node_ids() {
            let prod = g.prod(tree.node(node).prod);
            for ri in 0..prod.rules.len() {
                let tid = tasks.len() as u32;
                tasks.push((node, ri));
                let mut need = 0u32;
                super::dynamic::for_each_rule_arg(tree, &store, node, ri, |arg, inst| match inst {
                    Some(inst) => {
                        counter.count(inst);
                        need += 1;
                        stats.graph_edges += 1;
                    }
                    None => {
                        token_dependents
                            .entry((node, arg.occ))
                            .or_default()
                            .push(tid);
                    }
                });
                missing.push(need);
            }
        }
        let mut filler = counter.into_filler();
        for (tid, &(node, ri)) in tasks.iter().enumerate() {
            super::dynamic::for_each_rule_arg(tree, &store, node, ri, |_, inst| {
                if let Some(inst) = inst {
                    filler.fill(inst, tid as u32);
                }
            });
        }
        let dependents = filler.finish();
        stats.graph_nodes = tasks.len();

        // Kahn worklist, recording the completion order.
        let mut ready: Vec<u32> = missing
            .iter()
            .enumerate()
            .filter(|(_, &m)| m == 0)
            .map(|(i, _)| i as u32)
            .collect();
        let mut topo = Vec::with_capacity(tasks.len());
        let overrides = HashMap::new();
        let mut scratch = ArgScratch::new();
        while let Some(tid) = ready.pop() {
            topo.push(tid);
            let (node, ri) = tasks[tid as usize];
            let rule = &g.prod(tree.node(node).prod).rules[ri];
            let value = apply_rule(tree, &store, &overrides, &mut scratch, node, ri);
            stats.rule_cost_units += rule.cost;
            stats.dynamic_applied += 1;
            let (tn, ta) = occ_slot(tree, node, rule.target.occ, rule.target.attr);
            store.set(tn, ta, value);
            for &d in dependents.targets(store.instance(tn, ta)) {
                missing[d as usize] -= 1;
                if missing[d as usize] == 0 {
                    ready.push(d);
                }
            }
        }
        if topo.len() != tasks.len() {
            return Err(EvalError::Cycle {
                stuck: tasks.len() - topo.len(),
            });
        }
        let mut topo_pos = vec![0u32; tasks.len()];
        for (pos, &tid) in topo.iter().enumerate() {
            topo_pos[tid as usize] = pos as u32;
        }
        Ok(Incremental {
            tree: Arc::clone(tree),
            store,
            overrides,
            tasks,
            topo_pos,
            dependents,
            token_dependents,
            scratch,
            stats,
        })
    }

    /// The current (fully consistent) attribution.
    pub fn store(&self) -> &AttrStore<V> {
        &self.store
    }

    /// Statistics accumulated over the batch run and all updates.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// The current value of a token attribute (override-aware).
    pub fn token_value(&self, node: NodeId, occ: usize, attr: AttrId) -> Option<&V> {
        if let Some(over) = self.overrides.get(&(node, occ)) {
            if let Some(v) = over.get(attr.0 as usize) {
                return Some(v);
            }
        }
        match self.tree.node(node).children.get(occ - 1)? {
            Child::Token(vals) => vals.get(attr.0 as usize),
            Child::Node(_) => None,
        }
    }

    /// Replaces one lexical value of a token and re-evaluates exactly
    /// the affected attribute instances (with early cutoff). Returns
    /// the number of rule applications performed.
    ///
    /// # Errors
    ///
    /// [`UpdateError`] if the occurrence is not a token or the
    /// attribute is out of range.
    pub fn update_token(
        &mut self,
        node: NodeId,
        occ: usize,
        attr: AttrId,
        value: V,
    ) -> Result<usize, UpdateError> {
        // Validate and install the override.
        let arity = match self.tree.node(node).children.get(occ.wrapping_sub(1)) {
            Some(Child::Token(vals)) => vals.len(),
            _ => return Err(UpdateError::NotAToken { node, occ }),
        };
        if attr.0 as usize >= arity {
            return Err(UpdateError::BadAttr(attr));
        }
        if self.token_value(node, occ, attr) == Some(&value) {
            return Ok(0); // no change at all
        }
        self.overrides
            .entry((node, occ))
            .or_insert_with(|| PackedSlots::new(arity))
            .set(attr.0 as usize, value);

        // Seed the dirty set with the tasks reading this token, then
        // process in topological order with cutoff.
        let mut dirty = vec![false; self.tasks.len()];
        let mut frontier: Vec<u32> = Vec::new();
        if let Some(readers) = self.token_dependents.get(&(node, occ)) {
            for &t in readers {
                if !dirty[t as usize] {
                    dirty[t as usize] = true;
                    frontier.push(t);
                }
            }
        }
        // Min-heap over topo position would be ideal; a sorted pass over
        // the topo order restricted to dirty tasks is simpler and the
        // dirty cone is small.
        let mut applied = 0usize;
        let mut cursor: Vec<u32> = frontier;
        cursor.sort_unstable_by_key(|&t| self.topo_pos[t as usize]);
        let mut i = 0;
        while i < cursor.len() {
            let tid = cursor[i];
            i += 1;
            let (tnode, ri) = self.tasks[tid as usize];
            let rule = &self.tree.grammar().prod(self.tree.node(tnode).prod).rules[ri];
            let new = apply_rule(
                &self.tree,
                &self.store,
                &self.overrides,
                &mut self.scratch,
                tnode,
                ri,
            );
            applied += 1;
            self.stats.rule_cost_units += rule.cost;
            self.stats.dynamic_applied += 1;
            let (sn, sa) = occ_slot(&self.tree, tnode, rule.target.occ, rule.target.attr);
            let inst = self.store.instance(sn, sa);
            if self.store.get(sn, sa) == Some(&new) {
                continue; // early cutoff: value unchanged
            }
            self.store.replace(sn, sa, new);
            for &d in self.dependents.targets(inst) {
                if !dirty[d as usize] {
                    dirty[d as usize] = true;
                    // Insert keeping topo order; the slice after i is
                    // small, linear insertion is fine.
                    let pos = self.topo_pos[d as usize];
                    let at = cursor[i..]
                        .iter()
                        .position(|&x| self.topo_pos[x as usize] > pos)
                        .map(|k| i + k)
                        .unwrap_or(cursor.len());
                    cursor.insert(at, d);
                }
            }
        }
        Ok(applied)
    }
}

/// Applies one rule against the store with token overrides, gathering
/// argument references through the reusable scratch (no clones).
fn apply_rule<V: AttrValue + PartialEq>(
    tree: &ParseTree<V>,
    store: &AttrStore<V>,
    overrides: &HashMap<(NodeId, usize), PackedSlots<V>>,
    scratch: &mut ArgScratch<V>,
    node: NodeId,
    ri: usize,
) -> V {
    let rule = &tree.grammar().prod(tree.node(node).prod).rules[ri];
    scratch.apply(rule, |a| {
        if a.occ > 0 {
            if let Child::Token(vals) = &tree.node(node).children[a.occ - 1] {
                if let Some(v) = overrides
                    .get(&(node, a.occ))
                    .and_then(|over| over.get(a.attr.0 as usize))
                {
                    return v;
                }
                return &vals[a.attr.0 as usize];
            }
        }
        crate::tree::occ_value(tree, store, node, a.occ, a.attr)
            .expect("graph order guarantees availability")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::dynamic_eval;
    use crate::grammar::GrammarBuilder;
    use crate::tree::{token, TreeBuilder};

    /// List-sum grammar with an env chain so updates have both up- and
    /// down-stream effects.
    fn fixture(values: &[i64]) -> (Arc<ParseTree<i64>>, AttrId, Vec<NodeId>) {
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let l = g.nonterminal("L");
        let num = g.terminal("num");
        let val = g.synthesized(num, "val");
        let out = g.synthesized(s, "out");
        let sum = g.synthesized(l, "sum");
        let scale = g.inherited(l, "scale");
        let code = g.synthesized(l, "code");
        let top = g.production("top", s, [l]);
        g.rule(top, (1, scale), [(1, sum)], |a| a[0] % 10 + 1);
        g.rule(top, (0, out), [(1, code)], |a| a[0]);
        let cons = g.production("cons", l, [num, l]);
        g.rule(cons, (0, sum), [(1, val), (2, sum)], |a| a[0] + a[1]);
        g.rule(cons, (2, scale), [(0, scale)], |a| a[0]);
        g.rule(cons, (0, code), [(1, val), (0, scale), (2, code)], |a| {
            a[0] * a[1] + a[2]
        });
        let nil = g.production("nil", l, []);
        g.rule(nil, (0, sum), [], |_| 0);
        g.rule(nil, (0, code), [], |_| 0);
        let grammar = Arc::new(g.build(s).unwrap());
        let mut tb = TreeBuilder::new(&grammar);
        let mut tail = tb.leaf(nil);
        let mut cons_nodes = Vec::new();
        for &v in values.iter().rev() {
            let n = tb.node_full(cons, vec![token(vec![v]), tail.into()]);
            cons_nodes.push(n);
            tail = n;
        }
        let root = tb.node(top, [tail]);
        let tree = Arc::new(tb.finish(root).unwrap());
        // `node_ids` is arena (creation) order: the deepest cons node
        // (holding the *last* list value) comes first, the topmost
        // (holding the first value) comes last.
        let ids: Vec<NodeId> = tree
            .node_ids()
            .filter(|&n| tree.grammar().prod(tree.node(n).prod).name == "cons")
            .collect();
        let _ = cons_nodes;
        (tree, out, ids)
    }

    #[test]
    fn initial_run_matches_batch_dynamic() {
        let (tree, out, _) = fixture(&[1, 2, 3, 4]);
        let inc = Incremental::new(&tree).unwrap();
        let (batch, _) = dynamic_eval(&tree).unwrap();
        assert_eq!(
            inc.store().get(tree.root(), out),
            batch.get(tree.root(), out)
        );
    }

    #[test]
    fn update_recomputes_and_matches_full_reevaluation() {
        let (tree, out, cons) = fixture(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut inc = Incremental::new(&tree).unwrap();
        // Change the token of some middle cons node.
        let target = cons[3];
        let applied = inc.update_token(target, 1, AttrId(0), 100).unwrap();
        assert!(applied > 0);
        // Full re-evaluation of an equivalent tree must agree: rebuild
        // via a second Incremental with the same override.
        let mut fresh = Incremental::new(&tree).unwrap();
        fresh.update_token(target, 1, AttrId(0), 100).unwrap();
        assert_eq!(
            inc.store().get(tree.root(), out),
            fresh.store().get(tree.root(), out)
        );
        // And differ from the original value.
        let (orig, _) = dynamic_eval(&tree).unwrap();
        assert_ne!(
            inc.store().get(tree.root(), out),
            orig.get(tree.root(), out)
        );
    }

    #[test]
    fn update_touches_a_small_cone() {
        let (tree, _out, cons) = fixture(&(0..200).collect::<Vec<i64>>());
        let mut inc = Incremental::new(&tree).unwrap();
        let total = inc.stats().graph_nodes;
        // A change whose sum stays in the same mod-10 class keeps
        // `scale` unchanged, so the downward half cuts off early. The
        // cone is the sum/code spine above the change only.
        let target = *cons.last().unwrap(); // deepest cons (last in preorder)
        let applied = inc.update_token(target, 1, AttrId(0), 10).unwrap();
        assert!(applied > 0);
        assert!(
            applied * 3 < total,
            "cone {applied} not small vs {total} instances"
        );
    }

    #[test]
    fn unchanged_value_is_a_no_op() {
        let (tree, _out, cons) = fixture(&[5, 6, 7]);
        let mut inc = Incremental::new(&tree).unwrap();
        let before = inc.stats().dynamic_applied;
        // cons[0] is the deepest node (arena order), holding value 7.
        let applied = inc.update_token(cons[0], 1, AttrId(0), 7).unwrap();
        assert_eq!(applied, 0);
        assert_eq!(inc.stats().dynamic_applied, before);
    }

    #[test]
    fn early_cutoff_stops_propagation() {
        let (tree, out, cons) = fixture(&[1, 2, 3, 4]);
        let mut inc = Incremental::new(&tree).unwrap();
        let before = inc.store().get(tree.root(), out).copied();
        // 1 -> 11 changes sum by 10, so `scale = sum % 10 + 1` is
        // unchanged and the inherited half never re-runs; only the
        // sum/code chain above the changed node does.
        let applied = inc.update_token(cons[3], 1, AttrId(0), 11).unwrap();
        // chain: sum at 4 nodes + top.scale? cutoff at scale: applied
        // counts sums (4) + scale (1, cutoff) + codes along chain.
        assert!(applied <= 10, "applied {applied}");
        assert_ne!(inc.store().get(tree.root(), out).copied(), before);
    }

    #[test]
    fn bad_updates_are_rejected() {
        let (tree, _out, cons) = fixture(&[1]);
        let mut inc = Incremental::new(&tree).unwrap();
        assert!(matches!(
            inc.update_token(cons[0], 2, AttrId(0), 9),
            Err(UpdateError::NotAToken { .. })
        ));
        assert!(matches!(
            inc.update_token(cons[0], 1, AttrId(7), 9),
            Err(UpdateError::BadAttr(_))
        ));
    }

    #[test]
    fn repeated_updates_stay_consistent() {
        let (tree, out, cons) = fixture(&[1, 2, 3, 4, 5]);
        let mut inc = Incremental::new(&tree).unwrap();
        for (i, v) in [(0usize, 10i64), (2, 20), (4, 30), (0, 1)] {
            inc.update_token(cons[i], 1, AttrId(0), v).unwrap();
        }
        // Compare against a fresh incremental evaluation with the same
        // final overrides.
        let mut fresh = Incremental::new(&tree).unwrap();
        for (i, v) in [(0usize, 1i64), (2, 20), (4, 30)] {
            fresh.update_token(cons[i], 1, AttrId(0), v).unwrap();
        }
        assert_eq!(
            inc.store().get(tree.root(), out),
            fresh.store().get(tree.root(), out)
        );
    }
}
