//! Parse-tree decomposition for parallel evaluation (§2.1, §2.5, Fig 7).
//!
//! The (sequential) parser divides the syntax tree into subtrees and
//! ships them to the attribute evaluators. Splits may only happen at
//! nonterminals the grammar marked `%split`, and only for subtrees at
//! least as large as the declared minimum size — scaled by a runtime
//! argument "to allow for easy experimentation with decompositions with
//! different granularities".
//!
//! Two decomposition engines live here:
//!
//! * [`decompose`] (fixed count) targets a region count — one region
//!   per machine — and greedily splits the largest region at the
//!   candidate that yields the most even partition, reproducing the
//!   balanced five-way decomposition of the paper's Figure 7 (and the
//!   *uneven* six-way decomposition that makes the paper's running time
//!   non-monotonic in machine count). This is the compatibility mode:
//!   it is what the paper measured.
//! * [`decompose_adaptive`] (cost-driven) targets a per-region **work
//!   budget** instead of a machine count: regions ≈ total work /
//!   budget, oversized regions are re-split at `%split` candidates and
//!   undersized ones merged back into their parent region. Work is
//!   estimated from the grammar's per-production rule costs
//!   ([`WorkTable`]), so the region count follows the *tree*, not the
//!   machine park — a huge tree yields many budget-sized regions that a
//!   region-granular scheduler can round-robin over however many
//!   workers exist, which removes the fixed-count split's sensitivity
//!   to uneven partitions.
//!
//! [`RegionGranularity`] names the two modes for schedulers
//! (`core::parallel::pool`, `core::parallel::sim`) that accept either.
//!
//! Both engines finish by growing a per-region [`SlotMap`] — the slot
//! layout of the region-local attribute stores
//! ([`crate::tree::RegionStore`]): each region's owned attribute
//! instances are numbered densely from 0, and the region's *boundary
//! children* (roots of child regions, the only foreign nodes a region
//! machine ever addresses) are aliased into a small remap appended
//! after the owned span. Machines therefore allocate O(region) slots
//! instead of a whole-tree store each, and result assembly maps local
//! slots back to whole-tree instances through the same layout.

use crate::grammar::{AttrId, Grammar, ProdId, SymbolId};
use crate::tree::{NodeId, ParseTree};
use crate::value::AttrValue;
use std::fmt;
use std::sync::Arc;

/// Identifies a region (one per evaluator machine).
pub type RegionId = u32;

/// One region of a decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionInfo {
    /// Root node of the region (the whole tree's root for region 0).
    pub root: NodeId,
    /// Region owning the root's parent (`None` for region 0).
    pub parent: Option<RegionId>,
    /// Number of nodes owned by the region (excluding nested regions).
    pub local_size: usize,
}

/// A partition of a tree's nodes into regions, plus the slot layout
/// ([`SlotMap`]) of the region-local attribute stores built over it.
pub struct Decomposition {
    /// Region of each node, indexed by [`NodeId`].
    pub region_of: Vec<RegionId>,
    /// Region metadata, indexed by [`RegionId`].
    pub regions: Vec<RegionInfo>,
    /// Region-local slot layout, rebuilt by the decomposition engines
    /// once the partition is final and shared (via `Arc`) by every
    /// region machine evaluating this decomposition.
    slots: Arc<SlotMap>,
}

impl Decomposition {
    /// Number of regions.
    // No `is_empty` on purpose: a decomposition always has at least one
    // region, so the method the convention asks for could only lie —
    // `is_unsplit` is the meaningful predicate (the old deprecated
    // `is_empty` alias for it is gone).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// `true` if the tree was not split at all (a single region).
    ///
    /// Note this is *not* the `len`/`is_empty` convention — a
    /// decomposition always has at least one region.
    pub fn is_unsplit(&self) -> bool {
        self.regions.len() <= 1
    }

    /// Region owning a node.
    pub fn region(&self, n: NodeId) -> RegionId {
        self.region_of[n.idx()]
    }

    /// The region-local slot layout of this decomposition's machines.
    pub fn slot_map(&self) -> &Arc<SlotMap> {
        &self.slots
    }

    /// The trivial decomposition: everything in region 0.
    pub fn whole<V: AttrValue>(tree: &ParseTree<V>) -> Self {
        let mut d = Decomposition::whole_unfinalized(tree);
        d.finalize_slots(tree);
        d
    }

    /// [`Decomposition::whole`] with the slot layout left empty — the
    /// starting point of the decomposition engines, which mutate the
    /// partition and build the layout exactly once at the end
    /// ([`Decomposition::finalize_slots`]) instead of paying an
    /// immediately discarded whole-tree build here.
    fn whole_unfinalized<V: AttrValue>(tree: &ParseTree<V>) -> Self {
        Decomposition {
            region_of: vec![0; tree.len()],
            regions: vec![RegionInfo {
                root: tree.root(),
                parent: None,
                local_size: tree.len(),
            }],
            slots: Arc::new(SlotMap::default()),
        }
    }

    /// Rebuilds the slot layout from the current node map. The
    /// decomposition engines call this once the partition is final;
    /// anything that mutates `region_of`/`regions` afterwards must call
    /// it again before machines are built.
    fn finalize_slots<V: AttrValue>(&mut self, tree: &ParseTree<V>) {
        self.slots = Arc::new(SlotMap::build(tree, &self.region_of, &self.regions));
    }

    /// Renders the decomposition in the style of the paper's Figure 7:
    /// one line per region with its letter, root symbol, and size.
    pub fn render<V: AttrValue>(&self, tree: &ParseTree<V>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "decomposition: {} regions over {} nodes",
            self.regions.len(),
            tree.len()
        );
        for (i, r) in self.regions.iter().enumerate() {
            let letter = (b'a' + (i % 26) as u8) as char;
            let sym = tree.grammar().prod(tree.node(r.root).prod).lhs;
            let name = &tree.grammar().symbol(sym).name;
            let parent = match r.parent {
                None => "-".to_string(),
                Some(p) => format!("{}", (b'a' + (p % 26) as u8) as char),
            };
            let _ = writeln!(
                out,
                "  {letter}: root={name:<24} nodes={:<7} parent={parent}",
                r.local_size
            );
        }
        out
    }
}

impl fmt::Debug for Decomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Decomposition({} regions)", self.regions.len())
    }
}

/// Region-local slot layout for one decomposition.
///
/// For every region `r` the layout numbers attribute slots *within the
/// region*:
///
/// * **owned slots** `0..owned_slots(r)` — one dense span per node the
///   region owns, in the order [`SlotMap::region_nodes`] lists them
///   (node `n`'s attribute `a` lives at `local_base(n) + a`);
/// * **foreign slots** `owned_slots(r)..total_slots(r)` — aliases for
///   the region's boundary children. A boundary child is always the
///   root of a child region (the structural invariant the
///   decomposition tests pin), and those roots are the *only* foreign
///   nodes a region machine ever addresses: their synthesized
///   attributes arrive as external inputs and their inherited
///   attributes leave as sends. The remap is a small sorted list, one
///   entry per child region.
///
/// The layout is built once per decomposition (shared by every machine
/// via `Arc`), so a region machine's store costs O(region) slots while
/// whole-tree assembly maps local slots back to global instances
/// through the same tables.
///
/// The `Default` layout is the engines' pre-finalize placeholder (no
/// regions, no slots); any machine built against it would index out of
/// bounds, which is exactly the loud failure an unfinalized
/// decomposition deserves.
#[derive(Debug, Default)]
pub struct SlotMap {
    /// Owning region per node (snapshot of the final node map).
    region_of: Vec<RegionId>,
    /// Per node: slot base within its owning region's store.
    local_base: Vec<u32>,
    /// CSR over `nodes`: region → its owned nodes, in layout order.
    node_start: Vec<u32>,
    nodes: Vec<NodeId>,
    /// Per region: number of owned slots (= base of the foreign span).
    owned_slots: Vec<u32>,
    /// Per region: owned + foreign slots (the region store's length).
    total_slots: Vec<u32>,
    /// CSR over `foreign`: region → its boundary-child aliases, sorted
    /// by node id for binary search.
    foreign_start: Vec<u32>,
    foreign: Vec<(NodeId, u32)>,
}

impl SlotMap {
    /// Builds the layout for a final `region_of`/`regions` partition.
    pub fn build<V: AttrValue>(
        tree: &ParseTree<V>,
        region_of: &[RegionId],
        regions: &[RegionInfo],
    ) -> Self {
        let g = tree.grammar();
        let nregions = regions.len();
        // Pass 1: per-region owned node and slot counts.
        let mut node_count = vec![0u32; nregions];
        let mut owned_slots = vec![0u32; nregions];
        let mut attr_count = vec![0u32; tree.len()];
        for n in tree.node_ids() {
            let r = region_of[n.idx()] as usize;
            node_count[r] += 1;
            let sym = g.prod(tree.node(n).prod).lhs;
            attr_count[n.idx()] = g.attr_count(sym) as u32;
            owned_slots[r] += attr_count[n.idx()];
        }
        // Pass 2: assign per-node bases in arena order (counting sort
        // into per-region node lists).
        let mut node_start = vec![0u32; nregions + 1];
        for (r, &c) in node_count.iter().enumerate() {
            node_start[r + 1] = node_start[r] + c;
        }
        let mut cursor: Vec<u32> = node_start[..nregions].to_vec();
        let mut slot_cursor = vec![0u32; nregions];
        let mut nodes = vec![NodeId(0); tree.len()];
        let mut local_base = vec![0u32; tree.len()];
        for n in tree.node_ids() {
            let r = region_of[n.idx()] as usize;
            nodes[cursor[r] as usize] = n;
            cursor[r] += 1;
            local_base[n.idx()] = slot_cursor[r];
            slot_cursor[r] += attr_count[n.idx()];
        }
        // Pass 3: foreign aliases — every non-root region's root is a
        // boundary child of its parent region.
        let mut total_slots = owned_slots.clone();
        let mut foreign_lists: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); nregions];
        for info in regions.iter().skip(1) {
            let parent = info.parent.expect("non-root regions have parents") as usize;
            foreign_lists[parent].push((info.root, total_slots[parent]));
            total_slots[parent] += attr_count[info.root.idx()];
        }
        let mut foreign_start = vec![0u32; nregions + 1];
        let mut foreign = Vec::new();
        for (r, mut list) in foreign_lists.into_iter().enumerate() {
            list.sort_unstable_by_key(|&(n, _)| n);
            foreign_start[r + 1] = foreign_start[r] + list.len() as u32;
            foreign.extend(list);
        }
        SlotMap {
            region_of: region_of.to_vec(),
            local_base,
            node_start,
            nodes,
            owned_slots,
            total_slots,
            foreign_start,
            foreign,
        }
    }

    /// Local slot index of `(node, attr)` within `region`'s store.
    ///
    /// # Panics
    ///
    /// Panics if `node` is neither owned by `region` nor one of its
    /// boundary children — a region machine never addresses any other
    /// node.
    #[inline]
    pub fn slot_of(&self, region: RegionId, node: NodeId, attr: AttrId) -> usize {
        if self.region_of[node.idx()] == region {
            self.local_base[node.idx()] as usize + attr.0 as usize
        } else {
            let range = self.foreign_start[region as usize] as usize
                ..self.foreign_start[region as usize + 1] as usize;
            let span = &self.foreign[range];
            let i = span
                .binary_search_by_key(&node, |&(n, _)| n)
                .expect("foreign node must be a boundary child of the region");
            span[i].1 as usize + attr.0 as usize
        }
    }

    /// Region owning a node (snapshot taken at layout-build time).
    #[inline]
    pub fn owner(&self, node: NodeId) -> RegionId {
        self.region_of[node.idx()]
    }

    /// Slot base of `node` within its owning region's store.
    #[inline]
    pub fn local_base(&self, node: NodeId) -> usize {
        self.local_base[node.idx()] as usize
    }

    /// The nodes a region owns, in owned-slot layout order.
    pub fn region_nodes(&self, region: RegionId) -> &[NodeId] {
        let r = region as usize;
        &self.nodes[self.node_start[r] as usize..self.node_start[r + 1] as usize]
    }

    /// Number of slots for a region's owned nodes.
    pub fn owned_slots(&self, region: RegionId) -> usize {
        self.owned_slots[region as usize] as usize
    }

    /// Total slots of a region's store (owned + boundary aliases).
    pub fn total_slots(&self, region: RegionId) -> usize {
        self.total_slots[region as usize] as usize
    }

    /// Number of regions in the layout.
    pub fn regions(&self) -> usize {
        self.owned_slots.len()
    }

    /// Total attribute instances of the tree (the owned spans partition
    /// them, so this is the Σ of every region's owned slots — and the
    /// length a whole-tree store for the same tree would have).
    pub fn tree_instances(&self) -> usize {
        self.owned_slots.iter().map(|&s| s as usize).sum()
    }
}

/// Configuration for [`decompose`].
#[derive(Debug, Clone, Copy)]
pub struct SplitConfig {
    /// Desired number of regions (= machines). 1 means no splitting.
    pub target_regions: usize,
    /// Multiplier applied to every symbol's declared minimum split size
    /// (the paper's runtime granularity argument).
    pub min_size_scale: f64,
}

impl SplitConfig {
    /// One region per machine with the grammar's declared minimum sizes.
    pub fn machines(n: usize) -> Self {
        SplitConfig {
            target_regions: n,
            min_size_scale: 1.0,
        }
    }
}

/// Precomputed split-candidate table: for every symbol, the *scaled*
/// minimum subtree size at which a split is worthwhile (`None` for
/// symbols without a `%split` declaration).
///
/// Built once per grammar + granularity scale and shared across every
/// tree a batch driver decomposes, so the per-tree candidate scan is a
/// table lookup instead of a symbol-metadata walk with floating-point
/// scaling per node.
#[derive(Debug, Clone)]
pub struct SplitTable {
    min_size: Vec<Option<usize>>,
}

impl SplitTable {
    /// Builds the table for `grammar` with the runtime granularity
    /// multiplier applied (the paper's "runtime argument to the
    /// parser").
    pub fn new<V: AttrValue>(grammar: &Grammar<V>, min_size_scale: f64) -> Self {
        SplitTable {
            min_size: grammar
                .symbols()
                .iter()
                .map(|s| {
                    s.split
                        .map(|spec| ((spec.min_size as f64 * min_size_scale) as usize).max(2))
                })
                .collect(),
        }
    }

    /// Scaled minimum split size of a symbol, if it is a split point.
    pub fn min_size(&self, sym: SymbolId) -> Option<usize> {
        self.min_size[sym.0 as usize]
    }
}

/// Per-production work estimates: the sum of a production's semantic
/// rule costs (at least 1, so every node carries some weight). Built
/// once per grammar and shared across every tree the adaptive
/// decomposition sizes — the unit of [`decompose_adaptive`]'s budget.
#[derive(Debug, Clone)]
pub struct WorkTable {
    prod_work: Vec<u64>,
}

impl WorkTable {
    /// Builds the table for `grammar`.
    pub fn new<V: AttrValue>(grammar: &Grammar<V>) -> Self {
        WorkTable {
            prod_work: grammar
                .prods()
                .iter()
                .map(|p| p.rules.iter().map(|r| r.cost).sum::<u64>().max(1))
                .collect(),
        }
    }

    /// Estimated work (rule-cost units) of one application of `prod`.
    #[inline]
    pub fn prod_work(&self, prod: ProdId) -> u64 {
        self.prod_work[prod.0 as usize]
    }

    /// Estimated work of a single tree node.
    #[inline]
    pub fn node_work<V: AttrValue>(&self, tree: &ParseTree<V>, n: NodeId) -> u64 {
        self.prod_work(tree.node(n).prod)
    }

    /// Estimated work of the whole tree.
    pub fn tree_work<V: AttrValue>(&self, tree: &ParseTree<V>) -> u64 {
        tree.node_ids().map(|n| self.node_work(tree, n)).sum()
    }

    /// Estimated work of one region of a decomposition (its local nodes
    /// only).
    pub fn region_work<V: AttrValue>(
        &self,
        tree: &ParseTree<V>,
        d: &Decomposition,
        region: RegionId,
    ) -> u64 {
        tree.node_ids()
            .filter(|&n| d.region(n) == region)
            .map(|n| self.node_work(tree, n))
            .sum()
    }
}

/// How a scheduler asks for a tree to be carved into regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionGranularity {
    /// Fixed region count: one region per evaluator machine, the
    /// paper's decomposition (and the whole-tree ticketing of earlier
    /// drivers). Reproduces Figure 7 exactly.
    Machines(usize),
    /// Cost-driven: one region per ≈`budget` work units (rule-cost
    /// units, see [`WorkTable`]), independent of the machine count. A
    /// huge tree becomes many budget-sized region jobs that pipeline
    /// through a worker pool exactly like many small trees.
    Adaptive {
        /// Target work units per region.
        budget: u64,
    },
}

/// Dispatches to [`decompose_with`] or [`decompose_adaptive`] according
/// to the granularity.
pub fn decompose_granular<V: AttrValue>(
    tree: &Arc<ParseTree<V>>,
    table: &SplitTable,
    work: &WorkTable,
    granularity: RegionGranularity,
) -> Decomposition {
    match granularity {
        RegionGranularity::Machines(n) => decompose_with(tree, table, n.max(1)),
        RegionGranularity::Adaptive { budget } => decompose_adaptive(tree, table, work, budget),
    }
}

/// Splits `tree` into at most `config.target_regions` regions at
/// `%split` nonterminals.
///
/// The decomposition aims at one *quantum* — `tree.len() / target` —
/// of work per machine: while below the target region count, carve out
/// of the largest region the eligible subtree whose local size is
/// closest to the quantum. On the paper's workload this yields the
/// "subtrees of about equal size" the authors observed for five
/// machines. Returns fewer regions than requested when not enough
/// eligible split points exist.
pub fn decompose<V: AttrValue>(tree: &Arc<ParseTree<V>>, config: SplitConfig) -> Decomposition {
    let table = SplitTable::new(tree.grammar().as_ref(), config.min_size_scale);
    decompose_with(tree, &table, config.target_regions)
}

/// [`decompose`] with a precomputed [`SplitTable`] — the batched-driver
/// path, which amortizes the table across many trees.
pub fn decompose_with<V: AttrValue>(
    tree: &Arc<ParseTree<V>>,
    table: &SplitTable,
    target_regions: usize,
) -> Decomposition {
    let g = tree.grammar();
    let mut d = Decomposition::whole_unfinalized(tree);
    if target_regions <= 1 {
        d.finalize_slots(tree.as_ref());
        return d;
    }
    let quantum = (tree.len() / target_regions).max(2);

    // Candidate split points: nodes at %split symbols meeting the scaled
    // minimum size, excluding the tree root.
    let candidates: Vec<(NodeId, SymbolId)> = tree
        .node_ids()
        .filter(|&n| n != tree.root())
        .filter_map(|n| {
            let sym = g.prod(tree.node(n).prod).lhs;
            let min = table.min_size(sym)?;
            (tree.subtree_size(n) >= min).then_some((n, sym))
        })
        .collect();

    // Preorder intervals let us compute a candidate's *local* subtree
    // size in O(#regions) instead of walking the subtree. A region root
    // is *maximal within region R* when its parent node lies in R; such
    // subtrees are pairwise disjoint and contain no R nodes, so
    //   local(n) = subtree_size(n) − Σ subtree_size(root)
    // over maximal-in-R region roots under n.
    let mut pre_in = vec![0u32; tree.len()];
    for (i, n) in tree.subtree(tree.root()).enumerate() {
        pre_in[n.idx()] = i as u32;
    }
    let under = |anc: NodeId, desc: NodeId| {
        let a = pre_in[anc.idx()] as usize;
        let di = pre_in[desc.idx()] as usize;
        di > a && di < a + tree.subtree_size(anc)
    };
    let local_size = |d: &Decomposition, n: NodeId| -> usize {
        let r = d.region(n);
        let mut size = tree.subtree_size(n);
        for info in d.regions.iter().skip(1) {
            let (pnode, _) = tree
                .node(info.root)
                .parent
                .expect("carved region roots are not the tree root");
            if d.region(pnode) == r && under(n, info.root) {
                size -= tree.subtree_size(info.root);
            }
        }
        size
    };

    while d.regions.len() < target_regions {
        // Find the region with most local nodes.
        let (big, big_size) = match d
            .regions
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.local_size)
        {
            Some((i, r)) => (i as RegionId, r.local_size),
            None => break,
        };
        // Best candidate inside `big`: local subtree size closest to
        // the quantum, leaving at least 2 nodes on both sides.
        let mut best: Option<(NodeId, usize)> = None;
        for &(n, _) in &candidates {
            if d.region(n) != big || n == d.regions[big as usize].root {
                continue;
            }
            // Already a region root?
            if d.regions.iter().any(|r| r.root == n) {
                continue;
            }
            let local = local_size(&d, n);
            if local < 2 || big_size - local < 2 {
                continue;
            }
            let score = local.abs_diff(quantum);
            if best.is_none_or(|(_, s)| score < s) {
                best = Some((n, score));
            }
        }
        let Some((node, _)) = best else { break };
        split_off(tree, &mut d, node);
    }
    // A later split may carve out a subtree containing an earlier
    // region's root-parent; recompute parent links from the final map.
    for i in 1..d.regions.len() {
        let root = d.regions[i].root;
        let (p, _) = tree
            .node(root)
            .parent
            .expect("non-root region root has a parent");
        d.regions[i].parent = Some(d.region_of[p.idx()]);
    }
    d.finalize_slots(tree.as_ref());
    d
}

/// Splits `tree` into regions of ≈`budget` work units each (cost-driven
/// adaptive decomposition).
///
/// The engine works in the [`WorkTable`]'s rule-cost units instead of
/// node counts, so a region's size tracks how long an evaluator will
/// chew on it, not how many nodes it ships:
///
/// 1. **Re-split oversized regions**: while any region's local work
///    exceeds 1.5× the budget, carve out of the (largest such) region
///    the eligible `%split` subtree whose local work is closest to the
///    budget. A region with no remaining candidate is frozen as-is —
///    splits only happen where the grammar allows them.
/// 2. **Merge undersized regions**: a region below ¼ of the budget is
///    folded back into the region owning its root's parent, provided
///    the combined region stays within the 1.5× bound — tiny regions
///    cost more in messages and machine setup than they recover in
///    overlap.
///
/// The result depends only on the tree and the budget — *not* on the
/// machine count — so the same tree decomposes identically no matter
/// how many workers the pool runs, and a region-granular scheduler can
/// map regions onto workers round-robin. Returns the trivial
/// decomposition when the whole tree fits within 1.5× the budget.
///
/// Cost: each split iteration rescans the candidates of the largest
/// oversized region, and a candidate's local work walks the carved
/// region list — O(splits × candidates × regions) worst case. Measured
/// on the 264k-node `huge` Pascal workload this is 15–60 ms for 10–65
/// regions (a few percent of that tree's evaluation time); it runs
/// once per tree on the submit thread. If region counts grow far
/// beyond that, maintain per-region candidate lists and update local
/// work incrementally on `split_off`.
pub fn decompose_adaptive<V: AttrValue>(
    tree: &Arc<ParseTree<V>>,
    table: &SplitTable,
    work: &WorkTable,
    budget: u64,
) -> Decomposition {
    let g = tree.grammar();
    let budget = budget.max(1);
    let oversize = budget.saturating_add(budget / 2);
    let undersize = budget / 4;

    let mut d = Decomposition::whole_unfinalized(tree);

    // Per-subtree work in one reverse-preorder accumulation.
    let pre: Vec<NodeId> = tree.subtree(tree.root()).collect();
    let mut sub_work = vec![0u64; tree.len()];
    for &n in pre.iter().rev() {
        let mut w = work.node_work(tree, n);
        for c in &tree.node(n).children {
            if let crate::tree::Child::Node(c) = c {
                w += sub_work[c.idx()];
            }
        }
        sub_work[n.idx()] = w;
    }
    let mut local_work: Vec<u64> = vec![sub_work[tree.root().idx()]];
    if local_work[0] <= oversize {
        d.finalize_slots(tree.as_ref());
        return d;
    }

    // Candidate split points (as in `decompose_with`).
    let candidates: Vec<NodeId> = tree
        .node_ids()
        .filter(|&n| n != tree.root())
        .filter(|&n| {
            let sym = g.prod(tree.node(n).prod).lhs;
            table
                .min_size(sym)
                .is_some_and(|min| tree.subtree_size(n) >= min)
        })
        .collect();

    let mut pre_in = vec![0u32; tree.len()];
    for (i, n) in pre.iter().enumerate() {
        pre_in[n.idx()] = i as u32;
    }
    let under = |anc: NodeId, desc: NodeId| {
        let a = pre_in[anc.idx()] as usize;
        let di = pre_in[desc.idx()] as usize;
        di > a && di < a + tree.subtree_size(anc)
    };
    // Local (work, node count) of candidate `n` within its region: its
    // subtree minus any maximal-in-region nested region roots under it.
    let local_of = |d: &Decomposition, n: NodeId| -> (u64, usize) {
        let r = d.region(n);
        let mut w = sub_work[n.idx()];
        let mut s = tree.subtree_size(n);
        for info in d.regions.iter().skip(1) {
            let (pnode, _) = tree
                .node(info.root)
                .parent
                .expect("carved region roots are not the tree root");
            if d.region(pnode) == r && under(n, info.root) {
                w -= sub_work[info.root.idx()];
                s -= tree.subtree_size(info.root);
            }
        }
        (w, s)
    };

    // Phase 1: re-split oversized regions.
    let mut frozen: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut roots: std::collections::HashSet<NodeId> =
        std::collections::HashSet::from([tree.root()]);
    while let Some((big, _)) = local_work
        .iter()
        .enumerate()
        .filter(|&(i, &w)| w > oversize && !frozen.contains(&i))
        .max_by_key(|&(_, &w)| w)
    {
        let big_nodes = d.regions[big].local_size;
        let mut best: Option<(NodeId, u64, u64)> = None; // (node, score, local work)
        for &n in &candidates {
            if d.region(n) != big as RegionId || roots.contains(&n) {
                continue;
            }
            let (lw, ln) = local_of(&d, n);
            if ln < 2 || big_nodes - ln < 2 {
                continue;
            }
            let score = lw.abs_diff(budget);
            if best.is_none_or(|(_, s, _)| score < s) {
                best = Some((n, score, lw));
            }
        }
        match best {
            None => {
                frozen.insert(big);
            }
            Some((node, _, lw)) => {
                split_off(tree, &mut d, node);
                roots.insert(node);
                local_work[big] -= lw;
                local_work.push(lw);
            }
        }
    }

    // Phase 2: merge undersized regions into their parent region.
    let mut i = d.regions.len();
    while i > 1 {
        i -= 1;
        if local_work[i] >= undersize {
            continue;
        }
        let (pnode, _) = tree
            .node(d.regions[i].root)
            .parent
            .expect("carved region roots are not the tree root");
        let target = d.region_of[pnode.idx()] as usize;
        if local_work[target].saturating_add(local_work[i]) > oversize {
            continue;
        }
        let victim = i as RegionId;
        // Post-removal id of the target: removing the victim shifts
        // every higher-indexed region down by one, the target included
        // when it sits above the victim.
        let target_after = if target > i { target - 1 } else { target } as RegionId;
        for slot in d.region_of.iter_mut() {
            if *slot == victim {
                *slot = target_after;
            } else if *slot > victim {
                *slot -= 1;
            }
        }
        d.regions[target].local_size += d.regions[i].local_size;
        local_work[target] += local_work[i];
        d.regions.remove(i);
        local_work.remove(i);
    }

    // Recompute parent links from the final map (as in decompose_with).
    for i in 1..d.regions.len() {
        let root = d.regions[i].root;
        let (p, _) = tree
            .node(root)
            .parent
            .expect("non-root region root has a parent");
        d.regions[i].parent = Some(d.region_of[p.idx()]);
    }
    d.finalize_slots(tree.as_ref());
    d
}

/// Carves the local subtree of `node` out of its current region into a
/// new one.
fn split_off<V: AttrValue>(tree: &Arc<ParseTree<V>>, d: &mut Decomposition, node: NodeId) {
    let old = d.region(node);
    let new = d.regions.len() as RegionId;
    let mut moved = 0usize;
    let mut stack = vec![node];
    while let Some(x) = stack.pop() {
        if d.region(x) != old {
            continue;
        }
        d.region_of[x.idx()] = new;
        moved += 1;
        for c in &tree.node(x).children {
            if let crate::tree::Child::Node(c) = c {
                stack.push(*c);
            }
        }
    }
    d.regions[old as usize].local_size -= moved;
    d.regions.push(RegionInfo {
        root: node,
        parent: Some(old),
        local_size: moved,
    });
}

/// The boundary children of a region: in-region parents paired with
/// child nodes owned by other regions (the "remotely evaluated leaves"
/// of §2.4).
pub fn boundary_children<V: AttrValue>(
    tree: &ParseTree<V>,
    d: &Decomposition,
    region: RegionId,
) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    let root = d.regions[region as usize].root;
    let mut stack = vec![root];
    while let Some(x) = stack.pop() {
        for c in &tree.node(x).children {
            if let crate::tree::Child::Node(c) = c {
                if d.region(*c) == region {
                    stack.push(*c);
                } else {
                    out.push((x, *c));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;
    use crate::tree::TreeBuilder;
    use crate::ProdId;

    /// Builds a grammar with splittable `list` nodes and a chain/comb
    /// tree: root -> list of `n` items, each item a small subtree.
    fn comb(n: usize, item_depth: usize) -> (Arc<ParseTree<i64>>, ProdId) {
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let list = g.nonterminal("list");
        let item = g.nonterminal("item");
        let sv = g.synthesized(s, "v");
        let lv = g.synthesized(list, "v");
        let iv = g.synthesized(item, "v");
        g.mark_split(list, 4);
        let top = g.production("top", s, [list]);
        g.rule(top, (0, sv), [(1, lv)], |a| a[0]);
        let cons = g.production("cons", list, [item, list]);
        g.rule(cons, (0, lv), [(1, iv), (2, lv)], |a| a[0] + a[1]);
        let nil = g.production("nil", list, []);
        g.rule(nil, (0, lv), [], |_| 0);
        let wrap = g.production("wrap", item, [item]);
        g.rule(wrap, (0, iv), [(1, iv)], |a| a[0]);
        let unit = g.production("unit", item, []);
        g.rule(unit, (0, iv), [], |_| 1);
        let gr = Arc::new(g.build(s).unwrap());

        let mut tb = TreeBuilder::new(&gr);
        let mut tail = tb.leaf(nil);
        for _ in 0..n {
            let mut it = tb.leaf(unit);
            for _ in 0..item_depth {
                it = tb.node(wrap, [it]);
            }
            tail = tb.node(cons, [it, tail]);
        }
        let root = tb.node(top, [tail]);
        (Arc::new(tb.finish(root).unwrap()), top)
    }

    #[test]
    fn whole_decomposition_is_one_region() {
        let (tree, _) = comb(4, 1);
        let d = Decomposition::whole(&tree);
        assert_eq!(d.len(), 1);
        assert!(d.is_unsplit());
        assert!(tree.node_ids().all(|n| d.region(n) == 0));
    }

    #[test]
    fn decompose_reaches_target_when_possible() {
        let (tree, _) = comb(32, 3);
        for k in 2..=5 {
            let d = decompose(&tree, SplitConfig::machines(k));
            assert_eq!(d.len(), k, "k={k}");
            // Every node accounted for, regions partition the tree.
            let total: usize = d.regions.iter().map(|r| r.local_size).sum();
            assert_eq!(total, tree.len());
            // Region 0 owns the tree root.
            assert_eq!(d.regions[0].root, tree.root());
            assert_eq!(d.region(tree.root()), 0);
        }
    }

    #[test]
    fn regions_are_reasonably_balanced() {
        let (tree, _) = comb(64, 4);
        let d = decompose(&tree, SplitConfig::machines(4));
        assert_eq!(d.len(), 4);
        let sizes: Vec<usize> = d.regions.iter().map(|r| r.local_size).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(
            max <= min * 4,
            "decomposition too uneven: {sizes:?} (tree {} nodes)",
            tree.len()
        );
    }

    #[test]
    fn min_size_scale_suppresses_splits() {
        let (tree, _) = comb(8, 1);
        let d = decompose(
            &tree,
            SplitConfig {
                target_regions: 4,
                min_size_scale: 1e6,
            },
        );
        assert_eq!(d.len(), 1, "nothing is large enough to split");
    }

    #[test]
    fn boundary_children_cross_regions() {
        let (tree, _) = comb(32, 3);
        let d = decompose(&tree, SplitConfig::machines(3));
        let b0 = boundary_children(&tree, &d, 0);
        assert!(!b0.is_empty());
        for (p, c) in b0 {
            assert_eq!(d.region(p), 0);
            assert_ne!(d.region(c), 0);
            // The boundary child is a region root.
            assert!(d.regions.iter().any(|r| r.root == c));
        }
    }

    #[test]
    fn parent_links_are_consistent() {
        let (tree, _) = comb(48, 2);
        let d = decompose(&tree, SplitConfig::machines(5));
        for (i, r) in d.regions.iter().enumerate().skip(1) {
            let parent = r.parent.expect("non-root regions have parents");
            let (pnode, _) = tree
                .node(r.root)
                .parent
                .expect("region root has a parent node");
            assert_eq!(d.region(pnode), parent, "region {i}");
        }
    }

    /// Checks the structural invariants every decomposition must obey:
    /// nodes partitioned, region 0 at the tree root, region roots and
    /// parent links consistent, boundary children owned by child-region
    /// roots.
    fn assert_partition(tree: &Arc<ParseTree<i64>>, d: &Decomposition) {
        let total: usize = d.regions.iter().map(|r| r.local_size).sum();
        assert_eq!(total, tree.len(), "regions partition the tree");
        assert_eq!(d.regions[0].root, tree.root());
        assert_eq!(d.region(tree.root()), 0);
        for n in tree.node_ids() {
            assert!((d.region(n) as usize) < d.len(), "node region in range");
        }
        for (i, r) in d.regions.iter().enumerate() {
            assert_eq!(d.region(r.root), i as RegionId, "root owned by region");
        }
        for (i, r) in d.regions.iter().enumerate().skip(1) {
            let parent = r.parent.expect("non-root regions have parents");
            let (pnode, _) = tree.node(r.root).parent.expect("root has parent node");
            assert_eq!(d.region(pnode), parent, "region {i} parent link");
        }
        for r in 0..d.len() as RegionId {
            for (p, c) in boundary_children(tree, d, r) {
                assert_eq!(d.region(p), r);
                assert_ne!(d.region(c), r);
                assert_eq!(d.regions[d.region(c) as usize].root, c);
            }
        }
    }

    #[test]
    fn adaptive_decomposition_tracks_the_budget_not_the_machine_count() {
        let (tree, _) = comb(96, 4);
        let table = SplitTable::new(tree.grammar().as_ref(), 1.0);
        let work = WorkTable::new(tree.grammar().as_ref());
        let total = work.tree_work(&tree);
        for div in [2u64, 4, 8, 16] {
            let budget = (total / div).max(1);
            let d = decompose_adaptive(&tree, &table, &work, budget);
            assert_partition(&tree, &d);
            assert!(d.len() > 1, "budget {budget}: tree should split");
            for r in 0..d.len() as RegionId {
                let w = work.region_work(&tree, &d, r);
                assert!(w > 0, "budget {budget}: region {r} has work");
            }
            // Region count is in the ballpark of work/budget.
            let expect = total.div_ceil(budget) as usize;
            assert!(
                d.len() <= 2 * expect + 1,
                "budget {budget}: {} regions for expected ≈{expect}",
                d.len()
            );
        }
    }

    #[test]
    fn adaptive_huge_budget_leaves_tree_whole() {
        let (tree, _) = comb(32, 3);
        let table = SplitTable::new(tree.grammar().as_ref(), 1.0);
        let work = WorkTable::new(tree.grammar().as_ref());
        let d = decompose_adaptive(&tree, &table, &work, u64::MAX / 4);
        assert!(d.is_unsplit());
    }

    #[test]
    fn adaptive_merges_undersized_regions() {
        let (tree, _) = comb(64, 4);
        let table = SplitTable::new(tree.grammar().as_ref(), 1.0);
        let work = WorkTable::new(tree.grammar().as_ref());
        let total = work.tree_work(&tree);
        let budget = (total / 6).max(1);
        let d = decompose_adaptive(&tree, &table, &work, budget);
        assert!(d.len() > 1);
        // On this uniform-cost comb every undersized region has room to
        // fold into its parent, so none survives below ¼ budget.
        for r in 0..d.len() as RegionId {
            let w = work.region_work(&tree, &d, r);
            assert!(
                w >= budget / 4,
                "region {r} undersized at {w} (budget {budget}, total {total})"
            );
        }
    }

    #[test]
    fn adaptive_is_deterministic() {
        let (tree, _) = comb(48, 3);
        let table = SplitTable::new(tree.grammar().as_ref(), 1.0);
        let work = WorkTable::new(tree.grammar().as_ref());
        let a = decompose_adaptive(&tree, &table, &work, 64);
        let b = decompose_adaptive(&tree, &table, &work, 64);
        assert_eq!(a.region_of, b.region_of);
        assert_eq!(a.regions, b.regions);
    }

    #[test]
    fn granularity_dispatch_matches_both_engines() {
        let (tree, _) = comb(32, 3);
        let table = SplitTable::new(tree.grammar().as_ref(), 1.0);
        let work = WorkTable::new(tree.grammar().as_ref());
        let fixed = decompose_granular(&tree, &table, &work, RegionGranularity::Machines(3));
        assert_eq!(fixed.len(), decompose_with(&tree, &table, 3).len());
        let adaptive = decompose_granular(
            &tree,
            &table,
            &work,
            RegionGranularity::Adaptive { budget: 40 },
        );
        assert_eq!(
            adaptive.len(),
            decompose_adaptive(&tree, &table, &work, 40).len()
        );
    }

    #[test]
    fn work_table_weights_sum_over_the_tree() {
        let (tree, _) = comb(8, 2);
        let work = WorkTable::new(tree.grammar().as_ref());
        let total = work.tree_work(&tree);
        let by_node: u64 = tree.node_ids().map(|n| work.node_work(&tree, n)).sum();
        assert_eq!(total, by_node);
        assert!(total >= tree.len() as u64, "every node weighs at least 1");
        let d = decompose(&tree, SplitConfig::machines(2));
        let by_region: u64 = (0..d.len() as RegionId)
            .map(|r| work.region_work(&tree, &d, r))
            .sum();
        assert_eq!(by_region, total);
    }

    #[test]
    fn render_mentions_every_region() {
        let (tree, _) = comb(32, 3);
        let d = decompose(&tree, SplitConfig::machines(3));
        let s = d.render(&tree);
        assert!(s.contains("a: root="));
        assert!(s.contains("b: root="));
        assert!(s.contains("c: root="));
    }
}
