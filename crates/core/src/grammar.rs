//! Attribute grammars (§2.2 of the paper).
//!
//! A grammar is a set of [`Symbol`]s (terminals and nonterminals), each
//! carrying attribute declarations, and a set of [`Production`]s, each
//! carrying *semantic rules*. Semantic rules are pure functions — the
//! applicative nature of the specification is what makes parallel
//! evaluation cheap to synchronize — represented as `Arc<dyn Fn>` over the
//! argument attribute values.
//!
//! Grammars must be in Bochmann normal form: every rule defines either a
//! synthesized attribute of the left-hand side or an inherited attribute
//! of a right-hand-side occurrence, and every such attribute is defined by
//! exactly one rule per production. [`GrammarBuilder::build`] validates
//! this.
//!
//! The paper's extensions are first-class here: nonterminals may carry a
//! [`SplitSpec`] (the `%split` declaration with a minimum subtree size,
//! §2.5) and attributes may be flagged *priority* (§4.3) so that the
//! dynamic scheduler evaluates and propagates them as soon as possible.
//!
//! # The `Args` calling convention
//!
//! Semantic functions receive their arguments as [`Args<'_, V>`] — a
//! borrowed view of the argument attribute values — rather than an owned
//! `&[V]` slice. This is the paper's §4.3 "extremely fast storage
//! allocation" requirement applied to rule invocation: evaluators gather
//! argument *references* into a reusable [`ArgScratch`] buffer, so one
//! rule application performs **zero heap allocations and zero argument
//! clones**, at any tree size.
//!
//! [`Args`] implements `Index<usize, Output = V>`, so the closure style
//! used throughout (`|a| a[0].clone()`, `|a| a[0] + a[1]`,
//! `|a| PVal::errs_concat(&[&a[0], &a[1]])`) compiles unchanged.
//!
//! ## Migration notes (from the `&[V]` convention)
//!
//! * `|a| ...` closures with *inferred* parameter types need no edits —
//!   indexing, `&a[i]` borrows and method calls on `a[i]` all behave as
//!   before.
//! * Closures or functions with an *explicit* `&[V]` parameter type must
//!   either drop the annotation (and let the `rule` bound infer it) or
//!   be wrapped at the registration site so inference applies.
//! * Code that invoked a [`RuleFn`] directly with a temporary slice
//!   (`f(&[x, y])`) becomes `f(Args::from_slice(&[x, y]))`.
//! * Code that iterated the whole argument slice uses [`Args::iter`] or
//!   [`Args::len`] + indexing.

use crate::value::AttrValue;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Index;
use std::sync::Arc;

/// Identifies a symbol (terminal or nonterminal) within its [`Grammar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub u32);

/// Identifies an attribute *of a particular symbol* (index into the
/// symbol's attribute list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

/// Identifies a production within its [`Grammar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProdId(pub u32);

/// Whether an attribute flows up (synthesized) or down (inherited) the
/// parse tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Computed at a node from its children (and its own inherited
    /// attributes); flows upward.
    Syn,
    /// Computed at the parent; flows downward.
    Inh,
}

/// An attribute declaration.
#[derive(Debug, Clone)]
pub struct Attr {
    /// Attribute name (unique per symbol).
    pub name: String,
    /// Synthesized or inherited.
    pub kind: AttrKind,
    /// Priority attributes are evaluated and propagated as soon as they
    /// become ready (§4.3: the global symbol table).
    pub priority: bool,
}

/// `%split` annotation: subtrees rooted at this nonterminal may be
/// evaluated on a separate machine if they are large enough.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitSpec {
    /// Minimum subtree size (in tree nodes) for a split to be worthwhile;
    /// scaled at run time by the splitter configuration (the paper scales
    /// it "by a runtime argument to the parser").
    pub min_size: usize,
}

/// A grammar symbol and its attribute declarations.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// `true` for terminals (attributes are supplied by the scanner).
    pub terminal: bool,
    /// Attribute declarations; [`AttrId`] indexes this list.
    pub attrs: Vec<Attr>,
    /// Split annotation, if any.
    pub split: Option<SplitSpec>,
}

impl Symbol {
    /// Ids of all attributes of the given kind.
    pub fn attrs_of_kind(&self, kind: AttrKind) -> impl Iterator<Item = AttrId> + '_ {
        self.attrs
            .iter()
            .enumerate()
            .filter(move |(_, a)| a.kind == kind)
            .map(|(i, _)| AttrId(i as u32))
    }

    /// Looks up an attribute by name.
    pub fn attr_named(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| AttrId(i as u32))
    }
}

/// Reference to an attribute occurrence within a production: occurrence 0
/// is the left-hand side, occurrences 1..=n are the right-hand-side
/// symbols in order (the paper's `$$.x` / `$i.x` notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OccRef {
    /// Occurrence index (0 = LHS).
    pub occ: usize,
    /// Attribute of the symbol at that occurrence.
    pub attr: AttrId,
}

impl From<(usize, AttrId)> for OccRef {
    fn from((occ, attr): (usize, AttrId)) -> Self {
        OccRef { occ, attr }
    }
}

/// Borrowed arguments of one semantic-rule application.
///
/// Indexing yields the argument values in the order the rule declared
/// them (`a[0]` is the first argument occurrence). The view is `Copy`
/// and only valid for the duration of the call — semantic functions are
/// pure, so nothing outlives it.
pub struct Args<'a, V> {
    repr: ArgsRepr<'a, V>,
}

enum ArgsRepr<'a, V> {
    /// Pointers gathered by an [`ArgScratch`] (the evaluators' path).
    ///
    /// Invariant: every pointer is valid for `'a` — upheld by
    /// [`Args::from_ptrs`]'s safety contract.
    Ptrs(&'a [*const V], PhantomData<&'a V>),
    /// A plain value slice (direct calls, nested semantic functions).
    Slice(&'a [V]),
}

impl<'a, V> Clone for Args<'a, V> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'a, V> Copy for Args<'a, V> {}

impl<'a, V> Clone for ArgsRepr<'a, V> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'a, V> Copy for ArgsRepr<'a, V> {}

impl<'a, V> Args<'a, V> {
    /// Views a value slice as arguments (for calling a [`RuleFn`]
    /// directly, e.g. from tests or interpreters that computed owned
    /// argument values).
    pub fn from_slice(values: &'a [V]) -> Self {
        Args {
            repr: ArgsRepr::Slice(values),
        }
    }

    /// Wraps gathered pointers.
    ///
    /// # Safety
    ///
    /// Every pointer in `ptrs` must be dereferenceable and point to a
    /// live `V` for the whole lifetime `'a`.
    unsafe fn from_ptrs(ptrs: &'a [*const V]) -> Self {
        Args {
            repr: ArgsRepr::Ptrs(ptrs, PhantomData),
        }
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        match self.repr {
            ArgsRepr::Ptrs(p, _) => p.len(),
            ArgsRepr::Slice(s) => s.len(),
        }
    }

    /// `true` for nullary rules.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th argument, if present.
    pub fn get(&self, i: usize) -> Option<&'a V> {
        match self.repr {
            // SAFETY: pointers are valid for 'a per the from_ptrs
            // contract.
            ArgsRepr::Ptrs(p, _) => p.get(i).map(|&p| unsafe { &*p }),
            ArgsRepr::Slice(s) => s.get(i),
        }
    }

    /// Iterates over the argument values.
    pub fn iter(self) -> impl Iterator<Item = &'a V> {
        (0..self.len()).map(move |i| self.get(i).expect("index in range"))
    }
}

impl<V> Index<usize> for Args<'_, V> {
    type Output = V;

    fn index(&self, i: usize) -> &V {
        match self.repr {
            // SAFETY: pointers are valid for 'a per the from_ptrs
            // contract (the returned borrow is further shortened to
            // &self here, which 'a outlives).
            ArgsRepr::Ptrs(p, _) => unsafe { &*p[i] },
            ArgsRepr::Slice(s) => &s[i],
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for Args<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut list = f.debug_list();
        for i in 0..self.len() {
            list.entry(&self[i]);
        }
        list.finish()
    }
}

/// A reusable argument-gathering buffer: the zero-allocation bridge
/// between an attribute store and a [`RuleFn`].
///
/// Each evaluator owns one scratch and reuses its capacity across every
/// rule application, so argument passing allocates only until the
/// largest rule arity has been seen once.
pub struct ArgScratch<V> {
    ptrs: Vec<*const V>,
}

// SAFETY: the pointer buffer is logically empty between `apply` calls
// (cleared before the arguments could dangle); a scratch moved across
// threads carries no live borrows.
unsafe impl<V: Send> Send for ArgScratch<V> {}
// SAFETY: as above; `&ArgScratch` exposes no pointer reads.
unsafe impl<V: Sync> Sync for ArgScratch<V> {}

impl<V> Default for ArgScratch<V> {
    fn default() -> Self {
        ArgScratch { ptrs: Vec::new() }
    }
}

impl<V> ArgScratch<V> {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies `rule`, resolving each argument occurrence through `get`.
    ///
    /// The resolved references only need to live for this call; the
    /// borrow of whatever backs them ends when `apply` returns, so the
    /// caller may mutate the attribute store immediately afterwards.
    pub fn apply<'t>(&mut self, rule: &Rule<V>, mut get: impl FnMut(OccRef) -> &'t V) -> V
    where
        V: 't,
    {
        self.ptrs.clear();
        for &a in &rule.args {
            let v: &'t V = get(a);
            self.ptrs.push(v as *const V);
        }
        // SAFETY: the pointers were just derived from `&'t V` borrows,
        // which outlive this call; `Args` does not escape `rule.func`
        // (semantic functions return owned values).
        let value = (rule.func)(unsafe { Args::from_ptrs(&self.ptrs) });
        self.ptrs.clear();
        value
    }

    /// Fallible variant of [`ArgScratch::apply`]: stops at the first
    /// argument `get` cannot resolve.
    ///
    /// # Errors
    ///
    /// Returns `get`'s error for the first unresolvable occurrence.
    pub fn try_apply<'t, E>(
        &mut self,
        rule: &Rule<V>,
        mut get: impl FnMut(OccRef) -> Result<&'t V, E>,
    ) -> Result<V, E>
    where
        V: 't,
    {
        self.ptrs.clear();
        for &a in &rule.args {
            match get(a) {
                Ok(v) => {
                    let v: &'t V = v;
                    self.ptrs.push(v as *const V);
                }
                Err(e) => {
                    self.ptrs.clear();
                    return Err(e);
                }
            }
        }
        // SAFETY: as in `apply`.
        let value = (rule.func)(unsafe { Args::from_ptrs(&self.ptrs) });
        self.ptrs.clear();
        Ok(value)
    }

    /// Gathers `count` argument references through `resolve` and hands
    /// them to `call` as a borrowed [`Args`] view — the compiled-program
    /// counterpart of [`ArgScratch::try_apply`], where the operand list
    /// lives in the program rather than on a [`Rule`].
    ///
    /// # Errors
    ///
    /// Returns `resolve`'s error for the first unresolvable operand.
    pub(crate) fn try_call_gathered<'t, E>(
        &mut self,
        count: usize,
        mut resolve: impl FnMut(usize) -> Result<&'t V, E>,
        call: impl FnOnce(Args<'_, V>) -> V,
    ) -> Result<V, E>
    where
        V: 't,
    {
        self.ptrs.clear();
        for i in 0..count {
            match resolve(i) {
                Ok(v) => self.ptrs.push(v as *const V),
                Err(e) => {
                    self.ptrs.clear();
                    return Err(e);
                }
            }
        }
        // SAFETY: as in `apply` — the pointers come from `&'t V` borrows
        // outliving this call, and `Args` does not escape `call`.
        let value = call(unsafe { Args::from_ptrs(&self.ptrs) });
        self.ptrs.clear();
        Ok(value)
    }
}

impl<V> fmt::Debug for ArgScratch<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArgScratch(capacity {})", self.ptrs.capacity())
    }
}

/// A semantic function: pure mapping from argument values to the target
/// value.
pub type RuleFn<V> = Arc<dyn for<'a> Fn(Args<'a, V>) -> V + Send + Sync>;

/// A *nameable* semantic function: a plain `fn` pointer with no captured
/// environment.
///
/// Rules registered with one (via [`GrammarBuilder::rule_direct`] /
/// [`GrammarBuilder::rule_with_cost_direct`]) form the grammar's
/// direct-call table: the compiled visit programs
/// ([`crate::eval::VisitPrograms`]) call them without the
/// `Arc<dyn Fn>` double indirection of [`RuleFn`].
pub type DirectFn<V> = fn(Args<'_, V>) -> V;

/// A semantic rule: `target = func(args...)`.
#[derive(Clone)]
pub struct Rule<V> {
    /// The attribute occurrence being defined.
    pub target: OccRef,
    /// Argument occurrences, in the order `func` receives them.
    pub args: Vec<OccRef>,
    /// The semantic function.
    pub func: RuleFn<V>,
    /// The same function as a plain `fn` pointer, when the registering
    /// layer could name one (the direct-call table entry; `None` means
    /// evaluators must go through the boxed `func`).
    pub direct: Option<DirectFn<V>>,
    /// Abstract CPU cost of one application (used by the simulator's cost
    /// model; 1 = a trivial copy/arithmetic rule).
    pub cost: u64,
}

impl<V> fmt::Debug for Rule<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Rule {{ target: {:?}, args: {:?}, cost: {} }}",
            self.target, self.args, self.cost
        )
    }
}

/// A context-free production with its semantic rules.
#[derive(Debug, Clone)]
pub struct Production<V> {
    /// Production name (for diagnostics and plan dumps).
    pub name: String,
    /// Left-hand-side nonterminal.
    pub lhs: SymbolId,
    /// Right-hand-side symbols (terminals and nonterminals).
    pub rhs: Vec<SymbolId>,
    /// Semantic rules, one per defined attribute occurrence.
    pub rules: Vec<Rule<V>>,
}

impl<V> Production<V> {
    /// Symbol at an occurrence (0 = LHS).
    pub fn occ_symbol(&self, occ: usize) -> SymbolId {
        if occ == 0 {
            self.lhs
        } else {
            self.rhs[occ - 1]
        }
    }

    /// Number of occurrences including the LHS.
    pub fn occ_count(&self) -> usize {
        self.rhs.len() + 1
    }

    /// The rule defining `target`, if any.
    pub fn rule_for(&self, target: OccRef) -> Option<&Rule<V>> {
        self.rules.iter().find(|r| r.target == target)
    }
}

/// A validated attribute grammar.
#[derive(Debug)]
pub struct Grammar<V> {
    symbols: Vec<Symbol>,
    prods: Vec<Production<V>>,
    prods_of: Vec<Vec<ProdId>>,
    start: SymbolId,
}

impl<V: AttrValue> Grammar<V> {
    /// The start symbol.
    pub fn start(&self) -> SymbolId {
        self.start
    }

    /// Symbol metadata.
    pub fn symbol(&self, id: SymbolId) -> &Symbol {
        &self.symbols[id.0 as usize]
    }

    /// All symbols in declaration order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Production metadata.
    pub fn prod(&self, id: ProdId) -> &Production<V> {
        &self.prods[id.0 as usize]
    }

    /// All productions in declaration order.
    pub fn prods(&self) -> &[Production<V>] {
        &self.prods
    }

    /// Productions whose LHS is `sym`.
    pub fn prods_of(&self, sym: SymbolId) -> &[ProdId] {
        &self.prods_of[sym.0 as usize]
    }

    /// Number of attributes of a symbol.
    pub fn attr_count(&self, sym: SymbolId) -> usize {
        self.symbols[sym.0 as usize].attrs.len()
    }

    /// Looks up a symbol by name.
    pub fn symbol_named(&self, name: &str) -> Option<SymbolId> {
        self.symbols
            .iter()
            .position(|s| s.name == name)
            .map(|i| SymbolId(i as u32))
    }

    /// Total number of semantic rules (the paper reports this for its
    /// Pascal grammar).
    pub fn rule_count(&self) -> usize {
        self.prods.iter().map(|p| p.rules.len()).sum()
    }
}

/// Errors detected by [`GrammarBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarError {
    /// A rule's target is not a synthesized attribute of the LHS or an
    /// inherited attribute of an RHS occurrence.
    BadRuleTarget {
        /// Production name.
        prod: String,
        /// Offending target.
        target: String,
    },
    /// Two rules define the same attribute occurrence.
    DuplicateRule {
        /// Production name.
        prod: String,
        /// Attribute occurrence defined twice.
        target: String,
    },
    /// An attribute occurrence that must be defined has no rule.
    MissingRule {
        /// Production name.
        prod: String,
        /// Undefined attribute occurrence.
        target: String,
    },
    /// A rule argument occurrence is out of range or refers to an unknown
    /// attribute.
    BadRuleArg {
        /// Production name.
        prod: String,
        /// Offending argument.
        arg: String,
    },
    /// Terminals cannot have inherited attributes.
    TerminalInherited {
        /// Terminal symbol name.
        symbol: String,
        /// Attribute name.
        attr: String,
    },
    /// The start symbol must not have inherited attributes.
    StartHasInherited {
        /// Attribute name.
        attr: String,
    },
    /// The start symbol is a terminal.
    StartIsTerminal,
    /// A production's LHS is a terminal.
    TerminalLhs {
        /// Production name.
        prod: String,
    },
    /// A nonterminal is used on an RHS but has no productions.
    NoProductions {
        /// Symbol name.
        symbol: String,
    },
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::BadRuleTarget { prod, target } => {
                write!(f, "production {prod:?}: rule target {target} must be a synthesized attribute of the LHS or an inherited attribute of an RHS occurrence")
            }
            GrammarError::DuplicateRule { prod, target } => {
                write!(
                    f,
                    "production {prod:?}: {target} is defined by more than one rule"
                )
            }
            GrammarError::MissingRule { prod, target } => {
                write!(f, "production {prod:?}: no rule defines {target}")
            }
            GrammarError::BadRuleArg { prod, arg } => {
                write!(f, "production {prod:?}: rule argument {arg} is invalid")
            }
            GrammarError::TerminalInherited { symbol, attr } => {
                write!(
                    f,
                    "terminal {symbol:?} cannot have inherited attribute {attr:?}"
                )
            }
            GrammarError::StartHasInherited { attr } => {
                write!(f, "start symbol cannot have inherited attribute {attr:?}")
            }
            GrammarError::StartIsTerminal => write!(f, "start symbol must be a nonterminal"),
            GrammarError::TerminalLhs { prod } => {
                write!(f, "production {prod:?}: left-hand side is a terminal")
            }
            GrammarError::NoProductions { symbol } => {
                write!(f, "nonterminal {symbol:?} has no productions")
            }
        }
    }
}

impl std::error::Error for GrammarError {}

/// Incrementally assembles and validates a [`Grammar`].
pub struct GrammarBuilder<V> {
    symbols: Vec<Symbol>,
    prods: Vec<Production<V>>,
}

impl<V: AttrValue> Default for GrammarBuilder<V> {
    fn default() -> Self {
        GrammarBuilder {
            symbols: Vec::new(),
            prods: Vec::new(),
        }
    }
}

impl<V: AttrValue> GrammarBuilder<V> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a nonterminal.
    pub fn nonterminal(&mut self, name: impl Into<String>) -> SymbolId {
        self.symbols.push(Symbol {
            name: name.into(),
            terminal: false,
            attrs: Vec::new(),
            split: None,
        });
        SymbolId(self.symbols.len() as u32 - 1)
    }

    /// Declares a terminal. Terminal attributes (added with
    /// [`GrammarBuilder::synthesized`]) are supplied by the scanner.
    pub fn terminal(&mut self, name: impl Into<String>) -> SymbolId {
        self.symbols.push(Symbol {
            name: name.into(),
            terminal: true,
            attrs: Vec::new(),
            split: None,
        });
        SymbolId(self.symbols.len() as u32 - 1)
    }

    /// Declares a synthesized attribute on `sym`.
    pub fn synthesized(&mut self, sym: SymbolId, name: impl Into<String>) -> AttrId {
        self.add_attr(sym, name.into(), AttrKind::Syn)
    }

    /// Declares an inherited attribute on `sym`.
    pub fn inherited(&mut self, sym: SymbolId, name: impl Into<String>) -> AttrId {
        self.add_attr(sym, name.into(), AttrKind::Inh)
    }

    fn add_attr(&mut self, sym: SymbolId, name: String, kind: AttrKind) -> AttrId {
        let s = &mut self.symbols[sym.0 as usize];
        s.attrs.push(Attr {
            name,
            kind,
            priority: false,
        });
        AttrId(s.attrs.len() as u32 - 1)
    }

    /// Marks an attribute as a priority attribute (§4.3).
    pub fn mark_priority(&mut self, sym: SymbolId, attr: AttrId) {
        self.symbols[sym.0 as usize].attrs[attr.0 as usize].priority = true;
    }

    /// Marks `sym` as a split point with the given minimum subtree size
    /// (`%split`, §2.5).
    pub fn mark_split(&mut self, sym: SymbolId, min_size: usize) {
        self.symbols[sym.0 as usize].split = Some(SplitSpec { min_size });
    }

    /// Adds a production `lhs -> rhs...` and returns its id.
    pub fn production(
        &mut self,
        name: impl Into<String>,
        lhs: SymbolId,
        rhs: impl IntoIterator<Item = SymbolId>,
    ) -> ProdId {
        self.prods.push(Production {
            name: name.into(),
            lhs,
            rhs: rhs.into_iter().collect(),
            rules: Vec::new(),
        });
        ProdId(self.prods.len() as u32 - 1)
    }

    /// Adds a semantic rule `target = func(args...)` with unit cost.
    pub fn rule(
        &mut self,
        prod: ProdId,
        target: impl Into<OccRef>,
        args: impl IntoIterator<Item = (usize, AttrId)>,
        func: impl for<'a> Fn(Args<'a, V>) -> V + Send + Sync + 'static,
    ) {
        self.rule_with_cost(prod, target, args, func, 1);
    }

    /// Adds a semantic rule with an explicit abstract cost (virtual CPU
    /// units consumed per application in the simulator).
    pub fn rule_with_cost(
        &mut self,
        prod: ProdId,
        target: impl Into<OccRef>,
        args: impl IntoIterator<Item = (usize, AttrId)>,
        func: impl for<'a> Fn(Args<'a, V>) -> V + Send + Sync + 'static,
        cost: u64,
    ) {
        self.prods[prod.0 as usize].rules.push(Rule {
            target: target.into(),
            args: args.into_iter().map(OccRef::from).collect(),
            func: Arc::new(func),
            direct: None,
            cost,
        });
    }

    /// Adds a semantic rule whose function is a plain `fn` pointer, with
    /// unit cost.
    ///
    /// Such rules enter the grammar's direct-call table: compiled visit
    /// programs dispatch to them without boxed-closure indirection.
    /// Non-capturing closure literals coerce, so most call sites read
    /// exactly like [`GrammarBuilder::rule`].
    pub fn rule_direct(
        &mut self,
        prod: ProdId,
        target: impl Into<OccRef>,
        args: impl IntoIterator<Item = (usize, AttrId)>,
        func: DirectFn<V>,
    ) {
        self.rule_with_cost_direct(prod, target, args, func, 1);
    }

    /// Adds a direct-call rule with an explicit abstract cost.
    pub fn rule_with_cost_direct(
        &mut self,
        prod: ProdId,
        target: impl Into<OccRef>,
        args: impl IntoIterator<Item = (usize, AttrId)>,
        func: DirectFn<V>,
        cost: u64,
    ) {
        self.prods[prod.0 as usize].rules.push(Rule {
            target: target.into(),
            args: args.into_iter().map(OccRef::from).collect(),
            func: Arc::new(func),
            direct: Some(func),
            cost,
        });
    }

    /// Convenience: a copy rule `target = source` (very common in real
    /// grammars — e.g. threading the symbol table through expressions).
    /// Copy rules are always direct-callable.
    pub fn copy_rule(
        &mut self,
        prod: ProdId,
        target: impl Into<OccRef>,
        source: impl Into<OccRef>,
    ) {
        let src: OccRef = source.into();
        self.rule_direct(prod, target, [(src.occ, src.attr)], |args| args[0].clone());
    }

    /// Validates and freezes the grammar.
    ///
    /// # Errors
    ///
    /// Returns the first [`GrammarError`] found: normal-form violations,
    /// duplicate or missing rules, terminals with inherited attributes, a
    /// start symbol with inherited attributes, or unproductive
    /// nonterminals.
    pub fn build(self, start: SymbolId) -> Result<Grammar<V>, GrammarError> {
        let GrammarBuilder { symbols, prods } = self;

        // Terminals cannot have inherited attributes.
        for s in &symbols {
            if s.terminal {
                if let Some(a) = s.attrs.iter().find(|a| a.kind == AttrKind::Inh) {
                    return Err(GrammarError::TerminalInherited {
                        symbol: s.name.clone(),
                        attr: a.name.clone(),
                    });
                }
            }
        }

        let start_sym = &symbols[start.0 as usize];
        if start_sym.terminal {
            return Err(GrammarError::StartIsTerminal);
        }
        if let Some(a) = start_sym.attrs.iter().find(|a| a.kind == AttrKind::Inh) {
            return Err(GrammarError::StartHasInherited {
                attr: a.name.clone(),
            });
        }

        let occ_name = |p: &Production<V>, o: OccRef| {
            let sym = &symbols[p.occ_symbol(o.occ).0 as usize];
            let attr = sym
                .attrs
                .get(o.attr.0 as usize)
                .map_or("<bad attr>", |a| a.name.as_str());
            format!("${}.{}", o.occ, attr)
        };

        for p in &prods {
            if symbols[p.lhs.0 as usize].terminal {
                return Err(GrammarError::TerminalLhs {
                    prod: p.name.clone(),
                });
            }
            // Validate rule targets and arguments.
            let mut defined: Vec<OccRef> = Vec::new();
            for r in &p.rules {
                let t = r.target;
                if t.occ >= p.occ_count() {
                    return Err(GrammarError::BadRuleTarget {
                        prod: p.name.clone(),
                        target: format!("${}.<out of range>", t.occ),
                    });
                }
                let tsym = &symbols[p.occ_symbol(t.occ).0 as usize];
                let Some(attr) = tsym.attrs.get(t.attr.0 as usize) else {
                    return Err(GrammarError::BadRuleTarget {
                        prod: p.name.clone(),
                        target: occ_name(p, t),
                    });
                };
                let ok = if t.occ == 0 {
                    attr.kind == AttrKind::Syn
                } else {
                    attr.kind == AttrKind::Inh && !tsym.terminal
                };
                if !ok {
                    return Err(GrammarError::BadRuleTarget {
                        prod: p.name.clone(),
                        target: occ_name(p, t),
                    });
                }
                if defined.contains(&t) {
                    return Err(GrammarError::DuplicateRule {
                        prod: p.name.clone(),
                        target: occ_name(p, t),
                    });
                }
                defined.push(t);
                for a in &r.args {
                    if a.occ >= p.occ_count() {
                        return Err(GrammarError::BadRuleArg {
                            prod: p.name.clone(),
                            arg: format!("${}.<out of range>", a.occ),
                        });
                    }
                    let asym = &symbols[p.occ_symbol(a.occ).0 as usize];
                    if asym.attrs.get(a.attr.0 as usize).is_none() {
                        return Err(GrammarError::BadRuleArg {
                            prod: p.name.clone(),
                            arg: occ_name(p, *a),
                        });
                    }
                }
            }
            // Completeness: every syn attr of LHS and every inh attr of
            // each nonterminal RHS occurrence must be defined.
            let lhs_sym = &symbols[p.lhs.0 as usize];
            for (i, a) in lhs_sym.attrs.iter().enumerate() {
                if a.kind == AttrKind::Syn {
                    let t = OccRef {
                        occ: 0,
                        attr: AttrId(i as u32),
                    };
                    if !defined.contains(&t) {
                        return Err(GrammarError::MissingRule {
                            prod: p.name.clone(),
                            target: occ_name(p, t),
                        });
                    }
                }
            }
            for (occ, sym_id) in p.rhs.iter().enumerate() {
                let sym = &symbols[sym_id.0 as usize];
                if sym.terminal {
                    continue;
                }
                for (i, a) in sym.attrs.iter().enumerate() {
                    if a.kind == AttrKind::Inh {
                        let t = OccRef {
                            occ: occ + 1,
                            attr: AttrId(i as u32),
                        };
                        if !defined.contains(&t) {
                            return Err(GrammarError::MissingRule {
                                prod: p.name.clone(),
                                target: occ_name(p, t),
                            });
                        }
                    }
                }
            }
        }

        // Every nonterminal reachable on an RHS must have productions.
        let mut has_prods = vec![false; symbols.len()];
        for p in &prods {
            has_prods[p.lhs.0 as usize] = true;
        }
        for p in &prods {
            for s in &p.rhs {
                let sym = &symbols[s.0 as usize];
                if !sym.terminal && !has_prods[s.0 as usize] {
                    return Err(GrammarError::NoProductions {
                        symbol: sym.name.clone(),
                    });
                }
            }
        }
        if !has_prods[start.0 as usize] {
            return Err(GrammarError::NoProductions {
                symbol: symbols[start.0 as usize].name.clone(),
            });
        }

        let mut prods_of = vec![Vec::new(); symbols.len()];
        for (i, p) in prods.iter().enumerate() {
            prods_of[p.lhs.0 as usize].push(ProdId(i as u32));
        }

        Ok(Grammar {
            symbols,
            prods,
            prods_of,
            start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GrammarBuilder<i64> {
        GrammarBuilder::new()
    }

    #[test]
    fn build_simple_grammar() {
        let mut g = tiny();
        let t = g.nonterminal("T");
        let size = g.synthesized(t, "size");
        let leaf = g.production("leaf", t, []);
        g.rule(leaf, (0, size), [], |_| 1);
        let fork = g.production("fork", t, [t, t]);
        g.rule(fork, (0, size), [(1, size), (2, size)], |a| a[0] + a[1] + 1);
        let grammar = g.build(t).unwrap();
        assert_eq!(grammar.prods().len(), 2);
        assert_eq!(grammar.rule_count(), 2);
        assert_eq!(grammar.symbol_named("T"), Some(t));
        assert_eq!(grammar.prods_of(t).len(), 2);
        assert_eq!(grammar.attr_count(t), 1);
    }

    #[test]
    fn missing_rule_is_rejected() {
        let mut g = tiny();
        let t = g.nonterminal("T");
        let _size = g.synthesized(t, "size");
        g.production("leaf", t, []);
        match g.build(t) {
            Err(GrammarError::MissingRule { prod, target }) => {
                assert_eq!(prod, "leaf");
                assert_eq!(target, "$0.size");
            }
            other => panic!("expected MissingRule, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_rule_is_rejected() {
        let mut g = tiny();
        let t = g.nonterminal("T");
        let size = g.synthesized(t, "size");
        let leaf = g.production("leaf", t, []);
        g.rule(leaf, (0, size), [], |_| 1);
        g.rule(leaf, (0, size), [], |_| 2);
        assert!(matches!(
            g.build(t),
            Err(GrammarError::DuplicateRule { .. })
        ));
    }

    #[test]
    fn rule_defining_syn_of_child_is_rejected() {
        let mut g = tiny();
        let t = g.nonterminal("T");
        let size = g.synthesized(t, "size");
        let leaf = g.production("leaf", t, []);
        g.rule(leaf, (0, size), [], |_| 1);
        let wrap = g.production("wrap", t, [t]);
        g.rule(wrap, (0, size), [(1, size)], |a| a[0]);
        g.rule(wrap, (1, size), [], |_| 0); // illegal: syn of child
        assert!(matches!(
            g.build(t),
            Err(GrammarError::BadRuleTarget { .. })
        ));
    }

    #[test]
    fn inherited_on_start_is_rejected() {
        let mut g = tiny();
        let t = g.nonterminal("T");
        let _env = g.inherited(t, "env");
        let leaf = g.production("leaf", t, []);
        let _ = leaf;
        assert!(matches!(
            g.build(t),
            Err(GrammarError::StartHasInherited { .. })
        ));
    }

    #[test]
    fn terminal_with_inherited_is_rejected() {
        let mut g = tiny();
        let t = g.nonterminal("T");
        let num = g.terminal("num");
        // Force an inherited attr onto a terminal through the internal
        // path: inherited() is symbol-agnostic.
        let _bad = g.inherited(num, "down");
        let leaf = g.production("leaf", t, [num]);
        let _ = leaf;
        assert!(matches!(
            g.build(t),
            Err(GrammarError::TerminalInherited { .. })
        ));
    }

    #[test]
    fn unproductive_nonterminal_is_rejected() {
        let mut g = tiny();
        let t = g.nonterminal("T");
        let ghost = g.nonterminal("Ghost");
        let p = g.production("use-ghost", t, [ghost]);
        let _ = p;
        assert!(matches!(
            g.build(t),
            Err(GrammarError::NoProductions { symbol }) if symbol == "Ghost"
        ));
    }

    #[test]
    fn bad_arg_is_rejected() {
        let mut g = tiny();
        let t = g.nonterminal("T");
        let size = g.synthesized(t, "size");
        let leaf = g.production("leaf", t, []);
        g.rule(leaf, (0, size), [(3, size)], |_| 1); // occ 3 out of range
        assert!(matches!(g.build(t), Err(GrammarError::BadRuleArg { .. })));
    }

    #[test]
    fn split_and_priority_markers_stick() {
        let mut g = tiny();
        let t = g.nonterminal("T");
        let size = g.synthesized(t, "size");
        g.mark_priority(t, size);
        g.mark_split(t, 100);
        let leaf = g.production("leaf", t, []);
        g.rule(leaf, (0, size), [], |_| 1);
        let grammar = g.build(t).unwrap();
        assert!(grammar.symbol(t).attrs[0].priority);
        assert_eq!(grammar.symbol(t).split, Some(SplitSpec { min_size: 100 }));
    }

    #[test]
    fn args_index_len_get_and_iter() {
        let vals = [10i64, 20, 30];
        let a = Args::from_slice(&vals);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a[0] + a[2], 40);
        assert_eq!(a.get(1), Some(&20));
        assert_eq!(a.get(3), None);
        assert_eq!(a.iter().copied().sum::<i64>(), 60);
        assert_eq!(format!("{a:?}"), "[10, 20, 30]");
    }

    #[test]
    fn arg_scratch_gathers_without_cloning_values() {
        let mut g = tiny();
        let t = g.nonterminal("T");
        let size = g.synthesized(t, "size");
        let fork = g.production("fork", t, [t, t]);
        g.rule(fork, (0, size), [(1, size), (2, size)], |a| a[0] + a[1]);
        let leaf = g.production("leaf", t, []);
        g.rule(leaf, (0, size), [], |_| 1);
        let gr = g.build(t).unwrap();

        let rule = &gr.prod(fork).rules[0];
        let store = [7i64, 35];
        let mut scratch = ArgScratch::new();
        let v = scratch.apply(rule, |occ| &store[occ.occ - 1]);
        assert_eq!(v, 42);
        // Reuse across applications (capacity persists, contents don't).
        let v = scratch.apply(rule, |occ| &store[2 - occ.occ]);
        assert_eq!(v, 42);

        let err: Result<i64, &str> = scratch.try_apply(rule, |occ| {
            if occ.occ == 1 {
                Ok(&store[0])
            } else {
                Err("missing")
            }
        });
        assert_eq!(err, Err("missing"));
        let ok: Result<i64, &str> = scratch.try_apply(rule, |occ| Ok(&store[occ.occ - 1]));
        assert_eq!(ok, Ok(42));
    }

    #[test]
    fn rule_fn_direct_call_via_from_slice() {
        let mut g = tiny();
        let t = g.nonterminal("T");
        let size = g.synthesized(t, "size");
        let fork = g.production("fork", t, [t, t]);
        g.rule(fork, (0, size), [(1, size), (2, size)], |a| a[0] * a[1]);
        let leaf = g.production("leaf", t, []);
        g.rule(leaf, (0, size), [], |_| 1);
        let gr = g.build(t).unwrap();
        let f = Arc::clone(&gr.prod(fork).rules[0].func);
        assert_eq!(f(Args::from_slice(&[6, 7])), 42);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = GrammarError::MissingRule {
            prod: "assign".into(),
            target: "$1.env".into(),
        };
        assert!(e.to_string().contains("assign"));
        assert!(e.to_string().contains("$1.env"));
    }
}
