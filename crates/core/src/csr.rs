//! Compressed sparse row (CSR) adjacency for instance dependency graphs.
//!
//! The dynamic pipeline's dominant start-up cost is building "who waits
//! on whom": for every attribute instance, the tasks whose arguments
//! read it. A `Vec<Vec<u32>>` (or `HashMap<usize, Vec<u32>>`) pays one
//! heap allocation per instance plus pointer-chasing on every wake-up.
//! [`Csr`] stores the same relation as two flat arrays — `offsets`
//! (one entry per source, plus a sentinel) and `edges` (all targets,
//! grouped by source) — built by the classic two-pass counting sort:
//! count per source, exclusive prefix-sum, fill.
//!
//! Two construction paths:
//!
//! * [`CsrCounter`] — streaming two-pass: run the edge enumeration once
//!   through [`CsrCounter::count`], turn it into a [`CsrFiller`], run
//!   the same enumeration again through [`CsrFiller::fill`]. No
//!   temporary storage beyond the final arrays.
//! * [`Csr::from_pairs`] — when the enumeration is expensive or
//!   interleaved with other construction work, collect `(source,
//!   target)` pairs into one flat `Vec` and convert. One temporary
//!   allocation total, still no per-source allocations.
//!
//! Edge order within a source is the enumeration order, so replacing an
//! adjacency-list build with either path preserves scheduling order
//! exactly.

/// An immutable source → targets adjacency in compressed sparse row
/// form.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    /// `offsets[s]..offsets[s + 1]` indexes `edges` for source `s`.
    offsets: Vec<u32>,
    /// Targets, grouped by source.
    edges: Vec<u32>,
}

impl Csr {
    /// An adjacency with no sources and no edges.
    pub fn empty() -> Csr {
        Csr {
            offsets: vec![0],
            edges: Vec::new(),
        }
    }

    /// Builds from a flat pair list (count → prefix-sum → fill).
    pub fn from_pairs(sources: usize, pairs: &[(u32, u32)]) -> Csr {
        let mut counter = CsrCounter::new(sources);
        for &(src, _) in pairs {
            counter.count(src as usize);
        }
        let mut filler = counter.into_filler();
        for &(src, dst) in pairs {
            filler.fill(src as usize, dst);
        }
        filler.finish()
    }

    /// Number of sources.
    pub fn sources(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The targets of `source`, in insertion order.
    pub fn targets(&self, source: usize) -> &[u32] {
        let lo = self.offsets[source] as usize;
        let hi = self.offsets[source + 1] as usize;
        &self.edges[lo..hi]
    }

    /// The `edges` index range of `source` (for callers that need to
    /// iterate while mutating other state).
    pub fn target_range(&self, source: usize) -> std::ops::Range<usize> {
        self.offsets[source] as usize..self.offsets[source + 1] as usize
    }

    /// The target at a flat edge index (pairs with
    /// [`Csr::target_range`]).
    pub fn target_at(&self, edge: usize) -> u32 {
        self.edges[edge]
    }
}

/// Pass 1 of the streaming build: per-source edge counts.
#[derive(Debug)]
pub struct CsrCounter {
    counts: Vec<u32>,
}

impl CsrCounter {
    /// Starts counting for `sources` sources.
    pub fn new(sources: usize) -> CsrCounter {
        CsrCounter {
            counts: vec![0; sources + 1],
        }
    }

    /// Records one edge out of `source`.
    pub fn count(&mut self, source: usize) {
        self.counts[source] += 1;
    }

    /// Prefix-sums the counts into offsets, ready for the fill pass.
    pub fn into_filler(self) -> CsrFiller {
        let mut offsets = self.counts;
        let total: u32 = {
            // Exclusive prefix sum in place; the sentinel slot receives
            // the grand total.
            let mut acc = 0u32;
            for o in offsets.iter_mut() {
                let c = *o;
                *o = acc;
                acc += c;
            }
            acc
        };
        CsrFiller {
            offsets,
            edges: vec![0; total as usize],
            #[cfg(debug_assertions)]
            filled: 0,
        }
    }
}

/// Pass 2 of the streaming build: edge placement.
#[derive(Debug)]
pub struct CsrFiller {
    /// During filling, `offsets[s]` is the cursor for source `s`; after
    /// [`CsrFiller::finish`] shifts it, it is the start offset again.
    offsets: Vec<u32>,
    edges: Vec<u32>,
    /// Debug guard: edges placed so far, checked against the count
    /// pass's total in [`CsrFiller::finish`]. Catches a fill pass whose
    /// enumeration diverged from the count pass (the two-pass contract).
    #[cfg(debug_assertions)]
    filled: usize,
}

impl CsrFiller {
    /// Places one edge; edges of a source keep their fill order.
    ///
    /// Every edge counted in pass 1 must be filled exactly once, in any
    /// source order.
    pub fn fill(&mut self, source: usize, target: u32) {
        let at = self.offsets[source];
        self.edges[at as usize] = target;
        self.offsets[source] = at + 1;
        #[cfg(debug_assertions)]
        {
            self.filled += 1;
        }
    }

    /// Restores the offsets and freezes the adjacency.
    pub fn finish(mut self) -> Csr {
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.filled,
            self.edges.len(),
            "fill pass placed a different number of edges than the count pass recorded"
        );
        // Each cursor advanced to the start of the next source: shift
        // right by one to recover starts.
        for i in (1..self.offsets.len()).rev() {
            self.offsets[i] = self.offsets[i - 1];
        }
        self.offsets[0] = 0;
        Csr {
            offsets: self.offsets,
            edges: self.edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_pass_build_round_trips() {
        let edges: &[(usize, u32)] = &[(0, 10), (2, 20), (0, 11), (4, 40), (2, 21), (2, 22)];
        let mut counter = CsrCounter::new(5);
        for &(s, _) in edges {
            counter.count(s);
        }
        let mut filler = counter.into_filler();
        for &(s, t) in edges {
            filler.fill(s, t);
        }
        let csr = filler.finish();
        assert_eq!(csr.sources(), 5);
        assert_eq!(csr.edge_count(), 6);
        assert_eq!(csr.targets(0), &[10, 11]);
        assert_eq!(csr.targets(1), &[] as &[u32]);
        assert_eq!(csr.targets(2), &[20, 21, 22]);
        assert_eq!(csr.targets(3), &[] as &[u32]);
        assert_eq!(csr.targets(4), &[40]);
    }

    #[test]
    fn from_pairs_matches_streaming_build_and_order() {
        let pairs = [(3u32, 9u32), (1, 5), (3, 8), (0, 1), (3, 7)];
        let csr = Csr::from_pairs(4, &pairs);
        assert_eq!(csr.targets(3), &[9, 8, 7], "insertion order preserved");
        assert_eq!(csr.targets(0), &[1]);
        assert_eq!(csr.targets(1), &[5]);
        assert_eq!(csr.targets(2), &[] as &[u32]);
    }

    #[test]
    fn target_range_pairs_with_target_at() {
        let csr = Csr::from_pairs(2, &[(0, 4), (1, 6), (0, 5)]);
        let r = csr.target_range(0);
        let got: Vec<u32> = r.map(|k| csr.target_at(k)).collect();
        assert_eq!(got, vec![4, 5]);
    }

    #[test]
    fn empty_and_edgeless_sources() {
        let csr = Csr::empty();
        assert_eq!(csr.sources(), 0);
        assert_eq!(csr.edge_count(), 0);
        let csr = Csr::from_pairs(3, &[]);
        assert_eq!(csr.sources(), 3);
        assert_eq!(csr.targets(1), &[] as &[u32]);
    }
}
