//! Cross-tree attribute memoization: a bounded cache of finished
//! region evaluations keyed by the region's **input signature**.
//!
//! # The region input-signature contract
//!
//! A region machine is a pure function of exactly two inputs:
//!
//! 1. **The region's subtree content** — productions and token values
//!    of every node the region owns, fingerprinted by
//!    [`ParseTree::subtree_hash`](crate::tree::ParseTree::subtree_hash)
//!    at the region root. Token values *include* any per-tree unique
//!    tokens (e.g. pascal's `uid` labels), so a hit guarantees the
//!    replayed values — labels included — are byte-identical to what a
//!    fresh evaluation would produce. Trees that merely share shape but
//!    differ in any token value hash differently and miss.
//! 2. **The inherited attribute values at the region root**, exactly as
//!    delivered by the parent machine, fingerprinted via
//!    [`AttrValue::content_hash`] in ascending [`AttrId`] order.
//!
//! Nothing else is an input. In particular these are *not* part of a
//! region's inputs and must never influence a cached result: the
//! ticket, the region id, worker placement, machine mode, schedule or
//! message arrival order (determinism across schedules is pinned by the
//! equivalence suites), and the position of the subtree inside the
//! enclosing tree.
//!
//! The contract restricts cacheability to **leaf regions** (regions
//! with no child regions): an interior region also consumes synthesized
//! attributes from its boundary children, which arrive mid-evaluation
//! and are not covered by the signature. A leaf region's owned span is
//! its entire subtree, and its outputs are (a) that span and (b) the
//! synthesized attributes at its root, which is all a
//! [`MemoEntry`] stores. Values held by a leaf region are always plain
//! (librarian deflation applies only to the outgoing copies of upward
//! sends, never to the store's copies), so replay needs no segment
//! resolution.
//!
//! A signature is only formed when every covered value is
//! fingerprintable: an inexact subtree hash or a `None` from
//! [`AttrValue::content_hash`] on an inherited value makes the region
//! uncacheable (skipped, never mis-keyed).
//!
//! Cached spans are stored in **preorder of the region subtree** —
//! a structure-determined order — because two structurally equal
//! subtrees built by different builders need not occupy the same
//! relative arena positions.
//!
//! The cache itself is sharded (`std::sync::Mutex` per shard, keyed by
//! signature hash) and bounded by an approximate byte budget with LRU
//! eviction per shard; hit/miss/insert/evict counters are process-wide
//! atomics surfaced through `BatchReport`/`ServiceStats`.

use crate::grammar::ProdId;
use crate::value::{fnv1a_u64, AttrValue};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// When a cacheable span offered at retirement is actually installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InstallPolicy {
    /// Install every cacheable span immediately (the original policy).
    #[default]
    Always,
    /// 2Q-style scan resistance: the *first* retirement of a subtree
    /// hash only marks it (a deferred install, counted in
    /// [`MemoCounters::deferred`]); the span is installed when a marked
    /// subtree recurs. A one-pass scan of distinct trees then costs a
    /// bounded mark per region instead of a span copy plus an LRU
    /// eviction, while any recurring subtree is cached from its second
    /// appearance on. Marks are FIFO-bounded per shard, so a scan
    /// cannot grow them without bound either.
    SecondTouch,
}

/// A region's input signature: `(subtree hash at the region root,
/// fingerprint of the inherited attribute values at the region root)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// Structural content hash of the region's subtree (exact — inexact
    /// subtrees never form keys).
    pub subtree: u64,
    /// Combined fingerprint of the root's inherited values, folded in
    /// ascending `AttrId` order.
    pub inherited: u64,
}

impl MemoKey {
    fn shard_index(&self) -> usize {
        // Shards are chosen by the subtree hash alone so the
        // subtree-presence index ([`MemoCache::has_subtree`]) lives in
        // the same shard as every entry it counts.
        (self.subtree % SHARDS as u64) as usize
    }
}

/// A cached leaf-region evaluation: the owned span in subtree preorder,
/// plus sanity fields pinning what the key was formed over. The
/// synthesized boundary attributes at the region root are part of the
/// span (the root is owned), so replay re-sends them from the store.
#[derive(Debug, Clone)]
pub struct MemoEntry<V> {
    /// Owned attribute instances in preorder of the region subtree;
    /// `None` for slots the evaluation left unfilled.
    pub span: Vec<Option<V>>,
    /// Number of nodes in the region subtree (sanity check at replay).
    pub nodes: u32,
    /// Production at the region root (sanity check at replay).
    pub root_prod: ProdId,
    /// Approximate bytes held (drives the LRU budget).
    pub bytes: usize,
}

/// Counter snapshot for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoCounters {
    /// Probes that found a usable entry.
    pub hits: u64,
    /// Probes that found nothing (or a sanity mismatch).
    pub misses: u64,
    /// Entries installed.
    pub inserts: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Installs deferred by [`InstallPolicy::SecondTouch`] (the span
    /// was dropped and only its subtree hash marked).
    pub deferred: u64,
}

impl MemoCounters {
    /// `self - earlier`, for per-batch deltas of a long-lived cache.
    pub fn since(&self, earlier: &MemoCounters) -> MemoCounters {
        MemoCounters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            inserts: self.inserts - earlier.inserts,
            evictions: self.evictions - earlier.evictions,
            deferred: self.deferred - earlier.deferred,
        }
    }

    /// Hit fraction of all probes (0 when no probes).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One shard: a signature→entry map plus an LRU order with lazy
/// deletion (each entry carries a recency stamp; queue entries with a
/// stale stamp are skipped when popping for eviction).
struct Shard<V> {
    map: HashMap<MemoKey, (MemoEntry<V>, u64)>,
    order: VecDeque<(MemoKey, u64)>,
    /// Entry count per subtree hash, maintained on insert/remove: the
    /// probe fast path asks "any entry for this subtree at all?" before
    /// deciding to hold a region back for its inherited values.
    subtrees: HashMap<u64, u32>,
    /// Second-touch marks ([`InstallPolicy::SecondTouch`]): subtree
    /// hashes seen exactly once at retirement, FIFO-bounded.
    marked: HashSet<u64>,
    mark_order: VecDeque<u64>,
    bytes: usize,
    next_stamp: u64,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            order: VecDeque::new(),
            subtrees: HashMap::new(),
            marked: HashSet::new(),
            mark_order: VecDeque::new(),
            bytes: 0,
            next_stamp: 0,
        }
    }

    /// Marks a subtree hash as seen-once, evicting the oldest marks
    /// beyond `cap` (marks removed at install leave stale FIFO slots
    /// behind; popping them is a no-op on the set).
    fn mark(&mut self, subtree: u64, cap: usize) {
        if self.marked.insert(subtree) {
            self.mark_order.push_back(subtree);
            while self.mark_order.len() > cap {
                let old = self.mark_order.pop_front().expect("non-empty");
                self.marked.remove(&old);
            }
        }
    }

    fn forget_subtree(&mut self, subtree: u64) {
        if let Some(n) = self.subtrees.get_mut(&subtree) {
            *n -= 1;
            if *n == 0 {
                self.subtrees.remove(&subtree);
            }
        }
    }

    fn touch(&mut self, key: MemoKey) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some((_, s)) = self.map.get_mut(&key) {
            *s = stamp;
        }
        self.order.push_back((key, stamp));
        // Compact the lazy queue when stale entries dominate.
        if self.order.len() > 4 * self.map.len().max(8) {
            let map = &self.map;
            self.order
                .retain(|(k, s)| map.get(k).is_some_and(|(_, cur)| cur == s));
        }
    }
}

const SHARDS: usize = 16;

/// A bounded, sharded memo cache shared by a worker pool: retire-time
/// inserts and worker-side probes contend only per shard. See the
/// module doc for the signature contract.
pub struct MemoCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// Approximate per-shard byte budget (total budget / shard count).
    shard_budget: usize,
    install: InstallPolicy,
    /// Per-shard bound on second-touch marks (derived from the budget:
    /// a mark costs ~8 bytes vs. a span's hundreds, so the mark table
    /// stays a small fraction of the cache).
    mark_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    deferred: AtomicU64,
}

impl<V: AttrValue> MemoCache<V> {
    /// Creates a cache bounded by roughly `capacity_bytes` of cached
    /// attribute values (approximate: sizes come from
    /// [`AttrValue::wire_size`]), installing every cacheable span.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_install_policy(capacity_bytes, InstallPolicy::Always)
    }

    /// As [`MemoCache::new`] with an explicit install policy.
    pub fn with_install_policy(capacity_bytes: usize, install: InstallPolicy) -> Self {
        let shard_budget = (capacity_bytes / SHARDS).max(1);
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            shard_budget,
            install,
            mark_cap: (shard_budget / 64).max(256),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            deferred: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &MemoKey) -> &Mutex<Shard<V>> {
        &self.shards[key.shard_index()]
    }

    /// `true` if *any* entry is cached under this subtree hash,
    /// regardless of inherited context. The scheduler consults this
    /// before committing a region to the hold-for-inherited probe path:
    /// a subtree the cache has never seen cannot hit, so its region
    /// starts evaluating immediately instead of idling until every root
    /// inherited value arrives. An absent subtree is counted as a miss
    /// (the consult *was* the cache lookup for that region); a present
    /// one counts nothing — the full-signature [`MemoCache::probe`]
    /// that follows will record the hit or miss.
    pub fn has_subtree(&self, subtree: u64) -> bool {
        let present = self.shards[(subtree % SHARDS as u64) as usize]
            .lock()
            .unwrap()
            .subtrees
            .contains_key(&subtree);
        if !present {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        present
    }

    /// Looks up a signature; clones the entry on a hit (the cache keeps
    /// its copy) and refreshes its recency. Entries whose sanity fields
    /// disagree with the probe's expectation count as misses.
    pub fn probe(&self, key: MemoKey, nodes: u32, root_prod: ProdId) -> Option<MemoEntry<V>> {
        let mut shard = self.shard(&key).lock().unwrap();
        let hit = match shard.map.get(&key) {
            Some((e, _)) if e.nodes == nodes && e.root_prod == root_prod => Some(e.clone()),
            _ => None,
        };
        if hit.is_some() {
            shard.touch(key);
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// `true` if the signature is already cached (no counter effect; the
    /// retire path uses this to dedup inserts of values it replayed
    /// from the cache or already installed this batch).
    pub fn contains(&self, key: MemoKey) -> bool {
        self.shard(&key).lock().unwrap().map.contains_key(&key)
    }

    /// Installs an entry, evicting least-recently-used entries from its
    /// shard as needed to stay under the budget. Entries bigger than a
    /// whole shard's budget are not cached. Under
    /// [`InstallPolicy::SecondTouch`], the first offer of a subtree
    /// hash only marks it and the entry is dropped; the install goes
    /// through once a marked (or already-installed) subtree recurs.
    pub fn insert(&self, key: MemoKey, entry: MemoEntry<V>) {
        if entry.bytes > self.shard_budget {
            return;
        }
        let mut shard = self.shard(&key).lock().unwrap();
        if self.install == InstallPolicy::SecondTouch
            && !shard.subtrees.contains_key(&key.subtree)
            && !shard.marked.remove(&key.subtree)
        {
            let cap = self.mark_cap;
            shard.mark(key.subtree, cap);
            self.deferred.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if let Some((old, _)) = shard.map.remove(&key) {
            shard.bytes -= old.bytes;
            shard.forget_subtree(key.subtree);
        }
        shard.bytes += entry.bytes;
        shard.map.insert(key, (entry, 0));
        *shard.subtrees.entry(key.subtree).or_insert(0) += 1;
        shard.touch(key);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        while shard.bytes > self.shard_budget {
            let Some((victim, stamp)) = shard.order.pop_front() else {
                break;
            };
            let current = shard.map.get(&victim).map(|(_, s)| *s);
            if current != Some(stamp) || victim == key {
                // Stale queue entry, or the entry we just inserted
                // (never evict the newest — it would thrash).
                if victim == key && current == Some(stamp) {
                    shard.order.push_back((victim, stamp));
                    break;
                }
                continue;
            }
            let (old, _) = shard.map.remove(&victim).expect("stamp matched");
            shard.bytes -= old.bytes;
            shard.forget_subtree(victim.subtree);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of the lifetime counters.
    pub fn counters(&self) -> MemoCounters {
        MemoCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            deferred: self.deferred.load(Ordering::Relaxed),
        }
    }

    /// Total approximate bytes currently held.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().bytes).sum()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V> fmt::Debug for MemoCache<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemoCache({} shards)", self.shards.len())
    }
}

/// Folds inherited values (in ascending `AttrId` order) into the
/// signature's `inherited` fingerprint. Returns `None` if any value is
/// not fingerprintable — the region is then uncacheable.
pub fn inherited_fingerprint<'a, V: AttrValue + 'a>(
    values: impl IntoIterator<Item = &'a V>,
) -> Option<u64> {
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    let mut n = 0u64;
    for v in values {
        h = fnv1a_u64(h, v.content_hash()?);
        n += 1;
    }
    Some(fnv1a_u64(h, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bytes: usize) -> MemoEntry<i64> {
        MemoEntry {
            span: vec![Some(1), None],
            nodes: 2,
            root_prod: ProdId(0),
            bytes,
        }
    }

    fn key(n: u64) -> MemoKey {
        MemoKey {
            subtree: n,
            inherited: 7,
        }
    }

    #[test]
    fn probe_hits_after_insert_and_checks_sanity() {
        let cache = MemoCache::new(1 << 20);
        cache.insert(key(1), entry(100));
        assert!(cache.probe(key(1), 2, ProdId(0)).is_some());
        // Wrong node count or production: sanity mismatch is a miss.
        assert!(cache.probe(key(1), 3, ProdId(0)).is_none());
        assert!(cache.probe(key(1), 2, ProdId(9)).is_none());
        assert!(cache.probe(key(2), 2, ProdId(0)).is_none());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.inserts), (1, 3, 1));
    }

    #[test]
    fn eviction_respects_the_budget_and_recency() {
        // One shard's budget is capacity/16; use keys that land in the
        // same shard by construction (same subtree hash mod shards is
        // not guaranteed, so just use a large enough sample).
        let cache = MemoCache::new(16 * 250);
        for i in 0..100 {
            cache.insert(key(i), entry(100));
        }
        assert!(cache.bytes() <= 16 * 250);
        assert!(cache.counters().evictions > 0);
        assert!(cache.len() < 100);
    }

    #[test]
    fn recently_probed_entries_survive_eviction() {
        let cache = MemoCache::<i64>::new(16 * 250);
        // Find two keys in the same shard.
        let base = key(0);
        let same_shard: Vec<MemoKey> = (0..1000)
            .map(key)
            .filter(|k| k.shard_index() == base.shard_index())
            .take(4)
            .collect();
        assert!(same_shard.len() >= 3, "need colliding shard keys");
        cache.insert(same_shard[0], entry(100));
        cache.insert(same_shard[1], entry(100));
        // Touch the older entry, then overflow the shard.
        assert!(cache.probe(same_shard[0], 2, ProdId(0)).is_some());
        cache.insert(same_shard[2], entry(100));
        // Budget 250: the LRU victim is same_shard[1], not the
        // freshly-probed same_shard[0].
        assert!(cache.probe(same_shard[0], 2, ProdId(0)).is_some());
        assert!(cache.probe(same_shard[1], 2, ProdId(0)).is_none());
    }

    #[test]
    fn subtree_presence_tracks_inserts_and_evictions() {
        let cache = MemoCache::new(1 << 20);
        assert!(!cache.has_subtree(5));
        cache.insert(
            MemoKey {
                subtree: 5,
                inherited: 1,
            },
            entry(100),
        );
        cache.insert(
            MemoKey {
                subtree: 5,
                inherited: 2,
            },
            entry(100),
        );
        assert!(cache.has_subtree(5));
        assert!(!cache.has_subtree(6));
        // Absent subtrees count as misses; present ones count nothing.
        assert_eq!(cache.counters().misses, 2);

        // Evicting every entry of a subtree forgets it.
        let tiny = MemoCache::new(16 * 150);
        tiny.insert(
            MemoKey {
                subtree: 16,
                inherited: 1,
            },
            entry(100),
        );
        // Same shard (subtree % 16), different subtree: evicts the
        // first entry and must drop its presence bit with it.
        tiny.insert(
            MemoKey {
                subtree: 32,
                inherited: 1,
            },
            entry(100),
        );
        assert!(tiny.counters().evictions > 0);
        assert!(!tiny.has_subtree(16));
        assert!(tiny.has_subtree(32));
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = MemoCache::new(16 * 100);
        cache.insert(key(1), entry(1_000));
        assert!(cache.probe(key(1), 2, ProdId(0)).is_none());
        assert_eq!(cache.counters().inserts, 0);
    }

    #[test]
    fn second_touch_defers_first_install_and_installs_on_recurrence() {
        let cache = MemoCache::with_install_policy(1 << 20, InstallPolicy::SecondTouch);
        // First offer: dropped, subtree marked.
        cache.insert(key(1), entry(100));
        assert!(cache.is_empty());
        assert_eq!(cache.counters().deferred, 1);
        assert_eq!(cache.counters().inserts, 0);
        assert!(!cache.has_subtree(1));
        // Second offer of the same subtree: installed.
        cache.insert(key(1), entry(100));
        assert_eq!(cache.counters().inserts, 1);
        assert!(cache.probe(key(1), 2, ProdId(0)).is_some());
        // A different inherited context of an installed subtree is not
        // a scan — it installs immediately.
        cache.insert(
            MemoKey {
                subtree: 1,
                inherited: 99,
            },
            entry(100),
        );
        assert_eq!(cache.counters().inserts, 2);
    }

    #[test]
    fn second_touch_marks_are_bounded() {
        let cache = MemoCache::<i64>::with_install_policy(16, InstallPolicy::SecondTouch);
        // Scan far past the mark cap (256 at this tiny budget): marks
        // stay bounded, nothing installs, and old marks age out.
        for i in 0..100_000u64 {
            cache.insert(key(i), entry(1));
        }
        assert!(cache.is_empty());
        let c = cache.counters();
        assert_eq!(c.deferred, 100_000);
        // Subtree 0's mark long evicted: a re-offer defers again.
        cache.insert(key(0), entry(1));
        assert_eq!(cache.counters().deferred, 100_001);
        // A recent subtree's mark survives: its re-offer installs.
        cache.insert(key(99_999), entry(1));
        assert_eq!(cache.counters().inserts, 1);
    }

    #[test]
    fn inherited_fingerprint_is_order_and_content_sensitive() {
        let a = inherited_fingerprint([&1i64, &2i64]).unwrap();
        let b = inherited_fingerprint([&2i64, &1i64]).unwrap();
        let c = inherited_fingerprint([&1i64, &2i64]).unwrap();
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_ne!(a, inherited_fingerprint([&1i64]).unwrap());
    }
}
