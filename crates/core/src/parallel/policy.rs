//! Dispatch policies for a service queue over the region pool.
//!
//! The batched runtimes ([`super::pool`], [`super::sim`]) always
//! dispatch trees in submission order. A *service* front end serving an
//! open arrival stream gets to choose which waiting request enters the
//! pipeline window next, and the right choice is a policy question:
//! FIFO is fair in arrival order but lets one huge tree inflate every
//! later request's latency; shortest-job-first exploits the work
//! estimates the region machinery already computes
//! ([`crate::eval::EvalPlan::tree_work`], the same table
//! `decompose_adaptive` budgets regions with) to keep small requests
//! flowing past big ones; deficit round-robin fair queueing bounds how
//! much of the pool any one tenant can monopolize.
//!
//! [`PolicyQueue`] is the one implementation of those orderings, shared
//! by the wall-clock service queue (`paragram-driver`) and the
//! deterministic network-simulator service (`super::sim`) — so the
//! policy ranking the sim produces is computed by *exactly* the code
//! the real queue runs.
//!
//! Dispatch order composes with, and is independent of, *placement*
//! ([`super::pool::SchedulerMode`]): the policy decides **which** tree
//! enters the pipeline window next; the scheduler decides **where**
//! that tree's region jobs run (fixed modular assignment, or LPT-seeded
//! deques rebalanced by work stealing). A policy that releases a huge
//! tree still benefits from stealing spreading its regions; stealing
//! never reorders dispatch, so policy-level fairness guarantees hold
//! under either scheduler.

use std::collections::{HashMap, VecDeque};

/// Which waiting request the service dispatches into the pipeline
/// window next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Strict arrival order.
    Fifo,
    /// Smallest estimated work first (ties broken by arrival order).
    /// Estimates come from [`crate::eval::EvalPlan::tree_work`] — known
    /// at admission time, before any evaluation starts.
    ShortestJobFirst,
    /// Per-tenant deficit round-robin: active tenants take turns, each
    /// turn banking `quantum` work units of credit; a tenant's oldest
    /// request dispatches when its bank covers the request's estimated
    /// work. One flooding tenant can then delay a well-behaved one by
    /// at most ~one quantum per rotation, not by its whole backlog.
    FairQueue {
        /// Work-unit credit a tenant banks per rotation (clamped ≥ 1).
        /// Sensible values are around the typical request's
        /// `tree_work`.
        quantum: u64,
    },
}

impl DispatchPolicy {
    /// Short stable name (used in bench JSON and reports).
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::Fifo => "fifo",
            DispatchPolicy::ShortestJobFirst => "sjf",
            DispatchPolicy::FairQueue { .. } => "fair",
        }
    }
}

/// One queued request, reduced to what a dispatch decision needs. The
/// caller keeps the real payload and maps back through `seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedJob {
    /// Caller-assigned identity, strictly increasing in arrival order
    /// (the queue relies on this for FIFO and tie-breaking).
    pub seq: u64,
    /// Tenant the request bills to (only [`DispatchPolicy::FairQueue`]
    /// reads it).
    pub tenant: u32,
    /// Estimated work in rule-cost units
    /// ([`crate::eval::EvalPlan::tree_work`]).
    pub work: u64,
}

/// A waiting buffer that yields jobs in the order one
/// [`DispatchPolicy`] prescribes. Deterministic: the pop sequence is a
/// pure function of the push sequence.
#[derive(Debug)]
pub struct PolicyQueue {
    policy: DispatchPolicy,
    /// Arrival order (FIFO base order; per-tenant order is its
    /// subsequence).
    jobs: VecDeque<QueuedJob>,
    /// Active tenants in rotation order (fair queueing only).
    rotation: VecDeque<u32>,
    /// Banked credit per active tenant (fair queueing only).
    deficit: HashMap<u32, u64>,
}

impl PolicyQueue {
    /// An empty queue dispatching under `policy`.
    pub fn new(policy: DispatchPolicy) -> Self {
        PolicyQueue {
            policy,
            jobs: VecDeque::new(),
            rotation: VecDeque::new(),
            deficit: HashMap::new(),
        }
    }

    /// The policy this queue dispatches under.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no job is waiting.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Enqueues an arrived job. `seq` must exceed every previously
    /// pushed seq.
    pub fn push(&mut self, job: QueuedJob) {
        debug_assert!(
            self.jobs.back().is_none_or(|b| b.seq < job.seq),
            "seq increases in arrival order"
        );
        if matches!(self.policy, DispatchPolicy::FairQueue { .. })
            && !self.rotation.contains(&job.tenant)
        {
            self.rotation.push_back(job.tenant);
            self.deficit.entry(job.tenant).or_insert(0);
        }
        self.jobs.push_back(job);
    }

    /// Removes and returns the job the policy dispatches next.
    pub fn pop(&mut self) -> Option<QueuedJob> {
        match self.policy {
            DispatchPolicy::Fifo => self.jobs.pop_front(),
            DispatchPolicy::ShortestJobFirst => {
                let best = self
                    .jobs
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, j)| (j.work, j.seq))?
                    .0;
                self.jobs.remove(best)
            }
            DispatchPolicy::FairQueue { quantum } => self.pop_fair(quantum.max(1)),
        }
    }

    /// Deficit round-robin: rotate through active tenants, banking
    /// `quantum` per turn, until the tenant at the front can afford its
    /// oldest request. Terminates because every full rotation grows
    /// every active tenant's bank.
    fn pop_fair(&mut self, quantum: u64) -> Option<QueuedJob> {
        if self.jobs.is_empty() {
            return None;
        }
        loop {
            let tenant = *self.rotation.front().expect("jobs imply active tenants");
            let head = self
                .jobs
                .iter()
                .position(|j| j.tenant == tenant)
                .expect("rotation tracks tenants with waiting jobs");
            let work = self.jobs[head].work;
            let bank = self.deficit.get_mut(&tenant).expect("active tenant banked");
            if *bank >= work {
                *bank -= work;
                let job = self.jobs.remove(head).expect("index in bounds");
                if !self.jobs.iter().any(|j| j.tenant == tenant) {
                    // Queue emptied: the tenant leaves the rotation and
                    // forfeits leftover credit (classic DRR — an idle
                    // tenant must not bank credit while away).
                    self.rotation.pop_front();
                    self.deficit.remove(&tenant);
                }
                return Some(job);
            }
            *bank += quantum;
            self.rotation.rotate_left(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seq: u64, tenant: u32, work: u64) -> QueuedJob {
        QueuedJob { seq, tenant, work }
    }

    fn drain(q: &mut PolicyQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.pop()).map(|j| j.seq).collect()
    }

    #[test]
    fn fifo_pops_in_arrival_order() {
        let mut q = PolicyQueue::new(DispatchPolicy::Fifo);
        for (i, w) in [50u64, 5, 500].into_iter().enumerate() {
            q.push(job(i as u64, 0, w));
        }
        assert_eq!(drain(&mut q), vec![0, 1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn sjf_pops_smallest_work_breaking_ties_by_arrival() {
        let mut q = PolicyQueue::new(DispatchPolicy::ShortestJobFirst);
        for (i, w) in [50u64, 5, 500, 5, 49].into_iter().enumerate() {
            q.push(job(i as u64, 0, w));
        }
        assert_eq!(drain(&mut q), vec![1, 3, 4, 0, 2]);
    }

    #[test]
    fn sjf_interleaves_late_small_arrivals() {
        let mut q = PolicyQueue::new(DispatchPolicy::ShortestJobFirst);
        q.push(job(0, 0, 1000));
        q.push(job(1, 0, 10));
        assert_eq!(q.pop().unwrap().seq, 1);
        q.push(job(2, 0, 10));
        q.push(job(3, 0, 2000));
        assert_eq!(drain(&mut q), vec![2, 0, 3]);
    }

    #[test]
    fn fair_queue_round_robins_between_tenants() {
        // Tenant 0 floods four equal jobs before tenant 1's single job
        // arrives; DRR still alternates to tenant 1 after one of
        // tenant 0's.
        let mut q = PolicyQueue::new(DispatchPolicy::FairQueue { quantum: 10 });
        q.push(job(0, 0, 10));
        q.push(job(1, 0, 10));
        q.push(job(2, 0, 10));
        q.push(job(3, 0, 10));
        q.push(job(4, 1, 10));
        assert_eq!(drain(&mut q), vec![0, 4, 1, 2, 3]);
    }

    #[test]
    fn fair_queue_banks_credit_for_oversized_jobs() {
        // Tenant 0's head job costs three quanta: it must wait three
        // rotations, during which tenant 1's cheap jobs flow.
        let mut q = PolicyQueue::new(DispatchPolicy::FairQueue { quantum: 10 });
        q.push(job(0, 0, 30));
        q.push(job(1, 1, 10));
        q.push(job(2, 1, 10));
        q.push(job(3, 1, 10));
        assert_eq!(drain(&mut q), vec![1, 2, 0, 3]);
    }

    #[test]
    fn fair_queue_with_one_tenant_degenerates_to_fifo() {
        let mut q = PolicyQueue::new(DispatchPolicy::FairQueue { quantum: 1 });
        for (i, w) in [50u64, 5, 500].into_iter().enumerate() {
            q.push(job(i as u64, 7, w));
        }
        assert_eq!(drain(&mut q), vec![0, 1, 2]);
    }

    #[test]
    fn departed_tenant_forfeits_banked_credit() {
        let mut q = PolicyQueue::new(DispatchPolicy::FairQueue { quantum: 100 });
        q.push(job(0, 0, 1));
        assert_eq!(q.pop().unwrap().seq, 0);
        // Tenant 0 went idle; on return it starts from an empty bank
        // and cannot burst ahead of tenant 1.
        q.push(job(1, 1, 100));
        q.push(job(2, 0, 100));
        assert_eq!(drain(&mut q), vec![1, 2]);
    }
}
