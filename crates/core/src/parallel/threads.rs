//! The parallel compiler on real OS threads.
//!
//! Same protocol as [`crate::parallel::sim`] — one machine per region,
//! attribute values crossing region boundaries as messages, optional
//! string-librarian result propagation — but executed on host threads
//! with `std::sync::mpsc` channels and measured in wall-clock time. Sends are
//! forwarded after every scheduler step (not when a machine runs dry),
//! so the symbol-table chain pipelines across machines exactly as on
//! the simulated network.
//!
//! Wall-clock speedup naturally requires a multi-core host; on a
//! single-core machine this runtime still produces identical results
//! (the equivalence tests run it everywhere) but measures scheduling
//! overhead rather than parallelism.

use crate::analysis::Plans;
use crate::eval::{EvalError, Machine, MachineMode, SendTarget};
use crate::grammar::{AttrId, AttrKind};
use crate::split::{decompose, RegionId, SplitConfig};
use crate::stats::EvalStats;
use crate::tree::{AttrStore, NodeId, ParseTree};
use crate::value::AttrValue;
use paragram_rope::{Rope, SegmentId, SegmentStore};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::ResultPropagation;

/// Configuration for [`run_threads`].
#[derive(Debug, Clone, Copy)]
pub struct ThreadConfig {
    /// Number of evaluator threads (split target).
    pub machines: usize,
    /// Combined or purely dynamic machines.
    pub mode: MachineMode,
    /// Result propagation strategy.
    pub result: ResultPropagation,
    /// Split-granularity scale.
    pub min_size_scale: f64,
}

impl ThreadConfig {
    /// Combined evaluation on `n` threads with librarian propagation.
    pub fn combined(n: usize) -> Self {
        ThreadConfig {
            machines: n,
            mode: MachineMode::Combined,
            result: ResultPropagation::Librarian,
            min_size_scale: 1.0,
        }
    }
}

/// Result of a threaded parallel evaluation.
pub struct ThreadReport<V: AttrValue> {
    /// Root attribute values, librarian-resolved.
    pub root_values: Vec<(AttrId, V)>,
    /// Merged attribute store (boundary-crossing string values may
    /// contain segment references; resolve against `segments`).
    pub store: AttrStore<V>,
    /// The librarian's segment store.
    pub segments: SegmentStore,
    /// Aggregated statistics.
    pub stats: EvalStats,
    /// Wall-clock evaluation time (excludes decomposition).
    pub elapsed: Duration,
    /// Number of regions actually used.
    pub regions: usize,
}

/// An attribute value crossing a machine boundary on a channel.
struct AttrPacket<V> {
    node: NodeId,
    attr: AttrId,
    value: V,
}

enum LibMsg {
    Segment { id: SegmentId, text: Rope },
    Resolve,
}

/// Evaluates `tree` in parallel on real threads.
///
/// # Errors
///
/// Returns the first [`EvalError`] raised by any machine.
pub fn run_threads<V: AttrValue>(
    tree: &Arc<ParseTree<V>>,
    plans: Option<&Arc<Plans>>,
    config: ThreadConfig,
) -> Result<ThreadReport<V>, EvalError> {
    let decomp = Arc::new(decompose(
        tree,
        SplitConfig {
            target_regions: config.machines,
            min_size_scale: config.min_size_scale,
        },
    ));
    let regions = decomp.len();
    let g = tree.grammar();
    let root_sym = g.prod(tree.node(tree.root()).prod).lhs;
    let expected_roots = g.symbol(root_sym).attrs_of_kind(AttrKind::Syn).count();

    // Channels: one per machine, one for the parser, one for the
    // librarian.
    let mut machine_tx: Vec<Sender<AttrPacket<V>>> = Vec::with_capacity(regions);
    let mut machine_rx: Vec<Option<Receiver<AttrPacket<V>>>> = Vec::with_capacity(regions);
    for _ in 0..regions {
        let (tx, rx) = channel();
        machine_tx.push(tx);
        machine_rx.push(Some(rx));
    }
    let (parser_tx, parser_rx) = channel::<AttrPacket<V>>();
    let (lib_tx, lib_rx) = channel::<LibMsg>();
    let (lib_reply_tx, lib_reply_rx) = channel::<SegmentStore>();

    let start = Instant::now();
    let mut handles = Vec::with_capacity(regions);
    for r in 0..regions as RegionId {
        let tree = Arc::clone(tree);
        let plans = plans.cloned();
        let decomp = Arc::clone(&decomp);
        let rx = machine_rx[r as usize].take().expect("receiver unclaimed");
        let machine_tx = machine_tx.clone();
        let parser_tx = parser_tx.clone();
        let lib_tx = lib_tx.clone();
        let mode = config.mode;
        let result = config.result;
        handles.push(std::thread::spawn(
            move || -> Result<(EvalStats, AttrStore<V>), EvalError> {
                let mut machine = Machine::new(&tree, plans.as_ref(), &decomp, r, mode);
                let parent = decomp.regions[r as usize].parent;
                let mut next_seg = 0u32;
                let route = |send: crate::eval::AttrMsg<V>, next_seg: &mut u32| {
                    let upward = match send.to {
                        SendTarget::Parser => true,
                        SendTarget::Region(q) => Some(q) == parent,
                    };
                    let mut value = send.value;
                    if upward && result == ResultPropagation::Librarian {
                        let deflated = value.deflate(&mut |text: Rope| {
                            let id = SegmentId::from_parts(r, *next_seg);
                            *next_seg += 1;
                            lib_tx
                                .send(LibMsg::Segment { id, text })
                                .expect("librarian alive");
                            id
                        });
                        if let Some(d) = deflated {
                            value = d;
                        }
                    }
                    let msg = AttrPacket {
                        node: send.node,
                        attr: send.attr,
                        value,
                    };
                    match send.to {
                        SendTarget::Parser => parser_tx.send(msg).expect("parser alive"),
                        SendTarget::Region(q) => {
                            machine_tx[q as usize].send(msg).expect("machine alive")
                        }
                    }
                };
                loop {
                    match machine.step()? {
                        Some(outcome) => {
                            // Forward sends *immediately*: peers block on
                            // these values, and batching them until this
                            // machine runs dry would serialize the whole
                            // pipeline (the priority lane already orders
                            // the urgent work first).
                            for send in outcome.sends {
                                route(send, &mut next_seg);
                            }
                        }
                        None => {
                            if machine.is_done() {
                                break;
                            }
                            let AttrPacket { node, attr, value } =
                                rx.recv().expect("peers alive while we are blocked");
                            machine.provide(node, attr, value);
                            // Opportunistically drain anything else queued.
                            while let Ok(AttrPacket { node, attr, value }) = rx.try_recv() {
                                machine.provide(node, attr, value);
                            }
                        }
                    }
                }
                Ok((machine.stats(), machine.into_store()))
            },
        ));
    }

    // Librarian thread.
    let librarian = std::thread::spawn(move || {
        let mut store = SegmentStore::new();
        while let Ok(msg) = lib_rx.recv() {
            match msg {
                LibMsg::Segment { id, text } => store.register(id, text),
                LibMsg::Resolve => {
                    lib_reply_tx.send(store).expect("parser alive");
                    return;
                }
            }
        }
    });

    // Parser role: collect root attributes.
    let mut raw_roots: Vec<(AttrId, V)> = Vec::with_capacity(expected_roots);
    while raw_roots.len() < expected_roots {
        let AttrPacket { attr, value, .. } =
            parser_rx.recv().expect("machines alive until roots arrive");
        raw_roots.push((attr, value));
    }
    lib_tx.send(LibMsg::Resolve).expect("librarian alive");
    let segments = lib_reply_rx.recv().expect("librarian replies");
    let root_values: Vec<(AttrId, V)> = raw_roots
        .iter()
        .map(|(a, v)| (*a, v.inflate(&segments)))
        .collect();
    let elapsed = start.elapsed();
    librarian.join().expect("librarian thread clean");

    let mut stats = EvalStats::default();
    let mut merged: Option<AttrStore<V>> = None;
    for h in handles {
        let (s, store) = h.join().expect("machine thread clean")?;
        stats += s;
        merged = Some(match merged {
            None => store,
            Some(mut acc) => {
                acc.absorb(store);
                acc
            }
        });
    }

    Ok(ThreadReport {
        root_values,
        store: merged.expect("at least one region"),
        segments,
        stats,
        elapsed,
        regions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::compute_plans;
    use crate::eval::dynamic_eval;
    use crate::grammar::GrammarBuilder;
    use crate::tree::TreeBuilder;
    use crate::value::Value;

    fn fixture(n: usize) -> (Arc<ParseTree<Value>>, Arc<Plans>, AttrId) {
        let mut g = GrammarBuilder::<Value>::new();
        let s = g.nonterminal("S");
        let l = g.nonterminal("stmts");
        let out = g.synthesized(s, "code");
        let decls = g.synthesized(l, "decls");
        let env = g.inherited(l, "env");
        let code = g.synthesized(l, "code");
        g.mark_split(l, 4);
        let top = g.production("top", s, [l]);
        g.rule(top, (1, env), [(1, decls)], |a| a[0].clone());
        g.rule(top, (0, out), [(1, code)], |a| a[0].clone());
        let cons = g.production("cons", l, [l]);
        g.rule(cons, (0, decls), [(1, decls)], |a| {
            Value::Int(a[0].as_int().unwrap() + 1)
        });
        g.rule(cons, (1, env), [(0, env)], |a| a[0].clone());
        g.rule(cons, (0, code), [(1, code), (0, env)], |a| {
            let line = format!("op {}\n", a[1].as_int().unwrap());
            Value::Rope(Rope::from(line).concat(a[0].as_rope().unwrap()))
        });
        let nil = g.production("nil", l, []);
        g.rule(nil, (0, decls), [], |_| Value::Int(0));
        g.rule(nil, (0, code), [], |_| Value::Rope(Rope::new()));
        let grammar = Arc::new(g.build(s).unwrap());
        let plans = Arc::new(compute_plans(&grammar).unwrap());
        let mut tb = TreeBuilder::new(&grammar);
        let mut tail = tb.leaf(nil);
        for _ in 0..n {
            tail = tb.node(cons, [tail]);
        }
        let root = tb.node(top, [tail]);
        (Arc::new(tb.finish(root).unwrap()), plans, out)
    }

    #[test]
    fn threads_match_sequential_result() {
        let (tree, plans, out) = fixture(64);
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        let want = dstore
            .get(tree.root(), out)
            .and_then(|v| v.as_rope().cloned())
            .unwrap();
        for n in [1, 2, 4] {
            let report = run_threads(&tree, Some(&plans), ThreadConfig::combined(n)).unwrap();
            let got = report
                .root_values
                .iter()
                .find(|(a, _)| *a == out)
                .and_then(|(_, v)| v.as_rope().cloned())
                .unwrap();
            assert!(got.content_eq(&want), "n={n}");
            assert!(report.stats.total_applied() > 0);
        }
    }

    #[test]
    fn threads_work_in_dynamic_mode_and_naive_propagation() {
        let (tree, plans, out) = fixture(48);
        let config = ThreadConfig {
            machines: 3,
            mode: MachineMode::Dynamic,
            result: ResultPropagation::Naive,
            min_size_scale: 1.0,
        };
        let report = run_threads(&tree, Some(&plans), config).unwrap();
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        let want = dstore.get(tree.root(), out).unwrap();
        let got = &report
            .root_values
            .iter()
            .find(|(a, _)| *a == out)
            .unwrap()
            .1;
        assert_eq!(got, want);
        assert_eq!(report.stats.static_applied, 0);
    }

    #[test]
    fn merged_store_covers_all_instances() {
        let (tree, plans, _) = fixture(32);
        let report = run_threads(&tree, Some(&plans), ThreadConfig::combined(3)).unwrap();
        assert_eq!(report.store.filled(), report.store.len());
    }
}
