//! The parallel compiler on real OS threads.
//!
//! Same protocol as [`crate::parallel::sim`] — one machine per region,
//! attribute values crossing region boundaries as messages, optional
//! string-librarian result propagation — but executed on host threads
//! with `std::sync::mpsc` channels and measured in wall-clock time. Sends are
//! forwarded after every scheduler step (not when a machine runs dry),
//! so the symbol-table chain pipelines across machines exactly as on
//! the simulated network.
//!
//! Since the batched driver landed, the actual thread management lives
//! in [`crate::parallel::pool`]: [`run_threads`] is the one-shot
//! convenience entry — it spins up a [`WorkerPool`] at pipeline depth 1
//! (one tree, one ticket, strict barrier) for a single tree and tears
//! it down again. Callers compiling a *stream* of trees should hold a
//! [`WorkerPool`] (or a `paragram-driver` batch driver) instead, so
//! thread spawn and plan construction amortize and consecutive trees
//! pipeline through the pool's ticket window.
//!
//! Each region machine evaluates into an O(region)
//! [`crate::tree::RegionStore`]; the pool's per-ticket assembly maps
//! the region-local spans back into the whole-tree store the report
//! exposes (see [`crate::tree::AttrStore::absorb_region`]), so the
//! report's store is identical to the pre-region-local layout's.
//!
//! Wall-clock speedup naturally requires a multi-core host; on a
//! single-core machine this runtime still produces identical results
//! (the equivalence tests run it everywhere) but measures scheduling
//! overhead rather than parallelism.

use crate::analysis::Plans;
use crate::eval::{EvalError, EvalPlan, MachineMode};
use crate::parallel::pool::{PoolConfig, PoolReport, WorkerPool};
use crate::tree::ParseTree;
use crate::value::AttrValue;
use std::sync::Arc;

use super::ResultPropagation;

/// Configuration for [`run_threads`].
#[derive(Debug, Clone, Copy)]
pub struct ThreadConfig {
    /// Number of evaluator threads (split target).
    pub machines: usize,
    /// Combined or purely dynamic machines.
    pub mode: MachineMode,
    /// Result propagation strategy.
    pub result: ResultPropagation,
    /// Split-granularity scale.
    pub min_size_scale: f64,
}

impl ThreadConfig {
    /// Combined evaluation on `n` threads with librarian propagation.
    pub fn combined(n: usize) -> Self {
        ThreadConfig {
            machines: n,
            mode: MachineMode::Combined,
            result: ResultPropagation::Librarian,
            min_size_scale: 1.0,
        }
    }
}

/// Result of a threaded parallel evaluation (the pool report).
pub type ThreadReport<V> = PoolReport<V>;

/// Evaluates `tree` in parallel on real threads (one-shot: spawns a
/// worker pool for this tree only).
///
/// # Errors
///
/// Returns the first [`EvalError`] raised by any machine.
pub fn run_threads<V: AttrValue>(
    tree: &Arc<ParseTree<V>>,
    plans: Option<&Arc<Plans>>,
    config: ThreadConfig,
) -> Result<ThreadReport<V>, EvalError> {
    let plan = Arc::new(EvalPlan::from_parts(tree.grammar(), plans.cloned(), None));
    let mut pool = WorkerPool::new(
        &plan,
        PoolConfig {
            mode: config.mode,
            result: config.result,
            min_size_scale: config.min_size_scale,
            // One tree, one ticket, one region per machine: the paper's
            // single-compilation barrier (fixed-count granularity).
            ..PoolConfig::barrier(config.machines)
        },
    );
    pool.eval(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::compute_plans;
    use crate::eval::dynamic_eval;
    use crate::grammar::{AttrId, GrammarBuilder};
    use crate::tree::TreeBuilder;
    use crate::value::Value;
    use paragram_rope::Rope;

    fn fixture(n: usize) -> (Arc<ParseTree<Value>>, Arc<Plans>, AttrId) {
        let mut g = GrammarBuilder::<Value>::new();
        let s = g.nonterminal("S");
        let l = g.nonterminal("stmts");
        let out = g.synthesized(s, "code");
        let decls = g.synthesized(l, "decls");
        let env = g.inherited(l, "env");
        let code = g.synthesized(l, "code");
        g.mark_split(l, 4);
        let top = g.production("top", s, [l]);
        g.rule(top, (1, env), [(1, decls)], |a| a[0].clone());
        g.rule(top, (0, out), [(1, code)], |a| a[0].clone());
        let cons = g.production("cons", l, [l]);
        g.rule(cons, (0, decls), [(1, decls)], |a| {
            Value::Int(a[0].as_int().unwrap() + 1)
        });
        g.rule(cons, (1, env), [(0, env)], |a| a[0].clone());
        g.rule(cons, (0, code), [(1, code), (0, env)], |a| {
            let line = format!("op {}\n", a[1].as_int().unwrap());
            Value::Rope(Rope::from(line).concat(a[0].as_rope().unwrap()))
        });
        let nil = g.production("nil", l, []);
        g.rule(nil, (0, decls), [], |_| Value::Int(0));
        g.rule(nil, (0, code), [], |_| Value::Rope(Rope::new()));
        let grammar = Arc::new(g.build(s).unwrap());
        let plans = Arc::new(compute_plans(&grammar).unwrap());
        let mut tb = TreeBuilder::new(&grammar);
        let mut tail = tb.leaf(nil);
        for _ in 0..n {
            tail = tb.node(cons, [tail]);
        }
        let root = tb.node(top, [tail]);
        (Arc::new(tb.finish(root).unwrap()), plans, out)
    }

    #[test]
    fn threads_match_sequential_result() {
        let (tree, plans, out) = fixture(64);
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        let want = dstore
            .get(tree.root(), out)
            .and_then(|v| v.as_rope().cloned())
            .unwrap();
        for n in [1, 2, 4] {
            let report = run_threads(&tree, Some(&plans), ThreadConfig::combined(n)).unwrap();
            let got = report
                .root_values
                .iter()
                .find(|(a, _)| *a == out)
                .and_then(|(_, v)| v.as_rope().cloned())
                .unwrap();
            assert!(got.content_eq(&want), "n={n}");
            assert!(report.stats.total_applied() > 0);
        }
    }

    #[test]
    fn threads_work_in_dynamic_mode_and_naive_propagation() {
        let (tree, plans, out) = fixture(48);
        let config = ThreadConfig {
            machines: 3,
            mode: MachineMode::Dynamic,
            result: ResultPropagation::Naive,
            min_size_scale: 1.0,
        };
        let report = run_threads(&tree, Some(&plans), config).unwrap();
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        let want = dstore.get(tree.root(), out).unwrap();
        let got = &report
            .root_values
            .iter()
            .find(|(a, _)| *a == out)
            .unwrap()
            .1;
        assert_eq!(got, want);
        assert_eq!(report.stats.static_applied, 0);
    }

    #[test]
    fn merged_store_covers_all_instances() {
        let (tree, plans, _) = fixture(32);
        let report = run_threads(&tree, Some(&plans), ThreadConfig::combined(3)).unwrap();
        assert_eq!(report.store.filled(), report.store.len());
    }
}
