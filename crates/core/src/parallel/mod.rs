//! Parallel compiler runtimes (§2.1, §3, §4).
//!
//! The structure mirrors the paper's Figure-6 setting: a sequential
//! parser process, N evaluator machines, and a string-librarian process.
//!
//! * [`sim`] — runs the whole parallel compilation on the deterministic
//!   [`paragram_netsim`] network-multiprocessor simulator, reproducing
//!   the paper's running-time and activity-trace figures exactly.
//! * [`pool`] — persistent evaluator worker pool (threads + librarian
//!   spawned once) scheduling **region jobs** — `(ticket, region)`
//!   pairs, not whole trees: the batched-compilation runtime, with
//!   split-phase code combining (registration streams during
//!   evaluation, resolution at the parser's final read), a small
//!   cross-tree pipeline window, and cost-driven adaptive decomposition
//!   so one huge tree fills the pool like a batch of small ones. Two
//!   placement schedulers: fixed modular assignment (the paper's
//!   layout, the default) and a locality-aware work-stealing scheduler
//!   (`SchedulerMode::Stealing`) — per-worker deques seeded
//!   largest-job-first with parent/child co-seeding, idle workers
//!   stealing the largest pending job from the most-loaded victim, a
//!   shared job-location table routing boundary attributes to wherever
//!   a job actually ran, and steal/locality telemetry surfaced through
//!   batch and service reports. The simulator seeds and steals with
//!   the same policy code, so sim rankings exercise what deploys.
//! * [`threads`] — the same protocol as a one-shot, depth-1 convenience
//!   wrapper over [`pool`], demonstrating genuine parallel speedup on
//!   host cores for a single tree.
//! * [`policy`] — dispatch policies (FIFO / shortest-job-first /
//!   deficit fair queueing) for service front ends over [`pool`],
//!   shared with the simulator so sim policy rankings are computed by
//!   the same code the real queue runs.
//!
//! # Failure model and recovery protocol
//!
//! Both runtimes tolerate **fail-stop evaluator loss** under
//! `SchedulerMode::Stealing`: a worker thread dying mid-region (live
//! pool, [`pool::WorkerPool::kill_worker`]) or a simulated machine
//! crashing at a scheduled virtual time (sim,
//! [`sim::run_sim_batch_with_faults`] driven by a
//! [`paragram_netsim::FaultPlan`]). The parser and librarian are the
//! reliable tier — they hold per-batch state that regions cannot
//! reconstruct — so the fault plans that target them are rejected up
//! front rather than half-recovered.
//!
//! **What survives a crash.** Everything a region job needs to re-run
//! lives outside the evaluator that ran it: the immutable `ParseTree`
//! and decomposition (shared, read-only), the shared job-location
//! table mapping `(ticket, region) → JobLoc` (which worker holds each
//! job, queued or active), and the per-job **input log** — every
//! boundary attribute `(node, attr, value)` is appended to
//! `logs[(ticket, region)]` at *send* time, under the scheduler lock,
//! before it ever reaches a worker. The log is the protocol's stable
//! storage: a message in flight to a dead worker is lost with the
//! worker, but its logged copy is not. Only evaluator-volatile state
//! dies: partially evaluated machines and parked mid-visit values.
//!
//! **Recovery.** When a worker dies, the scheduler (live) or the
//! parser's crash oracle (sim) marks it dead (`DEAD_LOAD` pins it out
//! of every least-loaded choice), collects its queued and active
//! region jobs from the table, rebuilds each as a fresh job whose
//! `early` buffer is the *full* input log replay, and reseeds them
//! least-loaded-first over the survivors in deterministic
//! `(ticket, region)` order. Re-execution regenerates the same
//! segment ids, attribute values and root attributes, because region
//! evaluation is a pure function of tree + replayed inputs.
//!
//! **Idempotent delivery.** Replay means survivors can receive an
//! attribute twice and the librarian can see a segment registered
//! twice. Every duplicate path is absorbed and *counted*
//! ([`pool::FaultCounters::dup_suppressed`]): sends are content-keyed
//! against the input log (a `(node, attr)` already logged for a region
//! is suppressed at the sender), machines drop deliveries for
//! instances they are no longer awaiting, the parser ignores a root
//! attribute it already holds, and segment re-registration replaces
//! byte-identical text. The acceptance bar — pinned by unit,
//! integration and chaos property tests — is that a crashed-and-
//! recovered run produces output **byte-identical** to the fault-free
//! run, with `crashes`, `regions_reexecuted` and `dup_suppressed`
//! accounting for the detour.

pub mod policy;
pub mod pool;
pub mod sim;
pub mod threads;

use crate::grammar::{AttrId, SymbolId};
use crate::value::AttrValue;

/// How evaluators propagate large result attributes back to the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultPropagation {
    /// Each evaluator ships its full result value to its ancestor; the
    /// ancestor concatenates and re-transmits — the paper's "naive
    /// implementation" whose cost grows with process-tree depth.
    Naive,
    /// String-librarian protocol (§4.2): text goes to the librarian
    /// once, only small descriptors travel up the process tree.
    Librarian,
}

/// Classifies attributes into activity-trace phases (Figure 6's "symbol
/// table" / "code generation" labels). The default classifier labels
/// everything "evaluate".
pub type PhaseClassifier = std::sync::Arc<dyn Fn(&str) -> &'static str + Send + Sync>;

/// Builds a classifier from `(substring, label)` pairs matched against
/// the attribute name, in order.
pub fn phase_classifier(rules: Vec<(&'static str, &'static str)>) -> PhaseClassifier {
    std::sync::Arc::new(move |attr: &str| {
        for (pat, label) in &rules {
            if attr.contains(pat) {
                return label;
            }
        }
        "evaluate"
    })
}

/// Resolves a phase label for a machine step's target attribute.
pub(crate) fn classify<V: AttrValue>(
    g: &crate::grammar::Grammar<V>,
    classifier: &PhaseClassifier,
    target: Option<(SymbolId, AttrId)>,
) -> &'static str {
    match target {
        Some((sym, attr)) => classifier(&g.symbol(sym).attrs[attr.0 as usize].name),
        None => "evaluate",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_matches_substrings_in_order() {
        let c = phase_classifier(vec![("stab", "symbol table"), ("code", "code generation")]);
        assert_eq!(c("stab_out"), "symbol table");
        assert_eq!(c("code"), "code generation");
        assert_eq!(c("value"), "evaluate");
    }
}
