//! A persistent evaluator worker pool for batched compilation.
//!
//! [`super::threads`] reproduces the paper's Figure-6 setting for *one*
//! compilation: spawn one OS thread per region, evaluate, join. Under a
//! batched driver compiling a stream of trees, that per-compilation
//! spin-up (thread creation, channel setup, librarian start) is pure
//! overhead repeated per tree. [`WorkerPool`] hoists it: evaluator
//! threads and the string librarian are spawned **once** and fed
//! per-tree region jobs over their channels; each worker keeps a
//! [`MachineScratch`] alive so construction/evaluation buffer capacity
//! also carries over from tree to tree.
//!
//! One tree is in flight at a time (the paper's parser is sequential;
//! trees arrive as a stream), but within a tree all regions evaluate in
//! parallel exactly as in [`super::threads`] — same message protocol,
//! same librarian deflation of boundary-crossing string values.
//!
//! # Epochs
//!
//! Every [`WorkerPool::eval`] call is one *librarian epoch*: segment
//! registration streams in during evaluation (the §4.2 split the
//! librarian protocol allows) and resolution happens once, at the
//! parser's final read, after which the librarian's store is reset for
//! the next tree. Attribute messages carry the epoch so a value that
//! races ahead of its region-assignment message is parked until the
//! worker starts that tree.

use crate::eval::{AttrMsg, EvalError, EvalPlan, Machine, MachineMode, MachineScratch, SendTarget};
use crate::grammar::AttrId;
use crate::split::{decompose_with, Decomposition, RegionId, SplitTable};
use crate::stats::EvalStats;
use crate::tree::{AttrStore, NodeId, ParseTree};
use crate::value::AttrValue;
use paragram_rope::{Rope, SegmentId, SegmentStore};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::ResultPropagation;

/// Configuration for a [`WorkerPool`].
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of persistent evaluator threads (and the region target
    /// per tree — a tree is never split into more regions than there
    /// are workers to run them).
    pub workers: usize,
    /// Combined or purely dynamic machines.
    pub mode: MachineMode,
    /// Result propagation strategy.
    pub result: ResultPropagation,
    /// Split-granularity scale.
    pub min_size_scale: f64,
}

impl PoolConfig {
    /// Combined evaluation on `n` workers with librarian propagation.
    pub fn combined(n: usize) -> Self {
        PoolConfig {
            workers: n,
            mode: MachineMode::Combined,
            result: ResultPropagation::Librarian,
            min_size_scale: 1.0,
        }
    }
}

/// Result of one pooled parallel evaluation.
pub struct PoolReport<V: AttrValue> {
    /// Root attribute values, librarian-resolved.
    pub root_values: Vec<(AttrId, V)>,
    /// Merged attribute store, librarian-resolved (independent of the
    /// decomposition that produced it).
    pub store: AttrStore<V>,
    /// The librarian's segment store for this tree's epoch.
    pub segments: SegmentStore,
    /// Aggregated statistics.
    pub stats: EvalStats,
    /// Wall-clock evaluation time (excludes decomposition).
    pub elapsed: Duration,
    /// Number of regions actually used.
    pub regions: usize,
}

enum WorkerMsg<V> {
    Job {
        epoch: u64,
        tree: Arc<ParseTree<V>>,
        decomp: Arc<Decomposition>,
        region: RegionId,
    },
    Attr {
        epoch: u64,
        node: NodeId,
        attr: AttrId,
        value: V,
    },
    Shutdown,
}

enum ParserMsg<V> {
    Root {
        attr: AttrId,
        value: V,
    },
    Done {
        region: RegionId,
        result: Result<(EvalStats, AttrStore<V>), EvalError>,
    },
}

enum LibMsg {
    Segment { id: SegmentId, text: Rope },
    Resolve,
    Shutdown,
}

/// Persistent evaluator threads + librarian, reusable across a stream
/// of trees compiled against one shared [`EvalPlan`].
pub struct WorkerPool<V: AttrValue> {
    plan: Arc<EvalPlan<V>>,
    config: PoolConfig,
    split: SplitTable,
    worker_txs: Vec<Sender<WorkerMsg<V>>>,
    parser_rx: Receiver<ParserMsg<V>>,
    lib_tx: Sender<LibMsg>,
    lib_reply_rx: Receiver<SegmentStore>,
    handles: Vec<std::thread::JoinHandle<()>>,
    lib_handle: Option<std::thread::JoinHandle<()>>,
    epoch: u64,
    poisoned: Option<EvalError>,
}

/// Everything a worker thread needs; owned by the thread.
struct WorkerCtx<V: AttrValue> {
    plan: Arc<EvalPlan<V>>,
    rx: Receiver<WorkerMsg<V>>,
    peers: Vec<Sender<WorkerMsg<V>>>,
    parser_tx: Sender<ParserMsg<V>>,
    lib_tx: Sender<LibMsg>,
    mode: MachineMode,
    result: ResultPropagation,
}

impl<V: AttrValue> WorkerPool<V> {
    /// Spawns the pool: `config.workers` evaluator threads plus the
    /// librarian, all persistent until the pool is dropped.
    pub fn new(plan: &Arc<EvalPlan<V>>, config: PoolConfig) -> Self {
        let workers = config.workers.max(1);
        let split = SplitTable::new(plan.grammar().as_ref(), config.min_size_scale);

        let mut worker_txs = Vec::with_capacity(workers);
        let mut worker_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel();
            worker_txs.push(tx);
            worker_rxs.push(Some(rx));
        }
        let (parser_tx, parser_rx) = channel();
        let (lib_tx, lib_rx) = channel::<LibMsg>();
        let (lib_reply_tx, lib_reply_rx) = channel::<SegmentStore>();

        let mut handles = Vec::with_capacity(workers);
        for rx in worker_rxs.iter_mut() {
            let ctx = WorkerCtx {
                plan: Arc::clone(plan),
                rx: rx.take().expect("receiver unclaimed"),
                peers: worker_txs.clone(),
                parser_tx: parser_tx.clone(),
                lib_tx: lib_tx.clone(),
                mode: config.mode,
                result: config.result,
            };
            handles.push(std::thread::spawn(move || worker_main(ctx)));
        }

        let lib_handle = std::thread::spawn(move || {
            let mut store = SegmentStore::new();
            while let Ok(msg) = lib_rx.recv() {
                match msg {
                    LibMsg::Segment { id, text } => store.register(id, text),
                    LibMsg::Resolve => {
                        let resolved = std::mem::replace(&mut store, SegmentStore::new());
                        if lib_reply_tx.send(resolved).is_err() {
                            return;
                        }
                    }
                    LibMsg::Shutdown => return,
                }
            }
        });

        WorkerPool {
            plan: Arc::clone(plan),
            config: PoolConfig { workers, ..config },
            split,
            worker_txs,
            parser_rx,
            lib_tx,
            lib_reply_rx,
            handles,
            lib_handle: Some(lib_handle),
            epoch: 0,
            poisoned: None,
        }
    }

    /// Number of persistent workers.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// The shared plan this pool evaluates against.
    pub fn plan(&self) -> &Arc<EvalPlan<V>> {
        &self.plan
    }

    /// Evaluates one tree on the pool.
    ///
    /// # Errors
    ///
    /// Returns the first [`EvalError`] raised by any machine; the pool
    /// is poisoned afterwards (subsequent calls return the same error).
    pub fn eval(&mut self, tree: &Arc<ParseTree<V>>) -> Result<PoolReport<V>, EvalError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let epoch = self.epoch;
        self.epoch += 1;

        let decomp = Arc::new(decompose_with(tree, &self.split, self.config.workers));
        let regions = decomp.len();
        let root_sym = self.plan.grammar().prod(tree.node(tree.root()).prod).lhs;
        let expected_roots = self.plan.syn_attrs(root_sym).len();

        let start = Instant::now();
        for r in 0..regions {
            let job = WorkerMsg::Job {
                epoch,
                tree: Arc::clone(tree),
                decomp: Arc::clone(&decomp),
                region: r as RegionId,
            };
            self.worker_txs[r].send(job).expect("worker alive");
        }

        // Parser role: collect root attributes and per-region results.
        let mut raw_roots: Vec<(AttrId, V)> = Vec::with_capacity(expected_roots);
        let mut region_results: Vec<Option<(EvalStats, AttrStore<V>)>> =
            (0..regions).map(|_| None).collect();
        let mut done = 0;
        while done < regions {
            match self.parser_rx.recv().expect("workers alive") {
                ParserMsg::Root { attr, value } => raw_roots.push((attr, value)),
                ParserMsg::Done { region, result } => {
                    done += 1;
                    match result {
                        Ok(r) => region_results[region as usize] = Some(r),
                        Err(e) => {
                            self.poisoned = Some(e.clone());
                            return Err(e);
                        }
                    }
                }
            }
        }
        debug_assert_eq!(raw_roots.len(), expected_roots, "root attrs precede Done");

        // Resolve the librarian's epoch store (all segment registrations
        // were enqueued before the Dones we just drained).
        self.lib_tx.send(LibMsg::Resolve).expect("librarian alive");
        let segments = self.lib_reply_rx.recv().expect("librarian replies");
        let root_values: Vec<(AttrId, V)> = raw_roots
            .iter()
            .map(|(a, v)| (*a, v.inflate(&segments)))
            .collect();
        let elapsed = start.elapsed();

        // Merge per-region stores in region order (deterministic), then
        // resolve segment references so the result is independent of the
        // decomposition.
        let mut stats = EvalStats::default();
        let mut merged: Option<AttrStore<V>> = None;
        for r in region_results.into_iter() {
            let (s, store) = r.expect("every region reported");
            stats += s;
            merged = Some(match merged {
                None => store,
                Some(mut acc) => {
                    acc.absorb(store);
                    acc
                }
            });
        }
        let mut store = merged.expect("at least one region");
        store.inflate_all(&segments);

        Ok(PoolReport {
            root_values,
            store,
            segments,
            stats,
            elapsed,
            regions,
        })
    }
}

impl<V: AttrValue> Drop for WorkerPool<V> {
    fn drop(&mut self) {
        for tx in &self.worker_txs {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        let _ = self.lib_tx.send(LibMsg::Shutdown);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.lib_handle.take() {
            let _ = h.join();
        }
    }
}

impl<V: AttrValue> std::fmt::Debug for WorkerPool<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WorkerPool({} workers, epoch {})",
            self.config.workers, self.epoch
        )
    }
}

/// The persistent worker loop: idle between trees, one machine at a
/// time while a tree is in flight.
fn worker_main<V: AttrValue>(ctx: WorkerCtx<V>) {
    let mut scratch = MachineScratch::new();
    // Attribute values that arrived ahead of their epoch's job.
    let mut parked: Vec<(u64, NodeId, AttrId, V)> = Vec::new();
    loop {
        let msg = match ctx.rx.recv() {
            Ok(m) => m,
            Err(_) => return, // pool dropped
        };
        match msg {
            WorkerMsg::Shutdown => return,
            WorkerMsg::Attr {
                epoch,
                node,
                attr,
                value,
            } => parked.push((epoch, node, attr, value)),
            WorkerMsg::Job {
                epoch,
                tree,
                decomp,
                region,
            } => {
                let (sc, outcome) =
                    run_job(&ctx, epoch, &tree, &decomp, region, scratch, &mut parked);
                scratch = sc;
                let Some(result) = outcome else {
                    return; // shutdown received mid-job
                };
                if ctx
                    .parser_tx
                    .send(ParserMsg::Done { region, result })
                    .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// Runs one region machine to completion. Returns the recycled scratch
/// and `None` when a shutdown arrived mid-evaluation.
#[allow(clippy::type_complexity)]
fn run_job<V: AttrValue>(
    ctx: &WorkerCtx<V>,
    epoch: u64,
    tree: &Arc<ParseTree<V>>,
    decomp: &Arc<Decomposition>,
    region: RegionId,
    scratch: MachineScratch<V>,
    parked: &mut Vec<(u64, NodeId, AttrId, V)>,
) -> (
    MachineScratch<V>,
    Option<Result<(EvalStats, AttrStore<V>), EvalError>>,
) {
    let mut machine = Machine::from_plan(&ctx.plan, tree, decomp, region, ctx.mode, scratch);

    // Feed values that raced ahead of this job; drop stale epochs.
    let mut i = 0;
    while i < parked.len() {
        if parked[i].0 > epoch {
            i += 1;
            continue;
        }
        let (e, node, attr, value) = parked.swap_remove(i);
        if e == epoch {
            machine.provide(node, attr, value);
        }
    }

    let parent = decomp.regions[region as usize].parent;
    let mut next_seg = 0u32;
    let route = |send: AttrMsg<V>, next_seg: &mut u32| -> bool {
        let upward = match send.to {
            SendTarget::Parser => true,
            SendTarget::Region(q) => Some(q) == parent,
        };
        let mut value = send.value;
        if upward && ctx.result == ResultPropagation::Librarian {
            let deflated = value.deflate(&mut |text: Rope| {
                let id = SegmentId::from_parts(region, *next_seg);
                *next_seg += 1;
                let _ = ctx.lib_tx.send(LibMsg::Segment { id, text });
                id
            });
            if let Some(d) = deflated {
                value = d;
            }
        }
        match send.to {
            SendTarget::Parser => ctx
                .parser_tx
                .send(ParserMsg::Root {
                    attr: send.attr,
                    value,
                })
                .is_ok(),
            SendTarget::Region(q) => ctx.peers[q as usize]
                .send(WorkerMsg::Attr {
                    epoch,
                    node: send.node,
                    attr: send.attr,
                    value,
                })
                .is_ok(),
        }
    };

    loop {
        match machine.step() {
            Err(e) => {
                let (_, _, sc) = machine.recycle();
                return (sc, Some(Err(e)));
            }
            Ok(Some(outcome)) => {
                // Forward sends immediately: peers block on these values
                // (see `super::threads` for why batching would serialize
                // the pipeline).
                for send in outcome.sends {
                    if !route(send, &mut next_seg) {
                        let (_, _, sc) = machine.recycle();
                        return (sc, None);
                    }
                }
            }
            Ok(None) => {
                if machine.is_done() {
                    break;
                }
                match ctx.rx.recv() {
                    Err(_) => {
                        let (_, _, sc) = machine.recycle();
                        return (sc, None);
                    }
                    Ok(WorkerMsg::Shutdown) => {
                        let (_, _, sc) = machine.recycle();
                        return (sc, None);
                    }
                    Ok(WorkerMsg::Attr {
                        epoch: e,
                        node,
                        attr,
                        value,
                    }) => {
                        if e == epoch {
                            machine.provide(node, attr, value);
                        } else if e > epoch {
                            parked.push((e, node, attr, value));
                        }
                        // Opportunistically drain anything else queued.
                        while let Ok(m) = ctx.rx.try_recv() {
                            match m {
                                WorkerMsg::Attr {
                                    epoch: e,
                                    node,
                                    attr,
                                    value,
                                } => {
                                    if e == epoch {
                                        machine.provide(node, attr, value);
                                    } else if e > epoch {
                                        parked.push((e, node, attr, value));
                                    }
                                }
                                WorkerMsg::Shutdown => {
                                    let (_, _, sc) = machine.recycle();
                                    return (sc, None);
                                }
                                WorkerMsg::Job { .. } => {
                                    unreachable!("one tree in flight per pool")
                                }
                            }
                        }
                    }
                    Ok(WorkerMsg::Job { .. }) => unreachable!("one tree in flight per pool"),
                }
            }
        }
    }
    let (store, stats, sc) = machine.recycle();
    (sc, Some(Ok((stats, store))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::dynamic_eval;
    use crate::grammar::{AttrId, GrammarBuilder};
    use crate::tree::TreeBuilder;
    use crate::value::Value;

    fn fixture(n: usize) -> (Arc<ParseTree<Value>>, Arc<EvalPlan<Value>>, AttrId) {
        let mut g = GrammarBuilder::<Value>::new();
        let s = g.nonterminal("S");
        let l = g.nonterminal("stmts");
        let out = g.synthesized(s, "code");
        let decls = g.synthesized(l, "decls");
        let env = g.inherited(l, "env");
        let code = g.synthesized(l, "code");
        g.mark_split(l, 4);
        let top = g.production("top", s, [l]);
        g.rule(top, (1, env), [(1, decls)], |a| a[0].clone());
        g.rule(top, (0, out), [(1, code)], |a| a[0].clone());
        let cons = g.production("cons", l, [l]);
        g.rule(cons, (0, decls), [(1, decls)], |a| {
            Value::Int(a[0].as_int().unwrap() + 1)
        });
        g.rule(cons, (1, env), [(0, env)], |a| a[0].clone());
        g.rule(cons, (0, code), [(1, code), (0, env)], |a| {
            let line = format!("op {}\n", a[1].as_int().unwrap());
            Value::Rope(Rope::from(line).concat(a[0].as_rope().unwrap()))
        });
        let nil = g.production("nil", l, []);
        g.rule(nil, (0, decls), [], |_| Value::Int(0));
        g.rule(nil, (0, code), [], |_| Value::Rope(Rope::new()));
        let grammar = Arc::new(g.build(s).unwrap());
        let plan = Arc::new(EvalPlan::analyze(&grammar));
        let mut tb = TreeBuilder::new(&grammar);
        let mut tail = tb.leaf(nil);
        for _ in 0..n {
            tail = tb.node(cons, [tail]);
        }
        let root = tb.node(top, [tail]);
        (Arc::new(tb.finish(root).unwrap()), plan, out)
    }

    #[test]
    fn pool_reused_across_trees_matches_sequential() {
        let (tree, plan, out) = fixture(64);
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        let want = dstore
            .get(tree.root(), out)
            .and_then(|v| v.as_rope().cloned())
            .unwrap();
        let mut pool = WorkerPool::new(&plan, PoolConfig::combined(3));
        // Same pool, several trees in a row (the batched path).
        for round in 0..4 {
            let report = pool.eval(&tree).unwrap();
            let got = report
                .root_values
                .iter()
                .find(|(a, _)| *a == out)
                .and_then(|(_, v)| v.as_rope().cloned())
                .unwrap();
            assert!(got.content_eq(&want), "round {round}");
            assert!(report.regions > 1, "round {round}: tree was split");
            assert_eq!(report.store.filled(), report.store.len());
        }
    }

    #[test]
    fn pool_store_is_decomposition_independent() {
        let (tree, plan, _) = fixture(48);
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        for workers in [1, 2, 4] {
            let mut pool = WorkerPool::new(&plan, PoolConfig::combined(workers));
            let report = pool.eval(&tree).unwrap();
            for node in tree.node_ids() {
                let sym = tree.grammar().prod(tree.node(node).prod).lhs;
                for a in 0..tree.grammar().attr_count(sym) {
                    let attr = AttrId(a as u32);
                    assert_eq!(
                        report.store.get(node, attr),
                        dstore.get(node, attr),
                        "workers={workers} node={node:?} attr={attr:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pool_works_in_dynamic_mode_with_naive_propagation() {
        let (tree, plan, out) = fixture(32);
        let config = PoolConfig {
            workers: 3,
            mode: MachineMode::Dynamic,
            result: ResultPropagation::Naive,
            min_size_scale: 1.0,
        };
        let mut pool = WorkerPool::new(&plan, config);
        let report = pool.eval(&tree).unwrap();
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        let want = dstore.get(tree.root(), out).unwrap();
        let got = &report
            .root_values
            .iter()
            .find(|(a, _)| *a == out)
            .unwrap()
            .1;
        assert_eq!(got, want);
        assert_eq!(report.stats.static_applied, 0);
    }
}
