//! A persistent evaluator worker pool with split-phase code combining
//! and cross-tree pipelining.
//!
//! [`super::threads`] reproduces the paper's Figure-6 setting for *one*
//! compilation: spawn one OS thread per region, evaluate, join. Under a
//! batched driver compiling a stream of trees, that per-compilation
//! spin-up (thread creation, channel setup, librarian start) is pure
//! overhead repeated per tree. [`WorkerPool`] hoists it: evaluator
//! threads and the string librarian are spawned **once** and fed
//! per-tree region jobs over their channels; each worker keeps a
//! [`MachineScratch`] alive so construction/evaluation buffer capacity
//! also carries over from tree to tree.
//!
//! # Tickets and the split-phase librarian
//!
//! Every tree submitted to the pool gets a monotonically increasing
//! [`Ticket`]. The librarian protocol is *split-phase*, exactly as the
//! paper's §4.2 code-combining protocol allows:
//!
//! * **Registration** streams: workers ship code segments to the
//!   librarian *while evaluation is still running*, tagged with their
//!   tree's ticket ([`SegmentLedger`] keeps one segment store per
//!   in-flight ticket, so consecutive trees' segments never collide).
//! * **Resolution** is deferred to the parser's final read of that
//!   tree: only when the pool retires a ticket does it ask the
//!   librarian to resolve — and by then the *next* tree's registrations
//!   are already streaming in.
//!
//! # Region-granular scheduling
//!
//! The pool's unit of scheduling is the **region job** — a
//! `(ticket, region)` pair with its own machine, dependencies and
//! completion signal — *not* the tree. A tree's pass through the pool:
//!
//! ```text
//! submit(tree)
//!   │ decompose                     fixed-count (Machines) or
//!   │                               cost-driven (Adaptive budget)
//!   ▼
//! ticket t ──┬─ job (t,0) ─▶ worker w(t,0)    one Machine per job;
//!            ├─ job (t,1) ─▶ worker w(t,1)    workers multiplex their
//!            ├─ job (t,2) ─▶ worker w(t,2)    machines, oldest
//!            └─ job (t,r) ─▶ worker w(t,r)    (ticket, region) first
//!                  │
//!                  │  Attr { t, region, .. }   between (t,q) machines
//!                  │  Register { t, .. }       streams to librarian
//!                  ▼
//! Done(t, q) per region ─▶ parser assembles InFlight(t)
//!                        ─▶ Resolve(t) at retirement ─▶ PoolReport
//! ```
//!
//! Because regions — not trees — are the work items, a single huge tree
//! decomposed into many budget-sized regions
//! ([`crate::split::decompose_adaptive`], selected with
//! [`RegionGranularity::Adaptive`]) fills the worker park exactly like
//! a batch of small trees does, and mixed streams of huge and tiny
//! trees interleave at region granularity: there is no head-of-line
//! blocking behind a big tree's longest region, because every worker
//! holds several of the big tree's regions and any younger tree's
//! regions besides. [`RegionGranularity::Machines`] (the default,
//! regions ≤ workers) reproduces the paper's fixed one-region-per-
//! machine decomposition and the pre-region-granular pool schedule.
//!
//! # Cross-tree pipelining
//!
//! Because registration and resolution are decoupled per ticket, the
//! pool needs no barrier between trees. A small in-flight window
//! ([`PoolConfig::pipeline_depth`], default 2) lets tree N+1's region
//! jobs dispatch while tree N's regions drain; workers multiplex their
//! machines **oldest job first**: whenever an older machine starves
//! (blocked on an attribute from a straggling peer — e.g. downstream of
//! the symbol-table pipeline), the worker steps the next job's machine
//! instead of idling. Both the early-finisher idle time *and* the
//! blocked-on-messages time an epoch barrier would waste become useful
//! work, and the parser-side assembly of tree N (store merge + segment
//! inflation) overlaps tree N+1's evaluation. Depth 1 restores the
//! strict one-epoch-per-tree barrier.
//!
//! # Placement: fixed modular vs. work stealing
//!
//! [`SchedulerMode`] selects how region jobs land on workers:
//!
//! * [`SchedulerMode::Fixed`] (the default) pins every job by a pure
//!   function of its `(ticket, region)` pair — `region mod W` under
//!   fixed-count granularity (the paper's region-k-on-machine-k
//!   placement), `(region + ticket) mod W` under adaptive granularity
//!   (the rotation keeps consecutive trees' low regions off one
//!   worker). Dispatch and attribute routing share the function, so
//!   they can never drift apart — and no shared mutable state exists.
//! * [`SchedulerMode::Stealing`] replaces the pure function with
//!   per-worker **deques** plus a shared **job-location table**.
//!   `submit` seeds a ticket's jobs LPT-style — largest estimated work
//!   placed first, each onto the least-loaded worker — except that
//!   parent/child regions of one tree are co-seeded onto the same
//!   worker (while its load stays near the fair share), so
//!   boundary-attribute sends stay worker-local. A worker whose
//!   machines all starve claims the front of its own deque; an idle
//!   worker with an empty deque **steals** the largest pending job
//!   from the most-loaded victim, searching the victim's deque from
//!   the back. The location table maps each live `(ticket, region)` to
//!   `Queued(worker)` or `Active(worker)` and replaces [`worker_of`]
//!   on every routing path: values for a *queued* job attach to its
//!   deque entry and migrate with it if it is stolen (memo-probing
//!   jobs therefore survive migration — their probe is built at
//!   activation, after the migrated values landed); values for an
//!   *active* job are channel-sent to the worker that claimed it
//!   (jobs never migrate once active); an *absent* entry means the job
//!   already finished and the value is dropped. `submit` registers
//!   every region of a ticket in the table before waking any worker,
//!   so the absent-means-finished reading is sound.
//!   [`WorkerPool::sched_counters`] reports steals, migrated values
//!   and the local/remote split of boundary sends.
//!
//! Either way the protocol stays deterministic in *results* at every
//! depth and granularity: attribute messages carry their
//! `(ticket, region)` destination, and per-ticket result assembly
//! merges region stores in region order — placement and machine
//! scheduling affect timing only, never values (each attribute
//! instance has exactly one defining rule). Dependencies between
//! machines exist only *within* a ticket and no machine ever waits for
//! CPU behind a *later* job on the same worker (stolen jobs insert in
//! `(ticket, region)` order and the oldest machine runs unbudgeted),
//! so the schedule cannot deadlock: a starved worker always drains its
//! channel, then claims or steals pending work, and blocks only when
//! no queued job exists anywhere.
//!
//! Use [`WorkerPool::submit`] / [`WorkerPool::collect`] to keep the
//! window full (what `paragram-driver`'s batch driver does), or the
//! one-shot [`WorkerPool::eval`] when compiling a single tree.

use crate::eval::{AttrMsg, EvalError, EvalPlan, Machine, MachineMode, MachineScratch, SendTarget};
use crate::grammar::{AttrId, AttrKind};
use crate::memo::{inherited_fingerprint, MemoCache, MemoCounters, MemoEntry, MemoKey};
use crate::split::{decompose_granular, Decomposition, RegionGranularity, RegionId, SplitTable};
use crate::stats::EvalStats;
use crate::tree::{AttrStore, NodeId, ParseTree, RegionStore};
use crate::value::AttrValue;
use paragram_rope::{Rope, SegmentId, SegmentStore};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use super::ResultPropagation;

/// Identifies one tree's pass through the pool (monotone, assigned at
/// [`WorkerPool::submit`] time). Messages carry their ticket so
/// registration, attribute exchange and resolution of overlapping trees
/// never interfere.
pub type Ticket = u64;

/// How region jobs are placed on workers (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// The paper's fixed modular placement: region `r` of ticket `t`
    /// runs on worker `(r + offset(t)) mod W`, a pure function shared
    /// by dispatch and attribute routing. No migration, no shared
    /// scheduler state.
    #[default]
    Fixed,
    /// Per-worker deques with LPT seeding, parent/child co-seeding and
    /// steal-from-the-back work stealing; attribute routing goes
    /// through a shared job-location table.
    Stealing,
}

/// Steal-scheduler telemetry, cumulative since pool construction or
/// the last [`WorkerPool::reset_high_water`]. All zeros under
/// [`SchedulerMode::Fixed`] (nothing is ever stolen and no boundary
/// send consults the location table).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Jobs an idle worker took from another worker's deque.
    pub steals: u64,
    /// Early-arrival attribute values that migrated with a stolen job.
    pub migrated_attrs: u64,
    /// Boundary-attribute sends whose destination job lived on the
    /// sending worker (the co-seeding payoff).
    pub local_sends: u64,
    /// Boundary-attribute sends that crossed workers.
    pub remote_sends: u64,
}

impl SchedCounters {
    /// Fraction of boundary sends that stayed worker-local (0.0 when
    /// none were routed).
    pub fn locality_rate(&self) -> f64 {
        let total = self.local_sends + self.remote_sends;
        if total == 0 {
            0.0
        } else {
            self.local_sends as f64 / total as f64
        }
    }
}

/// Fault-injection and recovery telemetry, cumulative since pool
/// construction or the last [`WorkerPool::reset_high_water`]. The pool
/// fills the crash/re-execution/duplicate/panic fields; the deadline
/// and retry fields belong to the serving layer (`paragram-driver`'s
/// service queue), which merges its own counts in. The simulator's
/// recovery mirror reports the same struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Worker/machine crashes observed (injected or real).
    pub crashes: u64,
    /// Region jobs reseeded onto surviving workers after a crash
    /// (queued jobs migrate; active jobs restart from their input log).
    pub regions_reexecuted: u64,
    /// Duplicate boundary/root sends suppressed by content-keyed
    /// idempotent delivery during recovery replay.
    pub dup_suppressed: u64,
    /// Requests shed at admission because their predicted wait already
    /// exceeded their deadline (serving layer).
    pub deadline_sheds: u64,
    /// Admitted requests whose deadline expired while queued (serving
    /// layer, enforced at dispatch time).
    pub deadline_expired: u64,
    /// Failed tickets re-dispatched by the serving layer's bounded
    /// retry policy.
    pub retries: u64,
    /// Semantic-rule panics converted into per-ticket failures by
    /// [`std::panic::catch_unwind`] containment.
    pub panics_contained: u64,
}

impl FaultCounters {
    /// Counter deltas relative to an earlier snapshot (saturating, so a
    /// reset between snapshots reads as zero rather than wrapping).
    pub fn since(&self, earlier: &FaultCounters) -> FaultCounters {
        FaultCounters {
            crashes: self.crashes.saturating_sub(earlier.crashes),
            regions_reexecuted: self
                .regions_reexecuted
                .saturating_sub(earlier.regions_reexecuted),
            dup_suppressed: self.dup_suppressed.saturating_sub(earlier.dup_suppressed),
            deadline_sheds: self.deadline_sheds.saturating_sub(earlier.deadline_sheds),
            deadline_expired: self
                .deadline_expired
                .saturating_sub(earlier.deadline_expired),
            retries: self.retries.saturating_sub(earlier.retries),
            panics_contained: self
                .panics_contained
                .saturating_sub(earlier.panics_contained),
        }
    }
}

/// One ticket's evaluation failed (dependency cycle, plan
/// inconsistency, or a contained rule panic). The pool cancels the
/// ticket's remaining region jobs and stays fully usable: failures
/// surface in submission order through [`WorkerPool::collect`] /
/// [`WorkerPool::take_ready`] exactly like successful reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TicketFailure {
    /// The failed ticket.
    pub ticket: Ticket,
    /// The first error any of its region machines raised.
    pub error: EvalError,
}

impl std::fmt::Display for TicketFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ticket {} failed: {}", self.ticket, self.error)
    }
}

impl std::error::Error for TicketFailure {}

/// Configuration for a [`WorkerPool`].
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of persistent evaluator threads. Under the default
    /// fixed-count granularity this is also the per-tree region target;
    /// under adaptive granularity a tree may decompose into more
    /// regions than workers, which then round-robin over the pool.
    pub workers: usize,
    /// Combined or purely dynamic machines.
    pub mode: MachineMode,
    /// Result propagation strategy.
    pub result: ResultPropagation,
    /// Split-granularity scale.
    pub min_size_scale: f64,
    /// Maximum number of trees in flight at once. Depth 1 is the strict
    /// per-tree barrier; depth 2 (the default) lets the next tree's
    /// region jobs fill workers idling behind the current tree's
    /// stragglers.
    pub pipeline_depth: usize,
    /// How trees are carved into region jobs:
    /// [`RegionGranularity::Machines`] (one region per worker, the
    /// paper's decomposition and the constructors' default) or
    /// [`RegionGranularity::Adaptive`] (one region per work budget, so
    /// a huge tree yields many jobs that round-robin over the workers).
    pub granularity: RegionGranularity,
    /// Byte budget for the cross-tree attribute memo cache
    /// ([`crate::memo::MemoCache`]); 0 (the default everywhere)
    /// disables memoization entirely, keeping the paper's Fig-7
    /// behaviour bit-for-bit.
    pub memo_capacity: usize,
    /// Memo install policy (only meaningful with a non-zero
    /// `memo_capacity`): install every cacheable span at retirement, or
    /// defer to the second touch of a subtree (scan resistance).
    pub memo_install: crate::memo::InstallPolicy,
    /// Region-job placement: the paper's fixed modular function (the
    /// default everywhere, keeping Fig-7 schedules bit-for-bit) or the
    /// locality-aware work-stealing scheduler.
    pub scheduler: SchedulerMode,
}

impl PoolConfig {
    /// Combined evaluation on `n` workers with librarian propagation
    /// and the default pipeline window.
    pub fn combined(n: usize) -> Self {
        PoolConfig {
            workers: n,
            mode: MachineMode::Combined,
            result: ResultPropagation::Librarian,
            min_size_scale: 1.0,
            pipeline_depth: 2,
            granularity: RegionGranularity::Machines(n),
            memo_capacity: 0,
            memo_install: crate::memo::InstallPolicy::Always,
            scheduler: SchedulerMode::Fixed,
        }
    }

    /// Same as [`PoolConfig::combined`] but with the strict one-tree
    /// barrier (pipeline depth 1).
    pub fn barrier(n: usize) -> Self {
        PoolConfig {
            pipeline_depth: 1,
            ..PoolConfig::combined(n)
        }
    }

    /// Same as [`PoolConfig::combined`] but with cost-driven
    /// region-granular decomposition: every tree is carved into regions
    /// of ≈`budget` work units, independent of the worker count.
    pub fn adaptive(n: usize, budget: u64) -> Self {
        PoolConfig {
            granularity: RegionGranularity::Adaptive { budget },
            ..PoolConfig::combined(n)
        }
    }

    /// Returns the configuration with the given in-flight window depth.
    pub fn with_pipeline_depth(self, depth: usize) -> Self {
        PoolConfig {
            pipeline_depth: depth.max(1),
            ..self
        }
    }

    /// Returns the configuration with the given region granularity.
    pub fn with_granularity(self, granularity: RegionGranularity) -> Self {
        PoolConfig {
            granularity,
            ..self
        }
    }

    /// Returns the configuration with a memo cache of roughly
    /// `bytes` capacity (0 disables memoization).
    pub fn with_memo_capacity(self, bytes: usize) -> Self {
        PoolConfig {
            memo_capacity: bytes,
            ..self
        }
    }

    /// Returns the configuration with the given memo install policy.
    pub fn with_memo_install(self, policy: crate::memo::InstallPolicy) -> Self {
        PoolConfig {
            memo_install: policy,
            ..self
        }
    }

    /// Returns the configuration with the given region-job scheduler.
    pub fn with_scheduler(self, scheduler: SchedulerMode) -> Self {
        PoolConfig { scheduler, ..self }
    }

    /// The effective configuration: zero worker or window counts are
    /// meaningless, so both clamp to 1. [`WorkerPool::new`] normalizes
    /// at construction, which keeps accessors like
    /// [`WorkerPool::pipeline_depth`] truthful even for a literal
    /// `PoolConfig { pipeline_depth: 0, .. }` that bypassed
    /// [`PoolConfig::with_pipeline_depth`].
    pub fn normalized(self) -> Self {
        PoolConfig {
            workers: self.workers.max(1),
            pipeline_depth: self.pipeline_depth.max(1),
            ..self
        }
    }
}

/// The librarian's split-phase bookkeeping: one [`SegmentStore`] per
/// in-flight ticket. Registration is streaming (any ticket, any order);
/// resolution removes and returns exactly one ticket's store, leaving
/// other tickets' registrations untouched — which is what lets trees
/// overlap in the pool without their segments colliding.
#[derive(Debug, Default)]
pub struct SegmentLedger {
    tickets: HashMap<Ticket, SegmentStore>,
}

impl SegmentLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Streams one segment registration for `ticket`.
    pub fn register(&mut self, ticket: Ticket, id: SegmentId, text: Rope) {
        self.tickets.entry(ticket).or_default().register(id, text);
    }

    /// Resolves `ticket`: removes and returns its segment store (empty
    /// if the ticket registered nothing, e.g. naive propagation).
    pub fn resolve(&mut self, ticket: Ticket) -> SegmentStore {
        self.tickets.remove(&ticket).unwrap_or_default()
    }

    /// Number of tickets with unresolved registrations.
    pub fn open_tickets(&self) -> usize {
        self.tickets.len()
    }

    /// Total text bytes registered for `ticket` so far.
    pub fn ticket_bytes(&self, ticket: Ticket) -> usize {
        self.tickets.get(&ticket).map_or(0, |s| s.total_bytes())
    }
}

/// Result of one pooled parallel evaluation.
pub struct PoolReport<V: AttrValue> {
    /// The ticket this tree was evaluated under.
    pub ticket: Ticket,
    /// Root attribute values, librarian-resolved.
    pub root_values: Vec<(AttrId, V)>,
    /// Merged attribute store, librarian-resolved (independent of the
    /// decomposition that produced it).
    pub store: AttrStore<V>,
    /// The librarian's segment store for this tree's ticket.
    pub segments: SegmentStore,
    /// Aggregated statistics.
    pub stats: EvalStats,
    /// Wall-clock time from job dispatch to retirement. Under a
    /// pipelined window this overlaps with neighbouring trees' times.
    pub elapsed: Duration,
    /// Number of regions actually used.
    pub regions: usize,
}

struct JobMsg<V> {
    ticket: Ticket,
    tree: Arc<ParseTree<V>>,
    decomp: Arc<Decomposition>,
    region: RegionId,
}

enum WorkerMsg<V> {
    Job(JobMsg<V>),
    Attr {
        ticket: Ticket,
        /// Destination region — with region-granular scheduling a worker
        /// hosts several regions per ticket, so the ticket alone no
        /// longer identifies the receiving machine.
        region: RegionId,
        node: NodeId,
        attr: AttrId,
        value: V,
    },
    /// Stealing scheduler only: new jobs were seeded — drain the
    /// channel, then claim or steal. Carries nothing; the work lives in
    /// the shared deques.
    Wake,
    /// A ticket failed: drop every running job and parked value that
    /// belongs to it (its Done will never be awaited).
    Cancel {
        ticket: Ticket,
    },
    /// Injected crash ([`WorkerPool::kill_worker`]): the worker thread
    /// exits immediately, abandoning its machines without sending any
    /// Done — the pool has already reseeded its jobs onto survivors.
    Die,
    Shutdown,
}

enum ParserMsg<V> {
    Root {
        ticket: Ticket,
        attr: AttrId,
        value: V,
    },
    Done {
        ticket: Ticket,
        region: RegionId,
        /// A finished region ships its O(region) local store back; the
        /// parser role maps it into the whole-tree store at assembly.
        result: Result<(EvalStats, RegionStore<V>), EvalError>,
    },
}

enum LibMsg {
    /// Streaming registration, accepted for any in-flight ticket while
    /// evaluation is still running.
    Register {
        ticket: Ticket,
        id: SegmentId,
        text: Rope,
    },
    /// The parser's final read for one ticket; replies with that
    /// ticket's store without disturbing the others.
    Resolve {
        ticket: Ticket,
    },
    Shutdown,
}

/// Per-ticket assembly state: what the parser role has collected for
/// one in-flight tree so far.
struct InFlight<V: AttrValue> {
    ticket: Ticket,
    /// The tree under evaluation — assembly sizes the whole-tree store
    /// and resolves the region stores' slot spans against it.
    tree: Arc<ParseTree<V>>,
    /// The decomposition — retire-time memo installation needs region
    /// roots and parents.
    decomp: Arc<Decomposition>,
    regions: usize,
    expected_roots: usize,
    raw_roots: Vec<(AttrId, V)>,
    region_results: Vec<Option<(EvalStats, RegionStore<V>)>>,
    done: usize,
    start: Instant,
    /// First error any region machine raised; a failed entry's
    /// remaining regions are cancelled and never report.
    failed: Option<EvalError>,
}

/// Persistent evaluator threads + librarian, reusable across a stream
/// of trees compiled against one shared [`EvalPlan`].
pub struct WorkerPool<V: AttrValue> {
    plan: Arc<EvalPlan<V>>,
    config: PoolConfig,
    split: SplitTable,
    worker_txs: Vec<Sender<WorkerMsg<V>>>,
    parser_rx: Receiver<ParserMsg<V>>,
    lib_tx: Sender<LibMsg>,
    lib_reply_rx: Receiver<(Ticket, SegmentStore)>,
    handles: Vec<std::thread::JoinHandle<()>>,
    lib_handle: Option<std::thread::JoinHandle<()>>,
    next_ticket: Ticket,
    in_flight: VecDeque<InFlight<V>>,
    ready: VecDeque<Result<PoolReport<V>, TicketFailure>>,
    max_in_flight: usize,
    max_regions_in_flight: usize,
    /// Shared fault/recovery telemetry (workers bump the panic and
    /// duplicate counters; the pool bumps crashes and re-executions).
    faults: Arc<FaultCell>,
    /// Cross-tree attribute memo cache (None when
    /// [`PoolConfig::memo_capacity`] is 0). Shared with the workers:
    /// they probe before building a machine, the pool installs at
    /// retirement.
    memo: Option<Arc<MemoCache<V>>>,
    /// Per-symbol memo safety (see [`memo_safety`]); empty when the
    /// cache is off.
    memo_safe: Arc<Vec<bool>>,
    /// Stealing-scheduler shared state; `None` under
    /// [`SchedulerMode::Fixed`].
    sched: Option<Arc<Sched<V>>>,
}

/// Atomic fault telemetry shared between the pool and its workers
/// (the deadline/retry fields of [`FaultCounters`] live in the serving
/// layer, not here).
#[derive(Default)]
struct FaultCell {
    crashes: AtomicU64,
    regions_reexecuted: AtomicU64,
    dup_suppressed: AtomicU64,
    panics_contained: AtomicU64,
}

impl FaultCell {
    fn counters(&self) -> FaultCounters {
        FaultCounters {
            crashes: self.crashes.load(Ordering::Relaxed),
            regions_reexecuted: self.regions_reexecuted.load(Ordering::Relaxed),
            dup_suppressed: self.dup_suppressed.load(Ordering::Relaxed),
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
            ..FaultCounters::default()
        }
    }

    fn reset(&self) {
        self.crashes.store(0, Ordering::Relaxed);
        self.regions_reexecuted.store(0, Ordering::Relaxed);
        self.dup_suppressed.store(0, Ordering::Relaxed);
        self.panics_contained.store(0, Ordering::Relaxed);
    }
}

/// Everything a worker thread needs; owned by the thread.
struct WorkerCtx<V: AttrValue> {
    plan: Arc<EvalPlan<V>>,
    /// This worker's index — the stealing scheduler's claim/steal and
    /// locality accounting key.
    me: usize,
    rx: Receiver<WorkerMsg<V>>,
    peers: Vec<Sender<WorkerMsg<V>>>,
    parser_tx: Sender<ParserMsg<V>>,
    lib_tx: Sender<LibMsg>,
    /// The pool configuration — under fixed placement, workers route
    /// attribute messages with the same [`worker_of`] function the
    /// dispatch side uses, so the two can never drift apart.
    config: PoolConfig,
    /// Shared memo cache (probe side); None when memoization is off.
    memo: Option<Arc<MemoCache<V>>>,
    /// Per-symbol memo safety, aligned with the grammar's symbol ids.
    memo_safe: Arc<Vec<bool>>,
    /// Stealing-scheduler shared state; `None` under
    /// [`SchedulerMode::Fixed`].
    sched: Option<Arc<Sched<V>>>,
    /// Shared fault telemetry (panic containment, duplicate
    /// suppression).
    faults: Arc<FaultCell>,
}

/// Per-symbol memoization safety: a split symbol is memo-safe iff no
/// inherited attribute of the symbol may (transitively) depend on a
/// synthesized attribute of the *same* occurrence. A probe holds a leaf
/// region's synthesized outputs back until every inherited input has
/// arrived; if the parent needed one of those outputs to compute a
/// later inherited input, probe and parent would deadlock. The induced
/// dependency relation is exactly the may-depend closure, so its
/// absence makes the hold-back safe in both machine modes. Grammars the
/// fixpoint rejects (cyclic — dynamic-mode only) get no safe symbols.
fn memo_safety<V: AttrValue>(plan: &EvalPlan<V>) -> Vec<bool> {
    let g = plan.grammar();
    let Ok(deps) = crate::analysis::induced_deps(g.as_ref()) else {
        return vec![false; g.symbols().len()];
    };
    g.symbols()
        .iter()
        .enumerate()
        .map(|(si, sym)| {
            let rel = &deps.ids[si];
            for (a, aa) in sym.attrs.iter().enumerate() {
                if aa.kind != AttrKind::Syn {
                    continue;
                }
                for (b, ba) in sym.attrs.iter().enumerate() {
                    if ba.kind == AttrKind::Inh && rel.has(a, b) {
                        return false;
                    }
                }
            }
            true
        })
        .collect()
}

/// The region→worker placement: a pure function of `(ticket, region)`
/// shared by job dispatch and attribute routing.
fn worker_of(config: &PoolConfig, ticket: Ticket, region: RegionId) -> usize {
    let offset = match config.granularity {
        RegionGranularity::Adaptive { .. } => ticket as usize,
        RegionGranularity::Machines(_) => 0,
    };
    (region as usize + offset) % config.workers
}

/// Where a region job currently lives under the stealing scheduler.
/// Shared with the simulator's mirror of the protocol.
#[derive(Debug, Clone, Copy)]
pub(crate) enum JobLoc {
    /// Waiting in this worker's deque — stealable.
    Queued(usize),
    /// Claimed by this worker — never migrates again.
    Active(usize),
}

/// Chooses a worker for every region of one tree under the stealing
/// scheduler's seeding policy, updating `load` (one slot per worker)
/// in place. LPT: regions are placed largest-estimated-work first, so
/// big regions spread before small ones fill the gaps. Locality: a
/// region whose parent region (or an already-placed child) has a home
/// prefers that relative's worker — keeping boundary-attribute
/// messages worker-local — unless that worker's load exceeds the
/// least-loaded worker's by more than one region's worth (capped at a
/// fair share), which would stack a dependency chain onto one worker
/// and serialize it. Ties break toward the lowest worker index, so
/// placement is deterministic.
///
/// This is the single implementation of the policy: the live
/// [`WorkerPool`] seeds its deques with it, and the simulator
/// ([`crate::parallel::sim`]) calls the same function so simulated
/// schedule rankings exercise deployed code.
pub(crate) fn seed_placements(
    decomp: &Decomposition,
    work: &[u64],
    load: &mut [u64],
) -> Vec<usize> {
    let workers = load.len();
    let total: u64 = work.iter().sum();
    // A little over-filling for locality is tolerable — runtime
    // stealing corrects residual imbalance — but co-locating a whole
    // region chain serializes it, so the slack is tight.
    let bound = (total / workers as u64).max(1);
    let mut order: Vec<usize> = (0..work.len()).collect();
    order.sort_by(|&a, &b| work[b].cmp(&work[a]).then(a.cmp(&b)));
    let mut placements = vec![usize::MAX; work.len()];
    let mut placed_child: HashMap<RegionId, usize> = HashMap::new();
    for &r in &order {
        let rid = r as RegionId;
        let parent = decomp.regions[r].parent;
        let pref = parent
            .and_then(|p| {
                let w = placements[p as usize];
                (w != usize::MAX).then_some(w)
            })
            .or_else(|| placed_child.get(&rid).copied());
        let least = (0..workers)
            .min_by_key(|&w| (load[w], w))
            .expect("at least one worker");
        let w = match pref {
            Some(p) if load[p] <= load[least] + bound.min(work[r]) => p,
            _ => least,
        };
        placements[r] = w;
        load[w] += work[r];
        if let Some(p) = parent {
            placed_child.entry(p).or_insert(w);
        }
    }
    placements
}

/// A seeded-but-unclaimed region job. Attribute values that arrive
/// before activation attach here (not to any worker's local state), so
/// a steal migrates them with the job.
struct PendingJob<V: AttrValue> {
    ticket: Ticket,
    region: RegionId,
    tree: Arc<ParseTree<V>>,
    decomp: Arc<Decomposition>,
    /// Estimated work (rule-cost units) — the LPT seeding key, and the
    /// unit of the per-worker load accounting.
    work: u64,
    early: Vec<(NodeId, AttrId, V)>,
}

/// Per-job input log: every boundary value delivered to a live job,
/// in delivery order, keyed `(ticket, region)`.
pub(crate) type InputLogs<K, V> = HashMap<(K, RegionId), Vec<(NodeId, AttrId, V)>>;

/// The stealing scheduler's shared state: one deque per worker, the
/// job-location table, and per-worker outstanding estimated work
/// (queued + active). One mutex guards all three so seed / claim /
/// steal / route decisions are atomic.
struct SchedState<V: AttrValue> {
    deques: Vec<VecDeque<PendingJob<V>>>,
    table: HashMap<(Ticket, RegionId), JobLoc>,
    load: Vec<u64>,
    /// Workers killed by [`WorkerPool::kill_worker`]: they claim no
    /// further work, and seeding never places jobs on them.
    dead: Vec<bool>,
    /// Per-job input log: every boundary value delivered to a live
    /// `(ticket, region)` job, in delivery order. This generalizes the
    /// queued job's `early` attachment — it keeps accumulating after
    /// activation, so a job lost to a crashed worker can be
    /// reconstituted and replayed from it. Doubles as the content-keyed
    /// duplicate filter: a `(node, attr)` already in the destination's
    /// log is never delivered twice, which is what keeps recovery
    /// replay byte-identical. Entries are dropped when their job
    /// retires or its ticket is cancelled.
    logs: InputLogs<Ticket, V>,
}

/// Load value pinning a dead worker at the bottom of every
/// least-loaded choice (large enough to lose all comparisons, small
/// enough never to overflow when summed with real work).
pub(crate) const DEAD_LOAD: u64 = u64::MAX / 2;

struct Sched<V: AttrValue> {
    state: Mutex<SchedState<V>>,
    steals: AtomicU64,
    migrated_attrs: AtomicU64,
    local_sends: AtomicU64,
    remote_sends: AtomicU64,
}

impl<V: AttrValue> Sched<V> {
    fn new(workers: usize) -> Self {
        Sched {
            state: Mutex::new(SchedState {
                deques: (0..workers).map(|_| VecDeque::new()).collect(),
                table: HashMap::new(),
                load: vec![0; workers],
                dead: vec![false; workers],
                logs: HashMap::new(),
            }),
            steals: AtomicU64::new(0),
            migrated_attrs: AtomicU64::new(0),
            local_sends: AtomicU64::new(0),
            remote_sends: AtomicU64::new(0),
        }
    }

    fn counters(&self) -> SchedCounters {
        SchedCounters {
            steals: self.steals.load(Ordering::Relaxed),
            migrated_attrs: self.migrated_attrs.load(Ordering::Relaxed),
            local_sends: self.local_sends.load(Ordering::Relaxed),
            remote_sends: self.remote_sends.load(Ordering::Relaxed),
        }
    }

    fn reset_counters(&self) {
        self.steals.store(0, Ordering::Relaxed);
        self.migrated_attrs.store(0, Ordering::Relaxed);
        self.local_sends.store(0, Ordering::Relaxed);
        self.remote_sends.store(0, Ordering::Relaxed);
    }

    fn count_send(&self, local: bool) {
        if local {
            self.local_sends.fetch_add(1, Ordering::Relaxed);
        } else {
            self.remote_sends.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<V: AttrValue> WorkerPool<V> {
    /// Spawns the pool: `config.workers` evaluator threads plus the
    /// librarian, all persistent until the pool is dropped.
    pub fn new(plan: &Arc<EvalPlan<V>>, config: PoolConfig) -> Self {
        let config = config.normalized();
        let workers = config.workers;
        let depth = config.pipeline_depth;
        let split = SplitTable::new(plan.grammar().as_ref(), config.min_size_scale);
        let memo = (config.memo_capacity > 0).then(|| {
            Arc::new(MemoCache::with_install_policy(
                config.memo_capacity,
                config.memo_install,
            ))
        });
        let memo_safe = Arc::new(if memo.is_some() {
            memo_safety(plan)
        } else {
            Vec::new()
        });
        let sched =
            (config.scheduler == SchedulerMode::Stealing).then(|| Arc::new(Sched::new(workers)));
        let faults = Arc::new(FaultCell::default());

        let mut worker_txs = Vec::with_capacity(workers);
        let mut worker_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel();
            worker_txs.push(tx);
            worker_rxs.push(Some(rx));
        }
        let (parser_tx, parser_rx) = channel();
        let (lib_tx, lib_rx) = channel::<LibMsg>();
        let (lib_reply_tx, lib_reply_rx) = channel::<(Ticket, SegmentStore)>();

        let mut handles = Vec::with_capacity(workers);
        for (me, rx) in worker_rxs.iter_mut().enumerate() {
            let ctx = WorkerCtx {
                plan: Arc::clone(plan),
                me,
                rx: rx.take().expect("receiver unclaimed"),
                peers: worker_txs.clone(),
                parser_tx: parser_tx.clone(),
                lib_tx: lib_tx.clone(),
                config,
                memo: memo.clone(),
                memo_safe: Arc::clone(&memo_safe),
                sched: sched.clone(),
                faults: Arc::clone(&faults),
            };
            handles.push(std::thread::spawn(move || worker_main(ctx)));
        }

        let lib_handle = std::thread::spawn(move || {
            let mut ledger = SegmentLedger::new();
            while let Ok(msg) = lib_rx.recv() {
                match msg {
                    LibMsg::Register { ticket, id, text } => ledger.register(ticket, id, text),
                    LibMsg::Resolve { ticket } => {
                        if lib_reply_tx.send((ticket, ledger.resolve(ticket))).is_err() {
                            return;
                        }
                    }
                    LibMsg::Shutdown => return,
                }
            }
        });

        WorkerPool {
            plan: Arc::clone(plan),
            config,
            split,
            worker_txs,
            parser_rx,
            lib_tx,
            lib_reply_rx,
            handles,
            lib_handle: Some(lib_handle),
            next_ticket: 0,
            in_flight: VecDeque::with_capacity(depth),
            ready: VecDeque::new(),
            max_in_flight: 0,
            max_regions_in_flight: 0,
            faults,
            memo,
            memo_safe,
            sched,
        }
    }

    /// Number of persistent workers.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// The configured in-flight window depth.
    pub fn pipeline_depth(&self) -> usize {
        self.config.pipeline_depth
    }

    /// Trees currently submitted but not yet collected (evaluating or
    /// buffered as finished reports).
    pub fn pending(&self) -> usize {
        self.in_flight.len() + self.ready.len()
    }

    /// Trees currently evaluating (dispatched, not yet retired).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// The largest number of trees that were ever simultaneously in
    /// flight on this pool (since construction or the last
    /// [`WorkerPool::reset_high_water`]). Tracked by the pool itself at
    /// every dispatch — the in-flight count only rises when a job
    /// dispatches and only falls when the front retires, so the
    /// dispatch-time samples are the exact maxima, no matter how rarely
    /// a driver polls.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Region jobs currently dispatched and not yet reported done —
    /// the region-granular view of [`WorkerPool::in_flight`].
    pub fn regions_in_flight(&self) -> usize {
        self.in_flight.iter().map(|f| f.regions - f.done).sum()
    }

    /// The largest number of region jobs ever simultaneously in flight
    /// (since construction or the last
    /// [`WorkerPool::reset_high_water`]); the region-granular
    /// counterpart of [`WorkerPool::max_in_flight`].
    pub fn max_regions_in_flight(&self) -> usize {
        self.max_regions_in_flight
    }

    /// Restarts high-water tracking from the current occupancy, so a
    /// driver can report per-batch maxima from a long-lived pool
    /// instead of all-time ones. Also zeroes the steal-scheduler and
    /// fault counters, so [`WorkerPool::sched_counters`] and
    /// [`WorkerPool::fault_counters`] read per-batch.
    pub fn reset_high_water(&mut self) {
        self.max_in_flight = self.in_flight.len();
        self.max_regions_in_flight = self.regions_in_flight();
        if let Some(s) = &self.sched {
            s.reset_counters();
        }
        self.faults.reset();
    }

    /// Fault/recovery telemetry since construction or the last
    /// [`WorkerPool::reset_high_water`]. The deadline and retry fields
    /// are always zero here — they belong to the serving layer, which
    /// merges its own counts into the same struct.
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults.counters()
    }

    /// Steal-scheduler telemetry since construction or the last
    /// [`WorkerPool::reset_high_water`]; all zeros under
    /// [`SchedulerMode::Fixed`].
    pub fn sched_counters(&self) -> SchedCounters {
        self.sched
            .as_ref()
            .map(|s| s.counters())
            .unwrap_or_default()
    }

    /// The shared plan this pool evaluates against.
    pub fn plan(&self) -> &Arc<EvalPlan<V>> {
        &self.plan
    }

    /// Lifetime counter snapshot of the memo cache (None when
    /// memoization is off). Drivers diff two snapshots for per-batch
    /// deltas.
    pub fn memo_counters(&self) -> Option<MemoCounters> {
        self.memo.as_ref().map(|m| m.counters())
    }

    /// Submits one tree into the pipeline window: decomposes it (at the
    /// configured granularity), assigns the next ticket (returned, so
    /// serving layers can correlate retries) and dispatches one region
    /// job per region. If the window is full, the oldest in-flight tree
    /// is retired first (its report — or failure — is buffered for
    /// [`WorkerPool::collect`] / [`WorkerPool::take_ready`]).
    ///
    /// A ticket whose evaluation fails (cycle, plan inconsistency,
    /// contained rule panic) surfaces as a [`TicketFailure`] in
    /// submission order; the pool itself stays fully usable.
    pub fn submit(&mut self, tree: &Arc<ParseTree<V>>) -> Ticket {
        while self.in_flight.len() >= self.config.pipeline_depth {
            let retired = self.retire_front();
            self.ready.push_back(retired);
        }

        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let decomp = Arc::new(decompose_granular(
            tree,
            &self.split,
            self.plan.work_table(),
            self.config.granularity,
        ));
        let regions = decomp.len();
        let root_sym = self.plan.grammar().prod(tree.node(tree.root()).prod).lhs;
        let expected_roots = self.plan.syn_attrs(root_sym).len();

        let start = Instant::now();
        if self.sched.is_some() {
            self.seed_stealing(ticket, tree, &decomp);
        } else {
            for r in 0..regions {
                let job = WorkerMsg::Job(JobMsg {
                    ticket,
                    tree: Arc::clone(tree),
                    decomp: Arc::clone(&decomp),
                    region: r as RegionId,
                });
                // Region r of ticket t is pinned to worker
                // (r + offset(t)) mod W: a tree with more regions than
                // workers (adaptive granularity on a huge tree) spreads
                // evenly, the ticket rotation keeps consecutive small
                // trees' region 0 off one overloaded worker, and every
                // message route stays a pure function of
                // (ticket, region). Fixed-count granularity keeps the
                // paper's region-k-on-worker-k placement (offset 0).
                self.worker_txs[worker_of(&self.config, ticket, r as RegionId)]
                    .send(job)
                    .expect("worker alive");
            }
        }
        self.in_flight.push_back(InFlight {
            ticket,
            tree: Arc::clone(tree),
            decomp,
            regions,
            expected_roots,
            raw_roots: Vec::with_capacity(expected_roots),
            region_results: (0..regions).map(|_| None).collect(),
            done: 0,
            start,
            failed: None,
        });
        self.max_in_flight = self.max_in_flight.max(self.in_flight.len());
        self.max_regions_in_flight = self.max_regions_in_flight.max(self.regions_in_flight());
        ticket
    }

    /// Seeds one ticket's region jobs into the stealing scheduler:
    /// largest-estimated-work regions are placed first (LPT), each on
    /// the least-loaded worker — except that a region whose parent or
    /// child was already placed prefers that relative's worker (while
    /// the relative's load stays near the fair share), keeping
    /// boundary-attribute traffic worker-local. Every region is
    /// registered in the location table *before* any worker is woken,
    /// so the routing paths may read an absent entry as "finished".
    fn seed_stealing(&self, ticket: Ticket, tree: &Arc<ParseTree<V>>, decomp: &Arc<Decomposition>) {
        let sched = self.sched.as_ref().expect("stealing scheduler on");
        let workers = self.config.workers;
        let regions = decomp.len();
        let work: Vec<u64> = (0..regions)
            .map(|r| self.plan.region_work(tree, decomp, r as RegionId).max(1))
            .collect();
        let mut st = sched.state.lock().expect("scheduler lock");
        debug_assert_eq!(workers, st.load.len());
        debug_assert!(st.dead.iter().any(|d| !d), "at least one worker survives");
        // Dead workers sit at DEAD_LOAD, so the least-loaded choice
        // (and the locality preference's slack test) never picks them.
        let mut load = std::mem::take(&mut st.load);
        let placements = seed_placements(decomp, &work, &mut load);
        st.load = load;
        for (r, &w) in placements.iter().enumerate() {
            let rid = r as RegionId;
            st.table.insert((ticket, rid), JobLoc::Queued(w));
            st.logs.insert((ticket, rid), Vec::new());
            st.deques[w].push_back(PendingJob {
                ticket,
                region: rid,
                tree: Arc::clone(tree),
                decomp: Arc::clone(decomp),
                work: work[r],
                early: Vec::new(),
            });
        }
        drop(st);
        // Wake everyone: idle workers with empty deques can steal.
        // Killed workers' channels may be gone — that's fine.
        for tx in &self.worker_txs {
            let _ = tx.send(WorkerMsg::Wake);
        }
    }

    /// Collects the oldest uncollected tree's report or failure
    /// (submission order), blocking until it finishes. Returns `None`
    /// when nothing is pending.
    pub fn collect(&mut self) -> Option<Result<PoolReport<V>, TicketFailure>> {
        if let Some(r) = self.ready.pop_front() {
            return Some(r);
        }
        if self.in_flight.is_empty() {
            return None;
        }
        Some(self.retire_front())
    }

    /// Pops a report or failure that already retired (as submit-time
    /// backpressure or by [`WorkerPool::poll`]) without blocking on
    /// in-flight trees.
    pub fn take_ready(&mut self) -> Option<Result<PoolReport<V>, TicketFailure>> {
        self.ready.pop_front()
    }

    /// Drains worker completions without blocking: routes every queued
    /// message, retires every in-flight tree whose regions have all
    /// reported — or whose evaluation failed — (front-first, preserving
    /// submission order) into the ready buffer, and returns how many
    /// results became ready. A service loop calls this between arrivals
    /// to harvest finished requests while keeping the window topped up
    /// via [`WorkerPool::submit`].
    pub fn poll(&mut self) -> usize {
        while let Ok(msg) = self.parser_rx.try_recv() {
            self.route(msg);
        }
        let mut newly = 0;
        while self.front_complete() {
            let retired = self.retire_front();
            self.ready.push_back(retired);
            newly += 1;
        }
        newly
    }

    /// Evaluates one tree on the pool, start to finish (the one-shot
    /// path; [`super::threads::run_threads`] and single-tree drivers
    /// use this).
    ///
    /// # Panics
    ///
    /// Panics if trees are still pending from [`WorkerPool::submit`] —
    /// use [`WorkerPool::collect`] to drain the window first.
    ///
    /// # Errors
    ///
    /// Returns the [`EvalError`] of this tree's ticket if its
    /// evaluation failed. The pool stays usable either way.
    pub fn eval(&mut self, tree: &Arc<ParseTree<V>>) -> Result<PoolReport<V>, EvalError> {
        assert!(
            self.in_flight.is_empty() && self.ready.is_empty(),
            "eval requires an idle pool; drain submit/collect pipelines first"
        );
        self.submit(tree);
        self.collect()
            .expect("one tree was just submitted")
            .map_err(|f| f.error)
    }

    /// Index into `in_flight` of the entry holding `ticket`, or `None`
    /// for a stale message (the ticket already retired — e.g. a
    /// cancelled ticket's straggler region reporting Done). Tickets are
    /// assigned and retired in order, so this is a simple offset.
    fn entry_index(&self, ticket: Ticket) -> Option<usize> {
        let front = self.in_flight.front()?.ticket;
        let i = ticket.checked_sub(front)? as usize;
        (i < self.in_flight.len()).then_some(i)
    }

    /// Routes one worker message to whichever in-flight ticket it
    /// belongs to. Stale messages (retired tickets) and duplicate
    /// deliveries from recovery replay are suppressed; a region failure
    /// fails its ticket only — the ticket's remaining jobs are
    /// cancelled and the pool keeps serving every other ticket.
    fn route(&mut self, msg: ParserMsg<V>) {
        match msg {
            ParserMsg::Root {
                ticket,
                attr,
                value,
            } => {
                let Some(i) = self.entry_index(ticket) else {
                    return;
                };
                let entry = &mut self.in_flight[i];
                // A re-executed root region re-sends its root values;
                // each root attribute is unique per ticket, so presence
                // is the idempotency key.
                if entry.raw_roots.iter().any(|(a, _)| *a == attr) {
                    self.faults.dup_suppressed.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                entry.raw_roots.push((attr, value));
            }
            ParserMsg::Done {
                ticket,
                region,
                result,
            } => {
                let Some(i) = self.entry_index(ticket) else {
                    return;
                };
                let entry = &mut self.in_flight[i];
                if entry.region_results[region as usize].is_some() {
                    // Belt and braces: table ownership already keeps
                    // zombies from reporting, but a duplicate Done is
                    // harmless either way (results are deterministic).
                    self.faults.dup_suppressed.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                match result {
                    Ok(r) => {
                        entry.region_results[region as usize] = Some(r);
                        entry.done += 1;
                    }
                    Err(e) => {
                        if entry.failed.is_none() {
                            entry.failed = Some(e);
                            self.cancel_ticket(ticket);
                        }
                    }
                }
            }
        }
    }

    /// Cancels a failed ticket's remaining region jobs: purges its
    /// queued jobs, location-table entries and input logs from the
    /// stealing scheduler, and tells every worker to drop its running
    /// machines for the ticket. Their Dones will never be awaited.
    fn cancel_ticket(&mut self, ticket: Ticket) {
        if let Some(sched) = &self.sched {
            let mut st = sched.state.lock().expect("scheduler lock");
            let SchedState { deques, load, .. } = &mut *st;
            for (w, deque) in deques.iter_mut().enumerate() {
                let mut kept = VecDeque::with_capacity(deque.len());
                for job in deque.drain(..) {
                    if job.ticket == ticket {
                        load[w] = load[w].saturating_sub(job.work);
                    } else {
                        kept.push_back(job);
                    }
                }
                *deque = kept;
            }
            st.table.retain(|&(t, _), _| t != ticket);
            st.logs.retain(|&(t, _), _| t != ticket);
        }
        for tx in &self.worker_txs {
            let _ = tx.send(WorkerMsg::Cancel { ticket });
        }
    }

    /// Whether the oldest in-flight tree is retirable: all regions
    /// reported, or the ticket failed (its stragglers were cancelled
    /// and will never report).
    fn front_complete(&self) -> bool {
        self.in_flight
            .front()
            .is_some_and(|f| f.done == f.regions || f.failed.is_some())
    }

    /// Parser role for the oldest in-flight tree: drain worker messages
    /// until its regions all report (or its ticket fails), then perform
    /// the librarian's deferred resolution and assemble the report or
    /// failure.
    fn retire_front(&mut self) -> Result<PoolReport<V>, TicketFailure> {
        while !self.front_complete() {
            let msg = self.parser_rx.recv().expect("workers alive");
            self.route(msg);
        }
        if self.in_flight.front().expect("checked").failed.is_some() {
            let fl = self.in_flight.pop_front().expect("checked");
            // Keep the librarian protocol in lockstep: resolve the
            // failed ticket's registrations and discard them.
            self.lib_tx
                .send(LibMsg::Resolve { ticket: fl.ticket })
                .expect("librarian alive");
            let _ = self.lib_reply_rx.recv().expect("librarian replies");
            return Err(TicketFailure {
                ticket: fl.ticket,
                error: fl.failed.expect("checked"),
            });
        }
        Ok(self.assemble_front())
    }

    /// Retires the (complete) oldest in-flight tree: librarian
    /// resolution, root inflation, sparse store assembly.
    fn assemble_front(&mut self) -> PoolReport<V> {
        let fl = self.in_flight.pop_front().expect("checked non-empty");
        debug_assert_eq!(
            fl.raw_roots.len(),
            fl.expected_roots,
            "root attrs precede Done"
        );

        // The librarian's deferred resolution for this ticket: all of
        // its registrations were enqueued before the Dones we just
        // drained, while later tickets' registrations keep streaming.
        self.lib_tx
            .send(LibMsg::Resolve { ticket: fl.ticket })
            .expect("librarian alive");
        let (ticket, segments) = self.lib_reply_rx.recv().expect("librarian replies");
        debug_assert_eq!(ticket, fl.ticket, "resolutions are issued in order");
        let root_values: Vec<(AttrId, V)> = fl
            .raw_roots
            .iter()
            .map(|(a, v)| (*a, v.inflate(&segments)))
            .collect();
        let elapsed = fl.start.elapsed();

        // Sparse assembly: size the whole-tree store once, then map each
        // region's O(region) owned span into it through the
        // decomposition's slot layout (region order — deterministic,
        // though the spans are disjoint anyway), and finally resolve
        // segment references so the result is independent of the
        // decomposition.
        // Retire-time memo installation: every cacheable region of a
        // successfully evaluated tree deposits its owned span under its
        // input signature, so later structurally identical requests can
        // skip the machine entirely. Spans are extracted in *preorder*
        // of the subtree — arena ids are builder-dependent, preorder is
        // not.
        if let Some(memo) = &self.memo {
            let g = fl.tree.grammar();
            for (ri, res) in fl.region_results.iter().enumerate() {
                let Some((_, rstore)) = res else { continue };
                let Some((root, subtree, inh)) = region_cacheable(
                    &self.plan,
                    &self.memo_safe,
                    &fl.tree,
                    &fl.decomp,
                    ri as RegionId,
                ) else {
                    continue;
                };
                let Some(vals) = inh
                    .iter()
                    .map(|&a| rstore.get(root, a))
                    .collect::<Option<Vec<_>>>()
                else {
                    continue;
                };
                let Some(inherited) = inherited_fingerprint(vals) else {
                    continue;
                };
                let key = MemoKey { subtree, inherited };
                if memo.contains(key) {
                    continue;
                }
                let mut span = Vec::new();
                let mut bytes = 0usize;
                let mut plain = true;
                'span: for n in fl.tree.subtree(root) {
                    let sym = g.prod(fl.tree.node(n).prod).lhs;
                    for a in 0..g.attr_count(sym) {
                        let v = rstore.get(n, AttrId(a as u32)).cloned();
                        if let Some(v) = &v {
                            // A value that is not fingerprintable may
                            // hold a ticket-local segment reference;
                            // replaying it under another ticket would
                            // resolve against the wrong segment store.
                            // Skip the whole span.
                            if !v.is_fingerprintable() {
                                plain = false;
                                break 'span;
                            }
                            bytes += v.wire_size();
                        }
                        span.push(v);
                    }
                }
                if !plain {
                    continue;
                }
                memo.insert(
                    key,
                    MemoEntry {
                        span,
                        nodes: fl.tree.subtree_size(root) as u32,
                        root_prod: fl.tree.node(root).prod,
                        bytes,
                    },
                );
            }
        }

        let mut stats = EvalStats::default();
        let mut store = AttrStore::new(&fl.tree);
        for r in fl.region_results.into_iter() {
            let (s, region_store) = r.expect("every region reported");
            stats += s;
            store.absorb_region(&fl.tree, region_store);
        }
        store.inflate_all(&segments);

        PoolReport {
            ticket: fl.ticket,
            root_values,
            store,
            segments,
            stats,
            elapsed,
            regions: fl.regions,
        }
    }

    /// Injects a worker crash (the fault-tolerance test hook and the
    /// live counterpart of the simulator's crash schedule). Only
    /// meaningful under [`SchedulerMode::Stealing`], whose location
    /// table and input logs are the recovery substrate; returns `false`
    /// under fixed placement, for an out-of-range index, for an
    /// already-dead worker, or when it is the last worker alive.
    ///
    /// Recovery: under the scheduler lock, every region job living on
    /// the victim — queued in its deque or active on it — is
    /// reconstituted as a fresh pending job (subtree and decomposition
    /// from the retained in-flight entry, already-delivered boundary
    /// values replayed from the job's input log) and reseeded onto the
    /// least-loaded survivors. The victim is told to die and never
    /// claims work again. Regions that already reported Done are
    /// retired work and are not re-executed; duplicate sends from
    /// half-finished lost regions are suppressed content-keyed at
    /// delivery, so outputs stay byte-identical.
    pub fn kill_worker(&mut self, victim: usize) -> bool {
        let Some(sched) = self.sched.clone() else {
            return false;
        };
        if victim >= self.config.workers {
            return false;
        }
        {
            let mut st = sched.state.lock().expect("scheduler lock");
            if st.dead[victim] || st.dead.iter().filter(|d| !**d).count() <= 1 {
                return false;
            }
            st.dead[victim] = true;
            // Everything queued on the victim migrates as-is; every
            // job *active* on it is lost mid-run and rebuilt from its
            // input log.
            let mut lost: Vec<PendingJob<V>> = st.deques[victim].drain(..).collect();
            let actives: Vec<(Ticket, RegionId)> = st
                .table
                .iter()
                .filter_map(|(&key, loc)| match loc {
                    JobLoc::Active(w) if *w == victim => Some(key),
                    _ => None,
                })
                .collect();
            for &(ticket, region) in &actives {
                let i = self
                    .entry_index(ticket)
                    .expect("active jobs belong to in-flight tickets");
                let entry = &self.in_flight[i];
                let work = self
                    .plan
                    .region_work(&entry.tree, &entry.decomp, region)
                    .max(1);
                let early = st.logs.get(&(ticket, region)).cloned().unwrap_or_default();
                lost.push(PendingJob {
                    ticket,
                    region,
                    tree: Arc::clone(&entry.tree),
                    decomp: Arc::clone(&entry.decomp),
                    work,
                    early,
                });
            }
            st.load[victim] = DEAD_LOAD;
            // Deterministic reseed order, least-loaded survivor first.
            lost.sort_by_key(|j| (j.ticket, j.region));
            let reexecuted = lost.len() as u64;
            for job in lost {
                let w = (0..self.config.workers)
                    .filter(|&w| !st.dead[w])
                    .min_by_key(|&w| (st.load[w], w))
                    .expect("a survivor exists");
                st.load[w] += job.work;
                st.table.insert((job.ticket, job.region), JobLoc::Queued(w));
                st.deques[w].push_back(job);
            }
            self.faults.crashes.fetch_add(1, Ordering::Relaxed);
            self.faults
                .regions_reexecuted
                .fetch_add(reexecuted, Ordering::Relaxed);
        }
        let _ = self.worker_txs[victim].send(WorkerMsg::Die);
        for (w, tx) in self.worker_txs.iter().enumerate() {
            if w != victim {
                let _ = tx.send(WorkerMsg::Wake);
            }
        }
        true
    }
}

impl<V: AttrValue> Drop for WorkerPool<V> {
    fn drop(&mut self) {
        for tx in &self.worker_txs {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        let _ = self.lib_tx.send(LibMsg::Shutdown);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.lib_handle.take() {
            let _ = h.join();
        }
    }
}

impl<V: AttrValue> std::fmt::Debug for WorkerPool<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WorkerPool({} workers, depth {}, next ticket {}, {} in flight)",
            self.config.workers,
            self.config.pipeline_depth,
            self.next_ticket,
            self.in_flight.len()
        )
    }
}

/// One region job a worker is currently running (one per region
/// job assigned to this worker — possibly several per in-flight
/// ticket under adaptive granularity).
struct Running<V: AttrValue> {
    ticket: Ticket,
    region: RegionId,
    parent: Option<RegionId>,
    next_seg: u32,
    /// Estimated work — the stealing scheduler's load unit, returned to
    /// the worker's load account at completion (0 under fixed
    /// placement, which keeps no load accounts).
    work: u64,
    state: JobState<V>,
}

/// A running job's evaluation state.
///
/// `Machine` dwarfs the other variants, but it is also the common
/// case: boxing it would buy nothing (jobs sit in per-worker maps and
/// are rarely moved) while costing a pointer chase on every `drive`.
#[allow(clippy::large_enum_variant)]
enum JobState<V: AttrValue> {
    /// A memo-eligible leaf region collecting its root inherited values
    /// before probing the cache; machine construction is deferred until
    /// the probe resolves (hit: replay the cached span, miss: build the
    /// machine and feed it the collected values).
    Probing(Probe<V>),
    /// An ordinary region machine.
    Machine(Machine<V>),
    /// Transient placeholder while a probe resolves; never observed
    /// outside [`resolve_probe`].
    Resolving,
}

/// A pre-machine probe: a leaf region's only external inputs are the
/// inherited attributes of its root, so the probe parks the job until
/// they have all arrived (every inherited instance has exactly one
/// defining rule in the parent, so each *will* arrive), then forms the
/// region input signature and consults the cache.
struct Probe<V: AttrValue> {
    tree: Arc<ParseTree<V>>,
    decomp: Arc<Decomposition>,
    /// The region root node.
    root: NodeId,
    /// Exact subtree hash at the root.
    subtree: u64,
    /// Root inherited attributes, ascending `AttrId` order.
    needed: Vec<AttrId>,
    /// Collected values, aligned with `needed`.
    got: Vec<Option<V>>,
    filled: usize,
}

/// What [`drive`] left the job in.
enum Drive {
    /// Out of ready work, waiting on attribute messages.
    Starved,
    /// Step budget exhausted with ready work left (a younger ticket's
    /// machine yielding so the worker can poll for older work).
    Yielded,
    /// Ran to completion (`None`) or failed (`Some(error)`).
    Finished(Option<EvalError>),
    /// A memo hit replayed the region; Done is already sent, the entry
    /// just needs dropping.
    Replayed,
    /// A send failed: the pool is gone, terminate the worker.
    Dead,
}

/// Decides whether `region` of `tree` is memoizable, and under what
/// signature inputs. Cacheable regions are **leaf** regions (no
/// boundary children — their owned span is their whole subtree and
/// their only external inputs are the root's inherited values) whose
/// root symbol is memo-safe (see [`memo_safety`]; the tree root is
/// trivially safe, it awaits nothing) and whose subtree hash is exact.
/// Returns the region root, its subtree hash, and the root inherited
/// attributes in ascending `AttrId` order (the fingerprint order both
/// the probe and the retire-time install use).
fn region_cacheable<V: AttrValue>(
    plan: &EvalPlan<V>,
    memo_safe: &[bool],
    tree: &ParseTree<V>,
    decomp: &Decomposition,
    region: RegionId,
) -> Option<(NodeId, u64, Vec<AttrId>)> {
    let map = decomp.slot_map();
    if map.total_slots(region) != map.owned_slots(region) {
        return None; // boundary children: an interior region
    }
    let root = decomp.regions[region as usize].root;
    let root_sym = plan.grammar().prod(tree.node(root).prod).lhs;
    if root != tree.root() && !memo_safe.get(root_sym.0 as usize).copied().unwrap_or(false) {
        return None;
    }
    let subtree = tree.subtree_hash(root)?;
    let mut inh: Vec<AttrId> = if root == tree.root() {
        Vec::new() // machines await no inherited values at the tree root
    } else {
        plan.inh_attrs(root_sym).to_vec()
    };
    inh.sort_unstable_by_key(|a| a.0);
    Some((root, subtree, inh))
}

/// How many scheduler steps a *non-oldest* machine may run before the
/// worker polls the channel for values that unblock an older job.
/// The oldest machine runs unbudgeted — nothing can preempt it.
const YIELD_STEPS: usize = 64;

/// The persistent worker loop. Machines for every region job assigned
/// to this worker run **multiplexed**: jobs activate the moment they
/// arrive, and whenever the oldest job's machine starves (blocked on
/// attribute messages from a straggling peer region), the worker steps
/// the next job's machine instead of idling — this is where region-
/// granular scheduling recovers both the blocked-straggler time an
/// epoch barrier wasted *and* the head-of-line time a huge tree's
/// longest region would otherwise impose. Older jobs are always
/// preferred: younger machines run on a small step budget and the
/// channel is polled between bursts, so a value that unblocks an older
/// machine preempts younger work within [`YIELD_STEPS`] scheduler
/// steps and pipelining never materially delays the tree the parser
/// will read next.
fn worker_main<V: AttrValue>(ctx: WorkerCtx<V>) {
    // Recycled construction/evaluation buffers, one per concurrently
    // running machine (bounded by the window depth × regions per
    // ticket on this worker).
    let mut scratches: Vec<MachineScratch<V>> = Vec::new();
    // Attribute values whose (ticket, region) has no running machine
    // yet.
    let mut parked_attrs: Vec<(Ticket, RegionId, NodeId, AttrId, V)> = Vec::new();
    // Active machines in job order (jobs arrive in (ticket, region)
    // order).
    let mut running: Vec<Running<V>> = Vec::new();
    loop {
        // Step machines oldest-first. (Co-located machines may feed
        // each other — under adaptive granularity one worker can host
        // parent and child regions of the same ticket — but every send
        // goes through a channel, self-sends included, so the drain
        // between bursts delivers them and the pass jumps back whenever
        // a machine at or before the cursor is fed.)
        let mut i = 0;
        while i < running.len() {
            let budget = if i == 0 { usize::MAX } else { YIELD_STEPS };
            let outcome = drive(&ctx, &mut running[i], budget, &mut scratches);
            match outcome {
                Drive::Dead => return,
                Drive::Replayed => {
                    // Memo hit: the probe already sent the root values
                    // and Done. The next job shifted into `i`.
                    let done = running.remove(i);
                    retire_sched(&ctx, &done);
                }
                Drive::Finished(err) => {
                    let done = running.remove(i);
                    let owned = retire_sched(&ctx, &done);
                    let JobState::Machine(machine) = done.state else {
                        unreachable!("only machines finish");
                    };
                    let (store, stats, sc) = machine.recycle();
                    scratches.push(sc);
                    // A job this worker lost to crash recovery (it was
                    // reseeded elsewhere while we were still driving
                    // it) must not report: the reseeded copy owns the
                    // Done now.
                    if owned {
                        let result = match err {
                            Some(e) => Err(e),
                            None => Ok((stats, store)),
                        };
                        if ctx
                            .parser_tx
                            .send(ParserMsg::Done {
                                ticket: done.ticket,
                                region: done.region,
                                result,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    // The next machine shifted into `i`; re-drive it.
                }
                Drive::Starved | Drive::Yielded => {
                    // Poll before sinking more time into this or a
                    // younger machine: a queued value for an older
                    // machine must run first.
                    let mut fed = usize::MAX;
                    loop {
                        match ctx.rx.try_recv() {
                            Err(_) => break,
                            Ok(m) => match absorb(
                                &ctx,
                                m,
                                &mut running,
                                &mut parked_attrs,
                                &mut scratches,
                            ) {
                                Absorbed::Shutdown => return,
                                Absorbed::Fed(idx) => fed = fed.min(idx),
                                // A cancellation shifted `running`
                                // under the cursor: restart the pass so
                                // no machine is skipped.
                                Absorbed::Mutated => fed = 0,
                                Absorbed::Other => {}
                            },
                        }
                    }
                    if fed <= i {
                        i = fed; // that machine (possibly this one) can run again
                    } else if matches!(outcome, Drive::Starved) {
                        i += 1;
                    }
                    // Yielded and nothing at-or-before the cursor fed:
                    // keep driving the same machine.
                }
            }
        }
        // Everything starved (or no machines). Drain the channel
        // without blocking first: a queued message may feed a starved
        // machine or (fixed placement) activate a job.
        let mut absorbed = false;
        while let Ok(m) = ctx.rx.try_recv() {
            match absorb(&ctx, m, &mut running, &mut parked_attrs, &mut scratches) {
                Absorbed::Shutdown => return,
                _ => absorbed = true,
            }
        }
        if absorbed {
            continue;
        }
        // Stealing scheduler: pull pending work — own deque first,
        // then the most-loaded victim — before going idle.
        if claim_or_steal(&ctx, &mut running, &mut scratches) {
            continue;
        }
        // Idle: block for one message.
        match ctx.rx.recv() {
            Err(_) => return, // pool dropped
            Ok(m) => {
                if matches!(
                    absorb(&ctx, m, &mut running, &mut parked_attrs, &mut scratches),
                    Absorbed::Shutdown
                ) {
                    return;
                }
            }
        }
    }
}

/// Claims work for an idle worker under the stealing scheduler: the
/// front of its own deque (oldest seeded job), else the **largest**
/// pending job of the most-loaded victim, searched from the back of
/// the victim's deque. Returns `false` when no pending job exists
/// anywhere (or under fixed placement, which has no deques).
fn claim_or_steal<V: AttrValue>(
    ctx: &WorkerCtx<V>,
    running: &mut Vec<Running<V>>,
    scratches: &mut Vec<MachineScratch<V>>,
) -> bool {
    let Some(sched) = &ctx.sched else {
        return false;
    };
    let claimed = {
        let mut st = sched.state.lock().expect("scheduler lock");
        // A worker marked dead is between the crash injection and its
        // Die message: it must not claim or steal — its jobs were
        // already reseeded and anything it grabbed would be lost too.
        if st.dead[ctx.me] {
            return false;
        }
        let job = match st.deques[ctx.me].pop_front() {
            Some(job) => Some(job),
            None => {
                let victim = (0..st.deques.len())
                    .filter(|&w| !st.deques[w].is_empty())
                    .max_by_key(|&w| (st.load[w], w));
                victim.and_then(|v| {
                    let (mut best, mut best_work) = (None, 0u64);
                    for (i, j) in st.deques[v].iter().enumerate().rev() {
                        if j.work > best_work {
                            (best, best_work) = (Some(i), j.work);
                        }
                    }
                    let job = st.deques[v].remove(best?).expect("index in range");
                    st.load[v] = st.load[v].saturating_sub(job.work);
                    st.load[ctx.me] += job.work;
                    sched.steals.fetch_add(1, Ordering::Relaxed);
                    sched
                        .migrated_attrs
                        .fetch_add(job.early.len() as u64, Ordering::Relaxed);
                    Some(job)
                })
            }
        };
        if let Some(j) = &job {
            // Active jobs never migrate: routing from here on is a
            // plain channel send to this worker.
            st.table
                .insert((j.ticket, j.region), JobLoc::Active(ctx.me));
        }
        job
    };
    match claimed {
        Some(job) => {
            activate(ctx, job, running, scratches);
            true
        }
        None => false,
    }
}

/// Activates a claimed pending job on this worker: builds its probe or
/// machine (exactly as the fixed path does on `Job` arrival), replays
/// the early-arrival values that traveled with it (which is how memo
/// `Probing` jobs survive migration — the probe forms *after* the
/// migrated values land), and inserts it into `running` in
/// `(ticket, region)` order: stolen jobs activate out of order, and
/// the drive loop's oldest-first preference keys off that order.
fn activate<V: AttrValue>(
    ctx: &WorkerCtx<V>,
    job: PendingJob<V>,
    running: &mut Vec<Running<V>>,
    scratches: &mut Vec<MachineScratch<V>>,
) {
    let PendingJob {
        ticket,
        region,
        tree,
        decomp,
        work,
        early,
    } = job;
    let parent = decomp.regions[region as usize].parent;
    let state = initial_state(ctx, tree, decomp, region, scratches);
    let mut entry = Running {
        ticket,
        region,
        parent,
        next_seg: 0,
        work,
        state,
    };
    for (node, attr, value) in early {
        feed(&mut entry, node, attr, value);
    }
    let pos = running.partition_point(|r| (r.ticket, r.region) < (ticket, region));
    running.insert(pos, entry);
}

/// Clears a finished job out of the stealing scheduler's shared state
/// and reports whether this worker still *owned* the job. Ownership is
/// the location table saying `Active(me)`: crash recovery may have
/// reseeded the job elsewhere while this (about-to-die) worker was
/// still driving it, and a cancellation may have purged it — in either
/// case the entry, and the right to send Done, belong to someone else.
/// The worker's load account is settled regardless, and an owned
/// retirement also drops the job's input log. Always "owned" under
/// fixed placement (no scheduler state, no recovery).
fn retire_sched<V: AttrValue>(ctx: &WorkerCtx<V>, done: &Running<V>) -> bool {
    let Some(sched) = &ctx.sched else {
        return true;
    };
    let mut st = sched.state.lock().expect("scheduler lock");
    st.load[ctx.me] = st.load[ctx.me].saturating_sub(done.work);
    match st.table.get(&(done.ticket, done.region)) {
        Some(JobLoc::Active(w)) if *w == ctx.me => {
            st.table.remove(&(done.ticket, done.region));
            st.logs.remove(&(done.ticket, done.region));
            true
        }
        _ => false,
    }
}

/// What [`absorb`] did with a message.
enum Absorbed {
    /// Shutdown (or an injected Die) received: terminate the worker.
    Shutdown,
    /// An attribute value was provided to the running machine at this
    /// index (the caller jumps back if it is older than its cursor).
    Fed(usize),
    /// Running jobs were removed (a ticket cancellation): indices
    /// shifted, so the caller must restart its drive pass.
    Mutated,
    /// Job activated, value parked or dropped.
    Other,
}

/// Feeds one attribute value to a running job: machines get a
/// `provide`, probes collect their root inherited values.
fn feed<V: AttrValue>(r: &mut Running<V>, node: NodeId, attr: AttrId, value: V) {
    match &mut r.state {
        JobState::Machine(m) => m.provide(node, attr, value),
        JobState::Probing(p) => {
            debug_assert_eq!(
                node, p.root,
                "a leaf region only receives its root's inherited values"
            );
            if let Some(i) = p.needed.iter().position(|&a| a == attr) {
                if p.got[i].is_none() {
                    p.got[i] = Some(value);
                    p.filled += 1;
                }
            }
        }
        JobState::Resolving => unreachable!("transient state"),
    }
}

/// Routes one incoming message: activates jobs, feeds attribute values
/// to their `(ticket, region)` machine (parking values whose machine
/// does not exist yet, dropping values for already-finished jobs).
fn absorb<V: AttrValue>(
    ctx: &WorkerCtx<V>,
    msg: WorkerMsg<V>,
    running: &mut Vec<Running<V>>,
    parked_attrs: &mut Vec<(Ticket, RegionId, NodeId, AttrId, V)>,
    scratches: &mut Vec<MachineScratch<V>>,
) -> Absorbed {
    match msg {
        WorkerMsg::Shutdown => Absorbed::Shutdown,
        // An injected crash: abandon every machine without reporting —
        // the pool already reseeded this worker's jobs onto survivors.
        WorkerMsg::Die => Absorbed::Shutdown,
        WorkerMsg::Wake => Absorbed::Other,
        WorkerMsg::Cancel { ticket } => {
            let before = running.len();
            let mut i = 0;
            while i < running.len() {
                if running[i].ticket == ticket {
                    let dropped = running.remove(i);
                    retire_sched(ctx, &dropped);
                } else {
                    i += 1;
                }
            }
            parked_attrs.retain(|&(t, ..)| t != ticket);
            if running.len() < before {
                Absorbed::Mutated
            } else {
                Absorbed::Other
            }
        }
        WorkerMsg::Attr {
            ticket,
            region,
            node,
            attr,
            value,
        } => {
            match running
                .iter_mut()
                .position(|r| r.ticket == ticket && r.region == region)
            {
                Some(idx) => {
                    feed(&mut running[idx], node, attr, value);
                    Absorbed::Fed(idx)
                }
                None => {
                    // Under stealing, a channel-sent value was routed
                    // while the job was Active here — not in `running`
                    // means it finished; the value is stale. Under
                    // fixed placement the job may simply not have
                    // arrived yet (replayed at activation; pruned when
                    // a later job proves it finished).
                    if ctx.sched.is_none() {
                        parked_attrs.push((ticket, region, node, attr, value));
                    }
                    Absorbed::Other
                }
            }
        }
        WorkerMsg::Job(job) => {
            let JobMsg {
                ticket,
                tree,
                decomp,
                region,
            } = job;
            debug_assert!(
                running
                    .last()
                    .is_none_or(|r| (r.ticket, r.region) < (ticket, region)),
                "jobs arrive in (ticket, region) order"
            );
            let parent = decomp.regions[region as usize].parent;
            let state = initial_state(ctx, tree, decomp, region, scratches);
            let mut entry = Running {
                ticket,
                region,
                parent,
                next_seg: 0,
                work: 0,
                state,
            };
            // Replay values that raced ahead of this job; prune values
            // for jobs that can no longer have a machine (lexically
            // older than this job, not running — i.e. finished).
            let mut i = 0;
            while i < parked_attrs.len() {
                let (t, q) = (parked_attrs[i].0, parked_attrs[i].1);
                if (t, q) == (ticket, region) {
                    let (_, _, node, attr, value) = parked_attrs.swap_remove(i);
                    feed(&mut entry, node, attr, value);
                } else if (t, q) < (ticket, region)
                    && !running.iter().any(|r| r.ticket == t && r.region == q)
                {
                    parked_attrs.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            running.push(entry);
            Absorbed::Other
        }
    }
}

/// Builds the initial evaluation state for one region job: a probe for
/// memo-eligible leaf regions whose subtree the cache has seen, a
/// machine otherwise. Holding a region for its root inherited values
/// costs parallelism, so the hold is only taken when the cache has
/// seen this subtree at all — a never-seen subtree (counted as a miss)
/// evaluates normally and the retire path installs it for next time.
fn initial_state<V: AttrValue>(
    ctx: &WorkerCtx<V>,
    tree: Arc<ParseTree<V>>,
    decomp: Arc<Decomposition>,
    region: RegionId,
    scratches: &mut Vec<MachineScratch<V>>,
) -> JobState<V> {
    let cacheable = ctx.memo.as_ref().and_then(|m| {
        let c = region_cacheable(&ctx.plan, &ctx.memo_safe, &tree, &decomp, region)?;
        m.has_subtree(c.1).then_some(c)
    });
    match cacheable {
        Some((root, subtree, needed)) => JobState::Probing(Probe {
            got: vec![None; needed.len()],
            filled: 0,
            tree,
            decomp,
            root,
            subtree,
            needed,
        }),
        None => {
            let scratch = scratches.pop().unwrap_or_default();
            JobState::Machine(Machine::from_plan(
                &ctx.plan,
                &tree,
                &decomp,
                region,
                ctx.config.mode,
                scratch,
            ))
        }
    }
}

/// What [`resolve_probe`] decided.
enum ProbeOutcome {
    /// Cache hit: span replayed, root values and Done sent.
    Replayed,
    /// Cache miss: the job's state is now a machine fed with the
    /// collected inherited values — drive it.
    Miss,
    /// A send failed: the pool is gone.
    Dead,
}

/// Resolves a completed probe: forms the region input signature,
/// consults the cache, and either replays the cached span (sending the
/// root's synthesized values upward exactly as a machine would on fill,
/// then Done) or falls back to building the machine and feeding it the
/// collected inherited values.
fn resolve_probe<V: AttrValue>(
    ctx: &WorkerCtx<V>,
    r: &mut Running<V>,
    scratches: &mut Vec<MachineScratch<V>>,
) -> ProbeOutcome {
    let JobState::Probing(p) = std::mem::replace(&mut r.state, JobState::Resolving) else {
        unreachable!("caller checked Probing");
    };
    let memo = ctx.memo.as_ref().expect("probing implies a cache");
    let nodes = p.tree.subtree_size(p.root) as u32;
    let root_prod = p.tree.node(p.root).prod;
    let fingerprint =
        inherited_fingerprint(p.got.iter().map(|v| v.as_ref().expect("probe complete")));
    let mut hit = fingerprint.and_then(|inherited| {
        memo.probe(
            MemoKey {
                subtree: p.subtree,
                inherited,
            },
            nodes,
            root_prod,
        )
    });

    if let Some(entry) = hit.take() {
        // Replay: fill a fresh region store from the cached preorder
        // span. The walk is over *this* tree's subtree — structurally
        // identical to the cached one, but arena ids may differ.
        let g = p.tree.grammar();
        let mut store = RegionStore::new(p.decomp.slot_map(), r.region);
        let mut vals = entry.span.into_iter();
        let mut complete = true;
        'fill: for n in p.tree.subtree(p.root) {
            let sym = g.prod(p.tree.node(n).prod).lhs;
            for a in 0..g.attr_count(sym) {
                let Some(v) = vals.next() else {
                    complete = false;
                    break 'fill;
                };
                if let Some(v) = v {
                    store.set(n, AttrId(a as u32), v);
                }
            }
        }
        if complete && vals.next().is_none() {
            // A probe that lost ownership (its job was reseeded by
            // crash recovery or cancelled) must not report — the
            // owning copy will.
            if !still_owned(ctx, r.ticket, r.region) {
                return ProbeOutcome::Replayed;
            }
            let root_sym = g.prod(root_prod).lhs;
            for &a in ctx.plan.syn_attrs(root_sym) {
                let Some(v) = store.get(p.root, a).cloned() else {
                    continue;
                };
                let sent = match r.parent {
                    None => ctx
                        .parser_tx
                        .send(ParserMsg::Root {
                            ticket: r.ticket,
                            attr: a,
                            value: v,
                        })
                        .is_ok(),
                    Some(q) => send_attr(ctx, r.ticket, q, p.root, a, v),
                };
                if !sent {
                    return ProbeOutcome::Dead;
                }
            }
            let done = ctx.parser_tx.send(ParserMsg::Done {
                ticket: r.ticket,
                region: r.region,
                result: Ok((EvalStats::default(), store)),
            });
            return if done.is_ok() {
                ProbeOutcome::Replayed
            } else {
                ProbeOutcome::Dead
            };
        }
        // Span shape disagreed with this subtree (a hash collision the
        // sanity fields missed): evaluate fresh.
    }

    let scratch = scratches.pop().unwrap_or_default();
    let mut machine = Machine::from_plan(
        &ctx.plan,
        &p.tree,
        &p.decomp,
        r.region,
        ctx.config.mode,
        scratch,
    );
    for (&attr, v) in p.needed.iter().zip(p.got) {
        if let Some(v) = v {
            machine.provide(p.root, attr, v);
        }
    }
    r.state = JobState::Machine(machine);
    ProbeOutcome::Miss
}

/// Steps one job until it starves, finishes, fails, or exhausts
/// `budget` scheduler steps ([`Drive::Yielded`], so the worker can poll
/// for older-ticket work), forwarding its sends immediately (peers
/// block on these values; see `super::threads` for why batching would
/// serialize the pipeline). Probing jobs resolve here the moment their
/// last inherited value has arrived.
fn drive<V: AttrValue>(
    ctx: &WorkerCtx<V>,
    r: &mut Running<V>,
    budget: usize,
    scratches: &mut Vec<MachineScratch<V>>,
) -> Drive {
    if let JobState::Probing(p) = &r.state {
        if p.filled < p.needed.len() {
            return Drive::Starved;
        }
        match resolve_probe(ctx, r, scratches) {
            ProbeOutcome::Replayed => return Drive::Replayed,
            ProbeOutcome::Dead => return Drive::Dead,
            ProbeOutcome::Miss => {}
        }
    }
    let Running {
        ticket,
        region,
        parent,
        next_seg,
        state,
        work: _,
    } = r;
    let (ticket, region, parent) = (*ticket, *region, *parent);
    let JobState::Machine(machine) = state else {
        unreachable!("probes resolved above");
    };
    for _ in 0..budget {
        // Contain semantic-rule panics: a buggy rule fails its own
        // ticket (surfaced as `EvalError::RulePanic` through the normal
        // Done path) instead of unwinding the worker thread and
        // wedging the whole pool.
        let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| machine.step()));
        let stepped = match stepped {
            Ok(s) => s,
            Err(payload) => {
                ctx.faults.panics_contained.fetch_add(1, Ordering::Relaxed);
                return Drive::Finished(Some(EvalError::RulePanic {
                    message: panic_message(payload.as_ref()),
                }));
            }
        };
        match stepped {
            Err(e) => return Drive::Finished(Some(e)),
            Ok(None) => {
                if machine.is_done() {
                    return Drive::Finished(None);
                }
                // A machine with no ready task, unexecuted tasks left
                // and *no awaited external instance* can never be fed
                // again — only `provide` enqueues new ready work, and
                // the awaited set is fixed at construction. That is a
                // dependency cycle local to this region; surface it
                // instead of starving the pool forever. (A cycle spread
                // across regions still deadlocks: every machine then
                // awaits a peer and no local check can see the loop.)
                if machine.awaiting() == 0 {
                    return Drive::Finished(Some(EvalError::Cycle {
                        stuck: machine.pending(),
                    }));
                }
                return Drive::Starved;
            }
            Ok(Some(outcome)) => {
                for send in outcome.sends {
                    if !route_send(ctx, ticket, region, parent, next_seg, send) {
                        return Drive::Dead;
                    }
                }
            }
        }
    }
    Drive::Yielded
}

/// Whether this worker still owns the `(ticket, region)` job in the
/// stealing scheduler's location table (trivially true under fixed
/// placement). See [`retire_sched`] for why ownership gates reporting.
fn still_owned<V: AttrValue>(ctx: &WorkerCtx<V>, ticket: Ticket, region: RegionId) -> bool {
    match &ctx.sched {
        None => true,
        Some(sched) => {
            let st = sched.state.lock().expect("scheduler lock");
            matches!(st.table.get(&(ticket, region)), Some(JobLoc::Active(w)) if *w == ctx.me)
        }
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Forwards one attribute send, deflating librarian-bound string values
/// into streaming ticket-tagged segment registrations (§4.2's
/// registration phase). Returns `false` when the pool is gone.
fn route_send<V: AttrValue>(
    ctx: &WorkerCtx<V>,
    ticket: Ticket,
    region: RegionId,
    parent: Option<RegionId>,
    next_seg: &mut u32,
    send: AttrMsg<V>,
) -> bool {
    let upward = match send.to {
        SendTarget::Parser => true,
        SendTarget::Region(q) => Some(q) == parent,
    };
    let mut value = send.value;
    if upward && ctx.config.result == ResultPropagation::Librarian {
        let deflated = value.deflate(&mut |text: Rope| {
            let id = SegmentId::from_parts(region, *next_seg);
            *next_seg += 1;
            let _ = ctx.lib_tx.send(LibMsg::Register { ticket, id, text });
            id
        });
        if let Some(d) = deflated {
            value = d;
        }
    }
    match send.to {
        SendTarget::Parser => ctx
            .parser_tx
            .send(ParserMsg::Root {
                ticket,
                attr: send.attr,
                value,
            })
            .is_ok(),
        SendTarget::Region(q) => send_attr(ctx, ticket, q, send.node, send.attr, value),
    }
}

/// Delivers one boundary attribute to region `to` of `ticket`. Fixed
/// placement computes the destination worker with [`worker_of`] — the
/// same pinning `submit` used to dispatch the job. The stealing
/// scheduler looks the job up in the location table instead: a
/// still-queued job collects the value on its deque entry (so a steal
/// migrates the value with the job), an active job gets a channel send
/// to the worker that claimed it, and an absent entry means the job
/// already finished — the machine completed without the value, so it
/// is dropped (`submit` registers every region of a ticket before any
/// of its machines can send, so "absent" can never mean "not yet
/// seeded"). Returns `false` when the pool is gone.
fn send_attr<V: AttrValue>(
    ctx: &WorkerCtx<V>,
    ticket: Ticket,
    to: RegionId,
    node: NodeId,
    attr: AttrId,
    value: V,
) -> bool {
    let Some(sched) = &ctx.sched else {
        return ctx.peers[worker_of(&ctx.config, ticket, to)]
            .send(WorkerMsg::Attr {
                ticket,
                region: to,
                node,
                attr,
                value,
            })
            .is_ok();
    };
    let mut st = sched.state.lock().expect("scheduler lock");
    let Some(loc) = st.table.get(&(ticket, to)).copied() else {
        return true;
    };
    // Idempotent delivery: every value delivered to a live job is
    // appended to its input log first. A `(node, attr)` already in the
    // log is a duplicate — a re-executed producer replaying its sends —
    // and is suppressed, so recovery cannot double-feed a machine. Each
    // boundary instance has exactly one defining rule, so content is
    // deterministic and the first delivery is as good as any.
    let log = st.logs.entry((ticket, to)).or_default();
    if log.iter().any(|&(n, a, _)| n == node && a == attr) {
        drop(st);
        ctx.faults.dup_suppressed.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    log.push((node, attr, value.clone()));
    match loc {
        JobLoc::Queued(w) => {
            let pending = st.deques[w]
                .iter_mut()
                .find(|j| j.ticket == ticket && j.region == to)
                .expect("queued jobs live in their worker's deque");
            pending.early.push((node, attr, value));
            drop(st);
            sched.count_send(w == ctx.me);
            true
        }
        JobLoc::Active(w) => {
            drop(st);
            sched.count_send(w == ctx.me);
            ctx.peers[w]
                .send(WorkerMsg::Attr {
                    ticket,
                    region: to,
                    node,
                    attr,
                    value,
                })
                .is_ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::dynamic_eval;
    use crate::grammar::{AttrId, GrammarBuilder};
    use crate::tree::TreeBuilder;
    use crate::value::Value;

    fn fixture(n: usize) -> (Arc<ParseTree<Value>>, Arc<EvalPlan<Value>>, AttrId) {
        let (trees, plan, out) = fixture_trees(&[n]);
        (trees.into_iter().next().unwrap(), plan, out)
    }

    /// One splittable grammar, many chain trees of the given lengths.
    #[allow(clippy::type_complexity)]
    fn fixture_trees(
        sizes: &[usize],
    ) -> (Vec<Arc<ParseTree<Value>>>, Arc<EvalPlan<Value>>, AttrId) {
        let mut g = GrammarBuilder::<Value>::new();
        let s = g.nonterminal("S");
        let l = g.nonterminal("stmts");
        let out = g.synthesized(s, "code");
        let decls = g.synthesized(l, "decls");
        let env = g.inherited(l, "env");
        let code = g.synthesized(l, "code");
        g.mark_split(l, 4);
        let top = g.production("top", s, [l]);
        g.rule(top, (1, env), [(1, decls)], |a| a[0].clone());
        g.rule(top, (0, out), [(1, code)], |a| a[0].clone());
        let cons = g.production("cons", l, [l]);
        g.rule(cons, (0, decls), [(1, decls)], |a| {
            Value::Int(a[0].as_int().unwrap() + 1)
        });
        g.rule(cons, (1, env), [(0, env)], |a| a[0].clone());
        g.rule(cons, (0, code), [(1, code), (0, env)], |a| {
            let line = format!("op {}\n", a[1].as_int().unwrap());
            Value::Rope(Rope::from(line).concat(a[0].as_rope().unwrap()))
        });
        let nil = g.production("nil", l, []);
        g.rule(nil, (0, decls), [], |_| Value::Int(0));
        g.rule(nil, (0, code), [], |_| Value::Rope(Rope::new()));
        let grammar = Arc::new(g.build(s).unwrap());
        let plan = Arc::new(EvalPlan::analyze(&grammar));
        let trees = sizes
            .iter()
            .map(|&n| {
                let mut tb = TreeBuilder::new(&grammar);
                let mut tail = tb.leaf(nil);
                for _ in 0..n {
                    tail = tb.node(cons, [tail]);
                }
                let root = tb.node(top, [tail]);
                Arc::new(tb.finish(root).unwrap())
            })
            .collect();
        (trees, plan, out)
    }

    fn root_rope(report: &PoolReport<Value>, out: AttrId) -> Rope {
        report
            .root_values
            .iter()
            .find(|(a, _)| *a == out)
            .and_then(|(_, v)| v.as_rope().cloned())
            .unwrap()
    }

    #[test]
    fn pool_reused_across_trees_matches_sequential() {
        let (tree, plan, out) = fixture(64);
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        let want = dstore
            .get(tree.root(), out)
            .and_then(|v| v.as_rope().cloned())
            .unwrap();
        let mut pool = WorkerPool::new(&plan, PoolConfig::combined(3));
        // Same pool, several trees in a row (the batched path).
        for round in 0..4 {
            let report = pool.eval(&tree).unwrap();
            let got = root_rope(&report, out);
            assert!(got.content_eq(&want), "round {round}");
            assert!(report.regions > 1, "round {round}: tree was split");
            assert_eq!(report.store.filled(), report.store.len());
            assert_eq!(report.ticket, round as Ticket);
        }
    }

    #[test]
    fn pool_store_is_decomposition_independent() {
        let (tree, plan, _) = fixture(48);
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        for workers in [1, 2, 4] {
            let mut pool = WorkerPool::new(&plan, PoolConfig::combined(workers));
            let report = pool.eval(&tree).unwrap();
            for node in tree.node_ids() {
                let sym = tree.grammar().prod(tree.node(node).prod).lhs;
                for a in 0..tree.grammar().attr_count(sym) {
                    let attr = AttrId(a as u32);
                    assert_eq!(
                        report.store.get(node, attr),
                        dstore.get(node, attr),
                        "workers={workers} node={node:?} attr={attr:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pool_works_in_dynamic_mode_with_naive_propagation() {
        let (tree, plan, out) = fixture(32);
        let config = PoolConfig {
            mode: MachineMode::Dynamic,
            result: ResultPropagation::Naive,
            ..PoolConfig::combined(3)
        };
        let mut pool = WorkerPool::new(&plan, config);
        let report = pool.eval(&tree).unwrap();
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        let want = dstore.get(tree.root(), out).unwrap();
        let got = &report
            .root_values
            .iter()
            .find(|(a, _)| *a == out)
            .unwrap()
            .1;
        assert_eq!(got, want);
        assert_eq!(report.stats.static_applied, 0);
    }

    #[test]
    fn pipelined_submit_collect_preserves_order_and_results() {
        let sizes = [48usize, 5, 33, 17, 64, 2, 21];
        let (trees, plan, out) = fixture_trees(&sizes);
        for depth in [1usize, 2, 4] {
            let mut pool =
                WorkerPool::new(&plan, PoolConfig::combined(3).with_pipeline_depth(depth));
            let mut reports = Vec::new();
            for tree in &trees {
                pool.submit(tree);
            }
            assert!(pool.pending() == trees.len());
            while let Some(r) = pool.collect().map(|r| r.expect("evaluation succeeds")) {
                reports.push(r);
            }
            assert_eq!(reports.len(), trees.len());
            assert!(pool.max_in_flight() <= depth);
            assert_eq!(pool.max_in_flight(), depth.min(trees.len()));
            for ((tree, report), (i, _)) in trees.iter().zip(&reports).zip(sizes.iter().enumerate())
            {
                assert_eq!(report.ticket, i as Ticket, "reports in submission order");
                let (dstore, _) = dynamic_eval(tree).unwrap();
                let want = dstore
                    .get(tree.root(), out)
                    .and_then(|v| v.as_rope().cloned())
                    .unwrap();
                assert!(
                    root_rope(report, out).content_eq(&want),
                    "depth={depth} tree {i}"
                );
                assert_eq!(report.store.filled(), report.store.len());
            }
        }
    }

    #[test]
    fn adaptive_granularity_runs_more_regions_than_workers() {
        let (tree, plan, out) = fixture(96);
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        let want = dstore
            .get(tree.root(), out)
            .and_then(|v| v.as_rope().cloned())
            .unwrap();
        let budget = (plan.tree_work(&tree) / 8).max(1);
        for workers in [1usize, 2, 3] {
            let mut pool = WorkerPool::new(&plan, PoolConfig::adaptive(workers, budget));
            let report = pool.eval(&tree).unwrap();
            assert!(
                report.regions > workers,
                "workers={workers}: {} regions should exceed the worker park",
                report.regions
            );
            assert!(
                root_rope(&report, out).content_eq(&want),
                "workers={workers}"
            );
            assert_eq!(report.store.filled(), report.store.len());
        }
    }

    #[test]
    fn adaptive_granularity_is_decomposition_equivalent_across_depths() {
        let sizes = [120usize, 7, 64, 3, 96];
        let (trees, plan, out) = fixture_trees(&sizes);
        let budget = (plan.tree_work(&trees[0]) / 6).max(1);
        for depth in [1usize, 2, 4] {
            let mut pool = WorkerPool::new(
                &plan,
                PoolConfig::adaptive(2, budget).with_pipeline_depth(depth),
            );
            for tree in &trees {
                pool.submit(tree);
            }
            assert!(pool.regions_in_flight() > 0);
            let mut reports = Vec::new();
            while let Some(r) = pool.collect().map(|r| r.expect("evaluation succeeds")) {
                reports.push(r);
            }
            assert!(
                pool.max_regions_in_flight() >= pool.max_in_flight(),
                "regions in flight at least one per tree"
            );
            for (i, (tree, report)) in trees.iter().zip(&reports).enumerate() {
                let (dstore, _) = dynamic_eval(tree).unwrap();
                let want = dstore
                    .get(tree.root(), out)
                    .and_then(|v| v.as_rope().cloned())
                    .unwrap();
                assert!(
                    root_rope(report, out).content_eq(&want),
                    "depth={depth} tree {i}"
                );
                assert_eq!(report.store.filled(), report.store.len());
            }
        }
    }

    #[test]
    fn literal_zero_config_is_normalized_at_construction() {
        let (tree, plan, out) = fixture(16);
        // Bypass the builder helpers entirely: a literal config with
        // meaningless zeros must still come out clamped, and the
        // accessors must report the *effective* values.
        let config = PoolConfig {
            workers: 0,
            pipeline_depth: 0,
            ..PoolConfig::combined(2)
        };
        let mut pool = WorkerPool::new(&plan, config);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.pipeline_depth(), 1);
        let report = pool.eval(&tree).unwrap();
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        let want = dstore
            .get(tree.root(), out)
            .and_then(|v| v.as_rope().cloned())
            .unwrap();
        assert!(root_rope(&report, out).content_eq(&want));
    }

    #[test]
    fn high_water_marks_reset_between_batches() {
        let (trees, plan, _) = fixture_trees(&[24, 24, 24]);
        let mut pool = WorkerPool::new(&plan, PoolConfig::combined(2).with_pipeline_depth(2));
        for tree in &trees {
            pool.submit(tree);
        }
        while let Some(r) = pool.collect() {
            r.expect("evaluation succeeds");
        }
        assert_eq!(pool.max_in_flight(), 2);
        pool.reset_high_water();
        assert_eq!(pool.max_in_flight(), 0);
        assert_eq!(pool.max_regions_in_flight(), 0);
        pool.eval(&trees[0]).unwrap();
        assert_eq!(pool.max_in_flight(), 1);
    }

    #[test]
    fn poll_drains_completions_without_blocking() {
        let sizes = [40usize, 9, 24];
        let (trees, plan, out) = fixture_trees(&sizes);
        let mut pool = WorkerPool::new(&plan, PoolConfig::combined(2).with_pipeline_depth(4));
        for tree in &trees {
            pool.submit(tree);
        }
        // poll never blocks: spin it until every report surfaces.
        let mut got = Vec::new();
        while got.len() < trees.len() {
            pool.poll();
            while let Some(r) = pool.take_ready() {
                got.push(r.expect("evaluation succeeds"));
            }
            std::thread::yield_now();
        }
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.poll(), 0, "nothing left to retire");
        for (i, (tree, report)) in trees.iter().zip(&got).enumerate() {
            assert_eq!(report.ticket, i as Ticket, "submission order");
            let (dstore, _) = dynamic_eval(tree).unwrap();
            let want = dstore
                .get(tree.root(), out)
                .and_then(|v| v.as_rope().cloned())
                .unwrap();
            assert!(root_rope(report, out).content_eq(&want), "tree {i}");
        }
    }

    /// One grammar, two wirings of S→T: `ok` feeds the subtree a
    /// constant, `knot` feeds it its own output — an instance cycle
    /// local to the (single-region) tree.
    #[allow(clippy::type_complexity)]
    fn cyclic_fixture() -> (
        Vec<Arc<ParseTree<i64>>>,
        Arc<ParseTree<i64>>,
        Arc<EvalPlan<i64>>,
        AttrId,
    ) {
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let t = g.nonterminal("T");
        let out = g.synthesized(s, "out");
        let i = g.inherited(t, "i");
        let o = g.synthesized(t, "o");
        let ok = g.production("ok", s, [t]);
        g.rule(ok, (1, i), [], |_| 1);
        g.rule(ok, (0, out), [(1, o)], |a| a[0] + 100);
        let knot = g.production("knot", s, [t]);
        g.rule(knot, (1, i), [(1, o)], |a| a[0]);
        g.rule(knot, (0, out), [(1, o)], |a| a[0]);
        let body = g.production("body", t, []);
        g.rule(body, (0, o), [(0, i)], |a| a[0]);
        let gr = Arc::new(g.build(s).unwrap());
        let plan = Arc::new(EvalPlan::analyze(&gr));
        let mk = |prod| {
            let mut tb = TreeBuilder::new(&gr);
            let b = tb.leaf(body);
            let root = tb.node(prod, [b]);
            Arc::new(tb.finish(root).unwrap())
        };
        let good = (0..3).map(|_| mk(ok)).collect();
        (good, mk(knot), plan, out)
    }

    #[test]
    fn failed_ticket_surfaces_in_order_and_pool_stays_usable() {
        let (good, bad, plan, out) = cyclic_fixture();
        // The cyclic grammar is not statically ordered; the pool runs
        // it in dynamic mode.
        assert!(plan.plans().is_none());
        let config = PoolConfig {
            mode: MachineMode::Dynamic,
            result: ResultPropagation::Naive,
            ..PoolConfig::combined(2).with_pipeline_depth(1)
        };
        let mut pool = WorkerPool::new(&plan, config);
        for tree in &good {
            pool.submit(tree);
        }
        let bad_ticket = pool.submit(&bad);
        // Submitting past the failure works: the cyclic tree fails only
        // its own ticket, it does not poison the pool.
        let extra_ticket = pool.submit(&good[0]);
        // Results surface in submission order: the successes, then the
        // failure, then the post-failure success.
        for (i, _) in good.iter().enumerate() {
            let r = pool.collect().expect("pending").expect("good tree");
            assert_eq!(r.ticket, i as Ticket);
            assert_eq!(r.root_values, vec![(out, 101i64)]);
        }
        let failure = pool
            .collect()
            .expect("pending")
            .err()
            .expect("cyclic tree fails its own ticket");
        assert_eq!(failure.ticket, bad_ticket);
        assert!(
            matches!(failure.error, EvalError::Cycle { .. }),
            "got {failure:?}"
        );
        let r = pool
            .collect()
            .expect("pending")
            .expect("post-failure submit evaluates normally");
        assert_eq!(r.ticket, extra_ticket);
        assert_eq!(r.root_values, vec![(out, 101i64)]);
        assert!(pool.collect().is_none(), "drained");
        // And one-shot evals keep working afterwards.
        let r = pool.eval(&good[1]).unwrap();
        assert_eq!(r.root_values, vec![(out, 101i64)]);
    }

    /// Memo-safe splittable grammar: the chain's inherited `env` comes
    /// from a root token, never from a synthesized attribute of the
    /// same occurrence, so leaf regions can hold their outputs back
    /// until every input arrives. Values are scalar so every span is
    /// cache-plain under either propagation mode.
    #[allow(clippy::type_complexity)]
    fn memo_fixture(
        seed: i64,
        items: &[i64],
    ) -> (Arc<ParseTree<Value>>, Arc<EvalPlan<Value>>, AttrId) {
        use crate::tree::token;
        let mut g = GrammarBuilder::<Value>::new();
        let s = g.nonterminal("S");
        let l = g.nonterminal("stmts");
        let num = g.terminal("num");
        let val = g.synthesized(num, "val");
        let out = g.synthesized(s, "out");
        let env = g.inherited(l, "env");
        let code = g.synthesized(l, "code");
        g.mark_split(l, 4);
        let top = g.production("top", s, [num, l]);
        g.rule(top, (2, env), [(1, val)], |a| a[0].clone());
        g.rule(top, (0, out), [(2, code)], |a| a[0].clone());
        let cons = g.production("cons", l, [num, l]);
        g.rule(cons, (2, env), [(0, env)], |a| a[0].clone());
        g.rule(cons, (0, code), [(1, val), (0, env), (2, code)], |a| {
            Value::Int(a[0].as_int().unwrap() * a[1].as_int().unwrap() + a[2].as_int().unwrap())
        });
        let nil = g.production("nil", l, []);
        g.rule(nil, (0, code), [], |_| Value::Int(0));
        let grammar = Arc::new(g.build(s).unwrap());
        let plan = Arc::new(EvalPlan::analyze(&grammar));
        let mut tb = TreeBuilder::new(&grammar);
        let mut tail = tb.leaf(nil);
        for &v in items.iter().rev() {
            tail = tb.node_full(cons, vec![token(vec![Value::Int(v)]), tail.into()]);
        }
        let root = tb.node_full(top, vec![token(vec![Value::Int(seed)]), tail.into()]);
        (Arc::new(tb.finish(root).unwrap()), plan, out)
    }

    #[test]
    fn memo_replays_repeated_trees_and_matches_memo_off() {
        let items: Vec<i64> = (0..24).map(|i| i * 3 + 1).collect();
        for mode in [MachineMode::Combined, MachineMode::Dynamic] {
            // Two structurally identical trees built independently —
            // distinct arenas, identical subtree hashes.
            let (t1, plan, out) = memo_fixture(7, &items);
            let (t2, _, _) = memo_fixture(7, &items);
            let config = PoolConfig {
                mode,
                ..PoolConfig::combined(2).with_memo_capacity(1 << 20)
            };
            let mut pool = WorkerPool::new(&plan, config);
            let r1 = pool.eval(&t1).unwrap();
            let after_first = pool.memo_counters().unwrap();
            assert!(after_first.inserts >= 1, "{mode:?}: first tree installs");
            assert_eq!(after_first.hits, 0, "{mode:?}: cold cache cannot hit");
            let r2 = pool.eval(&t2).unwrap();
            let after_second = pool.memo_counters().unwrap();
            assert!(
                after_second.hits >= 1,
                "{mode:?}: identical tree replays ({after_second:?})"
            );

            // Replay must be value-identical to a memo-off evaluation,
            // instance by instance.
            let (dstore, _) = dynamic_eval(&t2).unwrap();
            let g = t2.grammar();
            for node in t2.node_ids() {
                let sym = g.prod(t2.node(node).prod).lhs;
                for a in 0..g.attr_count(sym) {
                    let attr = AttrId(a as u32);
                    assert_eq!(
                        r2.store.get(node, attr),
                        dstore.get(node, attr),
                        "{mode:?} node={node:?} attr={attr:?}"
                    );
                }
            }
            assert_eq!(r2.store.filled(), r2.store.len());
            assert_eq!(
                r1.root_values.iter().find(|(a, _)| *a == out),
                r2.root_values.iter().find(|(a, _)| *a == out),
                "{mode:?}: replayed root value"
            );
        }
    }

    #[test]
    fn memo_distinguishes_inherited_context() {
        let items: Vec<i64> = (0..16).map(|i| i + 1).collect();
        let (t1, plan, out) = memo_fixture(2, &items);
        // Same chain, different root seed: the leaf region's subtree is
        // identical but its inherited `env` differs, so the cached span
        // must NOT be reused.
        let (t2, _, _) = memo_fixture(5, &items);
        let mut pool = WorkerPool::new(&plan, PoolConfig::combined(2).with_memo_capacity(1 << 20));
        pool.eval(&t1).unwrap();
        let r2 = pool.eval(&t2).unwrap();
        let c = pool.memo_counters().unwrap();
        assert_eq!(c.hits, 0, "different inherited context never hits ({c:?})");
        let (dstore, _) = dynamic_eval(&t2).unwrap();
        let want = dstore.get(t2.root(), out).unwrap();
        assert_eq!(
            &r2.root_values.iter().find(|(a, _)| *a == out).unwrap().1,
            want
        );
    }

    #[test]
    fn memo_skips_symbols_where_inherited_depends_on_synthesized() {
        // The base fixture's `top` computes the child's `env` from the
        // child's own `decls` — holding `decls` back until `env` arrives
        // would deadlock, so those regions must never probe or install.
        let (tree, plan, out) = fixture(32);
        let mut pool = WorkerPool::new(&plan, PoolConfig::combined(2).with_memo_capacity(1 << 20));
        let (dstore, _) = dynamic_eval(&tree).unwrap();
        let want = dstore
            .get(tree.root(), out)
            .and_then(|v| v.as_rope().cloned())
            .unwrap();
        for round in 0..2 {
            let report = pool.eval(&tree).unwrap();
            assert!(root_rope(&report, out).content_eq(&want), "round {round}");
        }
        let c = pool.memo_counters().unwrap();
        assert_eq!((c.hits, c.misses, c.inserts), (0, 0, 0), "{c:?}");
    }

    #[test]
    fn memo_off_reports_no_counters() {
        let (tree, plan, _) = fixture(8);
        let mut pool = WorkerPool::new(&plan, PoolConfig::combined(2));
        pool.eval(&tree).unwrap();
        assert!(pool.memo_counters().is_none());
    }

    #[test]
    fn stealing_matches_sequential_across_workers_and_depths() {
        let sizes = [96usize, 5, 33, 17, 64, 2, 21, 48];
        let (trees, plan, out) = fixture_trees(&sizes);
        for workers in [1usize, 2, 4] {
            for depth in [1usize, 2, 4] {
                let mut pool = WorkerPool::new(
                    &plan,
                    PoolConfig::combined(workers)
                        .with_pipeline_depth(depth)
                        .with_scheduler(SchedulerMode::Stealing),
                );
                for tree in &trees {
                    pool.submit(tree);
                }
                let mut reports = Vec::new();
                while let Some(r) = pool.collect().map(|r| r.expect("evaluation succeeds")) {
                    reports.push(r);
                }
                assert_eq!(reports.len(), trees.len());
                for (i, (tree, report)) in trees.iter().zip(&reports).enumerate() {
                    assert_eq!(report.ticket, i as Ticket, "reports in submission order");
                    let (dstore, _) = dynamic_eval(tree).unwrap();
                    let want = dstore
                        .get(tree.root(), out)
                        .and_then(|v| v.as_rope().cloned())
                        .unwrap();
                    assert!(
                        root_rope(report, out).content_eq(&want),
                        "workers={workers} depth={depth} tree {i}"
                    );
                    assert_eq!(report.store.filled(), report.store.len());
                }
            }
        }
    }

    #[test]
    fn stealing_counters_are_reported_and_reset() {
        let sizes = [64usize, 48, 33, 21, 96, 17];
        let (trees, plan, _) = fixture_trees(&sizes);
        // Fixed placement never touches the steal scheduler: all zeros.
        let mut fixed = WorkerPool::new(&plan, PoolConfig::combined(2));
        fixed.submit(&trees[0]);
        while let Some(r) = fixed.collect() {
            r.expect("evaluation succeeds");
        }
        assert_eq!(fixed.sched_counters(), SchedCounters::default());
        let mut pool = WorkerPool::new(
            &plan,
            PoolConfig::combined(2).with_scheduler(SchedulerMode::Stealing),
        );
        for tree in &trees {
            pool.submit(tree);
        }
        while let Some(r) = pool.collect() {
            r.expect("evaluation succeeds");
        }
        let c = pool.sched_counters();
        assert!(
            c.local_sends + c.remote_sends > 0,
            "boundary sends were classified ({c:?})"
        );
        assert!(c.locality_rate() >= 0.0 && c.locality_rate() <= 1.0);
        // `reset_high_water` covers the steal telemetry too.
        pool.reset_high_water();
        assert_eq!(pool.sched_counters(), SchedCounters::default());
    }

    #[test]
    fn stealing_keeps_memo_probing_jobs_correct() {
        // Probing jobs park on a memo probe until their boundary
        // attributes arrive; under stealing those arrive through the
        // job-location table (possibly before activation). The replay
        // must still be value-identical.
        let items: Vec<i64> = (0..24).map(|i| i * 3 + 1).collect();
        let (t1, plan, out) = memo_fixture(7, &items);
        let (t2, _, _) = memo_fixture(7, &items);
        let mut pool = WorkerPool::new(
            &plan,
            PoolConfig::combined(2)
                .with_memo_capacity(1 << 20)
                .with_scheduler(SchedulerMode::Stealing),
        );
        let r1 = pool.eval(&t1).unwrap();
        let r2 = pool.eval(&t2).unwrap();
        let c = pool.memo_counters().unwrap();
        assert!(c.hits >= 1, "identical tree replays under stealing ({c:?})");
        assert_eq!(
            r1.root_values.iter().find(|(a, _)| *a == out),
            r2.root_values.iter().find(|(a, _)| *a == out),
        );
        let (dstore, _) = dynamic_eval(&t2).unwrap();
        let g = t2.grammar();
        for node in t2.node_ids() {
            let sym = g.prod(t2.node(node).prod).lhs;
            for a in 0..g.attr_count(sym) {
                let attr = AttrId(a as u32);
                assert_eq!(
                    r2.store.get(node, attr),
                    dstore.get(node, attr),
                    "node={node:?} attr={attr:?}"
                );
            }
        }
    }

    #[test]
    fn stealing_failed_ticket_surfaces_in_order_and_pool_stays_usable() {
        let (good, bad, plan, out) = cyclic_fixture();
        assert!(plan.plans().is_none());
        let config = PoolConfig {
            mode: MachineMode::Dynamic,
            result: ResultPropagation::Naive,
            ..PoolConfig::combined(2)
                .with_pipeline_depth(1)
                .with_scheduler(SchedulerMode::Stealing)
        };
        let mut pool = WorkerPool::new(&plan, config);
        for tree in &good {
            pool.submit(tree);
        }
        let bad_ticket = pool.submit(&bad);
        // Under stealing the failed ticket's jobs are cancelled across
        // every deque; earlier and later tickets are untouched.
        let extra_ticket = pool.submit(&good[0]);
        for (i, _) in good.iter().enumerate() {
            let r = pool.collect().expect("pending").expect("good tree");
            assert_eq!(r.ticket, i as Ticket);
            assert_eq!(r.root_values, vec![(out, 101i64)]);
        }
        let failure = pool
            .collect()
            .expect("pending")
            .err()
            .expect("cyclic tree fails its own ticket");
        assert_eq!(failure.ticket, bad_ticket);
        assert!(
            matches!(failure.error, EvalError::Cycle { .. }),
            "got {failure:?}"
        );
        let r = pool
            .collect()
            .expect("pending")
            .expect("post-failure submit evaluates normally");
        assert_eq!(r.ticket, extra_ticket);
        assert_eq!(r.root_values, vec![(out, 101i64)]);
        assert!(pool.collect().is_none(), "drained");
        let r = pool.eval(&good[1]).unwrap();
        assert_eq!(r.root_values, vec![(out, 101i64)]);
    }

    #[test]
    fn panicking_rule_fails_only_its_ticket() {
        // A rule that explodes on a marker input: the unwind must be
        // contained (surfacing as `RulePanic` on that ticket alone)
        // instead of tearing down the worker thread. The default panic
        // hook prints its message to test stderr once — expected noise.
        let mut g = GrammarBuilder::<i64>::new();
        let s = g.nonterminal("S");
        let t = g.nonterminal("T");
        let out = g.synthesized(s, "out");
        let i = g.inherited(t, "i");
        let o = g.synthesized(t, "o");
        let ok = g.production("ok", s, [t]);
        g.rule(ok, (1, i), [], |_| 1);
        g.rule(ok, (0, out), [(1, o)], |a| a[0] + 100);
        let boom = g.production("boom", s, [t]);
        g.rule(boom, (1, i), [], |_| 13);
        g.rule(boom, (0, out), [(1, o)], |a| a[0]);
        let body = g.production("body", t, []);
        g.rule(body, (0, o), [(0, i)], |a| {
            assert!(a[0] != 13, "rule exploded on marker input");
            a[0]
        });
        let gr = Arc::new(g.build(s).unwrap());
        let plan = Arc::new(EvalPlan::analyze(&gr));
        let mk = |prod| {
            let mut tb = TreeBuilder::new(&gr);
            let b = tb.leaf(body);
            let root = tb.node(prod, [b]);
            Arc::new(tb.finish(root).unwrap())
        };
        let mut pool = WorkerPool::new(&plan, PoolConfig::combined(2));
        let good = mk(ok);
        pool.submit(&good);
        let bad_ticket = pool.submit(&mk(boom));
        pool.submit(&good);
        let mut outcomes = Vec::new();
        while let Some(r) = pool.collect() {
            outcomes.push(r);
        }
        assert_eq!(outcomes.len(), 3);
        assert_eq!(
            outcomes[0].as_ref().unwrap().root_values,
            vec![(out, 101i64)]
        );
        let failure = outcomes[1].as_ref().err().expect("marker tree panics");
        assert_eq!(failure.ticket, bad_ticket);
        let EvalError::RulePanic { message } = &failure.error else {
            panic!("expected RulePanic, got {failure:?}");
        };
        assert!(
            message.contains("rule exploded"),
            "panic message survives: {message}"
        );
        assert_eq!(
            outcomes[2].as_ref().unwrap().root_values,
            vec![(out, 101i64)]
        );
        assert_eq!(pool.fault_counters().panics_contained, 1);
        // The pool is still healthy for later one-shot work.
        let r = pool.eval(&good).unwrap();
        assert_eq!(r.root_values, vec![(out, 101i64)]);
    }

    #[test]
    fn kill_worker_requires_the_stealing_scheduler() {
        let (tree, plan, _) = fixture(16);
        let mut fixed = WorkerPool::new(&plan, PoolConfig::combined(2));
        assert!(!fixed.kill_worker(0), "fixed placement has no recovery");
        fixed.eval(&tree).unwrap();

        let mut pool = WorkerPool::new(
            &plan,
            PoolConfig::combined(2).with_scheduler(SchedulerMode::Stealing),
        );
        assert!(!pool.kill_worker(7), "out of range");
        assert!(pool.kill_worker(1));
        assert!(!pool.kill_worker(1), "already dead");
        assert!(!pool.kill_worker(0), "the last survivor is spared");
        // One survivor still evaluates correctly.
        let r = pool.eval(&tree).unwrap();
        assert_eq!(r.store.filled(), r.store.len());
        assert_eq!(pool.fault_counters().crashes, 1);
    }

    #[test]
    fn killed_worker_recovers_regions_and_outputs_stay_identical() {
        let sizes = [96usize, 64, 80, 72, 88, 56, 100, 48];
        let (trees, plan, out) = fixture_trees(&sizes);
        let mut pool = WorkerPool::new(
            &plan,
            PoolConfig::combined(3)
                .with_pipeline_depth(sizes.len())
                .with_scheduler(SchedulerMode::Stealing),
        );
        for tree in &trees {
            pool.submit(tree);
        }
        // Crash one worker while the whole stream is in flight: its
        // queued jobs migrate, its active jobs re-execute from their
        // input logs on the survivors.
        assert!(pool.kill_worker(1));
        let mut reports = Vec::new();
        while let Some(r) = pool.collect() {
            reports.push(r.expect("recovery completes every tree"));
        }
        assert_eq!(reports.len(), trees.len());
        for (i, (tree, report)) in trees.iter().zip(&reports).enumerate() {
            assert_eq!(report.ticket, i as Ticket, "submission order survives");
            let (dstore, _) = dynamic_eval(tree).unwrap();
            let want = dstore
                .get(tree.root(), out)
                .and_then(|v| v.as_rope().cloned())
                .unwrap();
            assert!(
                root_rope(report, out).content_eq(&want),
                "tree {i}: output identical to fault-free evaluation"
            );
            assert_eq!(report.store.filled(), report.store.len());
        }
        let f = pool.fault_counters();
        assert_eq!(f.crashes, 1);
        assert!(f.regions_reexecuted > 0, "lost regions were reseeded {f:?}");
        // The two survivors keep serving new work.
        let r = pool.eval(&trees[0]).unwrap();
        let (dstore, _) = dynamic_eval(&trees[0]).unwrap();
        let want = dstore
            .get(trees[0].root(), out)
            .and_then(|v| v.as_rope().cloned())
            .unwrap();
        assert!(root_rope(&r, out).content_eq(&want));
        // reset_high_water clears the fault telemetry too.
        pool.reset_high_water();
        assert_eq!(pool.fault_counters(), FaultCounters::default());
    }

    #[test]
    fn segment_ledger_isolates_tickets() {
        let mut ledger = SegmentLedger::new();
        let id = SegmentId::from_parts(0, 0);
        ledger.register(0, id, Rope::from("tree zero"));
        ledger.register(1, id, Rope::from("tree one"));
        assert_eq!(ledger.open_tickets(), 2);
        assert_eq!(ledger.ticket_bytes(0), 9);
        let s0 = ledger.resolve(0);
        assert_eq!(s0.get(id).unwrap().to_string(), "tree zero");
        assert_eq!(ledger.open_tickets(), 1);
        let s1 = ledger.resolve(1);
        assert_eq!(s1.get(id).unwrap().to_string(), "tree one");
        assert!(ledger.resolve(7).is_empty());
    }
}
