//! The parallel compiler on the simulated network multiprocessor.
//!
//! Reproduces the paper's experimental configuration (§3): one
//! sequential parser process, N evaluator machines (one region each),
//! and a string-librarian process, communicating over a shared 10 Mbit
//! Ethernet modelled by [`paragram_netsim`]. Virtual CPU consumption is
//! derived from a [`CostModel`] calibrated to SUN-2-class hardware, so
//! the reported times are in "1987 seconds" and the *shape* of Figure 5
//! (speedups, crossovers, the non-monotonic tail) is reproduced
//! deterministically.
//!
//! The protocol is the paper's: the parser ships linearized subtrees;
//! evaluators evaluate, exchanging attribute values; synthesized
//! attributes of region roots travel up, inherited attributes of remote
//! subtree roots travel down; in librarian mode large code text goes to
//! the librarian once and only small descriptor ropes travel up the
//! process tree (§4.2).

use crate::analysis::Plans;
use crate::eval::{AttrMsg, EvalError, EvalPlan, Machine, MachineMode, MachineScratch, SendTarget};
use crate::grammar::{AttrId, AttrKind};
use crate::split::{decompose, Decomposition, RegionId, SplitConfig};
use crate::stats::EvalStats;
use crate::tree::{Child, NodeId, ParseTree};
use crate::value::AttrValue;
use paragram_netsim::{secs, Ctx, NetModel, ProcId, Process, Sim, Time, Trace};
use paragram_rope::{Rope, SegmentId, SegmentStore};
use std::sync::Arc;
use std::sync::Mutex;

use super::{classify, PhaseClassifier, ResultPropagation};

/// Virtual CPU cost constants (µs) mapping evaluator work onto 1987
/// hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Per rule-cost unit (semantic function execution).
    pub rule_unit_us: u64,
    /// Per dependency-graph task created (dynamic pipeline, Figure 1).
    pub graph_node_us: u64,
    /// Per dependency-graph edge created.
    pub graph_edge_us: u64,
    /// Scheduler overhead per dynamically applied rule.
    pub dynamic_rule_us: u64,
    /// Tree-walk overhead per statically applied rule.
    pub static_rule_us: u64,
    /// Parser cost per tree node built.
    pub parse_node_us: u64,
    /// Cost per node to linearize/rebuild a shipped subtree.
    pub ship_node_us: u64,
    /// Librarian cost per kilobyte when combining final code.
    pub resolve_kb_us: u64,
}

impl CostModel {
    /// Calibration for a SUN-2-class workstation (≈1 MIPS): semantic
    /// functions dominated by allocation, a dynamic-scheduler overhead
    /// per instance, and a much cheaper static tree walk.
    pub fn sun2() -> Self {
        CostModel {
            rule_unit_us: 120,
            graph_node_us: 80,
            graph_edge_us: 40,
            dynamic_rule_us: 120,
            static_rule_us: 25,
            parse_node_us: 180,
            ship_node_us: 40,
            resolve_kb_us: 150,
        }
    }
}

/// Everything configurable about one simulated parallel compilation.
pub struct SimConfig {
    /// Number of evaluator machines (regions targeted by the splitter).
    pub machines: usize,
    /// Combined or purely dynamic evaluation.
    pub mode: MachineMode,
    /// Result propagation strategy (§4.2 ablation).
    pub result: ResultPropagation,
    /// Network model.
    pub net: NetModel,
    /// CPU cost model.
    pub cost: CostModel,
    /// Split-granularity scale (the paper's runtime argument).
    pub min_size_scale: f64,
    /// Attribute-name → phase label mapping for the activity trace.
    pub classifier: PhaseClassifier,
}

impl SimConfig {
    /// Paper-like defaults for `machines` machines with the combined
    /// evaluator.
    pub fn paper(machines: usize) -> Self {
        SimConfig {
            machines,
            mode: MachineMode::Combined,
            result: ResultPropagation::Librarian,
            net: NetModel::lan_1987(),
            cost: CostModel::sun2(),
            min_size_scale: 1.0,
            classifier: super::phase_classifier(vec![
                ("stab", "symbol table"),
                ("env", "symbol table"),
                ("decl", "symbol table"),
                ("code", "code generation"),
            ]),
        }
    }
}

/// Result of one simulated parallel compilation.
pub struct SimReport<V> {
    /// The paper's running-time measure: "from the time the parser
    /// initiates evaluation until it receives back the root attributes".
    pub eval_time: Time,
    /// Parser time (reported separately, as in §4.1).
    pub parse_time: Time,
    /// Number of regions actually produced.
    pub regions: usize,
    /// Per-machine statistics.
    pub per_machine: Vec<EvalStats>,
    /// Aggregated statistics.
    pub stats: EvalStats,
    /// The activity/message trace (Figure 6).
    pub trace: Trace,
    /// Process names aligned with the trace.
    pub names: Vec<String>,
    /// Root attribute values (librarian-resolved).
    pub root_values: Vec<(AttrId, V)>,
    /// The decomposition rendered in Figure-7 style.
    pub decomposition: String,
}

impl<V> SimReport<V> {
    /// The evaluation time in seconds.
    pub fn eval_secs(&self) -> f64 {
        secs(self.eval_time)
    }

    /// Renders the Figure-6 activity chart.
    pub fn render_gantt(&self, width: usize) -> String {
        self.trace.render_gantt(&self.names, width)
    }
}

enum SimMsg<V> {
    Subtree(RegionId),
    Attr {
        node: NodeId,
        attr: AttrId,
        value: V,
    },
    Segment {
        id: SegmentId,
        text: Rope,
    },
    ResolveRoot,
    RootResolved,
}

struct Shared<V: AttrValue> {
    tree: Arc<ParseTree<V>>,
    /// Grammar-level artifacts shared by every simulated evaluator
    /// (one table build per simulation, not per region).
    plan: Arc<EvalPlan<V>>,
    decomp: Arc<Decomposition>,
    cost: CostModel,
    mode: MachineMode,
    result: ResultPropagation,
    classifier: PhaseClassifier,
    librarian: ProcId,
    parser: ProcId,
    eval_start: Mutex<Time>,
    eval_end: Mutex<Time>,
    root_values: Mutex<Vec<(AttrId, V)>>,
    segstore: Mutex<SegmentStore>,
    per_machine: Mutex<Vec<EvalStats>>,
    error: Mutex<Option<EvalError>>,
}

impl<V: AttrValue> Shared<V> {
    fn proc_of_region(&self, r: RegionId) -> ProcId {
        ProcId(1 + r as usize)
    }
}

/// Approximate linearized wire size of a region's local nodes.
fn region_wire_size<V: AttrValue>(
    tree: &ParseTree<V>,
    decomp: &Decomposition,
    region: RegionId,
) -> usize {
    let mut bytes = 0;
    let mut stack = vec![decomp.regions[region as usize].root];
    while let Some(n) = stack.pop() {
        bytes += 8;
        for c in &tree.node(n).children {
            match c {
                Child::Node(c) if decomp.region(*c) == region => stack.push(*c),
                Child::Node(_) => bytes += 8, // remote-leaf marker
                Child::Token(vals) => bytes += vals.iter().map(|v| v.wire_size()).sum::<usize>(),
            }
        }
    }
    bytes
}

struct ParserProc<V: AttrValue> {
    shared: Arc<Shared<V>>,
    expected_roots: usize,
}

impl<V: AttrValue> Process<SimMsg<V>> for ParserProc<V> {
    fn on_start(&mut self, ctx: &mut Ctx<SimMsg<V>>) {
        let sh = Arc::clone(&self.shared);
        ctx.phase("parse");
        ctx.spend(sh.tree.len() as Time * sh.cost.parse_node_us);
        ctx.phase("ship subtrees");
        // Linearize and ship each region (region 0 included: its
        // evaluator is a separate machine from the parser, as in the
        // paper's Figure 6 where evaluator `a` holds the root subtree).
        *sh.eval_start.lock().unwrap() = ctx.now();
        for r in 0..sh.decomp.len() as RegionId {
            let info = &sh.decomp.regions[r as usize];
            ctx.spend(info.local_size as Time * sh.cost.ship_node_us);
            let bytes = region_wire_size(&sh.tree, &sh.decomp, r);
            ctx.send(sh.proc_of_region(r), SimMsg::Subtree(r), bytes, "subtree");
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<SimMsg<V>>, _from: ProcId, msg: SimMsg<V>) {
        let sh = Arc::clone(&self.shared);
        match msg {
            SimMsg::Attr { attr, value, .. } => {
                ctx.phase("result propagation");
                let done = {
                    let mut roots = sh.root_values.lock().unwrap();
                    roots.push((attr, value));
                    roots.len() == self.expected_roots
                };
                if done {
                    match sh.result {
                        ResultPropagation::Naive => {
                            *sh.eval_end.lock().unwrap() = ctx.now();
                            ctx.stop();
                        }
                        ResultPropagation::Librarian => {
                            ctx.send(sh.librarian, SimMsg::ResolveRoot, 64, "resolve");
                        }
                    }
                }
            }
            SimMsg::RootResolved => {
                *sh.eval_end.lock().unwrap() = ctx.now();
                ctx.stop();
            }
            _ => {}
        }
    }
}

struct EvaluatorProc<V: AttrValue> {
    shared: Arc<Shared<V>>,
    region: RegionId,
    machine: Option<Machine<V>>,
    next_seg: u32,
}

impl<V: AttrValue> EvaluatorProc<V> {
    fn pump(&mut self, ctx: &mut Ctx<SimMsg<V>>) {
        let sh = Arc::clone(&self.shared);
        loop {
            let Some(machine) = self.machine.as_mut() else {
                return;
            };
            match machine.step() {
                Err(e) => {
                    *sh.error.lock().unwrap() = Some(e);
                    ctx.stop();
                    return;
                }
                Ok(None) => break,
                Ok(Some(outcome)) => {
                    let label = classify(sh.tree.grammar(), &sh.classifier, outcome.target);
                    ctx.phase(label);
                    ctx.spend(
                        outcome.cost_units * sh.cost.rule_unit_us
                            + outcome.dynamic_rules as Time * sh.cost.dynamic_rule_us
                            + outcome.static_rules as Time * sh.cost.static_rule_us,
                    );
                    for send in outcome.sends {
                        self.transmit(ctx, send);
                    }
                }
            }
        }
        let machine = self.machine.as_ref().expect("machine exists");
        self.shared.per_machine.lock().unwrap()[self.region as usize] = machine.stats();
    }

    fn transmit(&mut self, ctx: &mut Ctx<SimMsg<V>>, msg: AttrMsg<V>) {
        let sh = Arc::clone(&self.shared);
        let upward = match msg.to {
            SendTarget::Parser => true,
            SendTarget::Region(r) => Some(r) == sh.decomp.regions[self.region as usize].parent,
        };
        let mut value = msg.value;
        if upward && sh.result == ResultPropagation::Librarian {
            // Ship large code text to the librarian; pass a descriptor
            // rope up the process tree (§4.2).
            let region = self.region;
            let next = &mut self.next_seg;
            let mut segments: Vec<(SegmentId, Rope)> = Vec::new();
            let deflated = value.deflate(&mut |text: Rope| {
                let id = SegmentId::from_parts(region, *next);
                *next += 1;
                segments.push((id, text));
                id
            });
            if let Some(d) = deflated {
                value = d;
                ctx.phase("result propagation");
                for (id, text) in segments {
                    let bytes = text.physical_wire_size();
                    ctx.send(
                        sh.librarian,
                        SimMsg::Segment { id, text },
                        bytes,
                        "code-segment",
                    );
                }
            }
        }
        let dest = match msg.to {
            SendTarget::Parser => sh.parser,
            SendTarget::Region(r) => sh.proc_of_region(r),
        };
        let bytes = value.wire_size();
        ctx.send(
            dest,
            SimMsg::Attr {
                node: msg.node,
                attr: msg.attr,
                value,
            },
            bytes,
            "attr",
        );
    }
}

impl<V: AttrValue> Process<SimMsg<V>> for EvaluatorProc<V> {
    fn on_message(&mut self, ctx: &mut Ctx<SimMsg<V>>, _from: ProcId, msg: SimMsg<V>) {
        let sh = Arc::clone(&self.shared);
        match msg {
            SimMsg::Subtree(region) => {
                debug_assert_eq!(region, self.region);
                ctx.phase("build");
                let machine = Machine::from_plan(
                    &sh.plan,
                    &sh.tree,
                    &sh.decomp,
                    self.region,
                    sh.mode,
                    MachineScratch::new(),
                );
                let (gn, ge) = machine.graph_size();
                ctx.spend(
                    machine.local_nodes() as Time * sh.cost.ship_node_us
                        + gn as Time * sh.cost.graph_node_us
                        + ge as Time * sh.cost.graph_edge_us,
                );
                self.machine = Some(machine);
                self.pump(ctx);
            }
            SimMsg::Attr { node, attr, value } => {
                if let Some(m) = self.machine.as_mut() {
                    m.provide(node, attr, value);
                }
                self.pump(ctx);
            }
            _ => {}
        }
    }
}

struct LibrarianProc<V: AttrValue> {
    shared: Arc<Shared<V>>,
}

impl<V: AttrValue> Process<SimMsg<V>> for LibrarianProc<V> {
    fn on_message(&mut self, ctx: &mut Ctx<SimMsg<V>>, from: ProcId, msg: SimMsg<V>) {
        let sh = Arc::clone(&self.shared);
        match msg {
            SimMsg::Segment { id, text } => {
                ctx.phase("receive code");
                ctx.spend((text.len() as Time).div_ceil(1024) * sh.cost.resolve_kb_us / 10);
                sh.segstore.lock().unwrap().register(id, text);
            }
            SimMsg::ResolveRoot => {
                ctx.phase("combine code");
                let total = sh.segstore.lock().unwrap().total_bytes();
                ctx.spend((total as Time).div_ceil(1024) * sh.cost.resolve_kb_us);
                ctx.send(from, SimMsg::RootResolved, 64, "resolved");
            }
            _ => {}
        }
    }
}

/// Runs one simulated parallel compilation of `tree`.
///
/// `plans` must be `Some` for [`MachineMode::Combined`].
///
/// # Panics
///
/// Panics if evaluation fails (cycle or plan inconsistency) or if the
/// protocol deadlocks — validate the grammar with the sequential
/// evaluators first.
pub fn run_sim<V: AttrValue>(
    tree: &Arc<ParseTree<V>>,
    plans: Option<&Arc<Plans>>,
    config: &SimConfig,
) -> SimReport<V> {
    let decomp = Arc::new(decompose(
        tree,
        SplitConfig {
            target_regions: config.machines,
            min_size_scale: config.min_size_scale,
        },
    ));
    let regions = decomp.len();
    let g = tree.grammar();
    let root_sym = g.prod(tree.node(tree.root()).prod).lhs;
    let expected_roots = g.symbol(root_sym).attrs_of_kind(AttrKind::Syn).count();

    let shared = Arc::new(Shared {
        tree: Arc::clone(tree),
        plan: Arc::new(EvalPlan::from_parts(tree.grammar(), plans.cloned(), None)),
        decomp: Arc::clone(&decomp),
        cost: config.cost,
        mode: config.mode,
        result: config.result,
        classifier: Arc::clone(&config.classifier),
        librarian: ProcId(1 + regions),
        parser: ProcId(0),
        eval_start: Mutex::new(0),
        eval_end: Mutex::new(0),
        root_values: Mutex::new(Vec::new()),
        segstore: Mutex::new(SegmentStore::new()),
        per_machine: Mutex::new(vec![EvalStats::default(); regions]),
        error: Mutex::new(None),
    });

    let mut sim: Sim<SimMsg<V>> = Sim::new(config.net);
    sim.add_process(
        "parser",
        ParserProc {
            shared: Arc::clone(&shared),
            expected_roots,
        },
    );
    for r in 0..regions {
        let letter = (b'a' + (r % 26) as u8) as char;
        sim.add_process(
            format!("evaluator-{letter}"),
            EvaluatorProc {
                shared: Arc::clone(&shared),
                region: r as RegionId,
                machine: None,
                next_seg: 0,
            },
        );
    }
    sim.add_process(
        "librarian",
        LibrarianProc {
            shared: Arc::clone(&shared),
        },
    );
    sim.run();

    if let Some(e) = shared.error.lock().unwrap().take() {
        panic!("parallel evaluation failed: {e}");
    }
    let eval_start = *shared.eval_start.lock().unwrap();
    let eval_end = *shared.eval_end.lock().unwrap();
    assert!(
        eval_end >= eval_start && eval_end > 0,
        "simulation ended without root attributes (deadlock?)"
    );

    let per_machine = shared.per_machine.lock().unwrap().clone();
    let mut stats = EvalStats::default();
    for s in &per_machine {
        stats += *s;
    }
    let store = shared.segstore.lock().unwrap();
    let root_values: Vec<(AttrId, V)> = shared
        .root_values
        .lock()
        .unwrap()
        .iter()
        .map(|(a, v)| (*a, v.inflate(&store)))
        .collect();
    drop(store);

    SimReport {
        eval_time: eval_end - eval_start,
        parse_time: eval_start,
        regions,
        per_machine,
        stats,
        trace: sim.trace().clone(),
        names: sim.names().to_vec(),
        root_values,
        decomposition: decomp.render(tree),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::compute_plans;
    use crate::eval::dynamic_eval;
    use crate::grammar::{Grammar, GrammarBuilder};
    use crate::tree::TreeBuilder;
    use crate::value::Value;

    /// A mini "compiler" grammar over [`Value`]: decls flow up, env
    /// flows down (symbol table), code (rope) flows up — with splittable
    /// statement lists. The paper's workload in miniature.
    struct Mini {
        tree: Arc<ParseTree<Value>>,
        plans: Arc<Plans>,
        code: AttrId,
    }

    /// `n` statements; each statement owns an off-spine "procedure body"
    /// subtree of `depth` costly nodes — the shape that makes parallel
    /// evaluation worthwhile in the paper's workload.
    fn mini_shape(n: usize, depth: usize) -> Mini {
        let mut g = GrammarBuilder::<Value>::new();
        let s = g.nonterminal("S");
        let l = g.nonterminal("stmts");
        let body = g.nonterminal("body");
        let done_code = g.synthesized(s, "code");
        let decls = g.synthesized(l, "decls");
        let env = g.inherited(l, "env");
        let code = g.synthesized(l, "code");
        let benv = g.inherited(body, "env");
        let bcode = g.synthesized(body, "code");
        g.mark_split(l, 4);
        g.mark_priority(l, env);

        let top = g.production("top", s, [l]);
        g.rule(top, (1, env), [(1, decls)], |a| a[0].clone());
        g.rule(top, (0, done_code), [(1, code)], |a| a[0].clone());

        let cons = g.production("cons", l, [body, l]);
        g.rule(cons, (0, decls), [(2, decls)], |a| {
            Value::Int(a[0].as_int().unwrap() + 1)
        });
        g.rule(cons, (2, env), [(0, env)], |a| a[0].clone());
        g.rule(cons, (1, benv), [(0, env)], |a| a[0].clone());
        g.rule(cons, (0, code), [(1, bcode), (2, code)], |a| {
            a[0].as_rope()
                .unwrap()
                .concat(a[1].as_rope().unwrap())
                .into()
        });
        let nil = g.production("nil", l, []);
        g.rule(nil, (0, decls), [], |_| Value::Int(0));
        g.rule(nil, (0, code), [], |_| Value::Rope(Rope::new()));

        let wrap = g.production("wrap", body, [body]);
        g.rule(wrap, (1, benv), [(0, benv)], |a| a[0].clone());
        g.rule_with_cost(
            wrap,
            (0, bcode),
            [(1, bcode), (0, benv)],
            |a| {
                let line = format!(
                    "movl r{}, r0 ; addl2 $4, sp ; calls $0, proc\n",
                    a[1].as_int().unwrap() % 12
                );
                Value::Rope(Rope::from(line).concat(a[0].as_rope().unwrap()))
            },
            5,
        );
        let unit = g.production("unit", body, []);
        g.rule(unit, (0, bcode), [(0, benv)], |a| {
            Value::Rope(Rope::from(format!(
                "ret ; base {}\n",
                a[0].as_int().unwrap()
            )))
        });

        let grammar: Arc<Grammar<Value>> = Arc::new(g.build(s).unwrap());
        let plans = Arc::new(compute_plans(&grammar).unwrap());
        let mut tb = TreeBuilder::new(&grammar);
        let mut tail = tb.leaf(nil);
        for _ in 0..n {
            let mut b = tb.leaf(unit);
            for _ in 0..depth {
                b = tb.node(wrap, [b]);
            }
            tail = tb.node(cons, [b, tail]);
        }
        let root = tb.node(top, [tail]);
        let tree = Arc::new(tb.finish(root).unwrap());
        Mini {
            tree,
            plans,
            code: done_code,
        }
    }

    fn mini(n: usize) -> Mini {
        mini_shape(n, 6)
    }

    fn root_code(report: &SimReport<Value>, attr: AttrId) -> Rope {
        report
            .root_values
            .iter()
            .find(|(a, _)| *a == attr)
            .and_then(|(_, v)| v.as_rope().cloned())
            .expect("root code attribute present")
    }

    #[test]
    fn sim_matches_sequential_dynamic_result() {
        let m = mini(32);
        let (dstore, _) = dynamic_eval(&m.tree).unwrap();
        let want = dstore
            .get(m.tree.root(), m.code)
            .and_then(|v| v.as_rope().cloned())
            .unwrap();
        for machines in [1, 2, 4] {
            let report = run_sim(&m.tree, Some(&m.plans), &SimConfig::paper(machines));
            let got = root_code(&report, m.code);
            assert!(got.content_eq(&want), "machines={machines}: code mismatch");
            assert!(report.eval_time > 0);
            assert!(report.parse_time > 0);
        }
    }

    #[test]
    fn parallel_is_faster_than_one_machine() {
        let m = mini(128);
        let t1 = run_sim(&m.tree, Some(&m.plans), &SimConfig::paper(1)).eval_time;
        let t4 = run_sim(&m.tree, Some(&m.plans), &SimConfig::paper(4)).eval_time;
        assert!(t4 < t1, "4 machines ({t4}µs) should beat 1 ({t1}µs)");
    }

    #[test]
    fn combined_beats_dynamic_mode() {
        let m = mini(128);
        let mut cfg = SimConfig::paper(4);
        let tc = run_sim(&m.tree, Some(&m.plans), &cfg).eval_time;
        cfg.mode = MachineMode::Dynamic;
        let td = run_sim(&m.tree, Some(&m.plans), &cfg).eval_time;
        assert!(tc < td, "combined ({tc}µs) should beat dynamic ({td}µs)");
    }

    #[test]
    fn librarian_beats_naive_result_propagation() {
        let m = mini(192);
        let mut cfg = SimConfig::paper(5);
        let tl = run_sim(&m.tree, Some(&m.plans), &cfg).eval_time;
        cfg.result = ResultPropagation::Naive;
        let tn = run_sim(&m.tree, Some(&m.plans), &cfg).eval_time;
        assert!(tl < tn, "librarian ({tl}µs) should beat naive ({tn}µs)");
    }

    #[test]
    fn naive_mode_produces_same_code() {
        let m = mini(32);
        let mut cfg = SimConfig::paper(3);
        cfg.result = ResultPropagation::Naive;
        let report = run_sim(&m.tree, Some(&m.plans), &cfg);
        let (dstore, _) = dynamic_eval(&m.tree).unwrap();
        let want = dstore
            .get(m.tree.root(), m.code)
            .and_then(|v| v.as_rope().cloned())
            .unwrap();
        assert!(root_code(&report, m.code).content_eq(&want));
    }

    #[test]
    fn report_exposes_trace_and_decomposition() {
        let m = mini(64);
        let report = run_sim(&m.tree, Some(&m.plans), &SimConfig::paper(3));
        assert_eq!(report.regions, 3);
        let gantt = report.render_gantt(72);
        assert!(gantt.contains("evaluator-a"));
        assert!(gantt.contains("legend"));
        assert!(report.decomposition.contains("regions"));
        assert!(report.stats.total_applied() > 0);
        // Most work is static in combined mode (§4.1).
        assert!(report.stats.dynamic_fraction() < 0.5);
    }

    #[test]
    fn determinism_of_the_full_pipeline() {
        let m = mini(49);
        let a = run_sim(&m.tree, Some(&m.plans), &SimConfig::paper(3)).eval_time;
        let b = run_sim(&m.tree, Some(&m.plans), &SimConfig::paper(3)).eval_time;
        assert_eq!(a, b);
    }
}
