//! The parallel compiler on the simulated network multiprocessor.
//!
//! Reproduces the paper's experimental configuration (§3): one
//! sequential parser process, N evaluator machines (one region each),
//! and a string-librarian process, communicating over a shared 10 Mbit
//! Ethernet modelled by [`paragram_netsim`]. Virtual CPU consumption is
//! derived from a [`CostModel`] calibrated to SUN-2-class hardware, so
//! the reported times are in "1987 seconds" and the *shape* of Figure 5
//! (speedups, crossovers, the non-monotonic tail) is reproduced
//! deterministically.
//!
//! The protocol is the paper's: the parser ships linearized subtrees;
//! evaluators evaluate, exchanging attribute values; synthesized
//! attributes of region roots travel up, inherited attributes of remote
//! subtree roots travel down; in librarian mode large code text goes to
//! the librarian once and only small descriptor ropes travel up the
//! process tree (§4.2). Each simulated evaluator's [`Machine`] holds a
//! region-local store ([`crate::tree::RegionStore`], O(region) slots),
//! matching the paper's setting where a machine only ever materializes
//! the subtree it was shipped — root attributes reach the parser as
//! messages, so the simulation never assembles a whole-tree store.

use crate::analysis::Plans;
use crate::eval::{AttrMsg, EvalError, EvalPlan, Machine, MachineMode, MachineScratch, SendTarget};
use crate::grammar::{AttrId, AttrKind};
use crate::parallel::policy::{DispatchPolicy, PolicyQueue, QueuedJob};
use crate::parallel::pool::{
    seed_placements, FaultCounters, InputLogs, JobLoc, SchedCounters, SchedulerMode, SegmentLedger,
    DEAD_LOAD,
};
use crate::split::{
    decompose, decompose_granular, Decomposition, RegionGranularity, RegionId, SplitConfig,
    SplitTable, WorkTable,
};
use crate::stats::EvalStats;
use crate::tree::{Child, NodeId, ParseTree};
use crate::value::AttrValue;
use paragram_netsim::{secs, Ctx, FaultPlan, NetModel, ProcId, Process, Sim, Time, Trace};
use paragram_rope::{Rope, SegmentId, SegmentStore};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::sync::Mutex;

use super::{classify, PhaseClassifier, ResultPropagation};

/// Virtual CPU cost constants (µs) mapping evaluator work onto 1987
/// hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Per rule-cost unit (semantic function execution).
    pub rule_unit_us: u64,
    /// Per dependency-graph task created (dynamic pipeline, Figure 1).
    pub graph_node_us: u64,
    /// Per dependency-graph edge created.
    pub graph_edge_us: u64,
    /// Scheduler overhead per dynamically applied rule.
    pub dynamic_rule_us: u64,
    /// Tree-walk overhead per statically applied rule.
    pub static_rule_us: u64,
    /// Parser cost per tree node built.
    pub parse_node_us: u64,
    /// Cost per node to linearize/rebuild a shipped subtree.
    pub ship_node_us: u64,
    /// Librarian cost per kilobyte when combining final code.
    pub resolve_kb_us: u64,
}

impl CostModel {
    /// Calibration for a SUN-2-class workstation (≈1 MIPS): semantic
    /// functions dominated by allocation, a dynamic-scheduler overhead
    /// per instance, and a much cheaper static tree walk.
    pub fn sun2() -> Self {
        CostModel {
            rule_unit_us: 120,
            graph_node_us: 80,
            graph_edge_us: 40,
            dynamic_rule_us: 120,
            static_rule_us: 25,
            parse_node_us: 180,
            ship_node_us: 40,
            resolve_kb_us: 150,
        }
    }
}

/// Everything configurable about one simulated parallel compilation.
#[derive(Clone)]
pub struct SimConfig {
    /// Number of evaluator machines (regions targeted by the splitter).
    pub machines: usize,
    /// Combined or purely dynamic evaluation.
    pub mode: MachineMode,
    /// Result propagation strategy (§4.2 ablation).
    pub result: ResultPropagation,
    /// Network model.
    pub net: NetModel,
    /// CPU cost model.
    pub cost: CostModel,
    /// Split-granularity scale (the paper's runtime argument).
    pub min_size_scale: f64,
    /// Attribute-name → phase label mapping for the activity trace.
    pub classifier: PhaseClassifier,
    /// Region-job placement for the batch/service simulations: the
    /// paper's fixed modular map ([`SchedulerMode::Fixed`], the
    /// default) or the same LPT-seeded, locality-aware work-stealing
    /// policy the live [`crate::parallel::pool::WorkerPool`] runs
    /// ([`SchedulerMode::Stealing`]). Ignored by [`run_sim`] (one
    /// region per machine leaves nothing to steal).
    pub scheduler: SchedulerMode,
}

impl SimConfig {
    /// Paper-like defaults for `machines` machines with the combined
    /// evaluator.
    pub fn paper(machines: usize) -> Self {
        SimConfig {
            machines,
            mode: MachineMode::Combined,
            result: ResultPropagation::Librarian,
            net: NetModel::lan_1987(),
            cost: CostModel::sun2(),
            min_size_scale: 1.0,
            classifier: super::phase_classifier(vec![
                ("stab", "symbol table"),
                ("env", "symbol table"),
                ("decl", "symbol table"),
                ("code", "code generation"),
            ]),
            scheduler: SchedulerMode::Fixed,
        }
    }

    /// The configuration with a different region-job scheduler.
    pub fn with_scheduler(self, scheduler: SchedulerMode) -> Self {
        SimConfig { scheduler, ..self }
    }
}

/// Result of one simulated parallel compilation.
pub struct SimReport<V> {
    /// The paper's running-time measure: "from the time the parser
    /// initiates evaluation until it receives back the root attributes".
    pub eval_time: Time,
    /// Parser time (reported separately, as in §4.1).
    pub parse_time: Time,
    /// Number of regions actually produced.
    pub regions: usize,
    /// Per-machine statistics.
    pub per_machine: Vec<EvalStats>,
    /// Aggregated statistics.
    pub stats: EvalStats,
    /// The activity/message trace (Figure 6).
    pub trace: Trace,
    /// Process names aligned with the trace.
    pub names: Vec<String>,
    /// Root attribute values (librarian-resolved).
    pub root_values: Vec<(AttrId, V)>,
    /// The decomposition rendered in Figure-7 style.
    pub decomposition: String,
}

impl<V> SimReport<V> {
    /// The evaluation time in seconds.
    pub fn eval_secs(&self) -> f64 {
        secs(self.eval_time)
    }

    /// Renders the Figure-6 activity chart.
    pub fn render_gantt(&self, width: usize) -> String {
        self.trace.render_gantt(&self.names, width)
    }
}

enum SimMsg<V> {
    Subtree(RegionId),
    Attr {
        node: NodeId,
        attr: AttrId,
        value: V,
    },
    Segment {
        id: SegmentId,
        text: Rope,
    },
    ResolveRoot,
    RootResolved,
}

struct Shared<V: AttrValue> {
    tree: Arc<ParseTree<V>>,
    /// Grammar-level artifacts shared by every simulated evaluator
    /// (one table build per simulation, not per region).
    plan: Arc<EvalPlan<V>>,
    decomp: Arc<Decomposition>,
    cost: CostModel,
    mode: MachineMode,
    result: ResultPropagation,
    classifier: PhaseClassifier,
    librarian: ProcId,
    parser: ProcId,
    eval_start: Mutex<Time>,
    eval_end: Mutex<Time>,
    root_values: Mutex<Vec<(AttrId, V)>>,
    segstore: Mutex<SegmentStore>,
    per_machine: Mutex<Vec<EvalStats>>,
    error: Mutex<Option<EvalError>>,
}

impl<V: AttrValue> Shared<V> {
    fn proc_of_region(&self, r: RegionId) -> ProcId {
        ProcId(1 + r as usize)
    }
}

/// Approximate linearized wire size of a region's local nodes.
fn region_wire_size<V: AttrValue>(
    tree: &ParseTree<V>,
    decomp: &Decomposition,
    region: RegionId,
) -> usize {
    let mut bytes = 0;
    let mut stack = vec![decomp.regions[region as usize].root];
    while let Some(n) = stack.pop() {
        bytes += 8;
        for c in &tree.node(n).children {
            match c {
                Child::Node(c) if decomp.region(*c) == region => stack.push(*c),
                Child::Node(_) => bytes += 8, // remote-leaf marker
                Child::Token(vals) => bytes += vals.iter().map(|v| v.wire_size()).sum::<usize>(),
            }
        }
    }
    bytes
}

struct ParserProc<V: AttrValue> {
    shared: Arc<Shared<V>>,
    expected_roots: usize,
}

impl<V: AttrValue> Process<SimMsg<V>> for ParserProc<V> {
    fn on_start(&mut self, ctx: &mut Ctx<SimMsg<V>>) {
        let sh = Arc::clone(&self.shared);
        ctx.phase("parse");
        ctx.spend(sh.tree.len() as Time * sh.cost.parse_node_us);
        ctx.phase("ship subtrees");
        // Linearize and ship each region (region 0 included: its
        // evaluator is a separate machine from the parser, as in the
        // paper's Figure 6 where evaluator `a` holds the root subtree).
        *sh.eval_start.lock().unwrap() = ctx.now();
        for r in 0..sh.decomp.len() as RegionId {
            let info = &sh.decomp.regions[r as usize];
            ctx.spend(info.local_size as Time * sh.cost.ship_node_us);
            let bytes = region_wire_size(&sh.tree, &sh.decomp, r);
            ctx.send(sh.proc_of_region(r), SimMsg::Subtree(r), bytes, "subtree");
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<SimMsg<V>>, _from: ProcId, msg: SimMsg<V>) {
        let sh = Arc::clone(&self.shared);
        match msg {
            SimMsg::Attr { attr, value, .. } => {
                ctx.phase("result propagation");
                let done = {
                    let mut roots = sh.root_values.lock().unwrap();
                    roots.push((attr, value));
                    roots.len() == self.expected_roots
                };
                if done {
                    match sh.result {
                        ResultPropagation::Naive => {
                            *sh.eval_end.lock().unwrap() = ctx.now();
                            ctx.stop();
                        }
                        ResultPropagation::Librarian => {
                            ctx.send(sh.librarian, SimMsg::ResolveRoot, 64, "resolve");
                        }
                    }
                }
            }
            SimMsg::RootResolved => {
                *sh.eval_end.lock().unwrap() = ctx.now();
                ctx.stop();
            }
            _ => {}
        }
    }
}

struct EvaluatorProc<V: AttrValue> {
    shared: Arc<Shared<V>>,
    region: RegionId,
    machine: Option<Machine<V>>,
    next_seg: u32,
}

impl<V: AttrValue> EvaluatorProc<V> {
    fn pump(&mut self, ctx: &mut Ctx<SimMsg<V>>) {
        let sh = Arc::clone(&self.shared);
        loop {
            let Some(machine) = self.machine.as_mut() else {
                return;
            };
            match machine.step() {
                Err(e) => {
                    *sh.error.lock().unwrap() = Some(e);
                    ctx.stop();
                    return;
                }
                Ok(None) => break,
                Ok(Some(outcome)) => {
                    let label = classify(sh.tree.grammar(), &sh.classifier, outcome.target);
                    ctx.phase(label);
                    ctx.spend(
                        outcome.cost_units * sh.cost.rule_unit_us
                            + outcome.dynamic_rules as Time * sh.cost.dynamic_rule_us
                            + outcome.static_rules as Time * sh.cost.static_rule_us,
                    );
                    for send in outcome.sends {
                        self.transmit(ctx, send);
                    }
                }
            }
        }
        let machine = self.machine.as_ref().expect("machine exists");
        self.shared.per_machine.lock().unwrap()[self.region as usize] = machine.stats();
    }

    fn transmit(&mut self, ctx: &mut Ctx<SimMsg<V>>, msg: AttrMsg<V>) {
        let sh = Arc::clone(&self.shared);
        let upward = match msg.to {
            SendTarget::Parser => true,
            SendTarget::Region(r) => Some(r) == sh.decomp.regions[self.region as usize].parent,
        };
        let mut value = msg.value;
        if upward && sh.result == ResultPropagation::Librarian {
            // Ship large code text to the librarian; pass a descriptor
            // rope up the process tree (§4.2).
            let region = self.region;
            let next = &mut self.next_seg;
            let mut segments: Vec<(SegmentId, Rope)> = Vec::new();
            let deflated = value.deflate(&mut |text: Rope| {
                let id = SegmentId::from_parts(region, *next);
                *next += 1;
                segments.push((id, text));
                id
            });
            if let Some(d) = deflated {
                value = d;
                ctx.phase("result propagation");
                for (id, text) in segments {
                    let bytes = text.physical_wire_size();
                    ctx.send(
                        sh.librarian,
                        SimMsg::Segment { id, text },
                        bytes,
                        "code-segment",
                    );
                }
            }
        }
        let dest = match msg.to {
            SendTarget::Parser => sh.parser,
            SendTarget::Region(r) => sh.proc_of_region(r),
        };
        let bytes = value.wire_size();
        ctx.send(
            dest,
            SimMsg::Attr {
                node: msg.node,
                attr: msg.attr,
                value,
            },
            bytes,
            "attr",
        );
    }
}

impl<V: AttrValue> Process<SimMsg<V>> for EvaluatorProc<V> {
    fn on_message(&mut self, ctx: &mut Ctx<SimMsg<V>>, _from: ProcId, msg: SimMsg<V>) {
        let sh = Arc::clone(&self.shared);
        match msg {
            SimMsg::Subtree(region) => {
                debug_assert_eq!(region, self.region);
                ctx.phase("build");
                let machine = Machine::from_plan(
                    &sh.plan,
                    &sh.tree,
                    &sh.decomp,
                    self.region,
                    sh.mode,
                    MachineScratch::new(),
                );
                let (gn, ge) = machine.graph_size();
                ctx.spend(
                    machine.local_nodes() as Time * sh.cost.ship_node_us
                        + gn as Time * sh.cost.graph_node_us
                        + ge as Time * sh.cost.graph_edge_us,
                );
                self.machine = Some(machine);
                self.pump(ctx);
            }
            SimMsg::Attr { node, attr, value } => {
                if let Some(m) = self.machine.as_mut() {
                    m.provide(node, attr, value);
                }
                self.pump(ctx);
            }
            _ => {}
        }
    }
}

struct LibrarianProc<V: AttrValue> {
    shared: Arc<Shared<V>>,
}

impl<V: AttrValue> Process<SimMsg<V>> for LibrarianProc<V> {
    fn on_message(&mut self, ctx: &mut Ctx<SimMsg<V>>, from: ProcId, msg: SimMsg<V>) {
        let sh = Arc::clone(&self.shared);
        match msg {
            SimMsg::Segment { id, text } => {
                ctx.phase("receive code");
                ctx.spend((text.len() as Time).div_ceil(1024) * sh.cost.resolve_kb_us / 10);
                sh.segstore.lock().unwrap().register(id, text);
            }
            SimMsg::ResolveRoot => {
                ctx.phase("combine code");
                let total = sh.segstore.lock().unwrap().total_bytes();
                ctx.spend((total as Time).div_ceil(1024) * sh.cost.resolve_kb_us);
                ctx.send(from, SimMsg::RootResolved, 64, "resolved");
            }
            _ => {}
        }
    }
}

/// Runs one simulated parallel compilation of `tree`.
///
/// `plans` must be `Some` for [`MachineMode::Combined`].
///
/// # Panics
///
/// Panics if evaluation fails (cycle or plan inconsistency) or if the
/// protocol deadlocks — validate the grammar with the sequential
/// evaluators first.
pub fn run_sim<V: AttrValue>(
    tree: &Arc<ParseTree<V>>,
    plans: Option<&Arc<Plans>>,
    config: &SimConfig,
) -> SimReport<V> {
    let decomp = Arc::new(decompose(
        tree,
        SplitConfig {
            target_regions: config.machines,
            min_size_scale: config.min_size_scale,
        },
    ));
    let regions = decomp.len();
    let g = tree.grammar();
    let root_sym = g.prod(tree.node(tree.root()).prod).lhs;
    let expected_roots = g.symbol(root_sym).attrs_of_kind(AttrKind::Syn).count();

    let shared = Arc::new(Shared {
        tree: Arc::clone(tree),
        plan: Arc::new(EvalPlan::from_parts(tree.grammar(), plans.cloned(), None)),
        decomp: Arc::clone(&decomp),
        cost: config.cost,
        mode: config.mode,
        result: config.result,
        classifier: Arc::clone(&config.classifier),
        librarian: ProcId(1 + regions),
        parser: ProcId(0),
        eval_start: Mutex::new(0),
        eval_end: Mutex::new(0),
        root_values: Mutex::new(Vec::new()),
        segstore: Mutex::new(SegmentStore::new()),
        per_machine: Mutex::new(vec![EvalStats::default(); regions]),
        error: Mutex::new(None),
    });

    let mut sim: Sim<SimMsg<V>> = Sim::new(config.net);
    sim.add_process(
        "parser",
        ParserProc {
            shared: Arc::clone(&shared),
            expected_roots,
        },
    );
    for r in 0..regions {
        let letter = (b'a' + (r % 26) as u8) as char;
        sim.add_process(
            format!("evaluator-{letter}"),
            EvaluatorProc {
                shared: Arc::clone(&shared),
                region: r as RegionId,
                machine: None,
                next_seg: 0,
            },
        );
    }
    sim.add_process(
        "librarian",
        LibrarianProc {
            shared: Arc::clone(&shared),
        },
    );
    sim.run();

    if let Some(e) = shared.error.lock().unwrap().take() {
        panic!("parallel evaluation failed: {e}");
    }
    let eval_start = *shared.eval_start.lock().unwrap();
    let eval_end = *shared.eval_end.lock().unwrap();
    assert!(
        eval_end >= eval_start && eval_end > 0,
        "simulation ended without root attributes (deadlock?)"
    );

    let per_machine = shared.per_machine.lock().unwrap().clone();
    let mut stats = EvalStats::default();
    for s in &per_machine {
        stats += *s;
    }
    let store = shared.segstore.lock().unwrap();
    let root_values: Vec<(AttrId, V)> = shared
        .root_values
        .lock()
        .unwrap()
        .iter()
        .map(|(a, v)| (*a, v.inflate(&store)))
        .collect();
    drop(store);

    SimReport {
        eval_time: eval_end - eval_start,
        parse_time: eval_start,
        regions,
        per_machine,
        stats,
        trace: sim.trace().clone(),
        names: sim.names().to_vec(),
        root_values,
        decomposition: decomp.render(tree),
    }
}

// ---------------------------------------------------------------------
// Batched simulation: a stream of trees through one simulated machine
// park, with the pool's split-phase / ticket-window schedule.
// ---------------------------------------------------------------------

/// Result of one simulated *batched* parallel compilation.
pub struct BatchSimReport<V> {
    /// Evaluation makespan: from the parser initiating the first tree's
    /// evaluation until the last tree's root attributes are resolved.
    pub makespan: Time,
    /// Per-tree completion times, measured from the same origin (the
    /// start of evaluation), in submission order.
    pub finish_times: Vec<Time>,
    /// Parser time for the whole stream (reported separately, §4.1).
    pub parse_time: Time,
    /// Regions each tree was decomposed into.
    pub regions: Vec<usize>,
    /// Aggregated statistics over every tree and machine.
    pub stats: EvalStats,
    /// Per-evaluator statistics accumulated across the stream.
    pub per_machine: Vec<EvalStats>,
    /// The activity/message trace.
    pub trace: Trace,
    /// Process names aligned with the trace.
    pub names: Vec<String>,
    /// Per-tree root attribute values (librarian-resolved).
    pub root_values: Vec<Vec<(AttrId, V)>>,
    /// Steal-scheduler telemetry for the run (all zeros under
    /// [`SchedulerMode::Fixed`]).
    pub sched: SchedCounters,
    /// Crash/re-execution/duplicate-suppression telemetry (all zeros
    /// when the [`FaultPlan`] is empty).
    pub faults: FaultCounters,
}

impl<V> BatchSimReport<V> {
    /// The makespan in seconds.
    pub fn makespan_secs(&self) -> f64 {
        secs(self.makespan)
    }
}

enum BatchMsg<V> {
    Subtree {
        ticket: usize,
        region: RegionId,
    },
    Attr {
        ticket: usize,
        /// Destination region (an evaluator machine hosts several
        /// regions under region-granular scheduling). Ignored for
        /// parser-bound root attributes.
        region: RegionId,
        node: NodeId,
        attr: AttrId,
        value: V,
    },
    /// Split-phase registration: streams in during evaluation.
    Register {
        ticket: usize,
        id: SegmentId,
        text: Rope,
    },
    /// A region's machine ran to completion (the pool's `Done`); the
    /// parser retires a ticket — freeing its window slot — only after
    /// every region reports.
    Done {
        ticket: usize,
    },
    /// The parser's final read for one ticket.
    Resolve {
        ticket: usize,
    },
    Resolved {
        ticket: usize,
    },
    /// Open-arrival service only: a [`Ctx::wake_at`] alarm telling the
    /// parser that request `ticket` just arrived. Evaluators and the
    /// librarian never see it.
    Arrive {
        ticket: usize,
    },
    /// Stealing scheduler only: the parser seeded new region jobs —
    /// every evaluator gets one so idle machines can claim or steal
    /// (mirrors the live pool's `WorkerMsg::Wake` broadcast).
    Wake,
}

/// A seeded-but-unclaimed region job in the simulated stealing
/// scheduler — the simulator's `PendingJob`. The subtree data itself
/// is not stored (the sim reads trees from [`BatchShared`]); `bytes`
/// remembers the wire size so a claim can charge the transfer.
struct SimJob<V> {
    ticket: usize,
    region: RegionId,
    /// Estimated work — the LPT seeding key and load-account unit.
    work: u64,
    /// Wire size of the linearized region subtree.
    bytes: usize,
    /// Attribute values that arrived before the job was claimed; they
    /// migrate with the job on a steal, exactly like the live pool's
    /// `PendingJob::early`.
    early: Vec<(NodeId, AttrId, V)>,
}

/// The simulated stealing scheduler's shared state — the mirror of the
/// live pool's `SchedState` plus its counters. One mutex guards the
/// deques, the job-location table, and the per-machine load accounts;
/// the event simulation is single-threaded, so the mutex is really a
/// stand-in for "the shared scheduler board every machine can reach".
struct SimSched<V> {
    deques: Vec<VecDeque<SimJob<V>>>,
    table: HashMap<(usize, RegionId), JobLoc>,
    load: Vec<u64>,
    /// Each machine's local clock at the end of its last handler. The
    /// event simulation runs one handler atomically even though its
    /// CPU spend advances the machine's clock, so without a guard the
    /// first machine woken would claim *and steal* every seeded job
    /// before its peers' wakes are even delivered. A thief may steal
    /// from a victim only when `busy_until[victim] > now`: the victim
    /// provably cannot reach its own deque before the thief — which is
    /// exactly the "steal from a busy machine" the live pool's real
    /// concurrency produces.
    busy_until: Vec<Time>,
    counters: SchedCounters,
    /// Which machines are currently down (crash-injected). A dead
    /// machine's load account is pinned at [`DEAD_LOAD`] so seeding and
    /// reseeding never choose it; steal victim selection skips it
    /// explicitly.
    dead: Vec<bool>,
    /// Per-region input logs, keyed `(ticket, region)` — the recovery
    /// substrate, mirroring the live pool's `SchedState::logs`. Every
    /// boundary value is appended at *send* time (so values still on
    /// the wire when their destination dies are not lost), and a
    /// `(node, attr)` already present marks a re-executed producer
    /// replaying its sends — the duplicate is suppressed and counted.
    /// The board lives outside any machine: it is the sim's stable
    /// storage, exactly like the pool parser's retained state.
    logs: InputLogs<usize, V>,
    /// Crash/re-execution/duplicate telemetry for the run.
    faults: FaultCounters,
}

struct BatchShared<V: AttrValue> {
    trees: Vec<Arc<ParseTree<V>>>,
    decomps: Vec<Arc<Decomposition>>,
    plan: Arc<EvalPlan<V>>,
    cost: CostModel,
    mode: MachineMode,
    result: ResultPropagation,
    classifier: PhaseClassifier,
    librarian: ProcId,
    parser: ProcId,
    depth: usize,
    /// Evaluator machine park size; region r lives on machine r mod
    /// park (identity when every tree has ≤ park regions).
    park: usize,
    /// Whether placement rotates by ticket (adaptive granularity).
    rotate: bool,
    /// Fixed modular placement vs. the LPT-seeded stealing policy.
    scheduler: SchedulerMode,
    /// Network model copy, for charging a stolen job's subtree fetch.
    net: NetModel,
    sched: Mutex<SimSched<V>>,
    expected_roots: Vec<usize>,
    eval_start: Mutex<Time>,
    finish: Mutex<Vec<Time>>,
    root_values: Mutex<Vec<Vec<(AttrId, V)>>>,
    segstores: Mutex<HashMap<usize, SegmentStore>>,
    per_machine: Mutex<Vec<EvalStats>>,
    error: Mutex<Option<EvalError>>,
}

impl<V: AttrValue> BatchShared<V> {
    /// Under adaptive granularity region r of ticket t runs on machine
    /// (r + t) mod park: decompositions are machine-agnostic, and the
    /// rotation spreads consecutive trees' low-numbered regions over
    /// the whole park (without it, machine 0 would host region 0 of
    /// *every* tree and the tail machines would starve whenever a tree
    /// has fewer regions than the park). Fixed-count granularity keeps
    /// the paper's "region k on machine k" placement.
    fn proc_of_region(&self, ticket: usize, r: RegionId) -> ProcId {
        let offset = if self.rotate { ticket } else { 0 };
        ProcId(1 + (r as usize + offset) % self.park)
    }
}

struct BatchParserProc<V: AttrValue> {
    shared: Arc<BatchShared<V>>,
    /// Next ticket whose subtrees have not been shipped yet.
    next_ship: usize,
    /// Next ticket to resolve (strictly in submission order, matching
    /// the pool's FIFO retirement).
    next_resolve: usize,
    /// Whether a Resolve for `next_resolve` is outstanding.
    resolving: bool,
    /// Per-ticket count of regions whose machines have reported done
    /// (the pool retires — and frees a window slot — only then).
    region_dones: Vec<usize>,
    finished: usize,
}

/// Ships one ticket's region subtrees to their evaluator machines (the
/// parser role's dispatch step, shared by the batch and service
/// parsers).
///
/// Fixed placement sends each region's linearized subtree straight to
/// its modular home. Under the stealing scheduler the parser instead
/// *seeds*: it linearizes each region (same per-node cost), registers
/// the job on its seeded machine's deque — placement chosen by the
/// deployed [`seed_placements`] policy against the park's live load
/// accounts — and broadcasts a small wake so idle machines can claim
/// or steal. The subtree transfer is then charged to whichever machine
/// claims the job (a point-to-point fetch at bus rate; steals of
/// seeded-but-unclaimed jobs re-fetch nothing extra since the data
/// only ever moves once, to the claimer).
fn ship_regions<V: AttrValue>(sh: &BatchShared<V>, ctx: &mut Ctx<BatchMsg<V>>, ticket: usize) {
    ctx.phase("ship subtrees");
    let decomp = &sh.decomps[ticket];
    if sh.scheduler == SchedulerMode::Stealing {
        let work: Vec<u64> = (0..decomp.len())
            .map(|r| {
                sh.plan
                    .region_work(&sh.trees[ticket], decomp, r as RegionId)
                    .max(1)
            })
            .collect();
        let mut st = sh.sched.lock().unwrap();
        let mut load = std::mem::take(&mut st.load);
        let placements = seed_placements(decomp, &work, &mut load);
        st.load = load;
        for (r, &w) in placements.iter().enumerate() {
            let rid = r as RegionId;
            let info = &decomp.regions[r];
            ctx.spend(info.local_size as Time * sh.cost.ship_node_us);
            st.table.insert((ticket, rid), JobLoc::Queued(w));
            st.deques[w].push_back(SimJob {
                ticket,
                region: rid,
                work: work[r],
                bytes: region_wire_size(&sh.trees[ticket], decomp, rid),
                early: Vec::new(),
            });
        }
        // Wake every live machine: idle ones with empty deques can
        // steal. Dead machines get nothing — their reseeded jobs are
        // already on survivors' deques.
        let alive: Vec<usize> = (0..sh.park).filter(|&w| !st.dead[w]).collect();
        drop(st);
        for w in alive {
            ctx.send(ProcId(1 + w), BatchMsg::Wake, 16, "wake");
        }
        return;
    }
    for r in 0..decomp.len() as RegionId {
        let info = &decomp.regions[r as usize];
        ctx.spend(info.local_size as Time * sh.cost.ship_node_us);
        let bytes = region_wire_size(&sh.trees[ticket], decomp, r);
        ctx.send(
            sh.proc_of_region(ticket, r),
            BatchMsg::Subtree { ticket, region: r },
            bytes,
            "subtree",
        );
    }
}

/// The parser's response to the failure detector's crash oracle — the
/// sim mirror of [`crate::parallel::pool::WorkerPool::kill_worker`]'s
/// recovery half, shared by the batch and service parsers.
///
/// Every region job living on the dead machine — queued in its deque
/// or active on it — is reconstituted as a fresh pending job and
/// reseeded onto the least-loaded survivors, then a wake lets them
/// claim. Each lost job's early values are replayed from the shared
/// board's input log, which survives the crash (values still on the
/// wire at crash time were logged at send, so nothing is lost;
/// [`Machine::provide`] drops any duplicate the replay re-delivers).
/// Regions that already reported Done have no table entry and are not
/// re-executed; duplicate sends from half-finished lost regions are
/// suppressed content-keyed at transmit time.
fn recover_regions<V: AttrValue>(sh: &BatchShared<V>, ctx: &mut Ctx<BatchMsg<V>>, peer: ProcId) {
    if sh.scheduler != SchedulerMode::Stealing {
        return;
    }
    // Only evaluator machines are recoverable; the entry points reject
    // fault plans that crash the parser or the librarian.
    let Some(victim) = peer.0.checked_sub(1).filter(|&w| w < sh.park) else {
        return;
    };
    let alive: Vec<usize> = {
        let mut st = sh.sched.lock().expect("sim scheduler lock");
        if st.dead[victim] {
            return;
        }
        st.dead[victim] = true;
        // Everything queued on the victim migrates; every job *active*
        // on it is lost mid-run and rebuilt from scratch.
        let mut lost: Vec<SimJob<V>> = st.deques[victim].drain(..).collect();
        let actives: Vec<(usize, RegionId)> = st
            .table
            .iter()
            .filter_map(|(&key, loc)| match loc {
                JobLoc::Active(w) if *w == victim => Some(key),
                _ => None,
            })
            .collect();
        for &(ticket, region) in &actives {
            let work = sh
                .plan
                .region_work(&sh.trees[ticket], &sh.decomps[ticket], region)
                .max(1);
            lost.push(SimJob {
                ticket,
                region,
                work,
                bytes: region_wire_size(&sh.trees[ticket], &sh.decomps[ticket], region),
                early: Vec::new(),
            });
        }
        st.load[victim] = DEAD_LOAD;
        // A queued job's accumulated early values may miss deliveries
        // that were still on the wire; the input log has everything
        // sent so far, so every lost job replays the full log.
        for job in &mut lost {
            job.early = st
                .logs
                .get(&(job.ticket, job.region))
                .cloned()
                .unwrap_or_default();
        }
        // Deterministic reseed order, least-loaded survivor first.
        lost.sort_by_key(|j| (j.ticket, j.region));
        st.faults.crashes += 1;
        st.faults.regions_reexecuted += lost.len() as u64;
        for job in lost {
            let w = (0..sh.park)
                .filter(|&w| !st.dead[w])
                .min_by_key(|&w| (st.load[w], w))
                // No survivor: park on the victim's own deque until a
                // restart rejoins and claims it.
                .unwrap_or(victim);
            st.load[w] = st.load[w].saturating_add(job.work);
            st.table.insert((job.ticket, job.region), JobLoc::Queued(w));
            st.deques[w].push_back(job);
        }
        (0..sh.park).filter(|&w| !st.dead[w]).collect()
    };
    for w in alive {
        ctx.send(ProcId(1 + w), BatchMsg::Wake, 16, "wake");
    }
}

impl<V: AttrValue> BatchParserProc<V> {
    fn ship(&mut self, ctx: &mut Ctx<BatchMsg<V>>, ticket: usize) {
        let sh = Arc::clone(&self.shared);
        ship_regions(&sh, ctx, ticket);
    }

    /// Resolves (or directly finishes, in naive mode) every ticket
    /// whose roots are complete and whose regions have all reported
    /// done, strictly in order — only then does the pool retire a tree
    /// and free its window slot — keeping the ship window full as
    /// tickets finish.
    fn advance(&mut self, ctx: &mut Ctx<BatchMsg<V>>) {
        let sh = Arc::clone(&self.shared);
        while !self.resolving && self.next_resolve < sh.trees.len() {
            let complete = {
                let roots = sh.root_values.lock().unwrap();
                roots[self.next_resolve].len() == sh.expected_roots[self.next_resolve]
                    && self.region_dones[self.next_resolve] == sh.decomps[self.next_resolve].len()
            };
            if !complete {
                return;
            }
            match sh.result {
                ResultPropagation::Librarian => {
                    ctx.phase("result propagation");
                    ctx.send(
                        sh.librarian,
                        BatchMsg::Resolve {
                            ticket: self.next_resolve,
                        },
                        64,
                        "resolve",
                    );
                    self.resolving = true;
                }
                ResultPropagation::Naive => {
                    let t = self.next_resolve;
                    self.finish_ticket(ctx, t);
                }
            }
        }
    }

    fn finish_ticket(&mut self, ctx: &mut Ctx<BatchMsg<V>>, ticket: usize) {
        let sh = Arc::clone(&self.shared);
        sh.finish.lock().unwrap()[ticket] = ctx.now();
        self.finished += 1;
        self.next_resolve = ticket + 1;
        self.resolving = false;
        // Retirement frees a window slot: dispatch the next tree.
        if self.next_ship < sh.trees.len() {
            let t = self.next_ship;
            self.next_ship += 1;
            self.ship(ctx, t);
        }
        if self.finished == sh.trees.len() {
            ctx.stop();
        }
    }
}

impl<V: AttrValue> Process<BatchMsg<V>> for BatchParserProc<V> {
    fn on_start(&mut self, ctx: &mut Ctx<BatchMsg<V>>) {
        let sh = Arc::clone(&self.shared);
        ctx.phase("parse");
        let nodes: usize = sh.trees.iter().map(|t| t.len()).sum();
        ctx.spend(nodes as Time * sh.cost.parse_node_us);
        *sh.eval_start.lock().unwrap() = ctx.now();
        // Fill the pipeline window.
        while self.next_ship < sh.trees.len().min(sh.depth) {
            let t = self.next_ship;
            self.next_ship += 1;
            self.ship(ctx, t);
        }
        // Degenerate trees with no root attributes complete at once.
        self.advance(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<BatchMsg<V>>, _from: ProcId, msg: BatchMsg<V>) {
        let sh = Arc::clone(&self.shared);
        match msg {
            BatchMsg::Attr {
                ticket,
                attr,
                value,
                ..
            } => {
                ctx.phase("result propagation");
                {
                    // A re-executed root region re-sends its roots;
                    // each root attribute is unique per ticket, so
                    // presence is the idempotency key (the pool's
                    // exact rule).
                    let mut roots = sh.root_values.lock().unwrap();
                    if roots[ticket].iter().any(|(a, _)| *a == attr) {
                        drop(roots);
                        sh.sched.lock().unwrap().faults.dup_suppressed += 1;
                        return;
                    }
                    roots[ticket].push((attr, value));
                }
                self.advance(ctx);
            }
            BatchMsg::Done { ticket } => {
                self.region_dones[ticket] += 1;
                self.advance(ctx);
            }
            BatchMsg::Resolved { ticket } => {
                debug_assert_eq!(ticket, self.next_resolve);
                self.finish_ticket(ctx, ticket);
                self.advance(ctx);
            }
            _ => {}
        }
    }

    fn on_peer_crash(&mut self, ctx: &mut Ctx<BatchMsg<V>>, peer: ProcId) {
        recover_regions(&self.shared, ctx, peer);
    }
}

/// One active machine on a simulated evaluator (mirrors the pool
/// worker's `Running` entry). The region is recoverable from the
/// machine itself ([`Machine::region`]).
struct BatchRunning<V: AttrValue> {
    ticket: usize,
    machine: Machine<V>,
    next_seg: u32,
    /// Estimated work, returned to this machine's load account at
    /// retirement (stealing scheduler only; 0 under fixed placement).
    work: u64,
}

struct BatchEvaluatorProc<V: AttrValue> {
    shared: Arc<BatchShared<V>>,
    /// This machine's index in the park; it hosts region r of every
    /// tree whenever r mod park == evaluator.
    evaluator: usize,
    /// Active machines in (ticket, region) job order, multiplexed
    /// oldest-first exactly like a pool worker: a starved older machine
    /// yields the (virtual) CPU to the next job's machine instead of
    /// idling.
    running: Vec<BatchRunning<V>>,
    /// Attribute values that raced ahead of their region's subtree,
    /// keyed (ticket, region).
    parked: Vec<(usize, RegionId, NodeId, AttrId, V)>,
}

impl<V: AttrValue> BatchEvaluatorProc<V> {
    /// Steps machines oldest-first until every one is starved,
    /// retiring finished machines (mirrors the pool worker loop; CPU
    /// consumption is serialized on this process by `ctx.spend`).
    fn pump(&mut self, ctx: &mut Ctx<BatchMsg<V>>) {
        let sh = Arc::clone(&self.shared);
        let mut i = 0;
        while i < self.running.len() {
            let ticket = self.running[i].ticket;
            match self.running[i].machine.step() {
                Err(e) => {
                    *sh.error.lock().unwrap() = Some(e);
                    ctx.stop();
                    return;
                }
                Ok(None) => {
                    if self.running[i].machine.is_done() {
                        let stats = self.running[i].machine.stats();
                        sh.per_machine.lock().unwrap()[self.evaluator] += stats;
                        if sh.scheduler == SchedulerMode::Stealing {
                            // Retire from the scheduler board: an
                            // absent table entry reads as "finished"
                            // on every routing path.
                            let region = self.running[i].machine.region();
                            let work = self.running[i].work;
                            let mut st = sh.sched.lock().unwrap();
                            st.table.remove(&(ticket, region));
                            st.load[self.evaluator] = st.load[self.evaluator].saturating_sub(work);
                        }
                        ctx.send(sh.parser, BatchMsg::Done { ticket }, 16, "done");
                        self.running.remove(i);
                    } else {
                        i += 1; // starved: let the next job's machine run
                    }
                }
                Ok(Some(outcome)) => {
                    let label =
                        classify(sh.trees[ticket].grammar(), &sh.classifier, outcome.target);
                    ctx.phase(label);
                    ctx.spend(
                        outcome.cost_units * sh.cost.rule_unit_us
                            + outcome.dynamic_rules as Time * sh.cost.dynamic_rule_us
                            + outcome.static_rules as Time * sh.cost.static_rule_us,
                    );
                    for send in outcome.sends {
                        self.transmit(ctx, i, send);
                    }
                }
            }
        }
    }

    fn transmit(&mut self, ctx: &mut Ctx<BatchMsg<V>>, idx: usize, msg: AttrMsg<V>) {
        let sh = Arc::clone(&self.shared);
        let ticket = self.running[idx].ticket;
        let region = self.running[idx].machine.region();
        let decomp = &sh.decomps[ticket];
        let upward = match msg.to {
            SendTarget::Parser => true,
            SendTarget::Region(r) => Some(r) == decomp.regions[region as usize].parent,
        };
        let mut value = msg.value;
        if upward && sh.result == ResultPropagation::Librarian {
            // Registration phase of the split-phase protocol: large
            // code text streams to the librarian mid-evaluation, tagged
            // with this tree's ticket.
            let next = &mut self.running[idx].next_seg;
            let mut segments: Vec<(SegmentId, Rope)> = Vec::new();
            let deflated = value.deflate(&mut |text: Rope| {
                let id = SegmentId::from_parts(region, *next);
                *next += 1;
                segments.push((id, text));
                id
            });
            if let Some(d) = deflated {
                value = d;
                ctx.phase("result propagation");
                for (id, text) in segments {
                    let bytes = text.physical_wire_size();
                    ctx.send(
                        sh.librarian,
                        BatchMsg::Register { ticket, id, text },
                        bytes,
                        "code-segment",
                    );
                }
            }
        }
        let (dest, dest_region) = match msg.to {
            SendTarget::Parser => (sh.parser, 0),
            SendTarget::Region(r) if sh.scheduler == SchedulerMode::Stealing => {
                // Route via the job-location table, not the modular
                // map: the job may have been seeded elsewhere or
                // stolen. An absent entry means the region already
                // finished — the value is no longer needed.
                let mut st = sh.sched.lock().unwrap();
                let w = match st.table.get(&(ticket, r)) {
                    Some(&(JobLoc::Queued(w) | JobLoc::Active(w))) => w,
                    None => return,
                };
                // Idempotent delivery: every value bound for a live
                // job is appended to its input log at send time, so a
                // crash cannot lose values still on the wire (recovery
                // replays the log). A `(node, attr)` already logged is
                // a re-executed producer replaying its sends — the
                // duplicate is suppressed, and outputs stay
                // byte-identical.
                let dup = {
                    let log = st.logs.entry((ticket, r)).or_default();
                    if log.iter().any(|&(n, a, _)| n == msg.node && a == msg.attr) {
                        true
                    } else {
                        log.push((msg.node, msg.attr, value.clone()));
                        false
                    }
                };
                if dup {
                    st.faults.dup_suppressed += 1;
                    return;
                }
                if w == self.evaluator {
                    st.counters.local_sends += 1;
                } else {
                    st.counters.remote_sends += 1;
                }
                (ProcId(1 + w), r)
            }
            SendTarget::Region(r) => (sh.proc_of_region(ticket, r), r),
        };
        let bytes = value.wire_size();
        ctx.send(
            dest,
            BatchMsg::Attr {
                ticket,
                region: dest_region,
                node: msg.node,
                attr: msg.attr,
                value,
            },
            bytes,
            "attr",
        );
    }

    /// Stealing-scheduler drive loop, mirroring the live worker's
    /// drain → claim-or-steal → block cycle: steps every running
    /// machine until starved, then claims the front of this machine's
    /// own deque — or steals the largest pending job from the
    /// most-loaded victim — and activates it, until no work is left
    /// anywhere.
    /// Pumps, claims at most ONE pending job, pumps it, and — if a job
    /// was claimed — chains a zero-cost self-wake to look for the next
    /// one. The live worker claims one job per loop iteration with a
    /// channel drain in between; claiming the whole deque inside one
    /// atomic handler would make every queued job vanish before any
    /// peer's events interleave, leaving nothing stealable and
    /// un-modelling exactly the window work stealing exists for.
    fn claim_and_pump(&mut self, ctx: &mut Ctx<BatchMsg<V>>) {
        self.pump(ctx);
        if self.claim_one(ctx) {
            self.pump(ctx);
            ctx.wake_at(ctx.now(), BatchMsg::Wake);
        }
    }

    /// Claims one pending job (own deque front first, else a steal)
    /// and activates it: charges the subtree fetch and machine build,
    /// replays early-arrival values, and enters it into `running`.
    /// Returns `false` when every deque is empty.
    fn claim_one(&mut self, ctx: &mut Ctx<BatchMsg<V>>) -> bool {
        let sh = Arc::clone(&self.shared);
        let me = self.evaluator;
        let claimed = {
            let mut st = sh.sched.lock().unwrap();
            let job = match st.deques[me].pop_front() {
                Some(job) => Some(job),
                None => {
                    let now = ctx.now();
                    let victim = (0..st.deques.len())
                        .filter(|&w| {
                            !st.dead[w] && !st.deques[w].is_empty() && st.busy_until[w] > now
                        })
                        .max_by_key(|&w| (st.load[w], w));
                    victim.and_then(|v| {
                        let (mut best, mut best_work) = (None, 0u64);
                        for (i, j) in st.deques[v].iter().enumerate().rev() {
                            if j.work > best_work
                                && st.busy_until[v] > now + 2 * sh.net.tx_time(j.bytes)
                            {
                                (best, best_work) = (Some(i), j.work);
                            }
                        }
                        let job = st.deques[v].remove(best?).expect("index in range");
                        st.load[v] = st.load[v].saturating_sub(job.work);
                        st.load[me] += job.work;
                        st.counters.steals += 1;
                        st.counters.migrated_attrs += job.early.len() as u64;
                        Some(job)
                    })
                }
            };
            if let Some(j) = &job {
                st.table.insert((j.ticket, j.region), JobLoc::Active(me));
            }
            job
        };
        let Some(job) = claimed else { return false };
        let SimJob {
            ticket,
            region,
            work,
            bytes,
            early,
        } = job;
        // Fetch the linearized subtree (point-to-point pull at bus
        // rate — charged to the claimer, wherever the job ended up),
        // then build the machine exactly as fixed placement does on
        // `Subtree` arrival.
        ctx.phase("ship subtrees");
        ctx.spend(sh.net.tx_time(bytes));
        ctx.phase("build");
        let mut machine = Machine::from_plan(
            &sh.plan,
            &sh.trees[ticket],
            &sh.decomps[ticket],
            region,
            sh.mode,
            MachineScratch::new(),
        );
        let (gn, ge) = machine.graph_size();
        ctx.spend(
            machine.local_nodes() as Time * sh.cost.ship_node_us
                + gn as Time * sh.cost.graph_node_us
                + ge as Time * sh.cost.graph_edge_us,
        );
        for (node, attr, value) in early {
            machine.provide(node, attr, value);
        }
        // Stolen jobs activate out of submission order; keep `running`
        // sorted so the pump's oldest-first preference holds.
        let pos = self
            .running
            .partition_point(|r| (r.ticket, r.machine.region()) < (ticket, region));
        self.running.insert(
            pos,
            BatchRunning {
                ticket,
                machine,
                next_seg: 0,
                work,
            },
        );
        true
    }

    /// Delivers an attribute value under the stealing scheduler. The
    /// sender routed it by the location table, but the job may have
    /// moved (or finished) while the message was on the wire: a value
    /// for a job still queued *here* attaches to the pending job (so a
    /// later steal migrates it), a value for a job active here feeds
    /// the running machine, a value for a job that moved is forwarded
    /// to its new home, and a value for a finished job is dropped.
    fn route_attr(
        &mut self,
        ctx: &mut Ctx<BatchMsg<V>>,
        ticket: usize,
        region: RegionId,
        node: NodeId,
        attr: AttrId,
        value: V,
    ) {
        enum Routed<V> {
            Stored,
            Mine(V),
            Forward(usize, V),
            Dropped,
        }
        let sh = Arc::clone(&self.shared);
        let me = self.evaluator;
        let routed = {
            let mut st = sh.sched.lock().unwrap();
            match st.table.get(&(ticket, region)).copied() {
                Some(JobLoc::Queued(w)) if w == me => {
                    let job = st.deques[me]
                        .iter_mut()
                        .find(|j| j.ticket == ticket && j.region == region)
                        .expect("a Queued(me) job is in my deque");
                    job.early.push((node, attr, value));
                    Routed::Stored
                }
                Some(JobLoc::Active(w)) if w == me => Routed::Mine(value),
                Some(JobLoc::Queued(w) | JobLoc::Active(w)) => Routed::Forward(w, value),
                None => Routed::Dropped,
            }
        };
        match routed {
            Routed::Mine(value) => {
                if let Some(r) = self
                    .running
                    .iter_mut()
                    .find(|r| r.ticket == ticket && r.machine.region() == region)
                {
                    r.machine.provide(node, attr, value);
                }
                self.claim_and_pump(ctx);
            }
            Routed::Stored => self.claim_and_pump(ctx),
            Routed::Forward(w, value) => {
                let bytes = value.wire_size();
                ctx.send(
                    ProcId(1 + w),
                    BatchMsg::Attr {
                        ticket,
                        region,
                        node,
                        attr,
                        value,
                    },
                    bytes,
                    "attr",
                );
            }
            Routed::Dropped => {}
        }
    }
}

impl<V: AttrValue> Process<BatchMsg<V>> for BatchEvaluatorProc<V> {
    fn on_message(&mut self, ctx: &mut Ctx<BatchMsg<V>>, _from: ProcId, msg: BatchMsg<V>) {
        let sh = Arc::clone(&self.shared);
        match msg {
            BatchMsg::Subtree { ticket, region } => {
                debug_assert_eq!(
                    sh.proc_of_region(ticket, region),
                    ProcId(1 + self.evaluator),
                    "subtree shipped to the wrong machine"
                );
                ctx.phase("build");
                let mut machine = Machine::from_plan(
                    &sh.plan,
                    &sh.trees[ticket],
                    &sh.decomps[ticket],
                    region,
                    sh.mode,
                    MachineScratch::new(),
                );
                let (gn, ge) = machine.graph_size();
                ctx.spend(
                    machine.local_nodes() as Time * sh.cost.ship_node_us
                        + gn as Time * sh.cost.graph_node_us
                        + ge as Time * sh.cost.graph_edge_us,
                );
                // Replay values that arrived before this machine existed.
                let mut i = 0;
                while i < self.parked.len() {
                    if (self.parked[i].0, self.parked[i].1) == (ticket, region) {
                        let (_, _, node, attr, value) = self.parked.swap_remove(i);
                        machine.provide(node, attr, value);
                    } else {
                        i += 1;
                    }
                }
                self.running.push(BatchRunning {
                    ticket,
                    machine,
                    next_seg: 0,
                    work: 0,
                });
                self.pump(ctx);
            }
            BatchMsg::Attr {
                ticket,
                region,
                node,
                attr,
                value,
            } => {
                if sh.scheduler == SchedulerMode::Stealing {
                    self.route_attr(ctx, ticket, region, node, attr, value);
                    return;
                }
                match self
                    .running
                    .iter_mut()
                    .find(|r| r.ticket == ticket && r.machine.region() == region)
                {
                    Some(r) => {
                        r.machine.provide(node, attr, value);
                        self.pump(ctx);
                    }
                    None => self.parked.push((ticket, region, node, attr, value)),
                }
            }
            BatchMsg::Wake if sh.scheduler == SchedulerMode::Stealing => {
                self.claim_and_pump(ctx);
            }
            _ => {}
        }
        if sh.scheduler == SchedulerMode::Stealing {
            // Publish how far this handler ran our clock so that peers
            // processed later in event order can tell busy from idle.
            let mut st = sh.sched.lock().expect("sim scheduler lock");
            let me = self.evaluator;
            st.busy_until[me] = st.busy_until[me].max(ctx.now());
        }
    }

    fn on_crash(&mut self) {
        // Volatile state dies with the machine: running region
        // machines and parked early values are lost. The recovery
        // substrate — location table, input logs, load accounts on the
        // shared board — survives; it is the sim's stable storage,
        // mirroring the retained parser-side state of the live pool.
        self.running.clear();
        self.parked.clear();
    }

    fn on_restart(&mut self, ctx: &mut Ctx<BatchMsg<V>>) {
        let sh = Arc::clone(&self.shared);
        if sh.scheduler != SchedulerMode::Stealing {
            return;
        }
        let me = self.evaluator;
        {
            let mut st = sh.sched.lock().expect("sim scheduler lock");
            st.dead[me] = false;
            // Rejoin with a load account reflecting whatever recovery
            // parked on this deque (normally nothing).
            st.load[me] = st.deques[me].iter().map(|j| j.work).sum();
        }
        // Rejoin the park: claim or steal like any idle machine.
        self.claim_and_pump(ctx);
        let mut st = sh.sched.lock().expect("sim scheduler lock");
        st.busy_until[me] = st.busy_until[me].max(ctx.now());
    }
}

struct BatchLibrarianProc<V: AttrValue> {
    shared: Arc<BatchShared<V>>,
    ledger: SegmentLedger,
}

impl<V: AttrValue> Process<BatchMsg<V>> for BatchLibrarianProc<V> {
    fn on_message(&mut self, ctx: &mut Ctx<BatchMsg<V>>, from: ProcId, msg: BatchMsg<V>) {
        let sh = Arc::clone(&self.shared);
        match msg {
            BatchMsg::Register { ticket, id, text } => {
                ctx.phase("receive code");
                ctx.spend((text.len() as Time).div_ceil(1024) * sh.cost.resolve_kb_us / 10);
                self.ledger.register(ticket as u64, id, text);
            }
            BatchMsg::Resolve { ticket } => {
                ctx.phase("combine code");
                let total = self.ledger.ticket_bytes(ticket as u64);
                ctx.spend((total as Time).div_ceil(1024) * sh.cost.resolve_kb_us);
                let store = self.ledger.resolve(ticket as u64);
                sh.segstores.lock().unwrap().insert(ticket, store);
                ctx.send(from, BatchMsg::Resolved { ticket }, 64, "resolved");
            }
            _ => {}
        }
    }
}

/// Rejects fault plans the recovery protocol cannot survive: crashes
/// are only recoverable for evaluator machines (ProcIds `1..=park`)
/// and only under the stealing scheduler, whose location table and
/// input logs are the recovery substrate.
fn validate_fault_plan(faults: &FaultPlan, scheduler: SchedulerMode, machines: usize) {
    let mut crashes = faults.crash_procs().peekable();
    if crashes.peek().is_none() {
        return;
    }
    assert!(
        scheduler == SchedulerMode::Stealing,
        "crash injection requires SchedulerMode::Stealing — the location \
         table and input logs are the recovery substrate"
    );
    for p in crashes {
        assert!(
            (1..=machines).contains(&p),
            "fault plan crashes p{p}, which is not an evaluator machine \
             (valid targets: 1..={machines})"
        );
    }
}

/// Runs one simulated *batched* parallel compilation: `trees` stream
/// through the same evaluator machines with up to `pipeline_depth`
/// trees in flight, modelling the pool's split-phase/ticket schedule on
/// the paper's simulated network. Depth 1 reproduces the strict
/// one-tree-at-a-time barrier; depth ≥ 2 lets tree N+1's subtrees ship
/// (and its machines start) while tree N's stragglers drain.
///
/// This entry decomposes each tree into (at most) `config.machines`
/// regions — the whole-tree-ticketing compatibility schedule. Use
/// [`run_sim_batch_with`] to model region-granular scheduling, where a
/// cost-driven decomposition may produce more regions than machines and
/// region jobs round-robin over the park.
///
/// All trees must share one grammar; `plans` must be `Some` for
/// [`MachineMode::Combined`].
///
/// # Panics
///
/// Panics if evaluation fails or the protocol deadlocks — validate the
/// grammar with the sequential evaluators first.
pub fn run_sim_batch<V: AttrValue>(
    trees: &[Arc<ParseTree<V>>],
    plans: Option<&Arc<Plans>>,
    config: &SimConfig,
    pipeline_depth: usize,
) -> BatchSimReport<V> {
    run_sim_batch_with(
        trees,
        plans,
        config,
        pipeline_depth,
        RegionGranularity::Machines(config.machines),
    )
}

/// [`run_sim_batch`] with an explicit [`RegionGranularity`].
///
/// With [`RegionGranularity::Adaptive`] each tree is carved into
/// budget-sized regions independent of the machine count; region `r`
/// runs on machine `r % machines` and each simulated evaluator
/// multiplexes its region jobs oldest-first, exactly like a pool
/// worker. A single huge tree therefore spreads over the whole park in
/// balanced chunks instead of riding one fixed uneven split — the
/// schedule the region-granular [`crate::parallel::pool::WorkerPool`]
/// runs on real threads.
///
/// # Panics
///
/// Panics if evaluation fails or the protocol deadlocks — validate the
/// grammar with the sequential evaluators first.
pub fn run_sim_batch_with<V: AttrValue>(
    trees: &[Arc<ParseTree<V>>],
    plans: Option<&Arc<Plans>>,
    config: &SimConfig,
    pipeline_depth: usize,
    granularity: RegionGranularity,
) -> BatchSimReport<V> {
    run_sim_batch_with_faults(
        trees,
        plans,
        config,
        pipeline_depth,
        granularity,
        &FaultPlan::default(),
    )
}

/// [`run_sim_batch_with`] under a [`FaultPlan`]: evaluator crashes,
/// restarts, and tagged message drops/delays are injected at their
/// scheduled virtual times, and the recovery protocol (oracle crash
/// detection → region re-execution from input logs → idempotent
/// redelivery) runs inside the simulation — the deterministic mirror
/// of [`crate::parallel::pool::WorkerPool::kill_worker`]. Outputs are
/// byte-identical to the fault-free run; the report's
/// [`BatchSimReport::faults`] counters expose what recovery did.
///
/// # Panics
///
/// Panics if the plan crashes any process that is not an evaluator
/// machine (the parser and librarian are not replicated), or schedules
/// crashes without [`SchedulerMode::Stealing`] (the location table and
/// input logs are the recovery substrate); also if evaluation fails or
/// the protocol deadlocks, like [`run_sim_batch_with`].
pub fn run_sim_batch_with_faults<V: AttrValue>(
    trees: &[Arc<ParseTree<V>>],
    plans: Option<&Arc<Plans>>,
    config: &SimConfig,
    pipeline_depth: usize,
    granularity: RegionGranularity,
    faults: &FaultPlan,
) -> BatchSimReport<V> {
    assert!(!trees.is_empty(), "batch must contain at least one tree");
    let g = trees[0].grammar();
    assert!(
        trees.iter().all(|t| Arc::ptr_eq(t.grammar(), g)),
        "all trees in a batch share one grammar"
    );
    let depth = pipeline_depth.max(1);
    let table = SplitTable::new(g.as_ref(), config.min_size_scale);
    let work = WorkTable::new(g.as_ref());
    let decomps: Vec<Arc<Decomposition>> = trees
        .iter()
        .map(|t| Arc::new(decompose_granular(t, &table, &work, granularity)))
        .collect();
    // The machine park: one evaluator process per region up to the
    // configured machine count; beyond that, regions round-robin.
    let machines = decomps
        .iter()
        .map(|d| d.len())
        .max()
        .unwrap()
        .min(config.machines.max(1));
    validate_fault_plan(faults, config.scheduler, machines);
    let expected_roots: Vec<usize> = trees
        .iter()
        .map(|t| {
            let root_sym = g.prod(t.node(t.root()).prod).lhs;
            g.symbol(root_sym).attrs_of_kind(AttrKind::Syn).count()
        })
        .collect();

    let shared = Arc::new(BatchShared {
        trees: trees.to_vec(),
        decomps,
        plan: Arc::new(EvalPlan::from_parts(g, plans.cloned(), None)),
        cost: config.cost,
        mode: config.mode,
        result: config.result,
        classifier: Arc::clone(&config.classifier),
        librarian: ProcId(1 + machines),
        parser: ProcId(0),
        depth,
        park: machines,
        rotate: matches!(granularity, RegionGranularity::Adaptive { .. }),
        scheduler: config.scheduler,
        net: config.net,
        sched: Mutex::new(SimSched {
            deques: (0..machines).map(|_| VecDeque::new()).collect(),
            table: HashMap::new(),
            load: vec![0; machines],
            busy_until: vec![0; machines],
            counters: SchedCounters::default(),
            dead: vec![false; machines],
            logs: HashMap::new(),
            faults: FaultCounters::default(),
        }),
        expected_roots,
        eval_start: Mutex::new(0),
        finish: Mutex::new(vec![0; trees.len()]),
        root_values: Mutex::new(vec![Vec::new(); trees.len()]),
        segstores: Mutex::new(HashMap::new()),
        per_machine: Mutex::new(vec![EvalStats::default(); machines]),
        error: Mutex::new(None),
    });

    let mut sim: Sim<BatchMsg<V>> = Sim::new(config.net);
    sim.add_process(
        "parser",
        BatchParserProc {
            shared: Arc::clone(&shared),
            next_ship: 0,
            next_resolve: 0,
            resolving: false,
            region_dones: vec![0; trees.len()],
            finished: 0,
        },
    );
    for r in 0..machines {
        let letter = (b'a' + (r % 26) as u8) as char;
        sim.add_process(
            format!("evaluator-{letter}"),
            BatchEvaluatorProc {
                shared: Arc::clone(&shared),
                evaluator: r,
                running: Vec::new(),
                parked: Vec::new(),
            },
        );
    }
    sim.add_process(
        "librarian",
        BatchLibrarianProc {
            shared: Arc::clone(&shared),
            ledger: SegmentLedger::new(),
        },
    );
    sim.set_faults(faults.clone());
    sim.run();

    if let Some(e) = shared.error.lock().unwrap().take() {
        panic!("batched parallel evaluation failed: {e}");
    }
    let eval_start = *shared.eval_start.lock().unwrap();
    let finish = shared.finish.lock().unwrap().clone();
    let last = finish.iter().copied().max().unwrap_or(0);
    assert!(
        last >= eval_start && last > 0,
        "batch simulation ended without all roots resolved (deadlock?)"
    );

    let per_machine = shared.per_machine.lock().unwrap().clone();
    let mut stats = EvalStats::default();
    for s in &per_machine {
        stats += *s;
    }
    let segstores = shared.segstores.lock().unwrap();
    let root_values: Vec<Vec<(AttrId, V)>> = shared
        .root_values
        .lock()
        .unwrap()
        .iter()
        .enumerate()
        .map(|(t, roots)| {
            let empty = SegmentStore::new();
            let store = segstores.get(&t).unwrap_or(&empty);
            roots.iter().map(|(a, v)| (*a, v.inflate(store))).collect()
        })
        .collect();
    drop(segstores);

    let (sched, fault_counters) = {
        let st = shared.sched.lock().unwrap();
        (st.counters, st.faults)
    };
    BatchSimReport {
        makespan: last - eval_start,
        finish_times: finish
            .iter()
            .map(|&f| f.saturating_sub(eval_start))
            .collect(),
        parse_time: eval_start,
        regions: shared.decomps.iter().map(|d| d.len()).collect(),
        stats,
        per_machine,
        trace: sim.trace().clone(),
        names: sim.names().to_vec(),
        root_values,
        sched,
        faults: fault_counters,
    }
}

// ---------------------------------------------------------------------
// Service simulation: an *open arrival* request stream against the same
// machine park, with bounded admission and a pluggable dispatch policy.
// Deterministic — this is how scheduling policies are ranked before a
// wall-clock run confirms.
// ---------------------------------------------------------------------

/// One request of an open-arrival service stream: tree `i` of the
/// accompanying slice arrives at `arrival_us`, billed to `tenant`.
#[derive(Debug, Clone, Copy)]
pub struct SimRequest {
    /// Absolute virtual arrival time, µs.
    pub arrival_us: Time,
    /// Tenant the request bills to (fair queueing only).
    pub tenant: u32,
}

/// Result of one simulated service run. All per-request vectors are
/// indexed like the request slice; `None` marks a shed request.
pub struct ServiceSimReport<V> {
    /// Final virtual time (last completion or shed decision).
    pub makespan: Time,
    /// Arrival times, echoed from the request stream.
    pub arrivals: Vec<Time>,
    /// When the parser admitted each request into the waiting queue.
    pub admitted: Vec<Option<Time>>,
    /// When each request's first region job was shipped.
    pub dispatched: Vec<Option<Time>>,
    /// When each request's root attributes were resolved.
    pub finished: Vec<Option<Time>>,
    /// Which requests were shed by admission control.
    pub shed: Vec<bool>,
    /// Regions each tree decomposed into.
    pub regions: Vec<usize>,
    /// Aggregated statistics over every evaluated request.
    pub stats: EvalStats,
    /// Per-evaluator statistics.
    pub per_machine: Vec<EvalStats>,
    /// The activity/message trace.
    pub trace: Trace,
    /// Process names aligned with the trace.
    pub names: Vec<String>,
    /// Per-request root values (empty for shed requests).
    pub root_values: Vec<Vec<(AttrId, V)>>,
    /// Steal-scheduler telemetry for the run (all zeros under
    /// [`SchedulerMode::Fixed`]).
    pub sched: SchedCounters,
    /// Crash/re-execution/duplicate-suppression telemetry (all zeros
    /// when the [`FaultPlan`] is empty).
    pub faults: FaultCounters,
}

impl<V> ServiceSimReport<V> {
    /// End-to-end latency (arrival → roots resolved) of request `i`,
    /// `None` if it was shed.
    pub fn latency(&self, i: usize) -> Option<Time> {
        self.finished[i].map(|f| f - self.arrivals[i])
    }

    /// All end-to-end latencies, request order.
    pub fn latencies(&self) -> Vec<Option<Time>> {
        (0..self.arrivals.len()).map(|i| self.latency(i)).collect()
    }

    /// Number of requests shed by admission control.
    pub fn shed_count(&self) -> usize {
        self.shed.iter().filter(|&&s| s).count()
    }
}

/// Per-request service timestamps, filled in by the parser process and
/// read back by [`run_sim_service`] after the run.
struct ServiceTimes {
    admitted: Mutex<Vec<Option<Time>>>,
    dispatched: Mutex<Vec<Option<Time>>>,
    shed: Mutex<Vec<bool>>,
}

/// The parser role of the service: parses each request when it
/// arrives, applies bounded admission against the waiting queue, and
/// dispatches waiting requests into the pipeline window in the order
/// the [`DispatchPolicy`] prescribes. Resolution stays strictly in
/// *dispatch* order — the pool retires tickets FIFO by dispatch, so a
/// policy reorders service by choosing what enters the window, not by
/// reordering what is already inside.
struct ServiceParserProc<V: AttrValue> {
    shared: Arc<BatchShared<V>>,
    times: Arc<ServiceTimes>,
    requests: Vec<SimRequest>,
    /// Per-request work estimates ([`EvalPlan::tree_work`]) — known at
    /// admission, before any evaluation.
    works: Vec<u64>,
    /// Bounded waiting-room size: an arrival finding this many waiting
    /// requests is shed.
    capacity: usize,
    queue: PolicyQueue,
    /// Dispatched, unretired tickets in dispatch order.
    resolve_order: VecDeque<usize>,
    resolving: bool,
    region_dones: Vec<usize>,
    arrivals_seen: usize,
    admitted_count: usize,
    finished: usize,
}

impl<V: AttrValue> ServiceParserProc<V> {
    /// Fills free window slots from the waiting queue, in policy order.
    fn try_dispatch(&mut self, ctx: &mut Ctx<BatchMsg<V>>) {
        let sh = Arc::clone(&self.shared);
        while self.resolve_order.len() < sh.depth {
            let Some(job) = self.queue.pop() else { break };
            let ticket = job.seq as usize;
            self.times.dispatched.lock().unwrap()[ticket] = Some(ctx.now());
            ship_regions(&sh, ctx, ticket);
            self.resolve_order.push_back(ticket);
        }
    }

    /// Resolves dispatched tickets whose regions have all reported, in
    /// dispatch order (the pool's FIFO retirement).
    fn advance(&mut self, ctx: &mut Ctx<BatchMsg<V>>) {
        let sh = Arc::clone(&self.shared);
        while !self.resolving {
            let Some(&ticket) = self.resolve_order.front() else {
                return;
            };
            let complete = {
                let roots = sh.root_values.lock().unwrap();
                roots[ticket].len() == sh.expected_roots[ticket]
                    && self.region_dones[ticket] == sh.decomps[ticket].len()
            };
            if !complete {
                return;
            }
            match sh.result {
                ResultPropagation::Librarian => {
                    ctx.phase("result propagation");
                    ctx.send(sh.librarian, BatchMsg::Resolve { ticket }, 64, "resolve");
                    self.resolving = true;
                }
                ResultPropagation::Naive => self.finish_ticket(ctx, ticket),
            }
        }
    }

    fn finish_ticket(&mut self, ctx: &mut Ctx<BatchMsg<V>>, ticket: usize) {
        let sh = Arc::clone(&self.shared);
        sh.finish.lock().unwrap()[ticket] = ctx.now();
        self.finished += 1;
        debug_assert_eq!(self.resolve_order.front(), Some(&ticket));
        self.resolve_order.pop_front();
        self.resolving = false;
        // Retirement freed a window slot.
        self.try_dispatch(ctx);
        self.maybe_stop(ctx);
    }

    fn maybe_stop(&mut self, ctx: &mut Ctx<BatchMsg<V>>) {
        if self.arrivals_seen == self.requests.len() && self.finished == self.admitted_count {
            ctx.stop();
        }
    }
}

impl<V: AttrValue> Process<BatchMsg<V>> for ServiceParserProc<V> {
    fn on_start(&mut self, ctx: &mut Ctx<BatchMsg<V>>) {
        // The whole arrival schedule becomes alarms; each request is
        // parsed (and admission-checked) only when it arrives.
        for (t, req) in self.requests.iter().enumerate() {
            ctx.wake_at(req.arrival_us, BatchMsg::Arrive { ticket: t });
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<BatchMsg<V>>, _from: ProcId, msg: BatchMsg<V>) {
        let sh = Arc::clone(&self.shared);
        match msg {
            BatchMsg::Arrive { ticket } => {
                self.arrivals_seen += 1;
                // Front-end parse of the arriving source.
                ctx.phase("parse");
                ctx.spend(sh.trees[ticket].len() as Time * sh.cost.parse_node_us);
                if self.queue.len() >= self.capacity {
                    // Backpressure: bounded waiting room, arrival shed.
                    self.times.shed.lock().unwrap()[ticket] = true;
                    self.maybe_stop(ctx);
                    return;
                }
                self.times.admitted.lock().unwrap()[ticket] = Some(ctx.now());
                self.admitted_count += 1;
                self.queue.push(QueuedJob {
                    seq: ticket as u64,
                    tenant: self.requests[ticket].tenant,
                    work: self.works[ticket],
                });
                self.try_dispatch(ctx);
                self.maybe_stop(ctx);
            }
            BatchMsg::Attr {
                ticket,
                attr,
                value,
                ..
            } => {
                ctx.phase("result propagation");
                {
                    // A re-executed root region re-sends its roots;
                    // each root attribute is unique per ticket, so
                    // presence is the idempotency key (the pool's
                    // exact rule).
                    let mut roots = sh.root_values.lock().unwrap();
                    if roots[ticket].iter().any(|(a, _)| *a == attr) {
                        drop(roots);
                        sh.sched.lock().unwrap().faults.dup_suppressed += 1;
                        return;
                    }
                    roots[ticket].push((attr, value));
                }
                self.advance(ctx);
            }
            BatchMsg::Done { ticket } => {
                self.region_dones[ticket] += 1;
                self.advance(ctx);
            }
            BatchMsg::Resolved { ticket } => {
                self.finish_ticket(ctx, ticket);
                self.advance(ctx);
            }
            _ => {}
        }
    }

    fn on_peer_crash(&mut self, ctx: &mut Ctx<BatchMsg<V>>, peer: ProcId) {
        recover_regions(&self.shared, ctx, peer);
    }
}

/// Runs one simulated compilation *service*: `trees[i]` arrives as an
/// open-arrival request at `requests[i].arrival_us`, is parsed and
/// admission-checked on arrival (at most `queue_capacity` requests may
/// wait; later arrivals are shed), and enters the evaluator park's
/// pipeline window in the order `policy` prescribes. Everything
/// downstream of dispatch — region machines, attribute exchange, the
/// split-phase librarian, FIFO-by-dispatch retirement — is exactly the
/// batched schedule of [`run_sim_batch_with`].
///
/// Fully deterministic, which is the point: policy rankings (FIFO vs
/// shortest-job-first vs fair queueing) computed here are exactly
/// reproducible, independent of host load, and the dispatch decisions
/// are made by the same [`PolicyQueue`] the wall-clock service queue
/// uses.
///
/// # Panics
///
/// Panics if evaluation fails or the protocol deadlocks, like
/// [`run_sim_batch_with`]; also if `requests.len() != trees.len()`.
#[allow(clippy::too_many_arguments)]
pub fn run_sim_service<V: AttrValue>(
    trees: &[Arc<ParseTree<V>>],
    requests: &[SimRequest],
    plans: Option<&Arc<Plans>>,
    config: &SimConfig,
    pipeline_depth: usize,
    granularity: RegionGranularity,
    policy: DispatchPolicy,
    queue_capacity: usize,
) -> ServiceSimReport<V> {
    run_sim_service_with_faults(
        trees,
        requests,
        plans,
        config,
        pipeline_depth,
        granularity,
        policy,
        queue_capacity,
        &FaultPlan::default(),
    )
}

/// [`run_sim_service`] under a [`FaultPlan`] — the open-arrival
/// counterpart of [`run_sim_batch_with_faults`]: evaluator crashes and
/// tagged message faults are injected mid-stream and the same
/// region-re-execution recovery runs, so admitted requests complete
/// with byte-identical results while [`ServiceSimReport::faults`]
/// exposes the recovery telemetry.
///
/// # Panics
///
/// Panics under the same conditions as [`run_sim_service`], plus the
/// fault-plan validity rules of [`run_sim_batch_with_faults`].
#[allow(clippy::too_many_arguments)]
pub fn run_sim_service_with_faults<V: AttrValue>(
    trees: &[Arc<ParseTree<V>>],
    requests: &[SimRequest],
    plans: Option<&Arc<Plans>>,
    config: &SimConfig,
    pipeline_depth: usize,
    granularity: RegionGranularity,
    policy: DispatchPolicy,
    queue_capacity: usize,
    faults: &FaultPlan,
) -> ServiceSimReport<V> {
    assert!(!trees.is_empty(), "service stream needs at least one tree");
    assert_eq!(
        trees.len(),
        requests.len(),
        "one request per tree, index-aligned"
    );
    assert!(
        requests
            .windows(2)
            .all(|w| w[0].arrival_us <= w[1].arrival_us),
        "requests must be sorted by arrival time (ticket order is arrival order)"
    );
    let g = trees[0].grammar();
    assert!(
        trees.iter().all(|t| Arc::ptr_eq(t.grammar(), g)),
        "all trees in a stream share one grammar"
    );
    let depth = pipeline_depth.max(1);
    let capacity = queue_capacity.max(1);
    let table = SplitTable::new(g.as_ref(), config.min_size_scale);
    let work = WorkTable::new(g.as_ref());
    let decomps: Vec<Arc<Decomposition>> = trees
        .iter()
        .map(|t| Arc::new(decompose_granular(t, &table, &work, granularity)))
        .collect();
    let machines = decomps
        .iter()
        .map(|d| d.len())
        .max()
        .unwrap()
        .min(config.machines.max(1));
    validate_fault_plan(faults, config.scheduler, machines);
    let expected_roots: Vec<usize> = trees
        .iter()
        .map(|t| {
            let root_sym = g.prod(t.node(t.root()).prod).lhs;
            g.symbol(root_sym).attrs_of_kind(AttrKind::Syn).count()
        })
        .collect();
    let works: Vec<u64> = trees.iter().map(|t| work.tree_work(t)).collect();

    let shared = Arc::new(BatchShared {
        trees: trees.to_vec(),
        decomps,
        plan: Arc::new(EvalPlan::from_parts(g, plans.cloned(), None)),
        cost: config.cost,
        mode: config.mode,
        result: config.result,
        classifier: Arc::clone(&config.classifier),
        librarian: ProcId(1 + machines),
        parser: ProcId(0),
        depth,
        park: machines,
        rotate: matches!(granularity, RegionGranularity::Adaptive { .. }),
        scheduler: config.scheduler,
        net: config.net,
        sched: Mutex::new(SimSched {
            deques: (0..machines).map(|_| VecDeque::new()).collect(),
            table: HashMap::new(),
            load: vec![0; machines],
            busy_until: vec![0; machines],
            counters: SchedCounters::default(),
            dead: vec![false; machines],
            logs: HashMap::new(),
            faults: FaultCounters::default(),
        }),
        expected_roots,
        eval_start: Mutex::new(0),
        finish: Mutex::new(vec![0; trees.len()]),
        root_values: Mutex::new(vec![Vec::new(); trees.len()]),
        segstores: Mutex::new(HashMap::new()),
        per_machine: Mutex::new(vec![EvalStats::default(); machines]),
        error: Mutex::new(None),
    });
    let times = Arc::new(ServiceTimes {
        admitted: Mutex::new(vec![None; trees.len()]),
        dispatched: Mutex::new(vec![None; trees.len()]),
        shed: Mutex::new(vec![false; trees.len()]),
    });

    let mut sim: Sim<BatchMsg<V>> = Sim::new(config.net);
    sim.add_process(
        "parser",
        ServiceParserProc {
            shared: Arc::clone(&shared),
            times: Arc::clone(&times),
            requests: requests.to_vec(),
            works,
            capacity,
            queue: PolicyQueue::new(policy),
            resolve_order: VecDeque::new(),
            resolving: false,
            region_dones: vec![0; trees.len()],
            arrivals_seen: 0,
            admitted_count: 0,
            finished: 0,
        },
    );
    for r in 0..machines {
        let letter = (b'a' + (r % 26) as u8) as char;
        sim.add_process(
            format!("evaluator-{letter}"),
            BatchEvaluatorProc {
                shared: Arc::clone(&shared),
                evaluator: r,
                running: Vec::new(),
                parked: Vec::new(),
            },
        );
    }
    sim.add_process(
        "librarian",
        BatchLibrarianProc {
            shared: Arc::clone(&shared),
            ledger: SegmentLedger::new(),
        },
    );
    sim.set_faults(faults.clone());
    sim.run();

    if let Some(e) = shared.error.lock().unwrap().take() {
        panic!("service simulation evaluation failed: {e}");
    }
    let shed = times.shed.lock().unwrap().clone();
    let finish_raw = shared.finish.lock().unwrap().clone();
    let finished: Vec<Option<Time>> = finish_raw
        .iter()
        .zip(&shed)
        .map(|(&f, &s)| if s { None } else { Some(f) })
        .collect();
    assert!(
        finished.iter().zip(&shed).all(|(f, &s)| s || f.is_some()),
        "service simulation ended with unresolved requests (deadlock?)"
    );

    let per_machine = shared.per_machine.lock().unwrap().clone();
    let mut stats = EvalStats::default();
    for s in &per_machine {
        stats += *s;
    }
    let segstores = shared.segstores.lock().unwrap();
    let root_values: Vec<Vec<(AttrId, V)>> = shared
        .root_values
        .lock()
        .unwrap()
        .iter()
        .enumerate()
        .map(|(t, roots)| {
            let empty = SegmentStore::new();
            let store = segstores.get(&t).unwrap_or(&empty);
            roots.iter().map(|(a, v)| (*a, v.inflate(store))).collect()
        })
        .collect();
    drop(segstores);

    let admitted = times.admitted.lock().unwrap().clone();
    let dispatched = times.dispatched.lock().unwrap().clone();
    let (sched, fault_counters) = {
        let st = shared.sched.lock().unwrap();
        (st.counters, st.faults)
    };
    ServiceSimReport {
        makespan: sim.now(),
        arrivals: requests.iter().map(|r| r.arrival_us).collect(),
        admitted,
        dispatched,
        finished,
        shed,
        regions: shared.decomps.iter().map(|d| d.len()).collect(),
        stats,
        per_machine,
        trace: sim.trace().clone(),
        names: sim.names().to_vec(),
        root_values,
        sched,
        faults: fault_counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::compute_plans;
    use crate::eval::dynamic_eval;
    use crate::grammar::{Grammar, GrammarBuilder};
    use crate::tree::TreeBuilder;
    use crate::value::Value;

    /// A mini "compiler" grammar over [`Value`]: decls flow up, env
    /// flows down (symbol table), code (rope) flows up — with splittable
    /// statement lists. The paper's workload in miniature.
    struct Mini {
        tree: Arc<ParseTree<Value>>,
        plans: Arc<Plans>,
        code: AttrId,
    }

    /// A batch of mini trees sharing one grammar/plan set.
    struct MiniBatch {
        trees: Vec<Arc<ParseTree<Value>>>,
        plans: Arc<Plans>,
        code: AttrId,
    }

    /// `n` statements; each statement owns an off-spine "procedure body"
    /// subtree of `depth` costly nodes — the shape that makes parallel
    /// evaluation worthwhile in the paper's workload.
    fn mini_shape(n: usize, depth: usize) -> Mini {
        let mut b = mini_batch(&[(n, depth)]);
        Mini {
            tree: b.trees.remove(0),
            plans: b.plans,
            code: b.code,
        }
    }

    /// Like [`mini_shape`] but building one tree per `(n, depth)` pair,
    /// all over the same grammar (the batched-simulation fixture).
    fn mini_batch(shapes: &[(usize, usize)]) -> MiniBatch {
        let mut g = GrammarBuilder::<Value>::new();
        let s = g.nonterminal("S");
        let l = g.nonterminal("stmts");
        let body = g.nonterminal("body");
        let done_code = g.synthesized(s, "code");
        let decls = g.synthesized(l, "decls");
        let env = g.inherited(l, "env");
        let code = g.synthesized(l, "code");
        let benv = g.inherited(body, "env");
        let bcode = g.synthesized(body, "code");
        g.mark_split(l, 4);
        g.mark_priority(l, env);

        let top = g.production("top", s, [l]);
        g.rule(top, (1, env), [(1, decls)], |a| a[0].clone());
        g.rule(top, (0, done_code), [(1, code)], |a| a[0].clone());

        let cons = g.production("cons", l, [body, l]);
        g.rule(cons, (0, decls), [(2, decls)], |a| {
            Value::Int(a[0].as_int().unwrap() + 1)
        });
        g.rule(cons, (2, env), [(0, env)], |a| a[0].clone());
        g.rule(cons, (1, benv), [(0, env)], |a| a[0].clone());
        g.rule(cons, (0, code), [(1, bcode), (2, code)], |a| {
            a[0].as_rope()
                .unwrap()
                .concat(a[1].as_rope().unwrap())
                .into()
        });
        let nil = g.production("nil", l, []);
        g.rule(nil, (0, decls), [], |_| Value::Int(0));
        g.rule(nil, (0, code), [], |_| Value::Rope(Rope::new()));

        let wrap = g.production("wrap", body, [body]);
        g.rule(wrap, (1, benv), [(0, benv)], |a| a[0].clone());
        g.rule_with_cost(
            wrap,
            (0, bcode),
            [(1, bcode), (0, benv)],
            |a| {
                let line = format!(
                    "movl r{}, r0 ; addl2 $4, sp ; calls $0, proc\n",
                    a[1].as_int().unwrap() % 12
                );
                Value::Rope(Rope::from(line).concat(a[0].as_rope().unwrap()))
            },
            5,
        );
        let unit = g.production("unit", body, []);
        g.rule(unit, (0, bcode), [(0, benv)], |a| {
            Value::Rope(Rope::from(format!(
                "ret ; base {}\n",
                a[0].as_int().unwrap()
            )))
        });

        let grammar: Arc<Grammar<Value>> = Arc::new(g.build(s).unwrap());
        let plans = Arc::new(compute_plans(&grammar).unwrap());
        let trees = shapes
            .iter()
            .map(|&(n, depth)| {
                let mut tb = TreeBuilder::new(&grammar);
                let mut tail = tb.leaf(nil);
                for _ in 0..n {
                    let mut b = tb.leaf(unit);
                    for _ in 0..depth {
                        b = tb.node(wrap, [b]);
                    }
                    tail = tb.node(cons, [b, tail]);
                }
                let root = tb.node(top, [tail]);
                Arc::new(tb.finish(root).unwrap())
            })
            .collect();
        MiniBatch {
            trees,
            plans,
            code: done_code,
        }
    }

    fn mini(n: usize) -> Mini {
        mini_shape(n, 6)
    }

    fn root_code(report: &SimReport<Value>, attr: AttrId) -> Rope {
        report
            .root_values
            .iter()
            .find(|(a, _)| *a == attr)
            .and_then(|(_, v)| v.as_rope().cloned())
            .expect("root code attribute present")
    }

    #[test]
    fn sim_matches_sequential_dynamic_result() {
        let m = mini(32);
        let (dstore, _) = dynamic_eval(&m.tree).unwrap();
        let want = dstore
            .get(m.tree.root(), m.code)
            .and_then(|v| v.as_rope().cloned())
            .unwrap();
        for machines in [1, 2, 4] {
            let report = run_sim(&m.tree, Some(&m.plans), &SimConfig::paper(machines));
            let got = root_code(&report, m.code);
            assert!(got.content_eq(&want), "machines={machines}: code mismatch");
            assert!(report.eval_time > 0);
            assert!(report.parse_time > 0);
        }
    }

    #[test]
    fn parallel_is_faster_than_one_machine() {
        let m = mini(128);
        let t1 = run_sim(&m.tree, Some(&m.plans), &SimConfig::paper(1)).eval_time;
        let t4 = run_sim(&m.tree, Some(&m.plans), &SimConfig::paper(4)).eval_time;
        assert!(t4 < t1, "4 machines ({t4}µs) should beat 1 ({t1}µs)");
    }

    #[test]
    fn combined_beats_dynamic_mode() {
        let m = mini(128);
        let mut cfg = SimConfig::paper(4);
        let tc = run_sim(&m.tree, Some(&m.plans), &cfg).eval_time;
        cfg.mode = MachineMode::Dynamic;
        let td = run_sim(&m.tree, Some(&m.plans), &cfg).eval_time;
        assert!(tc < td, "combined ({tc}µs) should beat dynamic ({td}µs)");
    }

    #[test]
    fn librarian_beats_naive_result_propagation() {
        let m = mini(192);
        let mut cfg = SimConfig::paper(5);
        let tl = run_sim(&m.tree, Some(&m.plans), &cfg).eval_time;
        cfg.result = ResultPropagation::Naive;
        let tn = run_sim(&m.tree, Some(&m.plans), &cfg).eval_time;
        assert!(tl < tn, "librarian ({tl}µs) should beat naive ({tn}µs)");
    }

    #[test]
    fn naive_mode_produces_same_code() {
        let m = mini(32);
        let mut cfg = SimConfig::paper(3);
        cfg.result = ResultPropagation::Naive;
        let report = run_sim(&m.tree, Some(&m.plans), &cfg);
        let (dstore, _) = dynamic_eval(&m.tree).unwrap();
        let want = dstore
            .get(m.tree.root(), m.code)
            .and_then(|v| v.as_rope().cloned())
            .unwrap();
        assert!(root_code(&report, m.code).content_eq(&want));
    }

    #[test]
    fn report_exposes_trace_and_decomposition() {
        let m = mini(64);
        let report = run_sim(&m.tree, Some(&m.plans), &SimConfig::paper(3));
        assert_eq!(report.regions, 3);
        let gantt = report.render_gantt(72);
        assert!(gantt.contains("evaluator-a"));
        assert!(gantt.contains("legend"));
        assert!(report.decomposition.contains("regions"));
        assert!(report.stats.total_applied() > 0);
        // Most work is static in combined mode (§4.1).
        assert!(report.stats.dynamic_fraction() < 0.5);
    }

    #[test]
    fn determinism_of_the_full_pipeline() {
        let m = mini(49);
        let a = run_sim(&m.tree, Some(&m.plans), &SimConfig::paper(3)).eval_time;
        let b = run_sim(&m.tree, Some(&m.plans), &SimConfig::paper(3)).eval_time;
        assert_eq!(a, b);
    }

    #[test]
    fn batch_sim_produces_correct_code_at_every_depth() {
        let b = mini_batch(&[(24, 5), (40, 6), (9, 4), (31, 5)]);
        let want: Vec<Rope> = b
            .trees
            .iter()
            .map(|t| {
                let (dstore, _) = dynamic_eval(t).unwrap();
                dstore
                    .get(t.root(), b.code)
                    .and_then(|v| v.as_rope().cloned())
                    .unwrap()
            })
            .collect();
        for depth in [1usize, 2, 3] {
            let report = run_sim_batch(&b.trees, Some(&b.plans), &SimConfig::paper(3), depth);
            assert_eq!(report.root_values.len(), b.trees.len());
            assert_eq!(report.regions.len(), b.trees.len());
            for (t, want) in want.iter().enumerate() {
                let got = report.root_values[t]
                    .iter()
                    .find(|(a, _)| *a == b.code)
                    .and_then(|(_, v)| v.as_rope().cloned())
                    .expect("root code attribute present");
                assert!(
                    got.content_eq(want),
                    "depth={depth} tree {t}: code mismatch"
                );
            }
            // Trees finish in submission order (FIFO retirement).
            for w in report.finish_times.windows(2) {
                assert!(w[0] <= w[1], "depth={depth}: finish order violated");
            }
            assert!(report.stats.total_applied() > 0);
        }
    }

    #[test]
    fn pipelined_batch_beats_the_barrier_schedule() {
        let b = mini_batch(&[(48, 6), (16, 4), (40, 6), (12, 4), (44, 6), (20, 5)]);
        let barrier = run_sim_batch(&b.trees, Some(&b.plans), &SimConfig::paper(4), 1).makespan;
        let pipelined = run_sim_batch(&b.trees, Some(&b.plans), &SimConfig::paper(4), 2).makespan;
        assert!(
            pipelined < barrier,
            "depth 2 ({pipelined}µs) should beat the barrier ({barrier}µs)"
        );
    }

    #[test]
    fn region_granular_batch_produces_correct_code() {
        let b = mini_batch(&[(96, 6), (10, 4), (48, 5)]);
        let work = WorkTable::new(b.trees[0].grammar().as_ref());
        let budget = (work.tree_work(&b.trees[0]) / 8).max(1);
        let report = run_sim_batch_with(
            &b.trees,
            Some(&b.plans),
            &SimConfig::paper(4),
            2,
            RegionGranularity::Adaptive { budget },
        );
        // The huge tree produced more regions than machines.
        assert!(report.regions[0] > 4, "regions: {:?}", report.regions);
        for (t, tree) in b.trees.iter().enumerate() {
            let (dstore, _) = dynamic_eval(tree).unwrap();
            let want = dstore
                .get(tree.root(), b.code)
                .and_then(|v| v.as_rope().cloned())
                .unwrap();
            let got = report.root_values[t]
                .iter()
                .find(|(a, _)| *a == b.code)
                .and_then(|(_, v)| v.as_rope().cloned())
                .expect("root code attribute present");
            assert!(got.content_eq(&want), "tree {t}: code mismatch");
        }
    }

    #[test]
    fn region_granular_beats_whole_tree_ticketing_on_a_huge_tree_stream() {
        // One huge tree followed by small ones: under whole-tree
        // ticketing the huge tree's fixed (and possibly uneven) split
        // gates the stream; region-granular scheduling spreads it in
        // budget-sized chunks over the park. No head-of-line blocking.
        let b = mini_batch(&[(256, 6), (8, 4), (8, 4), (8, 4), (8, 4), (8, 4)]);
        let work = WorkTable::new(b.trees[0].grammar().as_ref());
        let budget = (work.tree_work(&b.trees[0]) / 8).max(1);
        let cfg = SimConfig::paper(4);
        let whole = run_sim_batch(&b.trees, Some(&b.plans), &cfg, 2).makespan;
        let granular = run_sim_batch_with(
            &b.trees,
            Some(&b.plans),
            &cfg,
            2,
            RegionGranularity::Adaptive { budget },
        )
        .makespan;
        assert!(
            granular < whole,
            "region-granular ({granular}µs) should strictly beat whole-tree ticketing ({whole}µs)"
        );
    }

    #[test]
    fn region_granular_holds_throughput_on_a_mixed_stream() {
        // The PR 3 acceptance stream shape: mixed tree sizes. Region
        // granularity must not regress the pipelined schedule.
        let shapes: Vec<(usize, usize)> = (0..24)
            .map(|i| match i % 3 {
                0 => (48, 6),
                1 => (16, 4),
                _ => (40, 5),
            })
            .collect();
        let b = mini_batch(&shapes);
        let work = WorkTable::new(b.trees[0].grammar().as_ref());
        let biggest = b.trees.iter().map(|t| work.tree_work(t)).max().unwrap();
        let budget = (biggest / 4).max(1);
        let cfg = SimConfig::paper(4);
        let pipelined = run_sim_batch(&b.trees, Some(&b.plans), &cfg, 2).makespan;
        let granular = run_sim_batch_with(
            &b.trees,
            Some(&b.plans),
            &cfg,
            2,
            RegionGranularity::Adaptive { budget },
        )
        .makespan;
        assert!(
            granular <= pipelined,
            "region-granular ({granular}µs) must be ≥ the pipelined schedule's throughput ({pipelined}µs)"
        );
    }

    #[test]
    fn stealing_sim_produces_correct_code_and_telemetry() {
        // A mixed stream deep enough that machines go idle while peers
        // hold queued work: the steal path itself must fire, not just
        // the LPT seeding.
        let shapes: Vec<(usize, usize)> = (0..16)
            .map(|i| match i % 4 {
                0 => (96, 6),
                1 => (8, 4),
                2 => (48, 5),
                _ => (16, 4),
            })
            .collect();
        let b = mini_batch(&shapes);
        let cfg = SimConfig::paper(4).with_scheduler(SchedulerMode::Stealing);
        let report = run_sim_batch(&b.trees, Some(&b.plans), &cfg, 2);
        for (t, tree) in b.trees.iter().enumerate() {
            let (dstore, _) = dynamic_eval(tree).unwrap();
            let want = dstore
                .get(tree.root(), b.code)
                .and_then(|v| v.as_rope().cloned())
                .unwrap();
            let got = report.root_values[t]
                .iter()
                .find(|(a, _)| *a == b.code)
                .and_then(|(_, v)| v.as_rope().cloned())
                .expect("root code attribute present");
            assert!(got.content_eq(&want), "tree {t}: code mismatch");
        }
        // Attribute routing went through the shared job-location table,
        // and idle machines actually stole queued work.
        let sent = report.sched.local_sends + report.sched.remote_sends;
        assert!(sent > 0, "no table-routed attribute sends recorded");
        assert!(report.sched.steals > 0, "no steals fired on this stream");
        // Deterministic replay, telemetry included.
        let again = run_sim_batch(&b.trees, Some(&b.plans), &cfg, 2);
        assert_eq!(report.makespan, again.makespan);
        assert_eq!(report.finish_times, again.finish_times);
        assert_eq!(report.sched, again.sched);
    }

    #[test]
    fn stealing_beats_fixed_placement_on_a_skewed_huge_tree_stream() {
        // One huge tree amid small ones: fixed modular placement parks
        // every small tree's first region on the same machine while the
        // huge tree's regions gate the others. LPT seeding spreads the
        // smalls and idle machines steal the stragglers.
        let b = mini_batch(&[(256, 6), (8, 4), (8, 4), (8, 4), (8, 4), (8, 4)]);
        let cfg = SimConfig::paper(4);
        let fixed = run_sim_batch(&b.trees, Some(&b.plans), &cfg, 2);
        let stealing = run_sim_batch(
            &b.trees,
            Some(&b.plans),
            &cfg.clone().with_scheduler(SchedulerMode::Stealing),
            2,
        );
        // Zero result divergence: byte-identical root attributes.
        for (t, (f, s)) in fixed
            .root_values
            .iter()
            .zip(stealing.root_values.iter())
            .enumerate()
        {
            assert_eq!(f.len(), s.len(), "tree {t}: root attr count differs");
            for ((fa, fv), (sa, sv)) in f.iter().zip(s.iter()) {
                assert_eq!(fa, sa, "tree {t}: attr order differs");
                match (fv.as_rope(), sv.as_rope()) {
                    (Some(fr), Some(sr)) => {
                        assert!(fr.content_eq(sr), "tree {t}: rope diverged")
                    }
                    _ => assert_eq!(fv, sv, "tree {t}: value diverged"),
                }
            }
        }
        // The acceptance bar: ≥ 1.15× throughput on this stream.
        assert!(
            stealing.makespan * 115 <= fixed.makespan * 100,
            "stealing ({}µs) should beat fixed placement ({}µs) by ≥ 1.15×",
            stealing.makespan,
            fixed.makespan
        );
    }

    #[test]
    fn batch_sim_is_deterministic_and_matches_single_tree_at_depth_one() {
        let b = mini_batch(&[(32, 5), (32, 5)]);
        let r1 = run_sim_batch(&b.trees, Some(&b.plans), &SimConfig::paper(3), 2);
        let r2 = run_sim_batch(&b.trees, Some(&b.plans), &SimConfig::paper(3), 2);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.finish_times, r2.finish_times);
        // Depth-1 single-tree batch reproduces run_sim's code result.
        let single = run_sim(&b.trees[0], Some(&b.plans), &SimConfig::paper(3));
        let batch1 = run_sim_batch(&b.trees[..1], Some(&b.plans), &SimConfig::paper(3), 1);
        let a = root_code(&single, b.code);
        let c = batch1.root_values[0]
            .iter()
            .find(|(x, _)| *x == b.code)
            .and_then(|(_, v)| v.as_rope().cloned())
            .unwrap();
        assert!(a.content_eq(&c));
    }

    // --- service (open-arrival) simulation ---

    fn requests_at(arrivals: &[(Time, u32)]) -> Vec<SimRequest> {
        arrivals
            .iter()
            .map(|&(arrival_us, tenant)| SimRequest { arrival_us, tenant })
            .collect()
    }

    fn service_code(report: &ServiceSimReport<Value>, t: usize, attr: AttrId) -> Rope {
        report.root_values[t]
            .iter()
            .find(|(a, _)| *a == attr)
            .and_then(|(_, v)| v.as_rope().cloned())
            .expect("root code attribute present")
    }

    #[test]
    fn service_sim_with_simultaneous_arrivals_matches_batch_results() {
        let b = mini_batch(&[(24, 5), (9, 4), (31, 5), (16, 4)]);
        let req = requests_at(&[(0, 0), (0, 0), (0, 0), (0, 0)]);
        let report = run_sim_service(
            &b.trees,
            &req,
            Some(&b.plans),
            &SimConfig::paper(3),
            2,
            RegionGranularity::Machines(3),
            DispatchPolicy::Fifo,
            usize::MAX,
        );
        assert_eq!(report.shed_count(), 0);
        for (t, tree) in b.trees.iter().enumerate() {
            let (dstore, _) = dynamic_eval(tree).unwrap();
            let want = dstore
                .get(tree.root(), b.code)
                .and_then(|v| v.as_rope().cloned())
                .unwrap();
            assert!(
                service_code(&report, t, b.code).content_eq(&want),
                "tree {t}: code mismatch"
            );
            // Timestamps are coherent: arrival ≤ admit ≤ dispatch ≤ finish.
            let adm = report.admitted[t].expect("admitted");
            let dsp = report.dispatched[t].expect("dispatched");
            let fin = report.finished[t].expect("finished");
            assert!(report.arrivals[t] <= adm && adm <= dsp && dsp <= fin);
        }
        // FIFO over simultaneous arrivals preserves submission order,
        // exactly like the batch schedule's FIFO retirement.
        for w in report.finished.windows(2) {
            assert!(w[0].unwrap() <= w[1].unwrap(), "finish order violated");
        }
        // Deterministic replay.
        let again = run_sim_service(
            &b.trees,
            &req,
            Some(&b.plans),
            &SimConfig::paper(3),
            2,
            RegionGranularity::Machines(3),
            DispatchPolicy::Fifo,
            usize::MAX,
        );
        assert_eq!(report.finished, again.finished);
        assert_eq!(report.makespan, again.makespan);
    }

    #[test]
    fn sjf_beats_fifo_small_class_latency_on_a_skewed_stream() {
        // A huge request lands amid a burst of small ones. FIFO
        // dispatches it in arrival order, gating every later small
        // request behind its whole evaluation; shortest-job-first
        // (keyed by the same work table adaptive decomposition budgets
        // with) lets the smalls flow past it.
        let mut shapes = vec![(8usize, 4usize); 10];
        shapes[2] = (200, 6);
        let b = mini_batch(&shapes);
        let req = requests_at(&(0..10).map(|i| (i as Time * 1_000, 0)).collect::<Vec<_>>());
        let run = |policy| {
            run_sim_service(
                &b.trees,
                &req,
                Some(&b.plans),
                &SimConfig::paper(4),
                1,
                RegionGranularity::Machines(4),
                policy,
                usize::MAX,
            )
        };
        let fifo = run(DispatchPolicy::Fifo);
        let sjf = run(DispatchPolicy::ShortestJobFirst);
        assert_eq!(fifo.shed_count(), 0);
        assert_eq!(sjf.shed_count(), 0);
        let worst_small = |r: &ServiceSimReport<Value>| {
            (0..10)
                .filter(|&i| i != 2)
                .map(|i| r.latency(i).unwrap())
                .max()
                .unwrap()
        };
        let (wf, ws) = (worst_small(&fifo), worst_small(&sjf));
        assert!(
            ws < wf,
            "SJF worst small latency ({ws}µs) should beat FIFO ({wf}µs)"
        );
        // The huge request still completes correctly under SJF.
        let (dstore, _) = dynamic_eval(&b.trees[2]).unwrap();
        let want = dstore
            .get(b.trees[2].root(), b.code)
            .and_then(|v| v.as_rope().cloned())
            .unwrap();
        assert!(service_code(&sjf, 2, b.code).content_eq(&want));
    }

    #[test]
    fn fair_queueing_shields_a_quiet_tenant_from_a_flooder() {
        // Tenant 0 floods eight requests; tenant 1 submits one mid-
        // flood. Under FIFO the quiet tenant waits out most of the
        // flood; deficit round-robin serves it after at most ~one
        // quantum of tenant-0 work.
        let mut shapes = vec![(12usize, 5usize); 9];
        let quiet = 5usize;
        shapes[quiet] = (8, 4);
        let b = mini_batch(&shapes);
        let mut arrivals: Vec<(Time, u32)> = (0..9).map(|i| (i as Time * 1_000, 0)).collect();
        arrivals[quiet].1 = 1;
        let req = requests_at(&arrivals);
        let work = WorkTable::new(b.trees[0].grammar().as_ref());
        let quantum = work.tree_work(&b.trees[0]);
        let run = |policy| {
            run_sim_service(
                &b.trees,
                &req,
                Some(&b.plans),
                &SimConfig::paper(4),
                1,
                RegionGranularity::Machines(4),
                policy,
                usize::MAX,
            )
        };
        let fifo = run(DispatchPolicy::Fifo);
        let fair = run(DispatchPolicy::FairQueue { quantum });
        let lf = fifo.latency(quiet).unwrap();
        let lq = fair.latency(quiet).unwrap();
        assert!(
            lq < lf,
            "fair queueing ({lq}µs) should shield the quiet tenant vs FIFO ({lf}µs)"
        );
    }

    #[test]
    fn bounded_admission_sheds_deterministically_and_serves_the_rest() {
        // Six near-simultaneous arrivals against a 2-deep waiting room
        // and a depth-1 window: the overflow is shed, everything
        // admitted completes correctly, and a replay is identical.
        let b = mini_batch(&[(16, 5); 6]);
        let req = requests_at(&(0..6).map(|i| (i as Time * 10, 0)).collect::<Vec<_>>());
        let run = || {
            run_sim_service(
                &b.trees,
                &req,
                Some(&b.plans),
                &SimConfig::paper(3),
                1,
                RegionGranularity::Machines(3),
                DispatchPolicy::Fifo,
                2,
            )
        };
        let report = run();
        assert!(report.shed_count() > 0, "burst must overflow capacity 2");
        assert!(!report.shed[0], "first arrival finds an empty service");
        let (dstore, _) = dynamic_eval(&b.trees[0]).unwrap();
        let want = dstore
            .get(b.trees[0].root(), b.code)
            .and_then(|v| v.as_rope().cloned())
            .unwrap();
        for t in 0..6 {
            if report.shed[t] {
                assert_eq!(report.admitted[t], None);
                assert_eq!(report.dispatched[t], None);
                assert_eq!(report.finished[t], None);
                assert!(report.root_values[t].is_empty());
            } else {
                assert!(report.finished[t].is_some());
                assert!(service_code(&report, t, b.code).content_eq(&want));
            }
        }
        let again = run();
        assert_eq!(report.shed, again.shed);
        assert_eq!(report.finished, again.finished);
        // A large enough waiting room sheds nothing from the same burst.
        let roomy = run_sim_service(
            &b.trees,
            &req,
            Some(&b.plans),
            &SimConfig::paper(3),
            1,
            RegionGranularity::Machines(3),
            DispatchPolicy::Fifo,
            6,
        );
        assert_eq!(roomy.shed_count(), 0);
    }

    // --- fault injection and recovery ---

    /// Asserts two runs' per-tree root values are byte-identical.
    /// Faults may reorder *arrival* of root attributes (delays, late
    /// recovery), so comparison is canonicalized by attribute id; each
    /// value must still match byte-for-byte.
    fn assert_roots_identical(clean: &[Vec<(AttrId, Value)>], faulty: &[Vec<(AttrId, Value)>]) {
        assert_eq!(clean.len(), faulty.len());
        for (t, (c, f)) in clean.iter().zip(faulty.iter()).enumerate() {
            assert_eq!(c.len(), f.len(), "tree {t}: root attr count differs");
            let mut c: Vec<_> = c.iter().collect();
            let mut f: Vec<_> = f.iter().collect();
            c.sort_by_key(|(a, _)| *a);
            f.sort_by_key(|(a, _)| *a);
            for ((ca, cv), (fa, fv)) in c.iter().zip(f.iter()) {
                assert_eq!(ca, fa, "tree {t}: root attr set differs");
                match (cv.as_rope(), fv.as_rope()) {
                    (Some(cr), Some(fr)) => {
                        assert!(cr.content_eq(fr), "tree {t}: rope diverged under faults")
                    }
                    _ => assert_eq!(cv, fv, "tree {t}: value diverged under faults"),
                }
            }
        }
    }

    #[test]
    fn crashed_machine_recovers_with_byte_identical_outputs() {
        // The acceptance stream: the mixed 24-tree shape. One machine
        // dies mid-evaluation and restarts 200 virtual ms later; the
        // survivors re-execute its lost regions from the input logs and
        // every tree still compiles to exactly the fault-free bytes.
        let shapes: Vec<(usize, usize)> = (0..24)
            .map(|i| match i % 3 {
                0 => (48, 6),
                1 => (16, 4),
                _ => (40, 5),
            })
            .collect();
        let b = mini_batch(&shapes);
        let cfg = SimConfig::paper(4).with_scheduler(SchedulerMode::Stealing);
        let clean = run_sim_batch(&b.trees, Some(&b.plans), &cfg, 2);
        assert_eq!(clean.faults, FaultCounters::default());

        // Crash evaluator-b (ProcId 2) a third of the way through.
        let crash_at = clean.parse_time + clean.makespan / 3;
        let plan = FaultPlan::seeded(11).crash_restart(2, crash_at, 200_000);
        let run = || {
            run_sim_batch_with_faults(
                &b.trees,
                Some(&b.plans),
                &cfg,
                2,
                RegionGranularity::Machines(cfg.machines),
                &plan,
            )
        };
        let faulty = run();
        assert_roots_identical(&clean.root_values, &faulty.root_values);
        assert_eq!(faulty.faults.crashes, 1, "{:?}", faulty.faults);
        assert!(
            faulty.faults.regions_reexecuted > 0,
            "lost regions were reseeded: {:?}",
            faulty.faults
        );
        assert!(
            faulty.faults.dup_suppressed > 0,
            "replayed sends were suppressed content-keyed: {:?}",
            faulty.faults
        );
        // The same plan injects the same chaos: deterministic replay.
        let again = run();
        assert_eq!(faulty.makespan, again.makespan);
        assert_eq!(faulty.finish_times, again.finish_times);
        assert_eq!(faulty.faults, again.faults);
    }

    #[test]
    fn permanent_crash_is_survived_by_the_remaining_park() {
        let b = mini_batch(&[(48, 6), (16, 4), (40, 5), (24, 5), (32, 5), (20, 4)]);
        let cfg = SimConfig::paper(4).with_scheduler(SchedulerMode::Stealing);
        let clean = run_sim_batch(&b.trees, Some(&b.plans), &cfg, 2);
        // Machine d dies for good; three survivors absorb its work.
        let plan = FaultPlan::seeded(3).crash(4, clean.parse_time + clean.makespan / 4);
        let faulty = run_sim_batch_with_faults(
            &b.trees,
            Some(&b.plans),
            &cfg,
            2,
            RegionGranularity::Machines(cfg.machines),
            &plan,
        );
        assert_roots_identical(&clean.root_values, &faulty.root_values);
        assert_eq!(faulty.faults.crashes, 1);
        assert!(
            faulty.makespan >= clean.makespan,
            "losing a machine cannot speed the park up"
        );
    }

    #[test]
    fn service_sim_survives_a_mid_stream_crash() {
        let b = mini_batch(&[(24, 5), (16, 4), (31, 5), (20, 4), (28, 5), (12, 4)]);
        let req = requests_at(&(0..6).map(|i| (i as Time * 2_000, 0)).collect::<Vec<_>>());
        let cfg = SimConfig::paper(3).with_scheduler(SchedulerMode::Stealing);
        let run = |plan: &FaultPlan| {
            run_sim_service_with_faults(
                &b.trees,
                &req,
                Some(&b.plans),
                &cfg,
                2,
                RegionGranularity::Machines(3),
                DispatchPolicy::Fifo,
                usize::MAX,
                plan,
            )
        };
        let clean = run(&FaultPlan::default());
        assert_eq!(clean.shed_count(), 0);
        // Crash right after request 2's regions land on the deques:
        // evaluator a is guaranteed to hold queued work at that instant.
        let crash_at = clean.dispatched[2].expect("request 2 dispatched") + 1;
        let faulty = run(&FaultPlan::seeded(5).crash_restart(1, crash_at, 150_000));
        assert_eq!(
            faulty.shed_count(),
            0,
            "admission is untouched by the crash"
        );
        assert_roots_identical(&clean.root_values, &faulty.root_values);
        assert_eq!(faulty.faults.crashes, 1);
        assert!(faulty.faults.regions_reexecuted > 0, "{:?}", faulty.faults);
    }

    #[test]
    #[should_panic(expected = "requires SchedulerMode::Stealing")]
    fn crash_injection_without_the_stealing_scheduler_is_rejected() {
        let b = mini_batch(&[(16, 4)]);
        let plan = FaultPlan::seeded(1).crash(1, 1_000);
        run_sim_batch_with_faults(
            &b.trees,
            Some(&b.plans),
            &SimConfig::paper(2),
            1,
            RegionGranularity::Machines(2),
            &plan,
        );
    }

    #[test]
    #[should_panic(expected = "not an evaluator machine")]
    fn crashing_the_parser_is_rejected() {
        let b = mini_batch(&[(16, 4)]);
        let plan = FaultPlan::seeded(1).crash(0, 1_000);
        let cfg = SimConfig::paper(2).with_scheduler(SchedulerMode::Stealing);
        run_sim_batch_with_faults(
            &b.trees,
            Some(&b.plans),
            &cfg,
            1,
            RegionGranularity::Machines(2),
            &plan,
        );
    }

    #[test]
    fn delayed_attribute_messages_do_not_change_results() {
        let b = mini_batch(&[(32, 5), (16, 4), (24, 5)]);
        let cfg = SimConfig::paper(3).with_scheduler(SchedulerMode::Stealing);
        let clean = run_sim_batch(&b.trees, Some(&b.plans), &cfg, 2);
        // A third of all attribute messages arrive 20 virtual ms late:
        // delivery reorders but the protocol is insensitive to it.
        let plan = FaultPlan::seeded(9).delay_tagged("attr", 333, 20_000);
        let faulty = run_sim_batch_with_faults(
            &b.trees,
            Some(&b.plans),
            &cfg,
            2,
            RegionGranularity::Machines(cfg.machines),
            &plan,
        );
        assert_roots_identical(&clean.root_values, &faulty.root_values);
        assert_eq!(faulty.faults.crashes, 0);
    }
}
