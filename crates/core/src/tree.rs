//! Arena-allocated parse trees and attribute storage.
//!
//! Nodes live in a `Vec` and are addressed by [`NodeId`]; this mirrors the
//! paper's "extremely fast storage allocation ... no provision for reusing
//! memory" (§4.3) and sidesteps shared-ownership graph problems — the tree
//! is immutable after construction and freely shared across evaluator
//! threads.
//!
//! Attribute *instances* (one per attribute of each node's symbol) are
//! stored out-of-line, so several evaluations of the same tree can
//! proceed independently. Two stores share one slot discipline (the
//! [`AttrSlots`] trait):
//!
//! * [`AttrStore`] — the whole-tree store of the sequential evaluators
//!   and of assembled parallel results: one dense slot per (node,
//!   attribute) instance, addressed through a per-node base table.
//! * [`RegionStore`] — the region-local store of a parallel region
//!   machine: slots are numbered *within the region* through the
//!   decomposition's [`crate::split::SlotMap`]. Instances of nodes the
//!   region owns occupy a dense span from 0; the region's boundary
//!   children (roots of child regions — the only foreign nodes a
//!   machine ever reads or writes) are aliased through a small remap
//!   appended after that span. A machine's store therefore costs
//!   O(region) slots, not O(tree), so a cost-driven decomposition into
//!   K regions allocates ≈1× the tree's instances in total instead of
//!   K×.
//!
//! The remap invariants the region layout relies on: regions partition
//! the tree's nodes; every boundary child is the root of the region
//! that owns it; and each attribute instance has exactly one defining
//! rule, evaluated by the machine owning the defining node — so merging
//! only the *owned* spans back into a whole-tree store
//! ([`AttrStore::absorb_region`]) visits every instance exactly once,
//! and the foreign aliases (each value's second copy at the producing
//! or consuming peer) are dropped as the duplicates they are.

use crate::grammar::{AttrId, AttrKind, Grammar, ProdId};
use crate::split::{RegionId, SlotMap};
use crate::value::{fnv1a_u64, AttrValue};
use std::fmt;
use std::sync::Arc;

/// Debug-only instrumentation: cumulative attribute slots allocated by
/// every store (whole-tree and region-local) in this process. Tests use
/// deltas of this counter to pin that region machines allocate
/// O(region), not O(tree), slots. Always 0 in release builds.
#[cfg(debug_assertions)]
static ALLOCATED_SLOTS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Cumulative slots allocated by all attribute stores so far (debug
/// builds only; release builds always return 0 — the counter would be
/// contended overhead on the hot construction path).
pub fn debug_allocated_slots() -> usize {
    #[cfg(debug_assertions)]
    {
        ALLOCATED_SLOTS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// Identifies a node within its [`ParseTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index form.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A child position of a node: either a nested nonterminal node or the
/// attribute values of a terminal token (predefined by the scanner, as in
/// Knuth's extension used by the paper).
#[derive(Debug, Clone)]
pub enum Child<V> {
    /// Nonterminal child.
    Node(NodeId),
    /// Terminal occurrence with its lexical attribute values (indexed by
    /// the terminal symbol's [`AttrId`]s).
    Token(Arc<[V]>),
}

/// A parse-tree node: an instance of a production.
#[derive(Debug, Clone)]
pub struct Node<V> {
    /// The production this node instantiates.
    pub prod: ProdId,
    /// Children, aligned with the production's RHS occurrences.
    pub children: Vec<Child<V>>,
    /// Parent node and this node's occurrence index there (1-based, as in
    /// [`crate::grammar::OccRef`]); `None` at the root.
    pub parent: Option<(NodeId, usize)>,
}

/// An immutable parse tree over a shared [`Grammar`].
pub struct ParseTree<V> {
    grammar: Arc<Grammar<V>>,
    nodes: Vec<Node<V>>,
    root: NodeId,
    subtree_size: Vec<u32>,
    subtree_hash: Vec<u64>,
    /// Whether the subtree's hash covers *all* of its content: false if
    /// any token value in the subtree returned `None` from
    /// [`AttrValue::content_hash`].
    hash_exact: Vec<bool>,
    subtree_wire: Vec<u64>,
}

impl<V: AttrValue> ParseTree<V> {
    /// The grammar this tree conforms to.
    pub fn grammar(&self) -> &Arc<Grammar<V>> {
        &self.grammar
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Node metadata.
    pub fn node(&self, id: NodeId) -> &Node<V> {
        &self.nodes[id.idx()]
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tree has no nodes (never produced by the builder,
    /// which requires a root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.subtree_size[id.idx()] as usize
    }

    /// Structural content hash of the subtree rooted at `id`, computed
    /// bottom-up from `(production, token values, child hashes)` in one
    /// pass at [`TreeBuilder::finish`]. Returns `None` when some token
    /// value in the subtree is not fingerprintable (see
    /// [`AttrValue::content_hash`]) — such subtrees must not be used as
    /// memoization keys. Equal subtrees always hash equal; the converse
    /// holds up to 64-bit collisions.
    pub fn subtree_hash(&self, id: NodeId) -> Option<u64> {
        self.hash_exact[id.idx()].then(|| self.subtree_hash[id.idx()])
    }

    /// The nonterminal child at RHS occurrence `occ` (1-based), if it is
    /// a node.
    pub fn child_node(&self, id: NodeId, occ: usize) -> Option<NodeId> {
        match self.node(id).children.get(occ - 1)? {
            Child::Node(c) => Some(*c),
            Child::Token(_) => None,
        }
    }

    /// Iterates over the subtree rooted at `id` in preorder.
    pub fn subtree(&self, id: NodeId) -> SubtreeIter<'_, V> {
        SubtreeIter {
            tree: self,
            stack: vec![id],
        }
    }

    /// All node ids in arena order (not tree order).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Depth of the tree (root = 1).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        // Parents precede children in preorder; compute iteratively over
        // the preorder to avoid recursion on deep trees.
        for id in self.subtree(self.root) {
            let d = match self.node(id).parent {
                None => 1,
                Some((p, _)) => depth[p.idx()] + 1,
            };
            depth[id.idx()] = d;
            max = max.max(d);
        }
        max
    }

    /// Approximate linearized size in bytes of the subtree at `id` — the
    /// cost of shipping the subtree to a remote evaluator (production id +
    /// child arity per node plus token payloads). O(1): precomputed per
    /// node in the bottom-up pass at [`TreeBuilder::finish`].
    pub fn subtree_wire_size(&self, id: NodeId) -> usize {
        self.subtree_wire[id.idx()] as usize
    }
}

impl<V: AttrValue> fmt::Debug for ParseTree<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ParseTree({} nodes, root {:?})",
            self.nodes.len(),
            self.root
        )
    }
}

/// Preorder iterator over a subtree.
pub struct SubtreeIter<'a, V> {
    tree: &'a ParseTree<V>,
    stack: Vec<NodeId>,
}

impl<'a, V: AttrValue> Iterator for SubtreeIter<'a, V> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let node = &self.tree.nodes[id.idx()];
        // Push children in reverse so they pop in order.
        for c in node.children.iter().rev() {
            if let Child::Node(n) = c {
                self.stack.push(*n);
            }
        }
        Some(id)
    }
}

/// A child specification handed to [`TreeBuilder::node`].
#[derive(Debug)]
pub enum ChildSpec<V> {
    /// A previously built node.
    Built(BuiltNode),
    /// A terminal token with its lexical attribute values.
    Token(Arc<[V]>),
}

/// Opaque handle to a node under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuiltNode(NodeId);

impl<V> From<BuiltNode> for ChildSpec<V> {
    fn from(b: BuiltNode) -> Self {
        ChildSpec::Built(b)
    }
}

/// Creates a token child with the given lexical values.
pub fn token<V>(values: impl Into<Arc<[V]>>) -> ChildSpec<V> {
    ChildSpec::Token(values.into())
}

/// Errors detected while building a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Wrong number of children for the production.
    Arity {
        /// Production name.
        prod: String,
        /// Expected RHS length.
        expected: usize,
        /// Provided child count.
        got: usize,
    },
    /// A child's symbol does not match the production's RHS.
    SymbolMismatch {
        /// Production name.
        prod: String,
        /// Occurrence index (1-based).
        occ: usize,
    },
    /// A token's value count does not match the terminal's attributes.
    TokenArity {
        /// Production name.
        prod: String,
        /// Occurrence index (1-based).
        occ: usize,
    },
    /// A built node was used as a child twice.
    Reused(NodeId),
    /// `finish` called with nodes left dangling (not reachable from the
    /// root).
    Dangling {
        /// Number of unreachable nodes.
        count: usize,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Arity {
                prod,
                expected,
                got,
            } => write!(
                f,
                "production {prod:?} takes {expected} children, got {got}"
            ),
            TreeError::SymbolMismatch { prod, occ } => {
                write!(f, "child {occ} of {prod:?} has the wrong symbol")
            }
            TreeError::TokenArity { prod, occ } => {
                write!(
                    f,
                    "token at occurrence {occ} of {prod:?} has the wrong number of lexical values"
                )
            }
            TreeError::Reused(id) => write!(f, "node {id:?} used as a child more than once"),
            TreeError::Dangling { count } => {
                write!(f, "{count} built nodes are not reachable from the root")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// Builds [`ParseTree`]s bottom-up (the natural order for an LR parser).
pub struct TreeBuilder<V> {
    grammar: Arc<Grammar<V>>,
    nodes: Vec<Node<V>>,
    used: Vec<bool>,
    error: Option<TreeError>,
}

impl<V: AttrValue> TreeBuilder<V> {
    /// Starts building a tree over `grammar`.
    pub fn new(grammar: &Arc<Grammar<V>>) -> Self {
        TreeBuilder {
            grammar: Arc::clone(grammar),
            nodes: Vec::new(),
            used: Vec::new(),
            error: None,
        }
    }

    /// Builds a node for a production whose RHS is all nonterminals.
    /// Errors are deferred to [`TreeBuilder::finish`].
    pub fn node(
        &mut self,
        prod: ProdId,
        children: impl IntoIterator<Item = BuiltNode>,
    ) -> BuiltNode {
        self.node_full(
            prod,
            children
                .into_iter()
                .map(ChildSpec::from)
                .collect::<Vec<_>>(),
        )
    }

    /// Builds a leaf node (nullary production).
    pub fn leaf(&mut self, prod: ProdId) -> BuiltNode {
        self.node_full(prod, Vec::new())
    }

    /// Builds a node with explicit child specifications (nodes and
    /// tokens). Errors are recorded and reported by
    /// [`TreeBuilder::finish`].
    pub fn node_full(&mut self, prod: ProdId, children: Vec<ChildSpec<V>>) -> BuiltNode {
        let id = NodeId(self.nodes.len() as u32);
        let grammar = Arc::clone(&self.grammar);
        let p = grammar.prod(prod);
        if children.len() != p.rhs.len() {
            self.record(TreeError::Arity {
                prod: p.name.clone(),
                expected: p.rhs.len(),
                got: children.len(),
            });
        }
        let mut kids = Vec::with_capacity(children.len());
        for (i, spec) in children.into_iter().enumerate() {
            let expected = p.rhs.get(i).copied();
            match spec {
                ChildSpec::Built(BuiltNode(cid)) => {
                    if let Some(exp) = expected {
                        let child_sym = self.grammar.prod(self.nodes[cid.idx()].prod).lhs;
                        if child_sym != exp {
                            self.record(TreeError::SymbolMismatch {
                                prod: p.name.clone(),
                                occ: i + 1,
                            });
                        }
                    }
                    if self.used[cid.idx()] {
                        self.record(TreeError::Reused(cid));
                    }
                    self.used[cid.idx()] = true;
                    self.nodes[cid.idx()].parent = Some((id, i + 1));
                    kids.push(Child::Node(cid));
                }
                ChildSpec::Token(vals) => {
                    if let Some(exp) = expected {
                        let sym = self.grammar.symbol(exp);
                        if !sym.terminal {
                            self.record(TreeError::SymbolMismatch {
                                prod: p.name.clone(),
                                occ: i + 1,
                            });
                        } else if sym.attrs.len() != vals.len() {
                            self.record(TreeError::TokenArity {
                                prod: p.name.clone(),
                                occ: i + 1,
                            });
                        }
                    }
                    kids.push(Child::Token(vals));
                }
            }
        }
        self.nodes.push(Node {
            prod,
            children: kids,
            parent: None,
        });
        self.used.push(false);
        BuiltNode(id)
    }

    fn record(&mut self, e: TreeError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Number of nodes built so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no nodes have been built.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finishes the tree with `root` at the top.
    ///
    /// # Errors
    ///
    /// Returns the first construction error, or [`TreeError::Dangling`] if
    /// some built nodes are unreachable from `root`.
    pub fn finish(mut self, root: BuiltNode) -> Result<ParseTree<V>, TreeError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let BuiltNode(root) = root;
        // Reachability: every node except the root must have a parent.
        let dangling = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| NodeId(*i as u32) != root && n.parent.is_none())
            .count();
        if dangling > 0 {
            return Err(TreeError::Dangling { count: dangling });
        }
        // Subtree sizes: children have higher arena indices than parents
        // is NOT guaranteed (bottom-up build means children have *lower*
        // ids), so accumulate children-first by arena order ascending —
        // a child's size is final before its parent is processed only if
        // child id < parent id, which bottom-up construction guarantees.
        let mut size = vec![1u32; self.nodes.len()];
        let mut hash = vec![0u64; self.nodes.len()];
        let mut exact = vec![true; self.nodes.len()];
        let mut wire = vec![0u64; self.nodes.len()];
        for i in 0..self.nodes.len() {
            let mut s = 1;
            // Seed with the production id; it determines the RHS shape,
            // so combining child/token hashes positionally after it is
            // injective over well-formed trees (up to hash collisions).
            let mut h = fnv1a_u64(0xcbf2_9ce4_8422_2325, self.nodes[i].prod.0 as u64);
            let mut ok = true;
            let mut w = 8u64;
            for c in &self.nodes[i].children {
                match c {
                    Child::Node(cid) => {
                        debug_assert!(cid.idx() < i, "bottom-up build order violated");
                        s += size[cid.idx()];
                        h = fnv1a_u64(h, hash[cid.idx()]);
                        ok &= exact[cid.idx()];
                        w += wire[cid.idx()];
                    }
                    Child::Token(vals) => {
                        for v in vals.iter() {
                            match v.content_hash() {
                                Some(vh) => h = fnv1a_u64(h, vh),
                                None => ok = false,
                            }
                            w += v.wire_size() as u64;
                        }
                    }
                }
            }
            size[i] = s;
            hash[i] = h;
            exact[i] = ok;
            wire[i] = w;
        }
        Ok(ParseTree {
            grammar: self.grammar,
            nodes: self.nodes,
            root,
            subtree_size: size,
            subtree_hash: hash,
            hash_exact: exact,
            subtree_wire: wire,
        })
    }
}

/// Dense slot storage with a side presence bitset: a slot is exactly
/// one `V` wide (no `Option` discriminant padding), so large value
/// domains halve their footprint and the gather path walks a compact
/// array. Unwritten slots hold `V::default()`, which is never
/// observable through the accessors — presence lives in the bitset.
///
/// Shared by [`AttrStore`] and the incremental evaluator's token
/// overlays, which mirror this layout.
#[derive(Clone)]
pub(crate) struct PackedSlots<V> {
    values: Vec<V>,
    present: Vec<u64>,
}

impl<V: Default> PackedSlots<V> {
    pub(crate) fn new(len: usize) -> Self {
        #[cfg(debug_assertions)]
        ALLOCATED_SLOTS.fetch_add(len, std::sync::atomic::Ordering::Relaxed);
        let mut values = Vec::new();
        values.resize_with(len, V::default);
        PackedSlots {
            values,
            present: vec![0u64; len.div_ceil(64)],
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.values.len()
    }

    /// Presence check; out-of-range indices read as unset.
    #[inline]
    pub(crate) fn is_set(&self, i: usize) -> bool {
        i < self.values.len() && (self.present[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> Option<&V> {
        if self.is_set(i) {
            Some(&self.values[i])
        } else {
            None
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize, v: V) {
        self.values[i] = v;
        self.present[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn filled(&self) -> usize {
        self.present.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Mutable iteration over the filled slots only.
    pub(crate) fn iter_set_mut(&mut self) -> impl Iterator<Item = &mut V> + '_ {
        let present = &self.present;
        self.values
            .iter_mut()
            .enumerate()
            .filter_map(move |(i, v)| {
                if (present[i / 64] >> (i % 64)) & 1 == 1 {
                    Some(v)
                } else {
                    None
                }
            })
    }
}

/// Slot-addressed attribute storage: the discipline shared by the
/// whole-tree [`AttrStore`] and the region-local [`RegionStore`].
///
/// Evaluator building blocks ([`occ_value`], the static-segment
/// interpreter, the machine's dependency-graph construction) are
/// generic over this trait, so the sequential evaluators monomorphize
/// against the dense whole-tree store exactly as before while region
/// machines run the same code against O(region) storage.
pub trait AttrSlots<V: AttrValue> {
    /// Dense index of an attribute instance within this store.
    fn instance(&self, node: NodeId, attr: AttrId) -> usize;
    /// Reads an instance.
    fn get(&self, node: NodeId, attr: AttrId) -> Option<&V>;
    /// Writes an instance (write-once; checked in debug builds).
    fn set(&mut self, node: NodeId, attr: AttrId, value: V);
    /// Reads by dense instance index.
    fn get_by_index(&self, idx: usize) -> Option<&V>;
}

/// Attribute-instance storage for one evaluation of a tree.
///
/// One slot per (node, attribute-of-node's-LHS-symbol) pair; slots are
/// write-once (enforced in debug builds — semantic rules are pure and an
/// instance has exactly one defining rule). Storage is a dense value
/// array plus a presence bitset ([`PackedSlots`]), so each slot costs
/// exactly one `V`.
pub struct AttrStore<V> {
    base: Vec<u32>,
    slots: PackedSlots<V>,
}

impl<V: AttrValue> AttrStore<V> {
    /// Creates an empty store sized for `tree`.
    pub fn new(tree: &ParseTree<V>) -> Self {
        let mut base = Vec::with_capacity(tree.len());
        let mut total = 0u32;
        for id in tree.node_ids() {
            base.push(total);
            let sym = tree.grammar().prod(tree.node(id).prod).lhs;
            total += tree.grammar().attr_count(sym) as u32;
        }
        AttrStore {
            base,
            slots: PackedSlots::new(total as usize),
        }
    }

    /// Dense index of an attribute instance.
    pub fn instance(&self, node: NodeId, attr: AttrId) -> usize {
        self.base[node.idx()] as usize + attr.0 as usize
    }

    /// Reads an instance.
    pub fn get(&self, node: NodeId, attr: AttrId) -> Option<&V> {
        self.slots.get(self.instance(node, attr))
    }

    /// Writes an instance.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the instance was already written (each
    /// instance has exactly one defining rule).
    pub fn set(&mut self, node: NodeId, attr: AttrId, value: V) {
        let idx = self.instance(node, attr);
        debug_assert!(
            !self.slots.is_set(idx),
            "attribute instance ({node:?}, {attr:?}) written twice"
        );
        self.slots.set(idx, value);
    }

    /// Reads by dense instance index.
    pub fn get_by_index(&self, idx: usize) -> Option<&V> {
        self.slots.get(idx)
    }

    /// Overwrites an instance (incremental re-evaluation only; ordinary
    /// evaluation writes each instance exactly once via
    /// [`AttrStore::set`]).
    pub fn replace(&mut self, node: NodeId, attr: AttrId, value: V) {
        let idx = self.instance(node, attr);
        self.slots.set(idx, value);
    }

    /// Writes by dense instance index.
    pub fn set_by_index(&mut self, idx: usize, value: V) {
        debug_assert!(!self.slots.is_set(idx));
        self.slots.set(idx, value);
    }

    /// Total number of instances.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the tree has no attribute instances.
    pub fn is_empty(&self) -> bool {
        self.slots.len() == 0
    }

    /// Number of instances currently filled.
    pub fn filled(&self) -> usize {
        self.slots.filled()
    }

    /// Resolves every filled slot against a librarian segment store
    /// (values that crossed a machine boundary may hold segment
    /// references; see [`AttrValue::inflate`]). After this the store's
    /// contents are independent of how the tree was decomposed.
    pub fn inflate_all(&mut self, segments: &paragram_rope::SegmentStore) {
        for v in self.slots.iter_set_mut() {
            *v = v.inflate(segments);
        }
    }

    /// Merges a region machine's local store into this whole-tree store
    /// — the sparse assembly step of a parallel evaluation. Only the
    /// region's *owned* span is copied: each attribute instance is
    /// owned by exactly one region (regions partition the nodes), so
    /// assembling every region's owned span fills the whole store
    /// exactly once, and the foreign aliases — a boundary value's
    /// second copy at the producing or consuming peer — are dropped as
    /// duplicates. Cost is O(region), independent of the tree.
    pub fn absorb_region(&mut self, tree: &ParseTree<V>, mut region: RegionStore<V>) {
        let g = tree.grammar();
        let map = Arc::clone(&region.map);
        for &n in map.region_nodes(region.region) {
            let sym = g.prod(tree.node(n).prod).lhs;
            let local = map.local_base(n);
            let global = self.base[n.idx()] as usize;
            for a in 0..g.attr_count(sym) {
                if region.slots.is_set(local + a) {
                    debug_assert!(
                        !self.slots.is_set(global + a),
                        "instance owned by two regions"
                    );
                    self.slots.set(
                        global + a,
                        std::mem::take(&mut region.slots.values[local + a]),
                    );
                }
            }
        }
    }
}

impl<V: AttrValue> AttrSlots<V> for AttrStore<V> {
    #[inline]
    fn instance(&self, node: NodeId, attr: AttrId) -> usize {
        AttrStore::instance(self, node, attr)
    }

    #[inline]
    fn get(&self, node: NodeId, attr: AttrId) -> Option<&V> {
        AttrStore::get(self, node, attr)
    }

    #[inline]
    fn set(&mut self, node: NodeId, attr: AttrId, value: V) {
        AttrStore::set(self, node, attr, value);
    }

    #[inline]
    fn get_by_index(&self, idx: usize) -> Option<&V> {
        AttrStore::get_by_index(self, idx)
    }
}

impl<V: AttrValue> fmt::Debug for AttrStore<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AttrStore({}/{} filled)", self.filled(), self.len())
    }
}

/// Region-local attribute storage for one parallel region machine.
///
/// Slots are addressed through the decomposition's shared
/// [`SlotMap`]: instances of nodes the region owns form a dense span
/// from 0, and the region's boundary children are aliased after it.
/// Construction is O(region) — the per-machine cost that lets a
/// cost-driven decomposition carve a huge tree into many regions
/// without multiplying store allocations by the region count.
///
/// The store addresses exactly the instances its machine touches;
/// [`AttrStore::absorb_region`] maps the owned span back into a
/// whole-tree store at assembly time.
pub struct RegionStore<V> {
    map: Arc<SlotMap>,
    region: RegionId,
    slots: PackedSlots<V>,
}

impl<V: AttrValue> RegionStore<V> {
    /// Creates an empty region-local store for `region` of the layout.
    pub fn new(map: &Arc<SlotMap>, region: RegionId) -> Self {
        RegionStore {
            map: Arc::clone(map),
            region,
            slots: PackedSlots::new(map.total_slots(region)),
        }
    }

    /// The region this store belongs to.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The shared slot layout this store is addressed through.
    pub fn slot_map(&self) -> &Arc<SlotMap> {
        &self.map
    }

    /// Local index of an attribute instance.
    ///
    /// # Panics
    ///
    /// Panics if `node` is neither owned by the region nor one of its
    /// boundary children (see [`SlotMap::slot_of`]).
    #[inline]
    pub fn instance(&self, node: NodeId, attr: AttrId) -> usize {
        self.map.slot_of(self.region, node, attr)
    }

    /// Reads an instance.
    #[inline]
    pub fn get(&self, node: NodeId, attr: AttrId) -> Option<&V> {
        self.slots.get(self.instance(node, attr))
    }

    /// Writes an instance.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the instance was already written.
    pub fn set(&mut self, node: NodeId, attr: AttrId, value: V) {
        let idx = self.instance(node, attr);
        debug_assert!(
            !self.slots.is_set(idx),
            "attribute instance ({node:?}, {attr:?}) written twice"
        );
        self.slots.set(idx, value);
    }

    /// Reads by local instance index.
    #[inline]
    pub fn get_by_index(&self, idx: usize) -> Option<&V> {
        self.slots.get(idx)
    }

    /// Writes by local instance index.
    pub fn set_by_index(&mut self, idx: usize, value: V) {
        debug_assert!(!self.slots.is_set(idx));
        self.slots.set(idx, value);
    }

    /// Total slots this store allocated (owned span + boundary
    /// aliases) — the machine's O(region) footprint, and what the
    /// slot-counter CI assertion compares against the whole tree's
    /// instance count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the region has no addressable slots.
    pub fn is_empty(&self) -> bool {
        self.slots.len() == 0
    }

    /// Number of slots currently filled.
    pub fn filled(&self) -> usize {
        self.slots.filled()
    }
}

impl<V: AttrValue> AttrSlots<V> for RegionStore<V> {
    #[inline]
    fn instance(&self, node: NodeId, attr: AttrId) -> usize {
        RegionStore::instance(self, node, attr)
    }

    #[inline]
    fn get(&self, node: NodeId, attr: AttrId) -> Option<&V> {
        RegionStore::get(self, node, attr)
    }

    #[inline]
    fn set(&mut self, node: NodeId, attr: AttrId, value: V) {
        RegionStore::set(self, node, attr, value);
    }

    #[inline]
    fn get_by_index(&self, idx: usize) -> Option<&V> {
        RegionStore::get_by_index(self, idx)
    }
}

impl<V: AttrValue> fmt::Debug for RegionStore<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RegionStore(region {}, {}/{} filled)",
            self.region,
            self.filled(),
            self.len()
        )
    }
}

/// Looks up the value of an argument occurrence for a rule at `node`:
/// either an attribute slot or a token's lexical value. Generic over
/// the store so region machines resolve through their local layout.
pub fn occ_value<'a, V: AttrValue, S: AttrSlots<V>>(
    tree: &'a ParseTree<V>,
    store: &'a S,
    node: NodeId,
    occ: usize,
    attr: AttrId,
) -> Option<&'a V> {
    if occ == 0 {
        store.get(node, attr)
    } else {
        match &tree.node(node).children[occ - 1] {
            Child::Node(c) => store.get(*c, attr),
            Child::Token(vals) => vals.get(attr.0 as usize),
        }
    }
}

/// The (node, attr) pair a target occurrence of a rule at `node` refers
/// to. Token occurrences are never rule targets (validated by the
/// grammar builder).
pub fn occ_slot<V: AttrValue>(
    tree: &ParseTree<V>,
    node: NodeId,
    occ: usize,
    attr: AttrId,
) -> (NodeId, AttrId) {
    if occ == 0 {
        (node, attr)
    } else {
        match &tree.node(node).children[occ - 1] {
            Child::Node(c) => (*c, attr),
            Child::Token(_) => unreachable!("rule target cannot be a token occurrence"),
        }
    }
}

/// Kind of an attribute instance's defining site, used by evaluators.
pub fn attr_kind<V: AttrValue>(
    g: &Grammar<V>,
    sym: crate::grammar::SymbolId,
    attr: AttrId,
) -> AttrKind {
    g.symbol(sym).attrs[attr.0 as usize].kind
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    fn tree_grammar() -> (Arc<Grammar<i64>>, ProdId, ProdId, ProdId, AttrId) {
        let mut g = GrammarBuilder::<i64>::new();
        let t = g.nonterminal("T");
        let num = g.terminal("num");
        let val = g.synthesized(num, "val");
        let _ = val;
        let size = g.synthesized(t, "size");
        let leaf = g.production("leaf", t, [num]);
        g.rule(leaf, (0, size), [(1, AttrId(0))], |a| a[0]);
        let fork = g.production("fork", t, [t, t]);
        g.rule(fork, (0, size), [(1, size), (2, size)], |a| a[0] + a[1] + 1);
        let wrap = g.production("wrap", t, [t]);
        g.rule(wrap, (0, size), [(1, size)], |a| a[0]);
        (Arc::new(g.build(t).unwrap()), leaf, fork, wrap, size)
    }

    #[test]
    fn build_and_inspect_tree() {
        let (g, leaf, fork, _wrap, _size) = tree_grammar();
        let mut tb = TreeBuilder::new(&g);
        let l1 = tb.node_full(leaf, vec![token(vec![5i64])]);
        let l2 = tb.node_full(leaf, vec![token(vec![7i64])]);
        let root = tb.node(fork, [l1, l2]);
        let tree = tb.finish(root).unwrap();
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.subtree_size(tree.root()), 3);
        assert_eq!(tree.depth(), 2);
        let order: Vec<NodeId> = tree.subtree(tree.root()).collect();
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], tree.root());
        // Parent links.
        let c1 = tree.child_node(tree.root(), 1).unwrap();
        assert_eq!(tree.node(c1).parent, Some((tree.root(), 1)));
    }

    #[test]
    fn arity_mismatch_reported() {
        let (g, _leaf, fork, _wrap, _size) = tree_grammar();
        let mut tb = TreeBuilder::new(&g);
        let only = tb.node_full(fork, vec![]);
        assert!(matches!(tb.finish(only), Err(TreeError::Arity { .. })));
    }

    #[test]
    fn token_arity_mismatch_reported() {
        let (g, leaf, _fork, _wrap, _size) = tree_grammar();
        let mut tb = TreeBuilder::new(&g);
        let bad = tb.node_full(leaf, vec![token(Vec::<i64>::new())]);
        assert!(matches!(tb.finish(bad), Err(TreeError::TokenArity { .. })));
    }

    #[test]
    fn reuse_reported() {
        let (g, leaf, fork, _wrap, _size) = tree_grammar();
        let mut tb = TreeBuilder::new(&g);
        let l = tb.node_full(leaf, vec![token(vec![1i64])]);
        let root = tb.node(fork, [l, l]);
        assert!(matches!(tb.finish(root), Err(TreeError::Reused(_))));
    }

    #[test]
    fn dangling_reported() {
        let (g, leaf, _fork, _wrap, _size) = tree_grammar();
        let mut tb = TreeBuilder::new(&g);
        let a = tb.node_full(leaf, vec![token(vec![1i64])]);
        let _b = tb.node_full(leaf, vec![token(vec![2i64])]);
        assert!(matches!(
            tb.finish(a),
            Err(TreeError::Dangling { count: 1 })
        ));
    }

    #[test]
    fn attr_store_read_write() {
        let (g, leaf, fork, _wrap, size) = tree_grammar();
        let mut tb = TreeBuilder::new(&g);
        let l1 = tb.node_full(leaf, vec![token(vec![5i64])]);
        let l2 = tb.node_full(leaf, vec![token(vec![7i64])]);
        let root = tb.node(fork, [l1, l2]);
        let tree = tb.finish(root).unwrap();
        let mut store = AttrStore::new(&tree);
        assert_eq!(store.len(), 3); // one `size` instance per node
        assert_eq!(store.filled(), 0);
        store.set(tree.root(), size, 42);
        assert_eq!(store.get(tree.root(), size), Some(&42));
        assert_eq!(store.filled(), 1);
    }

    #[test]
    fn occ_value_reads_tokens() {
        let (g, leaf, _fork, _wrap, _size) = tree_grammar();
        let mut tb = TreeBuilder::new(&g);
        let l = tb.node_full(leaf, vec![token(vec![9i64])]);
        let tree = tb.finish(l).unwrap();
        let store = AttrStore::new(&tree);
        let v = occ_value(&tree, &store, tree.root(), 1, AttrId(0));
        assert_eq!(v, Some(&9));
    }

    #[test]
    fn wire_size_counts_tokens() {
        let (g, leaf, _fork, _wrap, _size) = tree_grammar();
        let mut tb = TreeBuilder::new(&g);
        let l = tb.node_full(leaf, vec![token(vec![9i64])]);
        let tree = tb.finish(l).unwrap();
        assert_eq!(tree.subtree_wire_size(tree.root()), 8 + 8);
    }

    #[test]
    fn absorb_region_maps_owned_slots_into_whole_store() {
        let (g, leaf, fork, _wrap, size) = tree_grammar();
        let mut tb = TreeBuilder::new(&g);
        let l1 = tb.node_full(leaf, vec![token(vec![5i64])]);
        let l2 = tb.node_full(leaf, vec![token(vec![7i64])]);
        let root = tb.node(fork, [l1, l2]);
        let tree = tb.finish(root).unwrap();
        let decomp = crate::split::Decomposition::whole(&tree);
        let map = decomp.slot_map();
        assert_eq!(map.tree_instances(), 3);

        let mut region = RegionStore::new(map, 0);
        assert_eq!(region.len(), 3, "single region owns every instance");
        region.set(tree.root(), size, 1);
        region.set(NodeId(0), size, 2);
        assert_eq!(region.get(tree.root(), size), Some(&1));

        let mut whole = AttrStore::new(&tree);
        whole.absorb_region(&tree, region);
        assert_eq!(whole.get(tree.root(), size), Some(&1));
        assert_eq!(whole.get(NodeId(0), size), Some(&2));
        assert_eq!(whole.filled(), 2);
    }
}
